"""The ConsumerServlet and its mediator.

"The ConsumerServlet consults the Registry to find suitable Producers.
Then the ConsumerServlet acting on behalf of the Consumer issues new
queries to the located Producers to request and return the data to the
Consumer" (paper §2.2).  :class:`MediatedAnswer` keeps the full
mediation trace (registry lookups, servlets contacted, rows merged) for
the cost models.

The testbed artifact the paper describes — one ConsumerServlet could
support only ~120 Consumers — is modelled by ``max_consumers``.
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass, field

from repro.errors import RegistryError, SqlError
from repro.relational import SelectStmt, parse_sql_cached
from repro.rgma.producer_servlet import ProducerServlet
from repro.rgma.registry import Registry

__all__ = ["ConsumerServlet", "MediatedAnswer", "Consumer"]

DEFAULT_MAX_CONSUMERS = 120  # the study's observed per-servlet consumer limit


@dataclass
class MediatedAnswer:
    """Merged rows plus the mediation work that produced them."""

    columns: tuple[str, ...]
    rows: list[tuple]
    producers_matched: int = 0
    servlets_contacted: list[str] = field(default_factory=list)
    rows_examined: int = 0

    def __len__(self) -> int:
        return len(self.rows)

    def as_dicts(self) -> list[dict[str, _t.Any]]:
        return [dict(zip(self.columns, row)) for row in self.rows]

    def estimated_size(self) -> int:
        total = sum(len(c) + 2 for c in self.columns)
        for row in self.rows:
            total += sum(len(str(v)) + 4 for v in row)
        return max(total, 64)


class ConsumerServlet:
    """Mediates consumer SQL across the registered producers."""

    def __init__(
        self,
        name: str,
        registry: Registry,
        servlet_resolver: _t.Callable[[str], ProducerServlet],
        *,
        max_consumers: int = DEFAULT_MAX_CONSUMERS,
    ) -> None:
        self.name = name
        self.registry = registry
        self.servlet_resolver = servlet_resolver
        self.max_consumers = max_consumers
        self._consumers: dict[str, "Consumer"] = {}
        self.queries_mediated = 0

    # -- consumer lifecycle -------------------------------------------------
    def attach(self, consumer: "Consumer") -> None:
        """Attach a consumer; enforces the per-servlet capacity limit."""
        if len(self._consumers) >= self.max_consumers:
            raise RegistryError(
                f"ConsumerServlet {self.name} is full "
                f"({self.max_consumers} consumers) — the paper hit this at ~120"
            )
        self._consumers[consumer.consumer_id] = consumer
        consumer.servlet = self

    def detach(self, consumer_id: str) -> bool:
        consumer = self._consumers.pop(consumer_id, None)
        if consumer is not None:
            consumer.servlet = None
            return True
        return False

    @property
    def consumer_count(self) -> int:
        return len(self._consumers)

    # -- mediation ------------------------------------------------------------
    def query(self, sql: str, *, now: float = 0.0) -> MediatedAnswer:
        """Mediate one SELECT: registry lookup → servlet fan-out → merge."""
        stmt = parse_sql_cached(sql)
        if not isinstance(stmt, SelectStmt):
            raise SqlError("consumers may only issue SELECT statements")
        self.queries_mediated += 1
        registrations = self.registry.lookup(stmt.table, now=now)
        servlet_names: list[str] = []
        for reg in registrations:
            if reg.servlet not in servlet_names:
                servlet_names.append(reg.servlet)
        answer = MediatedAnswer(columns=(), rows=[], producers_matched=len(registrations))
        for servlet_name in servlet_names:
            servlet = self.servlet_resolver(servlet_name)
            part = servlet.answer(stmt)
            answer.servlets_contacted.append(servlet_name)
            answer.rows_examined += part.result.rows_examined
            if not answer.columns:
                answer.columns = part.result.columns
            answer.rows.extend(part.result.rows)
        if not answer.columns:
            # No producers: empty result with schema-derived columns.
            described = self.registry.describe(stmt.table)
            if stmt.columns == ("*",):
                answer.columns = tuple(c for c, _t_ in described)
            else:
                answer.columns = stmt.columns
        return answer


class Consumer:
    """A thin client that issues SELECTs through a ConsumerServlet."""

    def __init__(self, consumer_id: str) -> None:
        self.consumer_id = consumer_id
        self.servlet: ConsumerServlet | None = None
        self.queries_issued = 0

    def query(self, sql: str, *, now: float = 0.0) -> MediatedAnswer:
        if self.servlet is None:
            raise RegistryError(f"consumer {self.consumer_id!r} is not attached to a servlet")
        self.queries_issued += 1
        return self.servlet.query(sql, now=now)
