"""R-GMA: Producers, servlets, Registry and continuous streams (paper §2.2).

Functional re-implementation of the EU DataGrid Relational Grid
Monitoring Architecture: producers publish global-schema tuples through
ProducerServlets; ConsumerServlets mediate consumer SQL via the
Registry; the StreamBroker provides the push model.  Timing is charged
by the simulation layer (``repro.core``).
"""

from repro.rgma.consumer_servlet import Consumer, ConsumerServlet, MediatedAnswer
from repro.rgma.producer import Producer, make_default_producers
from repro.rgma.producer_servlet import ProducerServlet, ServletAnswer
from repro.rgma.registry import ProducerRegistration, Registry
from repro.rgma.resilience import MediatorStats, mediated_query, resilient_lookup
from repro.rgma.schema import GLOBAL_SCHEMA, STREAM_TABLES, table_ddl
from repro.rgma.streams import ContinuousQuery, StreamBroker

__all__ = [
    "Producer",
    "make_default_producers",
    "ProducerServlet",
    "ServletAnswer",
    "Registry",
    "ProducerRegistration",
    "ConsumerServlet",
    "Consumer",
    "MediatedAnswer",
    "StreamBroker",
    "ContinuousQuery",
    "MediatorStats",
    "mediated_query",
    "resilient_lookup",
    "GLOBAL_SCHEMA",
    "STREAM_TABLES",
    "table_ddl",
]
