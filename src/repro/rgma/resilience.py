"""Resilient R-GMA client paths: registry lookups and mediated queries.

"R-GMA: First results after deployment" reports that registry and
servlet failures dominated early operational experience — consumers saw
their mediation plans evaporate whenever the Registry bounced.  These
helpers put the two client-side hops of the R-GMA pull path behind
:class:`~repro.sim.rpc.RetryPolicy` instances:

* :func:`resilient_lookup` — consult the Registry for a table's
  producers, retrying through restarts;
* :func:`mediated_query` — the full consumer path: look up (with its
  own policy), then query the ProducerServlet (with another), falling
  back to the cached mediation plan when the Registry is unreachable —
  R-GMA consumers kept answering from stale plans during registry
  outages.
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass, field

from repro.errors import RequestTimeoutError, ServiceUnavailableError

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator
    from repro.sim.host import Host
    from repro.sim.network import Network
    from repro.sim.rpc import RetryPolicy, Service

__all__ = ["MediatorStats", "resilient_lookup", "mediated_query"]


@dataclass
class MediatorStats:
    """Client-side accounting for one consumer's mediation."""

    lookups: int = 0  # fresh Registry consultations that succeeded
    stale_plans_used: int = 0  # Registry unreachable, cached plan reused
    lookup_failures: int = 0  # no fresh plan *and* no cached one
    queries: int = 0  # ProducerServlet queries attempted
    query_failures: int = 0  # ... that failed even after retries
    plan_cache: dict[str, _t.Any] = field(default_factory=dict)


def resilient_lookup(
    sim: "Simulator",
    net: "Network",
    client_host: "Host",
    registry_service: Service,
    table: str,
    *,
    retry: RetryPolicy | None = None,
    request_size: int = 650,
) -> _t.Generator:
    """One Registry lookup through a retry policy; use with ``yield from``.

    Returns the registry service's answer (``{"producers": n}``).
    Raises like :func:`repro.sim.rpc.call` when retries are exhausted.
    """
    from repro.sim.rpc import call  # runtime-only: keeps the module sim-free at import

    answer = yield from call(
        sim,
        net,
        client_host,
        registry_service,
        {"table": table},
        size=request_size,
        retry=retry,
    )
    return answer


def mediated_query(
    sim: "Simulator",
    net: "Network",
    client_host: "Host",
    registry_service: Service,
    ps_service: Service,
    sql: str,
    table: str,
    *,
    lookup_retry: RetryPolicy | None = None,
    query_retry: RetryPolicy | None = None,
    stats: MediatorStats | None = None,
    request_size: int = 700,
) -> _t.Generator:
    """The consumer pull path with per-hop resilience; ``yield from`` it.

    Registry down?  Reuse the cached mediation plan for ``table`` if one
    exists (counted in ``stale_plans_used``); give up only when there is
    no plan at all.  Returns the ProducerServlet's answer.
    """
    from repro.sim.rpc import call  # runtime-only: keeps the module sim-free at import

    st = stats if stats is not None else MediatorStats()
    try:
        plan = yield from resilient_lookup(
            sim, net, client_host, registry_service, table, retry=lookup_retry
        )
        st.lookups += 1
        st.plan_cache[table] = plan
    except (ServiceUnavailableError, RequestTimeoutError):
        if table not in st.plan_cache:
            st.lookup_failures += 1
            raise
        st.stale_plans_used += 1
    st.queries += 1
    try:
        answer = yield from call(
            sim,
            net,
            client_host,
            ps_service,
            {"sql": sql},
            size=request_size,
            retry=query_retry,
        )
    except (ServiceUnavailableError, RequestTimeoutError):
        st.query_failures += 1
        raise
    return answer
