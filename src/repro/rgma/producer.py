"""R-GMA Producers: the information collectors of the relational model.

A Producer "advertises a table name and the row(s) of a table to the
Registry" (paper §2.2) and publishes measurement tuples through its
ProducerServlet.  Here a producer generates realistic monitoring rows
from a seeded RNG — the equivalent of the 10 local producers the study
ran per ProducerServlet.
"""

from __future__ import annotations

import typing as _t

import numpy as np

from repro.errors import RegistryError
from repro.rgma.schema import GLOBAL_SCHEMA, STREAM_TABLES

__all__ = ["Producer", "make_default_producers"]


class Producer:
    """One measurement stream publishing rows of a global-schema table."""

    def __init__(
        self,
        producer_id: str,
        table: str,
        hostname: str,
        *,
        predicate: str = "",
        seed: int = 0,
    ) -> None:
        if table not in GLOBAL_SCHEMA:
            raise RegistryError(f"table {table!r} is not in the global schema")
        self.producer_id = producer_id
        self.table = table
        self.hostname = hostname
        # The fixed-attribute predicate advertised to the Registry, e.g.
        # "WHERE hostName = 'lucky3'".
        self.predicate = predicate or f"WHERE hostName = '{hostname}'"
        self._rng = np.random.default_rng(seed)
        self.rows_published = 0

    def measure(self, now: float) -> dict[str, _t.Any]:
        """Produce one measurement row for this producer's table."""
        self.rows_published += 1
        rng = self._rng
        base: dict[str, _t.Any] = {
            "producerId": self.producer_id,
            "hostName": self.hostname,
            "timestamp": now,
        }
        if self.table == "cpuLoad":
            load1 = float(rng.uniform(0.0, 2.0))
            base.update(load1=round(load1, 3), load5=round(load1 * 0.9, 3), load15=round(load1 * 0.8, 3))
        elif self.table == "memoryUsage":
            base.update(totalMB=512, freeMB=int(rng.integers(32, 480)))
        elif self.table == "networkTraffic":
            base.update(interface="eth0", rxKBps=float(rng.uniform(0, 12_500)), txKBps=float(rng.uniform(0, 12_500)))
        elif self.table == "diskUsage":
            base.update(mountPoint="/home", totalMB=17_000, freeMB=int(rng.integers(1_000, 16_000)))
        elif self.table == "processCount":
            base.update(running=int(rng.integers(1, 40)), blocked=int(rng.integers(0, 10)))
        return base

    def columns(self) -> tuple[str, ...]:
        return tuple(col for col, _typ in GLOBAL_SCHEMA[self.table])

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Producer {self.producer_id} table={self.table}>"


def make_default_producers(hostname: str, count: int = 10, seed: int = 0) -> list[Producer]:
    """``count`` producers for a host, cycling through the stream tables.

    The study ran "a ProducerServlet ... with 10 local Producers" (§3.3);
    Experiment 3 scales this to 90.
    """
    producers = []
    for i in range(count):
        table = STREAM_TABLES[i % len(STREAM_TABLES)]
        producers.append(
            Producer(
                f"{hostname}/p{i}",
                table,
                hostname,
                seed=seed * 10_007 + i,
            )
        )
    return producers
