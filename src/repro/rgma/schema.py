"""The R-GMA global schema.

R-GMA presents the Grid as one virtual relational database: every
producer publishes rows of globally-defined tables (Fisher, "Relational
Model for Information and Monitoring", GGF 2001).  This module defines
the core monitoring tables the study's deployment used, mirroring the
EDG WP3 schema shape: a producer-keyed measurement stream per metric.
"""

from __future__ import annotations

__all__ = ["GLOBAL_SCHEMA", "table_ddl", "STREAM_TABLES"]

# name -> ordered (column, type) pairs. Every table leads with the
# producer identity and a timestamp, as in the EDG schema.
GLOBAL_SCHEMA: dict[str, tuple[tuple[str, str], ...]] = {
    "cpuLoad": (
        ("producerId", "VARCHAR(64)"),
        ("hostName", "VARCHAR(64)"),
        ("timestamp", "REAL"),
        ("load1", "REAL"),
        ("load5", "REAL"),
        ("load15", "REAL"),
    ),
    "memoryUsage": (
        ("producerId", "VARCHAR(64)"),
        ("hostName", "VARCHAR(64)"),
        ("timestamp", "REAL"),
        ("totalMB", "INT"),
        ("freeMB", "INT"),
    ),
    "networkTraffic": (
        ("producerId", "VARCHAR(64)"),
        ("hostName", "VARCHAR(64)"),
        ("timestamp", "REAL"),
        ("interface", "VARCHAR(16)"),
        ("rxKBps", "REAL"),
        ("txKBps", "REAL"),
    ),
    "diskUsage": (
        ("producerId", "VARCHAR(64)"),
        ("hostName", "VARCHAR(64)"),
        ("timestamp", "REAL"),
        ("mountPoint", "VARCHAR(64)"),
        ("totalMB", "INT"),
        ("freeMB", "INT"),
    ),
    "processCount": (
        ("producerId", "VARCHAR(64)"),
        ("hostName", "VARCHAR(64)"),
        ("timestamp", "REAL"),
        ("running", "INT"),
        ("blocked", "INT"),
    ),
}

# Tables producers publish into as continuous measurement streams.
STREAM_TABLES = tuple(GLOBAL_SCHEMA)


def table_ddl(name: str) -> str:
    """The CREATE TABLE statement for a global-schema table."""
    columns = GLOBAL_SCHEMA[name]
    body = ", ".join(f"{col} {typ}" for col, typ in columns)
    return f"CREATE TABLE {name} ({body})"
