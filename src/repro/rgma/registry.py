"""The R-GMA Registry: producer registrations held in an RDBMS.

"The RDBMS holds the information for all the Producers (the registered
table name, the identity, and the values of those fixed attributes) and
the descriptions of each Producer's tables" (paper §2.2).  The Registry
is itself built on :mod:`repro.relational` — the reproduction's MySQL
stand-in — and supports the soft-state leases R-GMA uses to expire dead
producers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import RegistryError
from repro.relational import Database
from repro.rgma.schema import GLOBAL_SCHEMA

__all__ = ["Registry", "ProducerRegistration"]

DEFAULT_LEASE = 1800.0  # R-GMA's default producer termination interval


@dataclass(frozen=True)
class ProducerRegistration:
    """One row of the Registry's producer table."""

    producer_id: str
    table: str
    servlet: str
    predicate: str
    expires_at: float


class Registry:
    """Mediating directory of producers, backed by the relational engine."""

    def __init__(self, name: str = "registry") -> None:
        self.name = name
        self.db = Database(f"{name}-db")
        self.db.create_table(
            "producers",
            (
                ("producerId", "VARCHAR(64)"),
                ("tableName", "VARCHAR(64)"),
                ("servlet", "VARCHAR(64)"),
                ("predicate", "VARCHAR(255)"),
                ("expiresAt", "REAL"),
            ),
        )
        self.db.table("producers").create_index("tableName")
        self.db.table("producers").create_index("producerId")
        self.db.create_table(
            "schemata",
            (("tableName", "VARCHAR(64)"), ("columnName", "VARCHAR(64)"), ("columnType", "VARCHAR(32)")),
        )
        for table, columns in GLOBAL_SCHEMA.items():
            for column, typ in columns:
                self.db.execute(
                    f"INSERT INTO schemata VALUES ('{table}', '{column}', '{typ}')"
                )
        self.registrations_total = 0
        self.lookups_total = 0

    # -- registration ----------------------------------------------------------
    def register(
        self,
        producer_id: str,
        table: str,
        servlet: str,
        predicate: str = "",
        *,
        now: float = 0.0,
        lease: float = DEFAULT_LEASE,
    ) -> None:
        """Insert or refresh a producer registration."""
        if table not in GLOBAL_SCHEMA:
            raise RegistryError(f"table {table!r} is not in the global schema")
        self.unregister(producer_id)
        escaped_pred = predicate.replace("'", "''")
        self.db.execute(
            f"INSERT INTO producers VALUES ('{producer_id}', '{table}', "
            f"'{servlet}', '{escaped_pred}', {now + lease})"
        )
        self.registrations_total += 1

    def unregister(self, producer_id: str) -> bool:
        """Drop a registration; returns whether it existed."""
        removed = self.db.execute(
            f"DELETE FROM producers WHERE producerId = '{producer_id}'"
        )
        return bool(removed)

    def sweep(self, now: float) -> int:
        """Expire lapsed leases; returns how many were dropped."""
        return int(self.db.execute(f"DELETE FROM producers WHERE expiresAt <= {now}"))

    # -- mediation ------------------------------------------------------------
    def lookup(self, table: str, now: float = 0.0) -> list[ProducerRegistration]:
        """Live producers advertising ``table`` (mediator step one)."""
        self.lookups_total += 1
        result = self.db.query(
            f"SELECT producerId, tableName, servlet, predicate, expiresAt "
            f"FROM producers WHERE tableName = '{table}' AND expiresAt > {now}"
        )
        return [
            ProducerRegistration(
                producer_id=row[0],
                table=row[1],
                servlet=row[2],
                predicate=row[3],
                expires_at=row[4],
            )
            for row in result.rows
        ]

    def describe(self, table: str) -> list[tuple[str, str]]:
        """Schema description of a global table (name, type) per column."""
        result = self.db.query(
            f"SELECT columnName, columnType FROM schemata WHERE tableName = '{table}'"
        )
        if not result.rows:
            raise RegistryError(f"table {table!r} is not in the global schema")
        return [(row[0], row[1]) for row in result.rows]

    def producer_count(self, now: float = 0.0) -> int:
        result = self.db.query(f"SELECT COUNT(*) FROM producers WHERE expiresAt > {now}")
        return int(result.rows[0][0])

    def tables(self) -> list[str]:
        return list(GLOBAL_SCHEMA)
