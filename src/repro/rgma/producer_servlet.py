"""The ProducerServlet: R-GMA's information server (Table 1 of the paper).

Producers attach to a ProducerServlet, which buffers their published
tuples in per-table relations and answers SQL SELECTs from
ConsumerServlets.  :class:`ServletAnswer` reports rows examined and
result size so the simulation layer can charge work.
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass

from repro.errors import RegistryError, SqlError
from repro.relational import Database, ResultSet, SelectStmt, parse_sql_cached
from repro.rgma.producer import Producer
from repro.rgma.registry import DEFAULT_LEASE, Registry
from repro.rgma.schema import GLOBAL_SCHEMA, table_ddl

__all__ = ["ProducerServlet", "ServletAnswer"]

# R-GMA buffers a bounded history per stream; the study's deployment used
# small circular buffers per producer.
DEFAULT_HISTORY_ROWS = 1000


@dataclass(frozen=True)
class ServletAnswer:
    """One servlet query answer plus its cost drivers."""

    result: ResultSet
    producers_touched: int

    def estimated_size(self) -> int:
        return self.result.estimated_size()


class ProducerServlet:
    """Buffers producer tuples and answers consumer SQL."""

    def __init__(self, name: str, *, history_rows: int = DEFAULT_HISTORY_ROWS) -> None:
        self.name = name
        self.db = Database(f"{name}-buffer")
        self.history_rows = history_rows
        self._producers: dict[str, Producer] = {}
        self._row_count: dict[str, int] = {}
        self.queries_answered = 0
        self.tuples_buffered = 0

    # -- producer lifecycle -------------------------------------------------
    def attach(
        self,
        producer: Producer,
        registry: Registry | None = None,
        *,
        now: float = 0.0,
        lease: float = DEFAULT_LEASE,
    ) -> None:
        """Attach a producer (and register it with the Registry if given)."""
        if producer.producer_id in self._producers:
            raise RegistryError(f"producer {producer.producer_id!r} already attached")
        self._producers[producer.producer_id] = producer
        if not self.db.has_table(producer.table):
            self.db.execute(table_ddl(producer.table))
            self.db.table(producer.table).create_index("producerId")
            self.db.table(producer.table).create_index("hostName")
        if registry is not None:
            registry.register(
                producer.producer_id,
                producer.table,
                self.name,
                producer.predicate,
                now=now,
                lease=lease,
            )

    def detach(self, producer_id: str, registry: Registry | None = None) -> bool:
        existed = self._producers.pop(producer_id, None) is not None
        if registry is not None:
            registry.unregister(producer_id)
        return existed

    @property
    def producers(self) -> list[Producer]:
        return list(self._producers.values())

    # -- publication -------------------------------------------------------
    def publish(self, producer_id: str, now: float) -> dict[str, _t.Any]:
        """Have one attached producer emit a fresh tuple into its buffer."""
        producer = self._producers.get(producer_id)
        if producer is None:
            raise RegistryError(f"no attached producer {producer_id!r}")
        row = producer.measure(now)
        table = self.db.table(producer.table)
        table.insert([row.get(c) for c in producer.columns()])
        self.tuples_buffered += 1
        self._row_count[producer.table] = self._row_count.get(producer.table, 0) + 1
        self._trim(producer.table)
        return row

    def publish_all(self, now: float) -> int:
        """One measurement round across every attached producer."""
        for producer_id in list(self._producers):
            self.publish(producer_id, now)
        return len(self._producers)

    def _trim(self, table_name: str) -> None:
        table = self.db.table(table_name)
        if len(table) > self.history_rows:
            # Drop the oldest rows beyond the buffer bound.
            excess = len(table) - self.history_rows
            oldest = [rowid for rowid, _row in list(table.rows())[:excess]]
            table.delete_rows(oldest)

    # -- queries --------------------------------------------------------------
    def answer(self, sql: str | SelectStmt) -> ServletAnswer:
        """Answer one SQL SELECT over the buffered tuples."""
        stmt = parse_sql_cached(sql) if isinstance(sql, str) else sql
        if not isinstance(stmt, SelectStmt):
            raise SqlError("ProducerServlet answers SELECT statements only")
        if stmt.table not in GLOBAL_SCHEMA:
            raise RegistryError(f"table {stmt.table!r} is not in the global schema")
        self.queries_answered += 1
        if not self.db.has_table(stmt.table):
            # No local producer for this table: empty relation.
            self.db.execute(table_ddl(stmt.table))
        result = self.db.execute(stmt)
        assert isinstance(result, ResultSet)
        touched = sum(1 for p in self._producers.values() if p.table == stmt.table)
        return ServletAnswer(result=result, producers_touched=touched)
