"""R-GMA's push model: continuous queries over producer streams.

"Its main use is the notification of events — that is, a user can
subscribe to a flow of data with specific properties directly from a
data source" (paper §2.2).  A :class:`StreamBroker` holds continuous
SELECTs; each published tuple is matched against the subscriptions of
its table and delivered to the matching consumers' callbacks.

This is the push half of the pull/push comparison in the paper's §3.7
(MDS is pull-only; R-GMA supports both).
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass, field

from repro.errors import SqlError
from repro.relational import SelectStmt, parse_sql
from repro.relational.executor import eval_predicate
from repro.relational.table import Table
from repro.relational.types import Column, ColumnType
from repro.rgma.schema import GLOBAL_SCHEMA

__all__ = ["ContinuousQuery", "StreamBroker"]

Callback = _t.Callable[[dict[str, _t.Any]], None]


@dataclass
class ContinuousQuery:
    """One standing subscription."""

    subscription_id: str
    stmt: SelectStmt
    callback: Callback
    delivered: int = 0


@dataclass
class StreamBroker:
    """Dispatches published tuples to matching continuous queries."""

    _subs: dict[str, ContinuousQuery] = field(default_factory=dict)
    _by_table: dict[str, list[str]] = field(default_factory=dict)
    published: int = 0
    deliveries: int = 0

    def subscribe(self, subscription_id: str, sql: str, callback: Callback) -> ContinuousQuery:
        """Register a continuous SELECT; returns the subscription handle."""
        stmt = parse_sql(sql)
        if not isinstance(stmt, SelectStmt):
            raise SqlError("continuous queries must be SELECT statements")
        if stmt.table not in GLOBAL_SCHEMA:
            raise SqlError(f"table {stmt.table!r} is not in the global schema")
        sub = ContinuousQuery(subscription_id, stmt, callback)
        self._subs[subscription_id] = sub
        self._by_table.setdefault(stmt.table.lower(), []).append(subscription_id)
        return sub

    def unsubscribe(self, subscription_id: str) -> bool:
        sub = self._subs.pop(subscription_id, None)
        if sub is None:
            return False
        bucket = self._by_table.get(sub.stmt.table.lower(), [])
        if subscription_id in bucket:
            bucket.remove(subscription_id)
        return True

    @property
    def subscription_count(self) -> int:
        return len(self._subs)

    def publish(self, table_name: str, row: dict[str, _t.Any]) -> int:
        """Push one tuple; returns the number of deliveries made."""
        self.published += 1
        schema = GLOBAL_SCHEMA.get(table_name)
        if schema is None:
            raise SqlError(f"table {table_name!r} is not in the global schema")
        # Build a single-row scratch table to reuse the WHERE evaluator.
        scratch = Table(
            table_name, [Column(c, ColumnType.normalize(t)) for c, t in schema]
        )
        values = tuple(row.get(c) for c, _t_ in schema)
        delivered = 0
        for sub_id in self._by_table.get(table_name.lower(), []):
            sub = self._subs[sub_id]
            if sub.stmt.where is None or eval_predicate(sub.stmt.where, scratch, values) is True:
                projected = self._project(sub.stmt, schema, values)
                sub.callback(projected)
                sub.delivered += 1
                delivered += 1
        self.deliveries += delivered
        return delivered

    @staticmethod
    def _project(
        stmt: SelectStmt,
        schema: tuple[tuple[str, str], ...],
        values: tuple,
    ) -> dict[str, _t.Any]:
        names = [c for c, _t_ in schema]
        lookup = {n.lower(): v for n, v in zip(names, values)}
        if stmt.columns == ("*",):
            return dict(zip(names, values))
        return {c: lookup[c.lower()] for c in stmt.columns}
