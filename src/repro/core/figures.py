"""Registry of Figures 5-20 and the ``repro-figures`` CLI.

Every figure of the paper's evaluation maps to one experiment set and
one of the four metrics.  :func:`reproduce_figure` runs the sweeps and
returns a populated :class:`~repro.core.results.Figure`;
``python -m repro.core.figures 5`` (or the ``repro-figures`` script)
prints the table the paper plotted.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import typing as _t
from dataclasses import dataclass
from time import perf_counter

from repro.core import parallel
from repro.core.cliversion import add_version_argument
from repro.core.experiments import exp1, exp2, exp3, exp4
from repro.core.results import Figure, Series
from repro.core.runner import PointResult

__all__ = ["FIGURES", "FigureSpec", "quick_x_values", "reproduce_figure", "main"]

# Metric extracted per figure (the paper cycles the same four).
_METRICS = {
    "throughput": ("Throughput (queries/sec)", lambda r: r.throughput),
    "response_time": ("Response Time (sec)", lambda r: r.response_time),
    "load1": ("Load1", lambda r: r.load1),
    "cpu_load": ("CPU Load (%)", lambda r: r.cpu_load),
}


@dataclass(frozen=True)
class FigureSpec:
    """What one paper figure plots."""

    number: int
    title: str
    experiment: _t.Any  # exp1..exp4 module
    metric: str
    xlabel: str


FIGURES: dict[int, FigureSpec] = {}


def _register(number: int, title: str, experiment: _t.Any, metric: str, xlabel: str) -> None:
    FIGURES[number] = FigureSpec(number, title, experiment, metric, xlabel)


for _n, _metric in zip((5, 6, 7, 8), ("throughput", "response_time", "load1", "cpu_load")):
    _register(
        _n,
        f"Information Server {_METRICS[_metric][0]} vs. No. of Concurrent Users",
        exp1,
        _metric,
        "No. of Users",
    )
for _n, _metric in zip((9, 10, 11, 12), ("throughput", "response_time", "load1", "cpu_load")):
    _register(
        _n,
        f"Directory Server {_METRICS[_metric][0]} vs. No. of Concurrent Users",
        exp2,
        _metric,
        "No. of Users",
    )
for _n, _metric in zip((13, 14, 15, 16), ("throughput", "response_time", "load1", "cpu_load")):
    _register(
        _n,
        f"Information Server {_METRICS[_metric][0]} vs. No. of Information Collectors",
        exp3,
        _metric,
        "No. of Information Collectors",
    )
for _n, _metric in zip((17, 18, 19, 20), ("throughput", "response_time", "load1", "cpu_load")):
    _register(
        _n,
        f"Aggregate Information Server {_METRICS[_metric][0]} vs. No. of Information Servers",
        exp4,
        _metric,
        "No. of Information Servers",
    )


# CI half-widths exist for the two client-side metrics the adaptive
# replication controller tracks; host-side load metrics report means only.
_CI_EXTRACT = {
    "throughput": lambda r: r.ci.throughput_ci,
    "response_time": lambda r: r.ci.response_time_ci,
}


def points_to_series(label: str, points: _t.Sequence[PointResult], metric: str) -> Series:
    """Convert sweep results into one figure series (crashes become DNF).

    Adaptive-mode points (``point.ci`` set) annotate the series with
    their CI half-widths; exact-mode series carry none, keeping the
    committed tables byte-identical.
    """
    extract = _METRICS[metric][1]
    ci_extract = _CI_EXTRACT.get(metric)
    series = Series(label=label)
    for point in points:
        if point.crashed:
            series.mark_dnf(point.x)
        else:
            hw = ci_extract(point) if ci_extract is not None and point.ci else None
            series.add(point.x, extract(point), ci=hw)
    return series


def reproduce_figure(
    number: int,
    seed: int = 1,
    *,
    systems: _t.Sequence[str] | None = None,
    x_values: _t.Sequence[int] | None = None,
    sweep_cache: dict | None = None,
    **kwargs: _t.Any,
) -> Figure:
    """Run the sweeps behind one paper figure and return it populated.

    ``sweep_cache`` lets callers share sweep results across the four
    figures of an experiment set (they plot the same runs four ways —
    pass the same dict to each call).
    """
    spec = FIGURES[number]
    exp = spec.experiment
    figure = Figure(
        number=number,
        title=spec.title,
        xlabel=spec.xlabel,
        ylabel=_METRICS[spec.metric][0],
    )
    for system in systems or exp.SYSTEMS:
        cache_key = (exp.__name__, system, seed)
        if sweep_cache is not None and cache_key in sweep_cache:
            points = sweep_cache[cache_key]
        else:
            if x_values is not None:
                points = exp.sweep(system, x_values=x_values, seed=seed, **kwargs)
            else:
                points = exp.sweep(system, seed=seed, **kwargs)
            if sweep_cache is not None:
                sweep_cache[cache_key] = points
        figure.series.append(points_to_series(system, points, spec.metric))
    return figure


def reproduce_experiment_set(
    numbers: _t.Sequence[int], seed: int = 1, **kwargs: _t.Any
) -> list[Figure]:
    """All figures of one experiment set, sharing the underlying sweeps."""
    cache: dict = {}
    return [reproduce_figure(n, seed, sweep_cache=cache, **kwargs) for n in numbers]


def quick_x_values(x_values: _t.Sequence[int]) -> tuple[int, ...]:
    """--quick downsampling: every len//3-th x value plus always the last.

    The endpoint is where the interesting saturation behaviour lives
    (600 users, 90 collectors), so it must survive the coarsening.
    """
    xs = tuple(x_values[:: max(1, len(x_values) // 3)])
    if xs[-1] != x_values[-1]:
        xs += (x_values[-1],)
    return xs


def main(argv: _t.Sequence[str] | None = None) -> int:
    """CLI: regenerate paper figures as text tables (and optional CSV)."""
    parser = argparse.ArgumentParser(
        prog="repro-figures",
        description="Regenerate figures 5-20 of Zhang/Freschl/Schopf (HPDC 2003).",
    )
    add_version_argument(parser)
    parser.add_argument(
        "figures",
        nargs="*",
        type=int,
        default=[],
        help="figure numbers (5-20); default: all",
    )
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--csv", action="store_true", help="emit CSV instead of tables")
    parser.add_argument("--chart", action="store_true", help="also draw ASCII charts")
    parser.add_argument(
        "--quick", action="store_true", help="coarse sweeps (4 x-values) for a fast look"
    )
    parser.add_argument(
        "--adaptive",
        action="store_true",
        help="adaptive measurement: detect steady state per run, replicate "
        "points until CIs converge, annotate tables with ± half-widths",
    )
    parser.add_argument(
        "--fidelity",
        choices=("exact", "cohort", "meanfield"),
        default=None,
        help="simulation tier (docs/FIDELITY.md); the default exact tier "
        "reproduces the committed tables byte-identically, the fast tiers "
        "approximate figures 5-16 (figures 17-20 need the exact DES)",
    )
    parser.add_argument(
        "-j",
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="run sweep points on N worker processes (default: $REPRO_JOBS or serial); "
        "tables are byte-identical to the serial output",
    )
    parser.add_argument(
        "--cache-dir",
        type=pathlib.Path,
        default=None,
        metavar="DIR",
        help="point-cache directory (default with --cache: results/pointcache); "
        "repeated runs skip already-computed points",
    )
    parser.add_argument(
        "--cache",
        action="store_true",
        help="enable the point cache at the default location (results/pointcache)",
    )
    parser.add_argument(
        "--stats-json",
        type=pathlib.Path,
        default=None,
        metavar="PATH",
        help="write sweep-execution stats (jobs, cache hits, wall speedup) as JSON",
    )
    args = parser.parse_args(argv)
    wanted = args.figures or sorted(FIGURES)
    unknown = [n for n in wanted if n not in FIGURES]
    if unknown:
        parser.error(f"unknown figure numbers: {unknown} (valid: 5-20)")
    if args.fidelity not in (None, "exact"):
        if args.adaptive:
            parser.error("--adaptive needs the exact tier (drop --fidelity)")
        exp4_wanted = [n for n in wanted if FIGURES[n].experiment is exp4]
        if exp4_wanted:
            if args.figures:
                parser.error(
                    f"figures {exp4_wanted} model aggregation-interval effects "
                    "the fast tiers cannot capture; run them on the exact tier"
                )
            # Default "all figures" run: quietly keep 17-20 on what works.
            wanted = [n for n in wanted if n not in exp4_wanted]
    cache_dir = args.cache_dir
    if cache_dir is None and args.cache:
        cache_dir = pathlib.Path("results/pointcache")
    parallel.configure(jobs=args.jobs, cache_dir=cache_dir)

    before = parallel.counters_snapshot()
    start = perf_counter()
    # Group by experiment set so sweeps are shared.
    cache: dict = {}
    for number in wanted:
        kwargs: dict = {}
        if args.adaptive:
            from repro.core.stats import AdaptiveConfig

            kwargs["adaptive"] = AdaptiveConfig()
        # "exact" is the default; omitting it keeps the point-cache keys
        # (and therefore warm caches) identical to pre-fidelity runs.
        if args.fidelity not in (None, "exact"):
            kwargs["fidelity"] = args.fidelity
        if args.quick:
            exp = FIGURES[number].experiment
            if exp is exp4:
                kwargs["x_values"] = None  # per-system defaults, already short
            else:
                kwargs["x_values"] = quick_x_values(exp.X_VALUES)
        figure = reproduce_figure(number, args.seed, sweep_cache=cache, **kwargs)
        if args.csv:
            sys.stdout.write(figure.to_csv())
        else:
            print(figure.to_table())
            if args.chart:
                print(figure.to_ascii_chart())
            print()

    # Execution stats go to stderr/JSON so stdout stays byte-identical
    # across serial, parallel and cached runs.
    wall = perf_counter() - start
    after = parallel.counters_snapshot()
    stats = {
        "jobs": parallel.default_jobs(),
        "points": int(after["points"] - before["points"]),
        "executed": int(after["executed"] - before["executed"]),
        "cache_hits": int(after["cache_hits"] - before["cache_hits"]),
        "busy_seconds": round(after["busy_seconds"] - before["busy_seconds"], 6),
        "wall_seconds": round(wall, 6),
        "wall_speedup": round((after["busy_seconds"] - before["busy_seconds"]) / wall, 4)
        if wall > 0
        else 0.0,
    }
    print(
        f"[sweep] jobs={stats['jobs']} points={stats['points']} "
        f"executed={stats['executed']} cache_hits={stats['cache_hits']} "
        f"wall={stats['wall_seconds']:.1f}s speedup={stats['wall_speedup']:.2f}x",
        file=sys.stderr,
    )
    if args.stats_json is not None:
        args.stats_json.parent.mkdir(parents=True, exist_ok=True)
        args.stats_json.write_text(json.dumps(stats, indent=2) + "\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
