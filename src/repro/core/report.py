"""The reproduction scorecard: every headline claim, checked live.

Encodes the paper's quantitative claims (one per row of EXPERIMENTS.md)
as executable checks over freshly-run sweeps, and prints a PASS/FAIL
table.  This is the artifact to run after touching any cost model::

    python -m repro.core.report            # ~2-4 minutes
    python -m repro.core.report --fast     # coarse windows, ~1 minute

Sweeps are shared across claims, so the whole scorecard costs about as
much as one full figure regeneration per experiment set.
"""

from __future__ import annotations

import argparse
import typing as _t
from dataclasses import dataclass

from repro.core.cliversion import add_version_argument
from repro.core.experiments import exp1, exp2, exp3, exp4
from repro.core.experiments.common import adaptive_point
from repro.core.runner import PointResult
from repro.core.stats import AdaptiveConfig

__all__ = ["Claim", "CLAIMS", "ClaimOutcome", "run_report", "main"]


class _Context:
    """Lazily-run, shared experiment points.

    With ``adaptive`` set, every point is estimated by replication
    until its CI converges (:mod:`repro.core.stats`) instead of a
    single fixed-window run; claims then check replication means.
    """

    def __init__(
        self,
        seed: int,
        warmup: float | None,
        window: float | None,
        adaptive: AdaptiveConfig | None = None,
    ) -> None:
        self.seed = seed
        self.warmup = warmup
        self.window = window
        self.adaptive = adaptive
        self._points: dict[tuple, PointResult] = {}

    def point(self, exp: _t.Any, system: str, x: int) -> PointResult:
        key = (exp.__name__, system, x)
        if key not in self._points:
            if self.adaptive is not None:
                self._points[key] = adaptive_point(
                    exp.run_point,
                    system,
                    x,
                    self.seed,
                    config=self.adaptive,
                    warmup=self.warmup,
                    window=self.window,
                )
            else:
                self._points[key] = exp.run_point(
                    system, x, self.seed, warmup=self.warmup, window=self.window
                )
        return self._points[key]

    def measured_points(self) -> dict[tuple, PointResult]:
        """Every point the claims touched (for the adaptive appendix)."""
        return dict(self._points)


CheckFn = _t.Callable[[_Context], tuple[bool, str]]


@dataclass(frozen=True)
class Claim:
    """One published claim and its executable check."""

    id: str
    figure: int
    text: str  # the paper's claim, paraphrased
    check: CheckFn


@dataclass(frozen=True)
class ClaimOutcome:
    claim: Claim
    passed: bool
    detail: str


def _claim(id: str, figure: int, text: str) -> _t.Callable[[CheckFn], CheckFn]:
    def register(fn: CheckFn) -> CheckFn:
        CLAIMS.append(Claim(id=id, figure=figure, text=text, check=fn))
        return fn

    return register


CLAIMS: list[Claim] = []


@_claim("gris-cache-linear", 5, "cached GRIS throughput near-linear with users")
def _c1(ctx: _Context) -> tuple[bool, str]:
    low = ctx.point(exp1, "mds-gris-cache", 100).throughput
    high = ctx.point(exp1, "mds-gris-cache", 600).throughput
    return high > 4 * low and high > 60, f"X(100)={low:.1f}, X(600)={high:.1f} q/s"


@_claim("gris-nocache-cap", 5, "uncached GRIS never exceeds 2 queries/second")
def _c2(ctx: _Context) -> tuple[bool, str]:
    x = ctx.point(exp1, "mds-gris-nocache", 300).throughput
    return 0.5 < x < 2.0, f"X(300)={x:.2f} q/s"


@_claim("caching-decisive", 5, "caching buys the GRIS >20x throughput at scale")
def _c3(ctx: _Context) -> tuple[bool, str]:
    cached = ctx.point(exp1, "mds-gris-cache", 600).throughput
    uncached = ctx.point(exp1, "mds-gris-nocache", 600).throughput
    ratio = cached / max(uncached, 1e-9)
    return ratio > 20, f"{ratio:.0f}x"


@_claim("gris-cache-plateau", 6, "cached GRIS responses ~4 s and stable for >=50 users")
def _c4(ctx: _Context) -> tuple[bool, str]:
    r200 = ctx.point(exp1, "mds-gris-cache", 200).response_time
    r600 = ctx.point(exp1, "mds-gris-cache", 600).response_time
    ok = 2.5 < r200 < 5.5 and 2.5 < r600 < 5.5 and abs(r600 - r200) < 1.5
    return ok, f"R(200)={r200:.2f}s, R(600)={r600:.2f}s"


@_claim("rgma-response-linear", 6, "ProducerServlet response grows with users")
def _c5(ctx: _Context) -> tuple[bool, str]:
    r100 = ctx.point(exp1, "rgma-ps-lucky", 100).response_time
    r600 = ctx.point(exp1, "rgma-ps-lucky", 600).response_time
    return r600 > 1.8 * r100, f"R(100)={r100:.1f}s, R(600)={r600:.1f}s"


@_claim("agent-mid-pack", 5, "Agent saturates between the GRIS variants (~40-60 q/s)")
def _c6(ctx: _Context) -> tuple[bool, str]:
    x = ctx.point(exp1, "hawkeye-agent", 300).throughput
    return 25 < x < 70, f"X(300)={x:.1f} q/s"


@_claim("gris-cache-cpu", 8, "cached GRIS host reaches ~60% CPU at 600 users")
def _c7(ctx: _Context) -> tuple[bool, str]:
    cpu = ctx.point(exp1, "mds-gris-cache", 600).cpu_load
    return 40 < cpu < 80, f"cpu={cpu:.0f}%"


@_claim("giis-scales", 9, "GIIS saturates near 100 q/s with good scalability")
def _c8(ctx: _Context) -> tuple[bool, str]:
    x = ctx.point(exp2, "mds-giis", 600).throughput
    return x > 80, f"X(600)={x:.0f} q/s"


@_claim("manager-scales", 9, "Manager scales comparably to the GIIS")
def _c9(ctx: _Context) -> tuple[bool, str]:
    x = ctx.point(exp2, "hawkeye-manager", 600).throughput
    return x > 80, f"X(600)={x:.0f} q/s"


@_claim("registry-slower", 9, "Registry throughput well below GIIS/Manager")
def _c10(ctx: _Context) -> tuple[bool, str]:
    reg = ctx.point(exp2, "rgma-registry-lucky", 600).throughput
    giis = ctx.point(exp2, "mds-giis", 600).throughput
    return reg < giis / 3, f"registry={reg:.0f}, giis={giis:.0f} q/s"


@_claim("giis-fast-responses", 10, "GIIS responses stay <2 s even at 600 users")
def _c11(ctx: _Context) -> tuple[bool, str]:
    r = ctx.point(exp2, "mds-giis", 600).response_time
    return r < 2.0, f"R(600)={r:.2f}s"


@_claim("registry-hot", 11, "Registry load1 far above GIIS/Manager")
def _c12(ctx: _Context) -> tuple[bool, str]:
    reg = ctx.point(exp2, "rgma-registry-lucky", 600).load1
    giis = ctx.point(exp2, "mds-giis", 600).load1
    return reg > 2 * giis and reg > 2.0, f"registry={reg:.1f}, giis={giis:.1f}"


@_claim("giis-cpu-2x-manager", 12, "GIIS CPU load nearly twice the Manager's")
def _c13(ctx: _Context) -> tuple[bool, str]:
    giis = ctx.point(exp2, "mds-giis", 600).cpu_load
    manager = ctx.point(exp2, "hawkeye-manager", 600).cpu_load
    return giis > 1.7 * manager, f"giis={giis:.0f}%, manager={manager:.0f}%"


@_claim("gris-cache-90-collectors", 13, "cached GRIS still ~7 q/s, <1 s at 90 collectors")
def _c14(ctx: _Context) -> tuple[bool, str]:
    p = ctx.point(exp3, "mds-gris-cache", 90)
    return p.throughput > 5 and p.response_time < 1.0, (
        f"X={p.throughput:.1f} q/s, R={p.response_time:.2f}s"
    )


@_claim("collectors-collapse", 13, "Agent/ProducerServlet/uncached GRIS <1 q/s at 90 collectors")
def _c15(ctx: _Context) -> tuple[bool, str]:
    xs = {
        s: ctx.point(exp3, s, 90).throughput
        for s in ("mds-gris-nocache", "hawkeye-agent", "rgma-ps")
    }
    return all(x < 1.0 for x in xs.values()), ", ".join(
        f"{s}={x:.2f}" for s, x in xs.items()
    )


@_claim("collectors-slow", 14, "those servers also exceed ~10 s responses at 90 collectors")
def _c16(ctx: _Context) -> tuple[bool, str]:
    rs = {
        s: ctx.point(exp3, s, 90).response_time
        for s in ("mds-gris-nocache", "hawkeye-agent", "rgma-ps")
    }
    return all(r > 8.0 for r in rs.values()), ", ".join(f"{s}={r:.1f}s" for s, r in rs.items())


@_claim("giis-all-degrades", 17, "GIIS query-all below 1 q/s by 200 registered GRIS")
def _c17(ctx: _Context) -> tuple[bool, str]:
    x = ctx.point(exp4, "mds-giis-all", 200).throughput
    return 0 < x < 1.0, f"X(200)={x:.2f} q/s"


@_claim("giis-crash", 17, "GIIS crashes on query-all past 200 registered GRIS")
def _c18(ctx: _Context) -> tuple[bool, str]:
    p = ctx.point(exp4, "mds-giis-all", 300)
    return p.crashed, f"crashed={p.crashed} ({p.crash_reason or 'no reason'})"


@_claim("querypart-survives", 17, "query-part reaches 500 registered GRIS without crashing")
def _c19(ctx: _Context) -> tuple[bool, str]:
    p = ctx.point(exp4, "mds-giis-part", 500)
    return (not p.crashed) and p.throughput < 1.0, f"X(500)={p.throughput:.2f} q/s"


@_claim("manager-agg-degrades", 17, "Manager below 1 q/s with 1000 advertising machines")
def _c20(ctx: _Context) -> tuple[bool, str]:
    x = ctx.point(exp4, "hawkeye-manager", 1000).throughput
    return 0 < x < 1.0, f"X(1000)={x:.2f} q/s"


@_claim("no-aggregation-past-100", 17, "no aggregate server is useful beyond ~100 registrants")
def _c21(ctx: _Context) -> tuple[bool, str]:
    xs = {
        "giis-all@200": ctx.point(exp4, "mds-giis-all", 200).throughput,
        "manager@400": ctx.point(exp4, "hawkeye-manager", 400).throughput,
    }
    return all(x < 2.5 for x in xs.values()), ", ".join(f"{k}={v:.2f}" for k, v in xs.items())


def run_report(
    seed: int = 1,
    warmup: float | None = None,
    window: float | None = None,
    adaptive: AdaptiveConfig | None = None,
    context_out: list | None = None,
) -> list[ClaimOutcome]:
    """Evaluate every claim; returns the outcomes in registration order.

    ``adaptive`` switches point estimation to replicated steady-state
    measurements; ``context_out``, when a list, receives the shared
    :class:`_Context` so callers can render the measured points.
    """
    ctx = _Context(seed, warmup, window, adaptive)
    if context_out is not None:
        context_out.append(ctx)
    outcomes = []
    for claim in CLAIMS:
        try:
            passed, detail = claim.check(ctx)
        except Exception as exc:  # a crash in a check is a failure with context
            passed, detail = False, f"check raised {type(exc).__name__}: {exc}"
        outcomes.append(ClaimOutcome(claim=claim, passed=passed, detail=detail))
    return outcomes


def render_report(outcomes: _t.Sequence[ClaimOutcome]) -> str:
    """The PASS/FAIL table."""
    lines = ["Reproduction scorecard — Zhang/Freschl/Schopf (HPDC 2003)"]
    lines.append("=" * len(lines[0]))
    passed = sum(1 for o in outcomes if o.passed)
    for o in outcomes:
        mark = "PASS" if o.passed else "FAIL"
        lines.append(
            f"[{mark}] fig {o.claim.figure:>2d}  {o.claim.id:<26s} {o.claim.text}"
        )
        lines.append(f"        measured: {o.detail}")
    lines.append("-" * len(lines[1]))
    lines.append(f"{passed}/{len(outcomes)} claims reproduced")
    return "\n".join(lines)


def render_adaptive_appendix(points: dict[tuple, PointResult]) -> str:
    """Mean ± CI table of every adaptively-measured point."""
    lines = ["", "Adaptive measurements (mean ± 95% CI half-width over replications)"]
    lines.append("-" * len(lines[-1]))
    for (exp_name, system, x), p in sorted(points.items()):
        ci = p.ci
        if ci is None:
            continue
        mark = "" if ci.converged else "  [CI not converged at replication cap]"
        lines.append(
            f"  {exp_name.rsplit('.', 1)[-1]}:{system}@{x}: "
            f"X={p.throughput:.2f}±{ci.throughput_ci:.2f} q/s, "
            f"R={p.response_time:.2f}±{ci.response_time_ci:.2f} s "
            f"(n={ci.replications}){mark}"
        )
    return "\n".join(lines)


def main(argv: _t.Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro-report", description=__doc__)
    add_version_argument(parser)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--fast", action="store_true", help="coarse 20 s windows")
    parser.add_argument(
        "--adaptive",
        action="store_true",
        help="replicated steady-state measurement: detect each run's warm-up "
        "from its own metric stream and replicate until CIs converge",
    )
    args = parser.parse_args(argv)
    warmup, window = (5.0, 20.0) if args.fast else (None, None)
    contexts: list = []
    outcomes = run_report(
        seed=args.seed,
        warmup=warmup,
        window=window,
        adaptive=AdaptiveConfig() if args.adaptive else None,
        context_out=contexts,
    )
    print(render_report(outcomes))
    if args.adaptive and contexts:
        print(render_adaptive_appendix(contexts[0].measured_points()))
    return 0 if all(o.passed for o in outcomes) else 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
