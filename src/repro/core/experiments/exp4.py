"""Experiment Set 4 — aggregate-information-server scalability (§3.6).

Reproduces Figures 17-20: 10 concurrent users query the aggregate
servers while the number of aggregated information servers grows.

Series:

* ``mds-giis-all``     — GIIS queried for *all* data of every registered
  GRIS; the paper could drive at most 200 GRIS this way before the GIIS
  crashed, which the sweep reproduces as DNF points;
* ``mds-giis-part``    — GIIS queried for a portion of the data; worked
  to 500 registered GRIS;
* ``hawkeye-manager``  — Manager receiving ``hawkeye_advertise`` Startd
  ads from up to 1000 simulated machines at 30-second intervals while
  users issue worst-case (match-nothing) constraint queries.

R-GMA has no aggregate information server (Table 1), so — exactly like
the paper — it has no series here; asking the topology plane for one
raises :class:`~repro.core.topology.plan.PlanError`.

Each scenario is a :func:`repro.core.topology.catalog.exp4_plan`
compiled onto a fresh run — the GRIS bank and the synthetic advertiser
pool are replicated node specs, not hand loops.
"""

from __future__ import annotations

import typing as _t

from repro.core.experiments.common import sweep_points, uc_clients
from repro.core.params import StudyParams
from repro.core.runner import PointResult, drive, new_run
from repro.core.stats import AdaptiveConfig
from repro.core.topology import compile_plan
from repro.core.topology.catalog import exp4_plan

__all__ = ["SYSTEMS", "X_VALUES", "USERS", "run_point", "sweep"]

SYSTEMS = ("mds-giis-all", "mds-giis-part", "hawkeye-manager")

# Information-server counts per series (the paper's observed limits).
X_VALUES: dict[str, tuple[int, ...]] = {
    "mds-giis-all": (10, 50, 100, 200, 300),  # 300 crashes, as observed
    "mds-giis-part": (10, 50, 100, 200, 300, 400, 500),
    "hawkeye-manager": (10, 100, 200, 400, 600, 800, 1000),
}

USERS = 10


def run_point(
    system: str,
    servers: int,
    seed: int = 1,
    *,
    users: int = USERS,
    params: StudyParams | None = None,
    warmup: float | None = None,
    window: float | None = None,
    adaptive: AdaptiveConfig | bool | None = None,
) -> PointResult:
    """Measure one (system, servers) coordinate of Figures 17-20."""
    if system not in SYSTEMS:
        raise ValueError(f"unknown exp4 system {system!r}; pick from {SYSTEMS}")

    if system.startswith("mds-giis"):
        monitored: tuple[str, ...] = ("lucky0",)
        server_node = "lucky0"
        payload_fn = lambda uid: {"filter": "(objectclass=*)"}  # noqa: E731
    else:
        monitored = ("lucky3",)
        server_node = "lucky3"
        payload_fn = lambda uid: {"constraint": "TARGET.CpuLoad > 50"}  # noqa: E731
    run = new_run(seed, params, monitored=monitored)
    p = run.params
    dep = compile_plan(exp4_plan(system, servers, seed), run)
    request_size = p.giis.request_size if system.startswith("mds") else p.manager.request_size

    assert dep.entry is not None
    return drive(
        run,
        system=system,
        x=servers,
        service=dep.entry,
        clients=uc_clients(run, users),
        server_host=run.testbed.lucky[server_node],
        payload_fn=payload_fn,
        request_size=request_size,
        warmup=warmup,
        window=window,
        adaptive=adaptive,
    )


def sweep(
    system: str,
    x_values: _t.Sequence[int] | None = None,
    seed: int = 1,
    **kwargs: _t.Any,
) -> list[PointResult]:
    """Full series for one figure legend entry (crashes become DNF points)."""
    values = tuple(x_values) if x_values is not None else X_VALUES[system]
    return sweep_points(run_point, [(system, servers, seed) for servers in values], **kwargs)
