"""Experiment Set 4 — aggregate-information-server scalability (§3.6).

Reproduces Figures 17-20: 10 concurrent users query the aggregate
servers while the number of aggregated information servers grows.

Series:

* ``mds-giis-all``     — GIIS queried for *all* data of every registered
  GRIS; the paper could drive at most 200 GRIS this way before the GIIS
  crashed, which the sweep reproduces as DNF points;
* ``mds-giis-part``    — GIIS queried for a portion of the data; worked
  to 500 registered GRIS;
* ``hawkeye-manager``  — Manager receiving ``hawkeye_advertise`` Startd
  ads from up to 1000 simulated machines at 30-second intervals while
  users issue worst-case (match-nothing) constraint queries.

R-GMA has no aggregate information server (Table 1), so — exactly like
the paper — it has no series here.
"""

from __future__ import annotations

import typing as _t

from repro.core.experiments.common import uc_clients
from repro.core.params import StudyParams
from repro.core.runner import PointResult, drive, new_run
from repro.core.services import (
    make_giis_aggregate_service,
    make_manager_aggregate_service,
    make_manager_ingest_service,
)
from repro.core.testbed import LUCKY_NAMES
from repro.hawkeye.advertise import synthesize_startd_ad
from repro.hawkeye.manager import Manager
from repro.mds.giis import GIIS
from repro.mds.gris import GRIS
from repro.mds.providers import replicated_providers
from repro.sim.rpc import call

__all__ = ["SYSTEMS", "X_VALUES", "USERS", "run_point", "sweep"]

SYSTEMS = ("mds-giis-all", "mds-giis-part", "hawkeye-manager")

# Information-server counts per series (the paper's observed limits).
X_VALUES: dict[str, tuple[int, ...]] = {
    "mds-giis-all": (10, 50, 100, 200, 300),  # 300 crashes, as observed
    "mds-giis-part": (10, 50, 100, 200, 300, 400, 500),
    "hawkeye-manager": (10, 100, 200, 400, 600, 800, 1000),
}

USERS = 10


def _build_giis(registrants: int, seed: int) -> GIIS:
    """A GIIS with ``registrants`` simulated GRIS registered and primed.

    The paper simulated extra GRIS "by running multiple instances at
    each Lucky node except lucky0 where the GIIS ran" — the identities
    below mirror that placement.
    """
    giis = GIIS("lucky0", cachettl=float("inf"))
    nodes = [n for n in LUCKY_NAMES if n != "lucky0"]
    for i in range(registrants):
        node = nodes[i % len(nodes)]
        gris = GRIS(
            f"{node}-inst{i}.mcs.anl.gov",
            replicated_providers(10),
            cachettl=float("inf"),
            seed=seed * 7919 + i,
        )

        def puller(now: float, gris: GRIS = gris) -> tuple[list, float]:
            result = gris.search(now=now)
            return result.entries, result.exec_cost

        giis.register(f"gris{i}", puller, now=0.0, ttl=1e12)
    giis.query(now=0.0)  # prime every registrant's cache before measuring
    return giis


def run_point(
    system: str,
    servers: int,
    seed: int = 1,
    *,
    users: int = USERS,
    params: StudyParams | None = None,
    warmup: float | None = None,
    window: float | None = None,
) -> PointResult:
    """Measure one (system, servers) coordinate of Figures 17-20."""
    if system not in SYSTEMS:
        raise ValueError(f"unknown exp4 system {system!r}; pick from {SYSTEMS}")

    monitored = ("lucky0",) if system.startswith("mds") else ("lucky3",)
    run = new_run(seed, params, monitored=monitored)
    p = run.params
    clients = uc_clients(run, users)

    if system.startswith("mds-giis"):
        query_part = system.endswith("part")
        giis = _build_giis(servers, seed)
        server_host = run.testbed.lucky["lucky0"]
        service = make_giis_aggregate_service(
            run.sim, run.net, server_host, giis, p.giis, query_part=query_part
        )
        run.services["giis"] = service
        return drive(
            run,
            system=system,
            x=servers,
            service=service,
            clients=clients,
            server_host=server_host,
            payload_fn=lambda uid: {"filter": "(objectclass=*)"},
            request_size=p.giis.request_size,
            warmup=warmup,
            window=window,
        )

    # hawkeye-manager ----------------------------------------------------------
    manager = Manager("lucky3")
    server_host = run.testbed.lucky["lucky3"]
    service, collector_mutex = make_manager_aggregate_service(
        run.sim, run.net, server_host, manager, p.manager
    )
    ingest = make_manager_ingest_service(
        run.sim, run.net, server_host, manager, p.manager, collector_mutex
    )
    run.services["manager"] = service
    run.services["ingest"] = ingest

    # Simulated machines advertising every 30 s (hawkeye_advertise).
    adv_hosts = [run.testbed.lucky[n] for n in LUCKY_NAMES if n != "lucky3"]
    rng = run.rng.stream("advertisers", str(servers))

    def advertiser(machine: str, host, offset: float) -> _t.Generator:
        local_rng = run.rng.stream("ad", machine)
        ad = synthesize_startd_ad(machine, local_rng, now=0.0)
        manager.receive_ad(ad, now=0.0)  # pool is warm at t=0
        yield run.sim.timeout(offset)
        while True:
            ad = synthesize_startd_ad(machine, local_rng, now=run.sim.now)
            try:
                yield from call(
                    run.sim,
                    run.net,
                    host,
                    ingest,
                    {"ad": ad},
                    size=p.manager.ad_wire_bytes,
                )
            except Exception:
                pass  # a dropped ad is just a missed update
            yield run.sim.timeout(p.manager.advertise_interval)

    for i in range(servers):
        machine = f"sim{i:04d}.pool"
        host = adv_hosts[i % len(adv_hosts)]
        offset = float(rng.uniform(0.0, p.manager.advertise_interval))
        run.sim.spawn(advertiser(machine, host, offset), name=f"adv:{machine}")

    return drive(
        run,
        system=system,
        x=servers,
        service=service,
        clients=clients,
        server_host=server_host,
        payload_fn=lambda uid: {"constraint": "TARGET.CpuLoad > 50"},
        request_size=p.manager.request_size,
        warmup=warmup,
        window=window,
    )


def sweep(
    system: str,
    x_values: _t.Sequence[int] | None = None,
    seed: int = 1,
    **kwargs: _t.Any,
) -> list[PointResult]:
    """Full series for one figure legend entry (crashes become DNF points)."""
    values = tuple(x_values) if x_values is not None else X_VALUES[system]
    return [run_point(system, servers, seed, **kwargs) for servers in values]
