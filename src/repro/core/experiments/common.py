"""Shared scenario-construction and sweep-execution helpers.

Scenario builders (clients, GRIS/Agent/servlet banks) are used by the
four experiment sets; :func:`sweep_points` is the one sweep loop they
all share — it fans independent points out through
:mod:`repro.core.parallel` (process pool + point cache) and merges the
results in submission order, byte-identical to a serial loop.

Passing ``adaptive=`` to :func:`sweep_points` (or to any experiment's
``sweep()``) switches the whole sweep to the adaptive measurement mode:
every point is replicated across seeds until its confidence interval
converges (:func:`repro.core.stats.adaptive_replications`), each
replication detecting its own steady-state window, and the reduced
:class:`~repro.core.runner.PointResult` reports replication means with
CI half-widths on :attr:`~repro.core.runner.PointResult.ci`.
"""

from __future__ import annotations

import typing as _t
from dataclasses import replace

from repro.core.parallel import PointSpec, run_specs
from repro.core.runner import PointResult, ScenarioRun
from repro.core.stats import (
    AdaptiveConfig,
    AdaptiveEstimate,
    adaptive_replications,
    summarize_replications,
)
from repro.core.testbed import assign_users_to_clients
from repro.hawkeye.agent import Agent
from repro.hawkeye.modules import replicated_modules
from repro.mds.gris import GRIS
from repro.mds.providers import replicated_providers
from repro.rgma.producer import make_default_producers
from repro.rgma.producer_servlet import ProducerServlet
from repro.rgma.registry import Registry
from repro.sim.host import Host

__all__ = [
    "sweep_points",
    "adaptive_sweep_points",
    "adaptive_point",
    "uc_clients",
    "lucky_clients",
    "build_gris",
    "build_agent",
    "build_rgma_producer_side",
    "spawn_publisher",
    "spawn_agent_advertiser",
]


def sweep_points(
    run_point: _t.Callable,
    points: _t.Sequence[_t.Sequence],
    *,
    point_kwargs: _t.Sequence[dict[str, _t.Any]] | None = None,
    jobs: int | None = None,
    adaptive: AdaptiveConfig | bool | None = None,
    **kwargs: _t.Any,
) -> list[_t.Any]:
    """Run ``run_point(*args, **kwargs)`` for every args-tuple in ``points``.

    Results come back index-aligned with ``points`` regardless of how
    they were produced (cache hit, pool worker, inline call), so every
    ``sweep()`` below is a thin shim over this helper.  ``point_kwargs``
    optionally layers per-point keyword overrides (the extensions
    sweeps vary ``params`` per point); ``jobs`` overrides the
    process-wide default (``REPRO_JOBS`` / ``repro-figures --jobs``).

    A truthy ``adaptive`` routes the sweep through
    :func:`adaptive_sweep_points` instead (replicated, CI-reported
    points); ``point_kwargs`` is not supported there.

    Keyword arguments whose value is ``None`` are dropped — every
    ``run_point`` keyword defaults to ``None``, so this normalizes the
    cache key without changing the call.
    """
    if adaptive:
        if point_kwargs is not None:
            raise ValueError("point_kwargs is not supported with adaptive sweeps")
        config = adaptive if isinstance(adaptive, AdaptiveConfig) else None
        return adaptive_sweep_points(run_point, points, config=config, jobs=jobs, **kwargs)
    if point_kwargs is not None and len(point_kwargs) != len(points):
        raise ValueError(
            f"point_kwargs length {len(point_kwargs)} != points length {len(points)}"
        )
    specs = []
    for i, args in enumerate(points):
        kw = {k: v for k, v in kwargs.items() if v is not None}
        if point_kwargs is not None:
            kw.update(point_kwargs[i])
        # fidelity="exact" means the same run as an omitted fidelity;
        # normalizing keeps cache keys identical to pre-fidelity sweeps.
        if kw.get("fidelity") == "exact":
            del kw["fidelity"]
        specs.append(PointSpec.from_call(run_point, tuple(args), kw))
    return run_specs(specs, jobs=jobs)


def _reduce_estimate(estimate: AdaptiveEstimate, config: AdaptiveConfig) -> PointResult:
    """Fold one point's replications into a single reported PointResult."""
    first = estimate.results[0]
    mean_summary, info, crashed = summarize_replications(
        estimate.results, config.confidence
    )
    info = replace(info, converged=estimate.converged)
    return replace(
        first,
        summary=mean_summary,
        crashed=crashed,
        sim_events=sum(r.sim_events for r in estimate.results),
        ci=info,
    )


def adaptive_sweep_points(
    run_point: _t.Callable,
    points: _t.Sequence[_t.Sequence],
    *,
    config: AdaptiveConfig | None = None,
    jobs: int | None = None,
    **kwargs: _t.Any,
) -> list[PointResult]:
    """Adaptive-mode sweep: replicate every point until its CI converges.

    Each args-tuple in ``points`` must end with the point's base seed
    (the :func:`sweep_points` convention).  Replication ``k`` re-runs
    the point with seed ``base + k * seed_stride`` and a detected
    steady-state window; replications fan out through
    :mod:`repro.core.parallel` batch by batch, so the stopping decision
    — and therefore the reported mean ± CI — is independent of worker
    count and scheduling.
    """
    cfg = config or AdaptiveConfig()
    clean = {k: v for k, v in kwargs.items() if v is not None}
    clean["adaptive"] = cfg
    out: list[PointResult] = []
    for args in points:
        *head, base_seed = args
        estimate = adaptive_replications(
            run_point,
            tuple(head),
            clean,
            base_seed=int(base_seed),
            config=cfg,
            jobs=jobs,
        )
        out.append(_reduce_estimate(estimate, cfg))
    return out


def adaptive_point(
    run_point: _t.Callable,
    *args: _t.Any,
    config: AdaptiveConfig | None = None,
    jobs: int | None = None,
    **kwargs: _t.Any,
) -> PointResult:
    """One adaptively-estimated point (``args`` ends with the base seed)."""
    return adaptive_sweep_points(
        run_point, [tuple(args)], config=config, jobs=jobs, **kwargs
    )[0]


def uc_clients(run: ScenarioRun, n_users: int) -> list[Host]:
    """Spread ``n_users`` over the 20 UC client machines (max 50 each)."""
    return assign_users_to_clients(
        n_users, run.testbed.uc, run.params.testbed.max_users_per_uc_machine
    )


def lucky_clients(run: ScenarioRun, n_users: int, exclude: _t.Sequence[str] = ()) -> list[Host]:
    """Spread users over Lucky nodes (the R-GMA local-consumer variant)."""
    nodes = [h for name, h in run.testbed.lucky.items() if name not in set(exclude)]
    return [nodes[i % len(nodes)] for i in range(n_users)]


def build_gris(run: ScenarioRun, *, collectors: int, cached: bool, seed: int = 0) -> GRIS:
    """A GRIS on lucky7 with ``collectors`` information providers."""
    ttl = float("inf") if cached else 0.0
    gris = GRIS(
        "lucky7.mcs.anl.gov",
        replicated_providers(collectors),
        cachettl=ttl,
        seed=seed,
    )
    if cached:
        gris.search(now=0.0)  # prime the cache before measurement
    return gris


def build_agent(run: ScenarioRun, *, modules: int, seed: int = 0) -> Agent:
    """A Hawkeye Agent on lucky4 with ``modules`` sensor modules."""
    return Agent("lucky4.mcs.anl.gov", replicated_modules(modules), seed=seed)


def build_rgma_producer_side(
    run: ScenarioRun, *, producers: int, seed: int = 0
) -> tuple[Registry, ProducerServlet]:
    """Registry on lucky1 plus a ProducerServlet on lucky3 with producers."""
    registry = Registry("lucky1")
    servlet = ProducerServlet("lucky3-ps")
    for producer in make_default_producers("lucky3.mcs.anl.gov", producers, seed=seed):
        servlet.attach(producer, registry, now=0.0, lease=1e9)
    servlet.publish_all(now=0.0)  # initial tuples so queries return rows
    return registry, servlet


def spawn_publisher(
    run: ScenarioRun, servlet: ProducerServlet, host: Host, interval: float = 30.0
) -> None:
    """Background measurement rounds: producers publish every ``interval``."""

    def publisher() -> _t.Generator:
        while True:
            yield run.sim.timeout(interval)
            count = servlet.publish_all(now=run.sim.now)
            # Buffer inserts burn a little CPU on the servlet host.
            yield host.compute(0.0008 * count)

    run.sim.spawn(publisher(), name=f"publisher:{servlet.name}")


def spawn_agent_advertiser(
    run: ScenarioRun,
    agent: Agent,
    manager_host: Host,
    ingest_cpu: float,
    interval: float = 30.0,
    receive: _t.Callable[[_t.Any, float], None] | None = None,
) -> None:
    """Background Startd-ad pushes from an Agent to its Manager host."""

    def advertiser() -> _t.Generator:
        while True:
            yield run.sim.timeout(interval)
            ad, _answer = agent.make_startd_ad(now=run.sim.now)
            yield manager_host.compute(ingest_cpu)
            if receive is not None:
                receive(ad, run.sim.now)

    run.sim.spawn(advertiser(), name=f"advertiser:{agent.machine}")
