"""Experiment Set 3 — information-server scalability with collectors (§3.5).

Reproduces Figures 13-16: 10 concurrent users query each information
server while the number of information collectors grows from the
default (10 providers / 11 modules / 10 producers) to 90.

Series:

* ``mds-gris-cache``   — GRIS with data always in cache;
* ``mds-gris-nocache`` — GRIS re-running every provider per query;
* ``hawkeye-agent``    — Agent with vmstat-clone modules;
* ``rgma-ps``          — ProducerServlet queried directly.
"""

from __future__ import annotations

import typing as _t

from repro.core.experiments.common import (
    build_agent,
    build_gris,
    build_rgma_producer_side,
    spawn_publisher,
    uc_clients,
)
from repro.core.params import StudyParams
from repro.core.runner import PointResult, drive, new_run
from repro.core.services import (
    make_agent_service,
    make_gris_service,
    make_producer_servlet_service,
)

__all__ = ["SYSTEMS", "X_VALUES", "USERS", "run_point", "sweep"]

SYSTEMS = ("mds-gris-cache", "mds-gris-nocache", "hawkeye-agent", "rgma-ps")

# Collector counts on the x-axis of Figures 13-16.
X_VALUES = (10, 30, 50, 70, 90)

# "10 concurrent users sent queries" (§3.5).
USERS = 10


def run_point(
    system: str,
    collectors: int,
    seed: int = 1,
    *,
    users: int = USERS,
    params: StudyParams | None = None,
    warmup: float | None = None,
    window: float | None = None,
) -> PointResult:
    """Measure one (system, collectors) coordinate of Figures 13-16."""
    if system not in SYSTEMS:
        raise ValueError(f"unknown exp3 system {system!r}; pick from {SYSTEMS}")

    if system.startswith("mds-gris"):
        monitored: tuple[str, ...] = ("lucky7",)
    elif system == "hawkeye-agent":
        monitored = ("lucky4",)
    else:
        monitored = ("lucky3",)
    run = new_run(seed, params, monitored=monitored)
    p = run.params
    clients = uc_clients(run, users)

    if system in ("mds-gris-cache", "mds-gris-nocache"):
        cached = not system.endswith("nocache")
        gris = build_gris(run, collectors=collectors, cached=cached, seed=seed)
        server_host = run.testbed.lucky["lucky7"]
        service = make_gris_service(run.sim, run.net, server_host, gris, p.gris)
        run.services["gris"] = service
        payload_fn = lambda uid: {"filter": "(objectclass=*)"}  # noqa: E731
        request_size = p.gris.request_size
    elif system == "hawkeye-agent":
        agent = build_agent(run, modules=collectors, seed=seed)
        server_host = run.testbed.lucky["lucky4"]
        service = make_agent_service(run.sim, run.net, server_host, agent, p.agent)
        run.services["agent"] = service
        payload_fn = lambda uid: {"query": "status"}  # noqa: E731
        request_size = p.agent.request_size
    else:  # rgma-ps: "We queried the ProducerServlet directly" (§3.5)
        _registry, servlet = build_rgma_producer_side(run, producers=collectors, seed=seed)
        server_host = run.testbed.lucky["lucky3"]
        service = make_producer_servlet_service(
            run.sim, run.net, server_host, servlet, p.producer_servlet
        )
        run.services["ps"] = service
        spawn_publisher(run, servlet, server_host)
        payload_fn = lambda uid: {"sql": "SELECT * FROM cpuLoad"}  # noqa: E731
        request_size = p.producer_servlet.request_size

    return drive(
        run,
        system=system,
        x=collectors,
        service=service,
        clients=clients,
        server_host=server_host,
        payload_fn=payload_fn,
        request_size=request_size,
        warmup=warmup,
        window=window,
    )


def sweep(
    system: str,
    x_values: _t.Sequence[int] = X_VALUES,
    seed: int = 1,
    **kwargs: _t.Any,
) -> list[PointResult]:
    """Full series for one figure legend entry."""
    return [run_point(system, collectors, seed, **kwargs) for collectors in x_values]
