"""Experiment Set 3 — information-server scalability with collectors (§3.5).

Reproduces Figures 13-16: 10 concurrent users query each information
server while the number of information collectors grows from the
default (10 providers / 11 modules / 10 producers) to 90.

Series:

* ``mds-gris-cache``   — GRIS with data always in cache;
* ``mds-gris-nocache`` — GRIS re-running every provider per query;
* ``hawkeye-agent``    — Agent with vmstat-clone modules;
* ``rgma-ps``          — ProducerServlet queried directly.

Each scenario is a :func:`repro.core.topology.catalog.exp3_plan`
compiled onto a fresh run; the collector count parameterizes the
plan's collector bank.
"""

from __future__ import annotations

import typing as _t

from repro.core.experiments.common import sweep_points, uc_clients
from repro.core.params import StudyParams
from repro.core.runner import PointResult, drive, new_run
from repro.core.stats import AdaptiveConfig
from repro.core.topology import compile_plan
from repro.core.topology.catalog import exp3_plan

__all__ = ["SYSTEMS", "X_VALUES", "USERS", "run_point", "sweep"]

SYSTEMS = ("mds-gris-cache", "mds-gris-nocache", "hawkeye-agent", "rgma-ps")

# Collector counts on the x-axis of Figures 13-16.
X_VALUES = (10, 30, 50, 70, 90)

# "10 concurrent users sent queries" (§3.5).
USERS = 10


def run_point(
    system: str,
    collectors: int,
    seed: int = 1,
    *,
    users: int = USERS,
    params: StudyParams | None = None,
    warmup: float | None = None,
    window: float | None = None,
    adaptive: AdaptiveConfig | bool | None = None,
    fidelity: str | None = None,
) -> PointResult:
    """Measure one (system, collectors) coordinate of Figures 13-16.

    ``fidelity`` selects the simulation tier exactly as in
    :func:`repro.core.experiments.exp1.run_point`; the x axis stays the
    collector count, with ``users`` clients driving the fast model.
    """
    if system not in SYSTEMS:
        raise ValueError(f"unknown exp3 system {system!r}; pick from {SYSTEMS}")
    if fidelity is not None and fidelity != "exact":
        from repro.core.fidelity import fast_point, require_plain_run

        require_plain_run(fidelity, adaptive=adaptive)
        return fast_point(
            exp3_plan(system, collectors, seed),
            system=system,
            x=collectors,
            users=users,
            tier=fidelity,
            params=params,
            seed=seed,
            warmup=warmup,
            window=window,
        )

    if system.startswith("mds-gris"):
        monitored: tuple[str, ...] = ("lucky7",)
        server_node = "lucky7"
        payload_fn = lambda uid: {"filter": "(objectclass=*)"}  # noqa: E731
    elif system == "hawkeye-agent":
        monitored = ("lucky4",)
        server_node = "lucky4"
        payload_fn = lambda uid: {"query": "status"}  # noqa: E731
    else:
        monitored = ("lucky3",)
        server_node = "lucky3"
        payload_fn = lambda uid: {"sql": "SELECT * FROM cpuLoad"}  # noqa: E731
    run = new_run(seed, params, monitored=monitored)
    p = run.params
    dep = compile_plan(exp3_plan(system, collectors, seed), run)

    if system.startswith("mds-gris"):
        request_size = p.gris.request_size
    elif system == "hawkeye-agent":
        request_size = p.agent.request_size
    else:  # rgma-ps: "We queried the ProducerServlet directly" (§3.5)
        request_size = p.producer_servlet.request_size

    assert dep.entry is not None
    return drive(
        run,
        system=system,
        x=collectors,
        service=dep.entry,
        clients=uc_clients(run, users),
        server_host=run.testbed.lucky[server_node],
        payload_fn=payload_fn,
        request_size=request_size,
        warmup=warmup,
        window=window,
        adaptive=adaptive,
    )


def sweep(
    system: str,
    x_values: _t.Sequence[int] = X_VALUES,
    seed: int = 1,
    **kwargs: _t.Any,
) -> list[PointResult]:
    """Full series for one figure legend entry."""
    return sweep_points(
        run_point, [(system, collectors, seed) for collectors in x_values], **kwargs
    )
