"""Hierarchy scalability — deep aggregate trees the paper only sketched.

§3.6 ends with the suggestion that "a multi-layer architecture in which
each middle-level aggregate information server manages a subset of
information servers" would push the aggregation limits out.
:func:`repro.core.experiments.extensions.hierarchy_comparison` answers
that for one two-level MDS tree; this module sweeps the whole design
space for both systems that *have* an aggregate server (Table 1 — MDS
GIIS and Hawkeye Manager; R-GMA has none).

Every point is a single :func:`repro.core.topology.catalog.hierarchy_plan`
compiled onto a fresh run: ``depth`` aggregate levels with ``fanout``
children per node, i.e. ``fanout**depth`` information servers total,
without a line of per-shape wiring here.  That is the point of the
deployment plane — the 3x3 grid below would otherwise be nine
hand-built scenarios.
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass

from repro.core.experiments.common import sweep_points, uc_clients
from repro.core.parallel import register_codec
from repro.core.params import StudyParams
from repro.core.runner import PointResult, drive, new_run
from repro.core.topology import compile_plan
from repro.core.topology.catalog import hierarchy_plan

__all__ = [
    "SYSTEMS",
    "DEPTHS",
    "FANOUTS",
    "USERS",
    "FAST_DEPTHS",
    "FAST_FANOUTS",
    "FAST_USERS",
    "MAX_EXACT_USERS",
    "ScalePoint",
    "run_scale_point",
    "sweep_scale",
    "format_scale_table",
]

SYSTEMS = ("mds", "hawkeye")

# The sweep grid: 2..512 information servers per tree.
DEPTHS = (1, 2, 3)
FANOUTS = (2, 4, 8)

USERS = 10

# The fast-tier grid (docs/FIDELITY.md): 10^4-server hierarchies under
# 10^5-10^6 concurrent users — two orders of magnitude past anything
# the exact DES can simulate in reasonable time.
FAST_DEPTHS = (2, 4)
FAST_FANOUTS = (10, 100)
FAST_USERS = (10_000, 100_000, 1_000_000)

# Guard rail: one exact point at 600 users already takes ~10 s; the
# paper's testbed never exceeded 600 either.  Past this, require an
# explicit fast tier instead of silently burning hours.
MAX_EXACT_USERS = 2_000


@register_codec
@dataclass(frozen=True)
class ScalePoint:
    """One tree shape: the compiled plan's shape plus the measured point."""

    system: str
    depth: int
    fanout: int
    servers: int  # fanout ** depth
    result: PointResult


def run_scale_point(
    system: str,
    depth: int,
    fanout: int,
    seed: int = 1,
    *,
    users: int = USERS,
    params: StudyParams | None = None,
    warmup: float | None = None,
    window: float | None = None,
    fidelity: str | None = None,
) -> ScalePoint:
    """Measure one (depth, fanout) tree under ``users`` concurrent queriers.

    ``fidelity`` selects the simulation tier (docs/FIDELITY.md).  The
    exact per-client DES is capped at ``MAX_EXACT_USERS``; the fast
    tiers take the grid to 10^6 users and 10^4-server trees.
    """
    if system not in SYSTEMS:
        raise ValueError(f"unknown scale system {system!r}; pick from {SYSTEMS}")
    servers = fanout**depth
    if fidelity is not None and fidelity != "exact":
        from repro.core.fidelity import fast_point, require_plain_run

        require_plain_run(fidelity)
        result = fast_point(
            hierarchy_plan(system, depth, fanout, seed),
            system=f"{system}-tree-d{depth}",
            x=servers,
            users=users,
            tier=fidelity,
            params=params,
            seed=seed,
            warmup=warmup,
            window=window,
        )
        return ScalePoint(
            system=system, depth=depth, fanout=fanout, servers=servers, result=result
        )
    if users > MAX_EXACT_USERS:
        raise ValueError(
            f"{users} users exceeds the exact tier's {MAX_EXACT_USERS}-user cap; "
            "pass fidelity='cohort' or fidelity='meanfield' for large populations"
        )
    if system == "mds":
        server_node = "lucky0"
        payload_fn = lambda uid: {"filter": "(objectclass=*)"}  # noqa: E731
    else:
        server_node = "lucky3"
        payload_fn = lambda uid: {"constraint": "TARGET.CpuLoad > 50"}  # noqa: E731
    run = new_run(seed, params, monitored=(server_node,))
    p = run.params.giis if system == "mds" else run.params.manager
    dep = compile_plan(hierarchy_plan(system, depth, fanout, seed), run)

    assert dep.entry is not None
    result = drive(
        run,
        system=f"{system}-tree-d{depth}",
        x=servers,
        service=dep.entry,
        clients=uc_clients(run, users),
        server_host=run.testbed.lucky[server_node],
        payload_fn=payload_fn,
        request_size=p.request_size,
        warmup=warmup,
        window=window,
    )
    return ScalePoint(system=system, depth=depth, fanout=fanout, servers=servers, result=result)


def sweep_scale(
    system: str,
    seed: int = 1,
    *,
    depths: _t.Sequence[int] = DEPTHS,
    fanouts: _t.Sequence[int] = FANOUTS,
    **kwargs: _t.Any,
) -> list[ScalePoint]:
    """The full depth x fanout grid for one system."""
    grid = [(system, depth, fanout, seed) for depth in depths for fanout in fanouts]
    return sweep_points(run_scale_point, grid, **kwargs)


def format_scale_table(rows: _t.Sequence[ScalePoint]) -> str:
    """Fixed-width table of the grid for benchmark output."""
    header = (
        f"{'system':<10} {'depth':>5} {'fanout':>6} {'servers':>7} "
        f"{'thru(q/s)':>9} {'resp(s)':>8} {'cpu%':>6} {'load1':>6} {'state':>7}"
    )
    lines = [header, "-" * len(header)]
    for r in rows:
        s = r.result.summary
        state = "CRASH" if r.result.crashed else "ok"
        lines.append(
            f"{r.system:<10} {r.depth:>5} {r.fanout:>6} {r.servers:>7} "
            f"{s.throughput:>9.2f} {s.response_time:>8.3f} "
            f"{s.cpu_load:>6.1f} {s.load1:>6.2f} {state:>7}"
        )
    return "\n".join(lines)
