"""The four experiment sets of the paper's Section 3.

* :mod:`repro.core.experiments.exp1` — information-server scalability
  with users (Figures 5-8);
* :mod:`repro.core.experiments.exp2` — directory-server scalability
  with users (Figures 9-12);
* :mod:`repro.core.experiments.exp3` — information-server scalability
  with information collectors (Figures 13-16);
* :mod:`repro.core.experiments.exp4` — aggregate-information-server
  scalability with information servers (Figures 17-20);
* :mod:`repro.core.experiments.faults` — the Exp-1/2 scenarios re-run
  under injected crash/restart faults with client-side retry.

Each figure module exposes ``SYSTEMS`` (the figure legends),
``X_VALUES`` (sweep coordinates), ``run_point(system, x, seed, ...)``
and ``sweep(...)``; the fault module exposes
``run_fault_point(system, users, seed, schedule=...)``.
"""

from repro.core.experiments import exp1, exp2, exp3, exp4, faults

__all__ = ["exp1", "exp2", "exp3", "exp4", "faults"]
