"""The paper's future-work experiments (§4 and §3.6), implemented.

The paper closes with four open questions; each has a runnable answer
here:

* :func:`wan_sweep` — "the experiments should be repeated to study
  performance in a WAN environment": Experiment-1 points under
  increasing WAN latency / decreasing WAN bandwidth between clients
  and servers.
* :func:`access_pattern_sweep` — "additional patterns of user access":
  Experiment-1 points under constant / exponential / Pareto / bursty
  think-time patterns of equal mean demand.
* :func:`aggregate_vs_direct` — "determine the difference between
  querying an aggregate information server and an information server
  for the same piece of information": response time of one host's data
  via its GRIS vs. via a GIIS aggregating five GRIS.
* :func:`hierarchy_comparison` — §3.6's suggested fix: "a multi-layer
  architecture in which each middle-level aggregate information server
  manages a subset of information servers" — a two-level GIIS tree vs.
  a flat GIIS over the same number of registrants.
"""

from __future__ import annotations

import dataclasses
import typing as _t

from repro.core.experiments import exp1
from repro.core.experiments.common import sweep_points, uc_clients
from repro.core.params import default_params
from repro.core.runner import PointResult, drive, new_run
from repro.core.topology import compile_plan
from repro.core.topology.catalog import two_level_plan
from repro.sim.rpc import Request, Response, Service, call

__all__ = [
    "wan_sweep",
    "access_pattern_sweep",
    "aggregate_vs_direct",
    "hierarchy_comparison",
    "push_vs_pull",
    "PushPullResult",
    "WAN_PROFILES",
]

# (label, one-way latency s, shared bandwidth Mbps) — LAN up to a
# congested intercontinental path.
WAN_PROFILES: tuple[tuple[str, float, float], ...] = (
    ("lan", 0.0002, 1000.0),
    ("metro", 0.005, 155.0),
    ("uc-anl", 0.013, 45.0),
    ("cross-country", 0.040, 45.0),
    ("intercontinental", 0.090, 10.0),
)


def wan_sweep(
    system: str = "mds-gris-cache",
    users: int = 200,
    seed: int = 1,
    *,
    profiles: _t.Sequence[tuple[str, float, float]] = WAN_PROFILES,
    warmup: float | None = None,
    window: float | None = None,
) -> list[tuple[str, PointResult]]:
    """Run one Experiment-1 point under each WAN profile."""
    per_point = []
    for _label, latency, mbps in profiles:
        params = default_params()
        params = dataclasses.replace(
            params,
            testbed=dataclasses.replace(params.testbed, wan_latency=latency, wan_mbps=mbps),
        )
        per_point.append({"params": params})
    points = sweep_points(
        exp1.run_point,
        [(system, users, seed)] * len(per_point),
        point_kwargs=per_point,
        warmup=warmup,
        window=window,
    )
    return [(label, point) for (label, _l, _m), point in zip(profiles, points)]


def access_pattern_sweep(
    system: str = "mds-gris-cache",
    users: int = 200,
    seed: int = 1,
    *,
    patterns: _t.Sequence[str] = ("constant", "exponential", "pareto", "onoff"),
    warmup: float | None = None,
    window: float | None = None,
) -> list[tuple[str, PointResult]]:
    """Run one Experiment-1 point under each user access pattern."""
    per_point = []
    for pattern in patterns:
        params = default_params()
        params = dataclasses.replace(
            params, workload=dataclasses.replace(params.workload, pattern=pattern)
        )
        per_point.append({"params": params})
    points = sweep_points(
        exp1.run_point,
        [(system, users, seed)] * len(per_point),
        point_kwargs=per_point,
        warmup=warmup,
        window=window,
    )
    return list(zip(patterns, points))


def aggregate_vs_direct(
    users: int = 50,
    seed: int = 1,
    *,
    warmup: float | None = None,
    window: float | None = None,
) -> dict[str, PointResult]:
    """Same piece of information via the GRIS vs. via the GIIS.

    Both paths answer "(objectclass=MdsHost)" about lucky7; the GIIS
    aggregates five GRIS (lucky3-7) with data in cache, the direct path
    queries lucky7's GRIS itself.
    """
    out: dict[str, PointResult] = {}
    # Direct: the plain Experiment-1 cached-GRIS setup.
    out["direct-gris"] = exp1.run_point(
        "mds-gris-cache", users, seed, warmup=warmup, window=window
    )
    # Aggregate: Experiment-2's GIIS answering the same filter.
    from repro.core.experiments import exp2

    out["via-giis"] = exp2.run_point("mds-giis", users, seed, warmup=warmup, window=window)
    return out


# -- push vs pull ------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class PushPullResult:
    """Outcome of one push-vs-pull notification scenario."""

    mode: str
    notifications: int
    mean_latency: float  # event occurrence -> subscriber notified
    server_cpu_pct: float
    messages: int  # wire messages carried


def push_vs_pull(
    watchers: int = 50,
    poll_interval: float = 10.0,
    seed: int = 1,
    *,
    event_rate: float = 0.2,
    warmup: float | None = None,
    window: float | None = None,
) -> dict[str, PushPullResult]:
    """§3.7's pull/push contrast, measured.

    ``watchers`` consumers want to know when a host's load crosses a
    threshold.  *Pull* (the MDS model): each watcher polls the
    information server every ``poll_interval`` seconds.  *Push* (the
    R-GMA model): the producer publishes each threshold event once and
    the servlet forwards it to every subscriber.

    Returns notification latency, server CPU, and wire messages for
    both modes over the same event stream.
    """
    from repro.core.params import default_params, measurement_window

    default_warmup, default_window = measurement_window()
    warmup = default_warmup if warmup is None else warmup
    window = default_window if window is None else window
    horizon = warmup + window
    out: dict[str, PushPullResult] = {}

    for mode in ("pull", "push"):
        run = new_run(seed, monitored=("lucky3",))
        sim, net = run.sim, run.net
        server = run.testbed.lucky["lucky3"]
        clients = uc_clients(run, watchers)
        rng = run.rng.stream("events", mode)
        # The shared event stream: threshold crossings at ``event_rate``.
        event_times = []
        t = float(rng.exponential(1.0 / event_rate))
        while t < horizon:
            event_times.append(t)
            t += float(rng.exponential(1.0 / event_rate))
        current_event: dict[str, float | None] = {"since": None}
        latencies: list[float] = []
        notified = 0

        def eventer() -> _t.Generator:
            for when in event_times:
                yield sim.timeout(when - sim.now)
                current_event["since"] = sim.now

        sim.spawn(eventer(), name="eventer")

        if mode == "pull":
            # Poll handler: cheap status check per request.
            def handler(service: Service, request: Request) -> _t.Generator:
                yield server.compute(0.004)
                since = current_event["since"]
                fired = since is not None
                current = since
                return Response(value={"fired": fired, "since": current}, size=900)

            service = Service(sim, net, server, "poll", handler, max_threads=64)

            def watcher(client) -> _t.Generator:
                nonlocal notified
                local = run.rng.stream("watcher", client.name)
                yield sim.timeout(float(local.uniform(0.0, poll_interval)))
                seen: float | None = None
                while True:
                    try:
                        value = yield from call(sim, net, client, service, None, size=400)
                    except Exception:
                        value = {"fired": False, "since": None}
                    if value["fired"] and value["since"] != seen:
                        seen = value["since"]
                        if sim.now >= warmup:
                            latencies.append(sim.now - value["since"])
                            notified += 1
                    yield sim.timeout(poll_interval)

            for client in clients:
                sim.spawn(watcher(client), name=f"poll:{client.name}")
        else:
            # Push: one publication per event fans out to subscribers.
            def pusher() -> _t.Generator:
                for when in event_times:
                    yield sim.timeout(max(0.0, when - sim.now))
                    yield server.compute(0.004 + 0.0005 * watchers)  # fan-out work
                    workers = [
                        sim.spawn(_notify(sim, net, server, client, when), name="notify")
                        for client in clients
                    ]
                    yield sim.all_of(workers)
                    for worker in workers:
                        if worker.ok and sim.now >= warmup:
                            latencies.append(worker.value)
                            # one notification per subscriber per event

            def _notify(sim, net, server, client, when) -> _t.Generator:
                yield from net.transfer(server, client, 900)
                return sim.now - when

            sim.spawn(pusher(), name="pusher")

        sim.run(until=horizon)
        if mode == "push":
            notified = len(latencies)
        cpu_pct, _load1 = run.testbed.monitor.window_average(server, warmup, horizon)
        out[mode] = PushPullResult(
            mode=mode,
            notifications=notified,
            mean_latency=(sum(latencies) / len(latencies)) if latencies else float("nan"),
            server_cpu_pct=cpu_pct,
            messages=net.messages,
        )
    return out


# -- multi-layer hierarchy -------------------------------------------------


def hierarchy_comparison(
    registrants: int = 100,
    users: int = 10,
    seed: int = 1,
    *,
    warmup: float | None = None,
    window: float | None = None,
) -> dict[str, PointResult]:
    """Flat GIIS over N GRIS vs. a two-level tree over the same N.

    The tree uses ~sqrt(N) mid-level GIIS, each aggregating ~sqrt(N)
    GRIS on its own Lucky node, under one top GIIS on lucky0.
    """
    out: dict[str, PointResult] = {}

    # --- flat ----------------------------------------------------------------
    from repro.core.experiments import exp4

    out["flat"] = exp4.run_point(
        "mds-giis-all", registrants, seed, users=users, warmup=warmup, window=window
    )

    # --- two-level ------------------------------------------------------------
    run = new_run(seed, monitored=("lucky0",))
    p = run.params.giis
    dep = compile_plan(two_level_plan(registrants, seed), run)
    assert dep.entry is not None
    out["two-level"] = drive(
        run,
        system="giis-two-level",
        x=registrants,
        service=dep.entry,
        clients=uc_clients(run, users),
        server_host=run.testbed.lucky["lucky0"],
        payload_fn=lambda uid: {"filter": "(objectclass=*)"},
        request_size=p.request_size,
        warmup=warmup,
        window=window,
    )
    return out
