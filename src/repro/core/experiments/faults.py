"""Fault experiments — the paper's sweeps re-run under injected failures.

The paper measures how the three systems *saturate*; operational
reports from the same era (R-GMA deployment notes, MDS production
experience) say the dominant field problem was services *failing* —
registry restarts, hung servlets, dropped connections.  This module
re-runs the Experiment 1/2 scenarios under a
:class:`~repro.sim.faults.CrashRestartSchedule` with client-side
:class:`~repro.sim.rpc.RetryPolicy` resilience, and reports goodput,
retry amplification and time-to-recover alongside the paper's four
metrics.

Two native scenarios exercise the control planes the figure sweeps
don't touch:

* ``mds-registration``    — GIIS on lucky0 with five GRIS keeping their
  soft-state registrations alive over the wire
  (:func:`repro.mds.resilience.soft_state_registrar`) while users query
  the directory; a GIIS outage expires leases and forces
  re-registration on restart;
* ``hawkeye-advertise``   — Manager on lucky3 with six Agents pushing
  Startd ads through the ingest service
  (:func:`repro.hawkeye.resilience.resilient_advertiser`); a collector
  outage costs dropped ads and pool staleness.

Any system name from :mod:`~repro.core.experiments.exp1` or
:mod:`~repro.core.experiments.exp2` also works — the fault plan then
lands on that scenario's information/directory server (for the R-GMA
variants, the ProducerServlet).
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass, field

from repro.core.experiments import exp1, exp2
from repro.core.experiments.common import sweep_points, uc_clients
from repro.core.parallel import register_codec
from repro.core.params import StudyParams, measurement_window
from repro.core.runner import PointResult, drive, new_run
from repro.core.topology import compile_plan
from repro.core.topology.catalog import advertise_fault_plan, registration_fault_plan
from repro.hawkeye.resilience import AdvertiserStats
from repro.mds.resilience import RegistrarStats
from repro.sim.faults import CrashRestartSchedule, DropInjector, FaultPlan, StallInjector
from repro.sim.randomness import RngHub
from repro.sim.rpc import CircuitBreaker, RetryPolicy

__all__ = [
    "SCHEDULES",
    "SYSTEMS",
    "X_VALUES",
    "FaultPointResult",
    "build_schedule",
    "default_retry_policy",
    "format_fault_table",
    "run_fault_point",
    "sweep",
]

# Native fault scenarios; every exp1/exp2 system name is also accepted.
SYSTEMS = ("mds-registration", "hawkeye-advertise")

# Default user counts for fault sweeps (below, at and past saturation).
X_VALUES = (10, 100, 300)

SCHEDULES = ("outage", "flapping")

# Soft-state lease geometry for the registration scenario: renew well
# inside the ttl, so only an outage longer than ``ttl - interval`` can
# expire a lease — which the default "outage" schedule (20 % of the
# window) does, forcing the full re-register path on restart.
REG_INTERVAL = 2.5
REG_TTL = 6.0

ADVERTISE_INTERVAL = 10.0


def build_schedule(kind: str, warmup: float, window: float) -> CrashRestartSchedule:
    """The two canonical fault shapes, scaled to the measurement window.

    * ``outage``   — one crash a quarter into the window, down for 20 %
      of it (a service restart mid-measurement);
    * ``flapping`` — three short outages a quarter-window apart (a
      service caught in a crash loop).
    """
    if kind == "outage":
        return CrashRestartSchedule.single(warmup + 0.25 * window, 0.2 * window)
    if kind == "flapping":
        return CrashRestartSchedule.periodic(
            warmup + 0.15 * window, 0.06 * window, 0.25 * window, 3
        )
    raise ValueError(f"unknown fault schedule {kind!r}; pick from {SCHEDULES}")


def default_retry_policy(
    rng: _t.Any, *, breaker: bool = True, max_attempts: int = 4
) -> RetryPolicy:
    """The client policy the fault experiments use.

    Capped exponential backoff with ±25 % jitter; the breaker trips
    after 5 consecutive failures and probes again 2 s later, which caps
    retry amplification during an outage at roughly one wire probe per
    breaker reset instead of ``max_attempts`` per logical call.
    """
    cb = CircuitBreaker(failure_threshold=5, reset_timeout=2.0) if breaker else None
    return RetryPolicy(
        max_attempts=max_attempts,
        base_backoff=0.5,
        multiplier=2.0,
        max_backoff=8.0,
        jitter=0.25,
        breaker=cb,
        rng=rng,
    )


@register_codec
@dataclass(frozen=True)
class FaultPointResult:
    """A baseline/faulted pair for one (system, users, schedule) point."""

    system: str
    x: float
    schedule: str
    baseline: PointResult  # same scenario, retry policy on, no faults
    faulted: PointResult
    extras: dict[str, float] = field(default_factory=dict)

    @property
    def no_fault_goodput(self) -> float:
        assert self.baseline.resilience is not None
        return self.baseline.resilience.goodput

    @property
    def recovered_fraction(self) -> float:
        """Post-restart success rate as a fraction of no-fault goodput."""
        assert self.faulted.resilience is not None
        base = self.no_fault_goodput
        return self.faulted.resilience.post_outage_rate / base if base else 0.0

    @property
    def retry_amplification(self) -> float:
        assert self.faulted.resilience is not None
        return self.faulted.resilience.retry_amplification

    @property
    def recovery_time(self) -> float | None:
        assert self.faulted.resilience is not None
        return self.faulted.resilience.recovery_time


def run_fault_point(
    system: str,
    users: int,
    seed: int = 1,
    *,
    schedule: str = "outage",
    drop: float = 0.0,
    stall: float = 0.0,
    stall_seconds: float = 1.0,
    breaker: bool = True,
    params: StudyParams | None = None,
    warmup: float | None = None,
    window: float | None = None,
) -> FaultPointResult:
    """Run one scenario twice — clean and faulted — and pair the results.

    Both runs carry the same retry policy shape (fresh instances, seeded
    from independent :class:`~repro.sim.randomness.RngHub` streams), so
    the baseline's goodput is the recovery yardstick.  ``drop``/``stall``
    layer transient connection resets and thread-holding stalls on top
    of the crash/restart ``schedule``.
    """
    default_warmup, default_window = measurement_window()
    warmup = default_warmup if warmup is None else warmup
    window = default_window if window is None else window
    hub = RngHub(seed)
    key = (system, str(users), schedule)

    baseline, _ = _run_one(
        system,
        users,
        seed,
        retry=default_retry_policy(hub.stream("retry", *key, "baseline"), breaker=breaker),
        faults=None,
        params=params,
        warmup=warmup,
        window=window,
    )
    plan = FaultPlan(
        schedule=build_schedule(schedule, warmup, window),
        drop=DropInjector(drop, hub.stream("drop", *key)) if drop > 0 else None,
        stall=(
            StallInjector(stall, stall_seconds, hub.stream("stall", *key))
            if stall > 0
            else None
        ),
        reason=f"injected {schedule}",
    )
    faulted, extras = _run_one(
        system,
        users,
        seed,
        retry=default_retry_policy(hub.stream("retry", *key, "faulted"), breaker=breaker),
        faults=plan,
        params=params,
        warmup=warmup,
        window=window,
    )
    return FaultPointResult(
        system=system,
        x=users,
        schedule=schedule,
        baseline=baseline,
        faulted=faulted,
        extras=extras,
    )


def sweep(
    system: str,
    x_values: _t.Sequence[int] = X_VALUES,
    seed: int = 1,
    **kwargs: _t.Any,
) -> list[FaultPointResult]:
    """Fault points for one system across user counts.

    Each point is a self-contained baseline/faulted pair seeded from
    its own :class:`~repro.sim.randomness.RngHub`, so the sweep fans
    out and caches like any figure sweep.
    """
    return sweep_points(run_fault_point, [(system, users, seed) for users in x_values], **kwargs)


def _run_one(
    system: str,
    users: int,
    seed: int,
    *,
    retry: RetryPolicy,
    faults: FaultPlan | None,
    params: StudyParams | None,
    warmup: float,
    window: float,
) -> tuple[PointResult, dict[str, float]]:
    common = dict(params=params, warmup=warmup, window=window, retry=retry, faults=faults)
    if system in exp1.SYSTEMS:
        return exp1.run_point(system, users, seed, **common), {}
    if system in exp2.SYSTEMS:
        return exp2.run_point(system, users, seed, **common), {}
    if system == "mds-registration":
        return _registration_point(users, seed, **common)
    if system == "hawkeye-advertise":
        return _advertise_point(users, seed, **common)
    raise ValueError(
        f"unknown fault system {system!r}; pick from {SYSTEMS}, "
        f"{exp1.SYSTEMS} or {exp2.SYSTEMS}"
    )


def _registration_point(
    users: int,
    seed: int,
    *,
    params: StudyParams | None,
    warmup: float,
    window: float,
    retry: RetryPolicy,
    faults: FaultPlan | None,
) -> tuple[PointResult, dict[str, float]]:
    """GIIS directory queries while GRIS keep soft-state leases alive."""
    run = new_run(seed, params, monitored=("lucky0",))
    p = run.params
    reg_retry = RetryPolicy(
        max_attempts=3,
        base_backoff=0.5,
        max_backoff=4.0,
        rng=run.rng.stream("registrar-retry", str(users)),
    )
    dep = compile_plan(
        registration_fault_plan(seed, interval=REG_INTERVAL, ttl=REG_TTL),
        run,
        registration_retry=reg_retry,
    )
    reg_stats: list[RegistrarStats] = dep.extras["registrar_stats"]

    assert dep.entry is not None
    result = drive(
        run,
        system="mds-registration",
        x=users,
        service=dep.entry,
        clients=uc_clients(run, users),
        server_host=run.testbed.lucky["lucky0"],
        payload_fn=lambda uid: {"filter": "(objectclass=MdsHost)"},
        request_size=p.giis.request_size,
        warmup=warmup,
        window=window,
        retry=retry,
        faults=faults,
        fault_services=dep.fault_services if faults is not None else None,
    )
    extras = {
        "renewals": float(sum(st.renewals for st in reg_stats)),
        "re_registrations": float(sum(st.re_registrations for st in reg_stats)),
        "missed_cycles": float(sum(st.missed_cycles for st in reg_stats)),
        "registered_at_end": float(sum(st.registered for st in reg_stats)),
        "registrar_attempts": float(reg_retry.stats.attempts),
    }
    return result, extras


def _advertise_point(
    users: int,
    seed: int,
    *,
    params: StudyParams | None,
    warmup: float,
    window: float,
    retry: RetryPolicy,
    faults: FaultPlan | None,
) -> tuple[PointResult, dict[str, float]]:
    """Manager directory queries while Agents advertise over the wire."""
    run = new_run(seed, params, monitored=("lucky3",))
    p = run.params
    adv_retry = RetryPolicy(
        max_attempts=3,
        base_backoff=0.5,
        max_backoff=4.0,
        rng=run.rng.stream("advertiser-retry", str(users)),
    )
    dep = compile_plan(
        advertise_fault_plan(seed, interval=ADVERTISE_INTERVAL),
        run,
        advertise_retry=adv_retry,
    )
    adv_stats: list[AdvertiserStats] = dep.extras["advertiser_stats"]

    assert dep.entry is not None
    result = drive(
        run,
        system="hawkeye-advertise",
        x=users,
        service=dep.entry,
        clients=uc_clients(run, users),
        server_host=run.testbed.lucky["lucky3"],
        payload_fn=lambda uid: {"machine": "lucky4.mcs.anl.gov"},
        request_size=p.manager.request_size,
        warmup=warmup,
        window=window,
        retry=retry,
        faults=faults,
        fault_services=dep.fault_services if faults is not None else None,
    )
    end = warmup + window
    extras = {
        "ads_delivered": float(sum(st.delivered for st in adv_stats)),
        "ads_missed": float(sum(st.missed for st in adv_stats)),
        "max_staleness": max(max(st.max_gap, st.staleness(end)) for st in adv_stats),
        "advertiser_attempts": float(adv_retry.stats.attempts),
    }
    return result, extras


def format_fault_table(rows: _t.Sequence[FaultPointResult]) -> str:
    """Fixed-width table of the resilience metrics for benchmark output."""
    header = (
        f"{'system':<20} {'users':>5} {'schedule':>8} "
        f"{'goodput0':>9} {'goodput':>9} {'recov%':>7} "
        f"{'amp':>6} {'t_recover':>9} {'downtime':>8}"
    )
    lines = [header, "-" * len(header)]
    for r in rows:
        res = r.faulted.resilience
        assert res is not None
        t_rec = "never" if res.recovery_time is None else f"{res.recovery_time:.1f}"
        lines.append(
            f"{r.system:<20} {r.x:>5.0f} {r.schedule:>8} "
            f"{r.no_fault_goodput:>9.2f} {res.goodput:>9.2f} "
            f"{100 * r.recovered_fraction:>6.1f}% "
            f"{r.retry_amplification:>6.2f} {t_rec:>9} {res.downtime:>8.1f}"
        )
    return "\n".join(lines)
