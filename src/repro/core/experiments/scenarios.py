"""Scenario experiments: the paper's sweeps under generative dynamics.

:func:`run_scenario_point` reruns any Experiment 1/2 coordinate (plus
the ``mds-registration`` soft-state scenario) with a
:class:`~repro.core.scenario.model.Scenario` attached: arrival
modulation and client mixes ride into :func:`~repro.core.runner.drive`,
churn and WAN weather are installed on the compiled deployment by
:func:`~repro.core.scenario.apply.apply_scenario`.  Every point also
returns a :class:`RunAudit` — the full server-side request accounting
the fuzzer's metamorphic invariants check
(:mod:`repro.core.scenario.fuzz`).

Scenarios are passed by registry name (:data:`NAMED_SCENARIOS`), by
``examples/*.scenario.json`` path, or as :class:`Scenario` objects
(the fuzzer's random draws).  All three forms are deterministic and
cache-friendly: a Scenario is a frozen dataclass, so the point cache
canonicalizes it field by field.
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass, field, replace

from repro.core.experiments import exp1, exp2
from repro.core.experiments.common import lucky_clients, sweep_points, uc_clients
from repro.core.experiments.faults import REG_INTERVAL, REG_TTL
from repro.core.parallel import register_codec
from repro.core.params import StudyParams, default_params, measurement_window
from repro.core.runner import PointResult, ScenarioRun, drive, new_run
from repro.core.scenario.apply import ScenarioOps, apply_scenario
from repro.core.scenario.codec import load as load_scenario
from repro.core.scenario.model import (
    ArrivalModel,
    ChurnModel,
    MixComponent,
    Scenario,
    ScenarioError,
    WanWeather,
)
from repro.core.topology import compile_plan
from repro.core.topology.adapters import Deployment
from repro.core.topology.catalog import exp1_plan, exp2_plan, registration_fault_plan
from repro.mds.giis import GIIS
from repro.mds.gris import GRIS
from repro.sim.faults import FaultPlan
from repro.sim.rpc import RetryPolicy

__all__ = [
    "NAMED_SCENARIOS",
    "SYSTEMS",
    "X_VALUES",
    "RunAudit",
    "ServiceAudit",
    "ScenarioPointResult",
    "resolve_scenario",
    "run_scenario_point",
    "sweep",
    "format_scenario_table",
]

# Every figure-sweep coordinate plus the soft-state control plane.
SYSTEMS = exp1.SYSTEMS + exp2.SYSTEMS + ("mds-registration",)

X_VALUES = (10, 100, 300)

# Slack after the last churn rejoin before the recovery invariant looks
# for resumed completions (lease renew interval + one think time).
RECOVERY_SLACK = 4.0


def _flash_crowd() -> Scenario:
    return Scenario(
        name="flash-crowd",
        description="4x arrival spike mid-window (release-announcement rush)",
        arrivals=(ArrivalModel(kind="flash", at=30.0, duration=20.0, peak=4.0),),
    )


def _churn_diurnal() -> Scenario:
    return Scenario(
        name="churn-diurnal",
        description="day/night load swing while registrants churn",
        arrivals=(ArrivalModel(kind="diurnal", period=40.0, amplitude=0.4),),
        churn=ChurnModel(session_time=18.0, downtime=4.0, start=10.0, end=55.0),
    )


def _wan_weather() -> Scenario:
    return Scenario(
        name="wan-weather",
        description="correlated inter-site latency/loss episodes",
        wan=WanWeather(rate=0.05, mean_duration=6.0, extra_latency=0.04, loss=0.08),
    )


def _client_mix() -> Scenario:
    return Scenario(
        name="client-mix",
        description="heterogeneous users: steady, Poisson and heavy-tailed",
        mix=(
            MixComponent(fraction=0.5, pattern="constant"),
            MixComponent(fraction=0.3, pattern="exponential"),
            MixComponent(fraction=0.2, pattern="pareto"),
        ),
    )


NAMED_SCENARIOS: dict[str, _t.Callable[[], Scenario]] = {
    "flash-crowd": _flash_crowd,
    "churn-diurnal": _churn_diurnal,
    "wan-weather": _wan_weather,
    "client-mix": _client_mix,
}


def resolve_scenario(scenario: "Scenario | str") -> Scenario:
    """Registry name, ``*.scenario.json`` path, or Scenario instance."""
    if isinstance(scenario, Scenario):
        return scenario.validate()
    if scenario in NAMED_SCENARIOS:
        return NAMED_SCENARIOS[scenario]().validate()
    if scenario.endswith(".json"):
        return load_scenario(scenario)
    raise ScenarioError(
        f"unknown scenario {scenario!r}; pick from {tuple(NAMED_SCENARIOS)} "
        "or pass a *.scenario.json path"
    )


@register_codec
@dataclass(frozen=True)
class ServiceAudit:
    """One service's request accounting at the simulation horizon."""

    arrived: int
    refused: int
    completed: int
    errors: int
    dropped: int
    open_at_end: int  # connections still open (executing + accept queue)
    max_concurrent: int
    capacity: int  # max_threads + backlog
    down_at_end: bool

    @property
    def accounted(self) -> int:
        return self.refused + self.completed + self.errors + self.dropped + self.open_at_end


@register_codec
@dataclass(frozen=True)
class RunAudit:
    """Everything the metamorphic invariants need from one run."""

    horizon: float
    window_start: float
    window_end: float
    services: dict[str, ServiceAudit] = field(default_factory=dict)
    # Client-side outcome counts over the whole horizon.
    client_ok: int = 0
    client_refused: int = 0
    client_timeout: int = 0
    client_error: int = 0
    # Directory-cache counters summed over GIIS/GRIS objects.
    cache_hits: int = 0
    cache_lookups: int = 0
    # Scenario-ops counters (zero for scenario-free runs).
    churn_leaves: int = 0
    churn_rejoins: int = 0
    directory_unregisters: int = 0
    directory_registers: int = 0
    wan_episodes: int = 0
    messages_lost: int = 0
    last_churn_end: float = 0.0
    # OK completions that *started* after the recovery point
    # (last_churn_end + RECOVERY_SLACK); -1 when churn never fired.
    ok_after_churn: int = -1


@register_codec
@dataclass(frozen=True)
class ScenarioPointResult:
    """One (system, scenario, users) coordinate plus its audit."""

    system: str
    scenario: str
    x: float
    result: PointResult
    audit: RunAudit | None = None

    @property
    def throughput(self) -> float:
        return self.result.throughput

    @property
    def response_time(self) -> float:
        return self.result.response_time


def _audit_run(
    run: ScenarioRun,
    dep: Deployment,
    ops: ScenarioOps | None,
    *,
    horizon: float,
    window_start: float,
    window_end: float,
) -> RunAudit:
    services = {}
    for name, svc in dep.services.items():
        services[name] = ServiceAudit(
            arrived=svc.stats.arrived,
            refused=svc.stats.refused,
            completed=svc.stats.completed,
            errors=svc.stats.errors,
            dropped=svc.stats.dropped,
            open_at_end=svc.concurrent,
            max_concurrent=svc.stats.max_concurrent,
            capacity=svc.max_threads + svc.backlog,
            down_at_end=svc.down or svc.crashed,
        )
    hits = lookups = 0
    for obj in dep.objects.values():
        for piece in obj if isinstance(obj, list) else (obj,):
            if isinstance(piece, (GIIS, GRIS)):
                hits += piece.cache.stats.hits
                lookups += piece.cache.stats.lookups
    outcomes = {"ok": 0, "refused": 0, "timeout": 0, "error": 0}
    ok_after = -1
    last_end = ops.last_churn_end if ops is not None else 0.0
    if ops is not None and ops.churn_leaves:
        ok_after = 0
    for record in run.log.records:
        outcomes[record.outcome] = outcomes.get(record.outcome, 0) + 1
        if ok_after >= 0 and record.outcome == "ok" and record.started > last_end + RECOVERY_SLACK:
            ok_after += 1
    return RunAudit(
        horizon=horizon,
        window_start=window_start,
        window_end=window_end,
        services=services,
        client_ok=outcomes["ok"],
        client_refused=outcomes["refused"],
        client_timeout=outcomes["timeout"],
        client_error=outcomes["error"],
        cache_hits=hits,
        cache_lookups=lookups,
        churn_leaves=ops.churn_leaves if ops else 0,
        churn_rejoins=ops.churn_rejoins if ops else 0,
        directory_unregisters=ops.directory_unregisters if ops else 0,
        directory_registers=ops.directory_registers if ops else 0,
        wan_episodes=ops.wan_episodes if ops else 0,
        messages_lost=ops.messages_lost if ops else 0,
        last_churn_end=last_end,
        ok_after_churn=ok_after,
    )


def _wiring(system: str, run: ScenarioRun, users: int, seed: int):
    """(plan, server_node, payload_fn, request_size, clients) for a system."""
    p = run.params
    if system in exp1.SYSTEMS:
        plan = exp1_plan(system, seed)
        if system.startswith("mds-gris"):
            node, payload, size = (
                "lucky7",
                lambda uid: {"filter": "(objectclass=*)"},
                p.gris.request_size,
            )
        elif system == "hawkeye-agent":
            node, payload, size = (
                "lucky4",
                lambda uid: {"query": "status"},
                p.agent.request_size,
            )
        else:
            node, payload, size = (
                "lucky3",
                lambda uid: {"sql": "SELECT * FROM cpuLoad"},
                p.consumer_servlet.request_size,
            )
        if system == "rgma-ps-lucky":
            clients = lucky_clients(run, users, exclude=("lucky3",))
        else:
            clients = uc_clients(run, users)
        return plan, node, payload, size, clients
    if system in exp2.SYSTEMS:
        plan = exp2_plan(system, seed)
        if system == "mds-giis":
            node, payload, size = (
                "lucky0",
                lambda uid: {"filter": "(objectclass=MdsHost)"},
                p.giis.request_size,
            )
        elif system == "hawkeye-manager":
            node, payload, size = (
                "lucky3",
                lambda uid: {"machine": "lucky4.mcs.anl.gov"},
                p.manager.request_size,
            )
        else:
            node, payload, size = (
                "lucky1",
                lambda uid: {"table": "cpuLoad"},
                p.registry.request_size,
            )
        if system == "rgma-registry-lucky":
            clients = lucky_clients(run, users, exclude=("lucky1",))
        else:
            clients = uc_clients(run, users)
        return plan, node, payload, size, clients
    # mds-registration: the soft-state control plane under churn.
    plan = registration_fault_plan(seed, interval=REG_INTERVAL, ttl=REG_TTL)
    return (
        plan,
        "lucky0",
        lambda uid: {"filter": "(objectclass=MdsHost)"},
        p.giis.request_size,
        uc_clients(run, users),
    )


_MONITORED = {
    "hawkeye-agent": ("lucky4",),
    "rgma-ps-lucky": ("lucky3",),
    "rgma-ps-uc": ("lucky3",),
    "mds-giis": ("lucky0",),
    "hawkeye-manager": ("lucky3",),
    "rgma-registry-lucky": ("lucky1",),
    "rgma-registry-uc": ("lucky1",),
    "mds-registration": ("lucky0",),
}


def run_scenario_point(
    system: str,
    scenario: "Scenario | str",
    users: int,
    seed: int = 1,
    *,
    params: StudyParams | None = None,
    warmup: float | None = None,
    window: float | None = None,
    faults: FaultPlan | None = None,
    retry: RetryPolicy | None = None,
    fidelity: str | None = None,
) -> ScenarioPointResult:
    """One (system, scenario, users) coordinate on the exact DES.

    ``fidelity`` routes environment-free scenarios (no churn, no WAN)
    through the fast tiers: the scenario collapses to an *effective
    workload* (window-mean arrival factor, population-mean think time)
    via :meth:`Scenario.effective_workload`, and the audit is ``None``
    because fast tiers model no per-request accounting.

    ``faults`` composes an ordinary :class:`~repro.sim.faults.FaultPlan`
    with the scenario — outages are depth-counted, so a crash window
    overlapping a churn-out never double-frees a server.
    """
    sc = resolve_scenario(scenario)
    if system not in SYSTEMS:
        raise ValueError(f"unknown scenario system {system!r}; pick from {SYSTEMS}")
    limit_systems = {"rgma-ps-uc": exp1.UC_VARIANT_MAX_USERS, "rgma-registry-uc": exp2.UC_VARIANT_MAX_USERS}
    if users > limit_systems.get(system, users):
        raise ValueError(f"{system} supports at most {limit_systems[system]} users")

    default_warmup, default_window = measurement_window()
    warmup = default_warmup if warmup is None else warmup
    window = default_window if window is None else window
    horizon = warmup + window

    if fidelity is not None and fidelity != "exact":
        blocked = sc.requires_exact()
        if blocked:
            raise ScenarioError(
                f"scenario {sc.name!r} uses {', '.join(blocked)}; fast tiers "
                "model steady state only — run the exact DES"
            )
        if system == "mds-registration":
            raise ScenarioError("mds-registration has no fast-tier projection")
        base = params or default_params()
        eff = sc.effective_workload(base.workload, warmup, horizon, tier=fidelity)
        run_point = exp1.run_point if system in exp1.SYSTEMS else exp2.run_point
        result = run_point(
            system,
            users,
            seed,
            params=replace(base, workload=eff),
            warmup=warmup,
            window=window,
            fidelity=fidelity,
        )
        return ScenarioPointResult(
            system=system, scenario=sc.name, x=users, result=result, audit=None
        )

    monitored = _MONITORED.get(system, ("lucky7",))
    run = new_run(seed, params, monitored=monitored)
    plan, server_node, payload_fn, request_size, clients = _wiring(
        system, run, users, seed
    )
    reg_retry = None
    if system == "mds-registration":
        reg_retry = RetryPolicy(
            max_attempts=3,
            base_backoff=0.5,
            max_backoff=4.0,
            rng=run.rng.stream("registrar-retry", str(users)),
        )
    cs_retry = None
    if system.startswith("rgma") and (retry is not None or faults is not None):
        cs_retry = RetryPolicy(
            max_attempts=2,
            base_backoff=0.25,
            max_backoff=2.0,
            rng=run.rng.stream("cs-retry", system, str(users)),
        )
    dep = compile_plan(
        plan, run, mediation_retry=cs_retry, registration_retry=reg_retry
    )
    ops = apply_scenario(sc, run, dep, horizon=horizon)

    assert dep.entry is not None
    result = drive(
        run,
        system=system,
        x=users,
        service=dep.entry,
        clients=clients,
        server_host=run.testbed.lucky[server_node],
        payload_fn=payload_fn,
        request_size=request_size,
        services_by_user=[dep.route(c) for c in clients] if dep.routed else None,
        warmup=warmup,
        window=window,
        retry=retry,
        faults=faults,
        fault_services=dep.fault_services if faults is not None else None,
        scenario=sc,
    )
    audit = _audit_run(
        run,
        dep,
        ops,
        horizon=horizon,
        window_start=warmup,
        window_end=horizon,
    )
    return ScenarioPointResult(
        system=system, scenario=sc.name, x=users, result=result, audit=audit
    )


def sweep(
    system: str,
    scenario: "Scenario | str",
    x_values: _t.Sequence[int] = X_VALUES,
    seed: int = 1,
    **kwargs: _t.Any,
) -> list[ScenarioPointResult]:
    """One scenario across user counts (cached/fanned like any sweep)."""
    sc = resolve_scenario(scenario)
    return sweep_points(
        run_scenario_point, [(system, sc, users, seed) for users in x_values], **kwargs
    )


def format_scenario_table(rows: _t.Sequence[ScenarioPointResult]) -> str:
    """Fixed-width table of scenario-point metrics for benchmark output."""
    header = (
        f"{'system':<20} {'scenario':<16} {'users':>5} "
        f"{'tput':>8} {'resp':>8} {'churn':>6} {'lost':>5} {'ok':>8}"
    )
    lines = [header, "-" * len(header)]
    for r in rows:
        audit = r.audit
        churn = f"{audit.churn_leaves}/{audit.churn_rejoins}" if audit else "-"
        lost = str(audit.messages_lost) if audit else "-"
        ok = str(audit.client_ok) if audit else "-"
        lines.append(
            f"{r.system:<20} {r.scenario:<16} {r.x:>5.0f} "
            f"{r.result.throughput:>8.2f} {r.result.response_time:>8.4f} "
            f"{churn:>6} {lost:>5} {ok:>8}"
        )
    return "\n".join(lines)
