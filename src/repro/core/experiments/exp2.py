"""Experiment Set 2 — directory-server scalability with users (§3.4).

Reproduces Figures 9-12: the MDS GIIS (cachettl set very large, so the
directory function is isolated), the Hawkeye Manager (6 Agents
advertising) and the R-GMA Registry (5 ProducerServlets x 10 producers
registered), queried by 1-600 concurrent users.

Series:

* ``mds-giis``           — GIIS on lucky0, 5 GRIS (lucky3-7) registered;
* ``hawkeye-manager``    — Manager on lucky3, 6 Agents x 11 modules;
* ``rgma-registry-lucky``— Registry on lucky1, consumers on Lucky nodes;
* ``rgma-registry-uc``   — Registry on lucky1, consumers at UC (<=100).
"""

from __future__ import annotations

import typing as _t

from repro.core.experiments.common import (
    lucky_clients,
    spawn_agent_advertiser,
    uc_clients,
)
from repro.core.params import StudyParams
from repro.core.runner import PointResult, drive, new_run
from repro.core.services import (
    make_giis_directory_service,
    make_manager_directory_service,
    make_registry_service,
)
from repro.core.testbed import LUCKY_NAMES
from repro.hawkeye.agent import Agent
from repro.hawkeye.manager import Manager
from repro.hawkeye.modules import make_default_modules
from repro.mds.giis import GIIS
from repro.mds.gris import GRIS
from repro.mds.providers import replicated_providers
from repro.rgma.producer import make_default_producers
from repro.rgma.producer_servlet import ProducerServlet
from repro.rgma.registry import Registry
from repro.sim.faults import FaultPlan
from repro.sim.rpc import RetryPolicy

__all__ = ["SYSTEMS", "X_VALUES", "run_point", "sweep"]

SYSTEMS = (
    "mds-giis",
    "hawkeye-manager",
    "rgma-registry-lucky",
    "rgma-registry-uc",
)

# The user counts of Figures 9-12 (the paper's x-axis tick labels).
X_VALUES = (1, 10, 50, 100, 200, 300, 400, 500, 600)

UC_VARIANT_MAX_USERS = 100


def _build_giis(seed: int) -> GIIS:
    """GIIS on lucky0 with GRIS on each of lucky3-7 registered, primed."""
    giis = GIIS("lucky0", cachettl=float("inf"))
    for i, node in enumerate(("lucky3", "lucky4", "lucky5", "lucky6", "lucky7")):
        gris = GRIS(
            f"{node}.mcs.anl.gov",
            replicated_providers(10),
            cachettl=float("inf"),
            seed=seed * 101 + i,
        )

        def puller(now: float, gris: GRIS = gris) -> tuple[list, float]:
            result = gris.search(now=now)
            return result.entries, result.exec_cost

        giis.register(node, puller, now=0.0, ttl=1e12)
    giis.query(now=0.0)  # prime: "cachettl ... very large ... always in cache"
    return giis


def run_point(
    system: str,
    users: int,
    seed: int = 1,
    *,
    params: StudyParams | None = None,
    warmup: float | None = None,
    window: float | None = None,
    retry: RetryPolicy | None = None,
    faults: FaultPlan | None = None,
) -> PointResult:
    """Measure one (system, users) coordinate of Figures 9-12.

    ``retry``/``faults`` re-run the same scenario as a fault experiment;
    the plan lands on the directory server under study (the default
    anchor service of each branch).
    """
    if system not in SYSTEMS:
        raise ValueError(f"unknown exp2 system {system!r}; pick from {SYSTEMS}")
    if system == "rgma-registry-uc" and users > UC_VARIANT_MAX_USERS:
        raise ValueError(f"the UC variant supports at most {UC_VARIANT_MAX_USERS} users")

    if system == "mds-giis":
        monitored: tuple[str, ...] = ("lucky0",)
    elif system == "hawkeye-manager":
        monitored = ("lucky3",)
    else:
        monitored = ("lucky1",)
    run = new_run(seed, params, monitored=monitored)
    p = run.params

    if system == "mds-giis":
        giis = _build_giis(seed)
        server_host = run.testbed.lucky["lucky0"]
        service = make_giis_directory_service(run.sim, run.net, server_host, giis, p.giis)
        run.services["giis"] = service
        return drive(
            run,
            system=system,
            x=users,
            service=service,
            clients=uc_clients(run, users),
            server_host=server_host,
            payload_fn=lambda uid: {"filter": "(objectclass=MdsHost)"},
            request_size=p.giis.request_size,
            warmup=warmup,
            window=window,
            retry=retry,
            faults=faults,
        )

    if system == "hawkeye-manager":
        manager = Manager("lucky3")
        server_host = run.testbed.lucky["lucky3"]
        # Six agents, one per remaining Lucky node, 11 default modules
        # each, advertising Startd ads every 30 s (paper §3.4).
        agent_nodes = [n for n in LUCKY_NAMES if n != "lucky3"]
        for i, node in enumerate(agent_nodes):
            agent = Agent(f"{node}.mcs.anl.gov", make_default_modules(), seed=seed * 77 + i)
            manager.register_agent(agent)
            ad, _ = agent.make_startd_ad(now=0.0)
            manager.receive_ad(ad, now=0.0)
            spawn_agent_advertiser(
                run,
                agent,
                server_host,
                p.manager.ad_ingest_cpu,
                interval=p.manager.advertise_interval,
                receive=manager.receive_ad,
            )
        service = make_manager_directory_service(
            run.sim, run.net, server_host, manager, p.manager
        )
        run.services["manager"] = service
        return drive(
            run,
            system=system,
            x=users,
            service=service,
            clients=uc_clients(run, users),
            server_host=server_host,
            payload_fn=lambda uid: {"machine": "lucky4.mcs.anl.gov"},
            request_size=p.manager.request_size,
            warmup=warmup,
            window=window,
            retry=retry,
            faults=faults,
        )

    # R-GMA Registry variants --------------------------------------------------
    registry = Registry("lucky1")
    server_host = run.testbed.lucky["lucky1"]
    # Five ProducerServlets (one per remaining Lucky node), each with 10
    # local producers registered (paper §3.4).
    ps_nodes = ("lucky0", "lucky3", "lucky4", "lucky5", "lucky6")
    for i, node in enumerate(ps_nodes):
        servlet = ProducerServlet(f"{node}-ps")
        for producer in make_default_producers(f"{node}.mcs.anl.gov", 10, seed=seed * 31 + i):
            servlet.attach(producer, registry, now=0.0, lease=1e9)
    service = make_registry_service(run.sim, run.net, server_host, registry, p.registry)
    run.services["registry"] = service
    if system == "rgma-registry-uc":
        clients = uc_clients(run, users)
    else:
        clients = lucky_clients(run, users, exclude=("lucky1",))
    return drive(
        run,
        system=system,
        x=users,
        service=service,
        clients=clients,
        server_host=server_host,
        payload_fn=lambda uid: {"table": "cpuLoad"},
        request_size=p.registry.request_size,
        warmup=warmup,
        window=window,
        retry=retry,
        faults=faults,
    )


def sweep(
    system: str,
    x_values: _t.Sequence[int] = X_VALUES,
    seed: int = 1,
    **kwargs: _t.Any,
) -> list[PointResult]:
    """Full series for one figure legend entry."""
    limit = UC_VARIANT_MAX_USERS if system == "rgma-registry-uc" else None
    return [
        run_point(system, users, seed, **kwargs)
        for users in x_values
        if limit is None or users <= limit
    ]
