"""Experiment Set 2 — directory-server scalability with users (§3.4).

Reproduces Figures 9-12: the MDS GIIS (cachettl set very large, so the
directory function is isolated), the Hawkeye Manager (6 Agents
advertising) and the R-GMA Registry (5 ProducerServlets x 10 producers
registered), queried by 1-600 concurrent users.

Series:

* ``mds-giis``           — GIIS on lucky0, 5 GRIS (lucky3-7) registered;
* ``hawkeye-manager``    — Manager on lucky3, 6 Agents x 11 modules;
* ``rgma-registry-lucky``— Registry on lucky1, consumers on Lucky nodes;
* ``rgma-registry-uc``   — Registry on lucky1, consumers at UC (<=100).

Each scenario is a :func:`repro.core.topology.catalog.exp2_plan`
compiled onto a fresh run.
"""

from __future__ import annotations

import typing as _t

from repro.core.experiments.common import lucky_clients, sweep_points, uc_clients
from repro.core.params import StudyParams
from repro.core.runner import PointResult, drive, new_run
from repro.core.stats import AdaptiveConfig
from repro.core.topology import compile_plan
from repro.core.topology.catalog import exp2_plan
from repro.sim.faults import FaultPlan
from repro.sim.rpc import RetryPolicy

__all__ = ["SYSTEMS", "X_VALUES", "run_point", "sweep"]

SYSTEMS = (
    "mds-giis",
    "hawkeye-manager",
    "rgma-registry-lucky",
    "rgma-registry-uc",
)

# The user counts of Figures 9-12 (the paper's x-axis tick labels).
X_VALUES = (1, 10, 50, 100, 200, 300, 400, 500, 600)

UC_VARIANT_MAX_USERS = 100


def run_point(
    system: str,
    users: int,
    seed: int = 1,
    *,
    params: StudyParams | None = None,
    warmup: float | None = None,
    window: float | None = None,
    adaptive: AdaptiveConfig | bool | None = None,
    retry: RetryPolicy | None = None,
    faults: FaultPlan | None = None,
    fidelity: str | None = None,
) -> PointResult:
    """Measure one (system, users) coordinate of Figures 9-12.

    ``retry``/``faults`` re-run the same scenario as a fault experiment;
    the plan's fault target is the directory server under study.
    ``fidelity`` selects the simulation tier exactly as in
    :func:`repro.core.experiments.exp1.run_point`.
    """
    if system not in SYSTEMS:
        raise ValueError(f"unknown exp2 system {system!r}; pick from {SYSTEMS}")
    if system == "rgma-registry-uc" and users > UC_VARIANT_MAX_USERS:
        raise ValueError(f"the UC variant supports at most {UC_VARIANT_MAX_USERS} users")
    if fidelity is not None and fidelity != "exact":
        from repro.core.fidelity import fast_point, require_plain_run

        require_plain_run(fidelity, adaptive=adaptive, retry=retry, faults=faults)
        return fast_point(
            exp2_plan(system, seed),
            system=system,
            x=users,
            users=users,
            tier=fidelity,
            params=params,
            seed=seed,
            warmup=warmup,
            window=window,
        )

    if system == "mds-giis":
        monitored: tuple[str, ...] = ("lucky0",)
        server_node = "lucky0"
        payload_fn = lambda uid: {"filter": "(objectclass=MdsHost)"}  # noqa: E731
    elif system == "hawkeye-manager":
        monitored = ("lucky3",)
        server_node = "lucky3"
        payload_fn = lambda uid: {"machine": "lucky4.mcs.anl.gov"}  # noqa: E731
    else:
        monitored = ("lucky1",)
        server_node = "lucky1"
        payload_fn = lambda uid: {"table": "cpuLoad"}  # noqa: E731
    run = new_run(seed, params, monitored=monitored)
    p = run.params
    dep = compile_plan(exp2_plan(system, seed), run)

    if system == "mds-giis":
        request_size = p.giis.request_size
    elif system == "hawkeye-manager":
        request_size = p.manager.request_size
    else:
        request_size = p.registry.request_size

    if system == "rgma-registry-lucky":
        clients = lucky_clients(run, users, exclude=("lucky1",))
    else:
        clients = uc_clients(run, users)
    assert dep.entry is not None
    return drive(
        run,
        system=system,
        x=users,
        service=dep.entry,
        clients=clients,
        server_host=run.testbed.lucky[server_node],
        payload_fn=payload_fn,
        request_size=request_size,
        warmup=warmup,
        window=window,
        adaptive=adaptive,
        retry=retry,
        faults=faults,
        fault_services=dep.fault_services if faults is not None else None,
    )


def sweep(
    system: str,
    x_values: _t.Sequence[int] = X_VALUES,
    seed: int = 1,
    **kwargs: _t.Any,
) -> list[PointResult]:
    """Full series for one figure legend entry."""
    limit = UC_VARIANT_MAX_USERS if system == "rgma-registry-uc" else None
    xs = [users for users in x_values if limit is None or users <= limit]
    return sweep_points(run_point, [(system, users, seed) for users in xs], **kwargs)
