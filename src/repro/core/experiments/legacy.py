"""Hand-wired scenario construction, kept as parity shims.

These are the pre-topology experiment builders, verbatim.  The live
experiment modules (:mod:`exp1` .. :mod:`exp4`) now compile
:mod:`repro.core.topology.catalog` plans instead; the equivalence
tests (``tests/core/test_topology_equivalence.py``) drive one point of
each experiment through both paths and require byte-identical metric
tables.  Once a release cycle passes with the tests green this module
can be deleted.
"""

from __future__ import annotations

import typing as _t

from repro.core.experiments.common import (
    build_agent,
    build_gris,
    build_rgma_producer_side,
    lucky_clients,
    spawn_agent_advertiser,
    spawn_publisher,
    uc_clients,
)
from repro.core.params import StudyParams
from repro.core.runner import PointResult, drive, new_run
from repro.core.services import (
    make_agent_service,
    make_consumer_servlet_service,
    make_giis_aggregate_service,
    make_giis_directory_service,
    make_gris_service,
    make_manager_aggregate_service,
    make_manager_directory_service,
    make_manager_ingest_service,
    make_producer_servlet_service,
    make_registry_service,
)
from repro.core.testbed import LUCKY_NAMES
from repro.hawkeye.advertise import synthesize_startd_ad
from repro.hawkeye.agent import Agent
from repro.hawkeye.manager import Manager
from repro.hawkeye.modules import make_default_modules
from repro.mds.giis import GIIS
from repro.mds.gris import GRIS
from repro.mds.providers import replicated_providers
from repro.rgma.producer import make_default_producers
from repro.rgma.producer_servlet import ProducerServlet
from repro.rgma.registry import Registry
from repro.sim.faults import FaultPlan
from repro.sim.rpc import RetryPolicy, Service, call

__all__ = ["exp1_point", "exp2_point", "exp3_point", "exp4_point"]


def exp1_point(
    system: str,
    users: int,
    seed: int = 1,
    *,
    params: StudyParams | None = None,
    warmup: float | None = None,
    window: float | None = None,
    retry: RetryPolicy | None = None,
    faults: FaultPlan | None = None,
) -> PointResult:
    """The pre-topology Experiment 1 wiring, verbatim."""
    if system.startswith("mds-gris"):
        monitored: tuple[str, ...] = ("lucky7",)
    elif system == "hawkeye-agent":
        monitored = ("lucky4",)
    else:
        monitored = ("lucky3",)
    run = new_run(seed, params, monitored=monitored)
    p = run.params

    if system in ("mds-gris-cache", "mds-gris-nocache"):
        cached = system.endswith("cache") and not system.endswith("nocache")
        gris = build_gris(run, collectors=10, cached=cached, seed=seed)
        server_host = run.testbed.lucky["lucky7"]
        service = make_gris_service(run.sim, run.net, server_host, gris, p.gris)
        run.services["gris"] = service
        return drive(
            run,
            system=system,
            x=users,
            service=service,
            clients=uc_clients(run, users),
            server_host=server_host,
            payload_fn=lambda uid: {"filter": "(objectclass=*)"},
            request_size=p.gris.request_size,
            warmup=warmup,
            window=window,
            retry=retry,
            faults=faults,
        )

    if system == "hawkeye-agent":
        agent = build_agent(run, modules=11, seed=seed)
        server_host = run.testbed.lucky["lucky4"]
        service = make_agent_service(run.sim, run.net, server_host, agent, p.agent)
        run.services["agent"] = service
        return drive(
            run,
            system=system,
            x=users,
            service=service,
            clients=uc_clients(run, users),
            server_host=server_host,
            payload_fn=lambda uid: {"query": "status"},
            request_size=p.agent.request_size,
            warmup=warmup,
            window=window,
            retry=retry,
            faults=faults,
        )

    _registry, servlet = build_rgma_producer_side(run, producers=10, seed=seed)
    server_host = run.testbed.lucky["lucky3"]
    ps_service = make_producer_servlet_service(
        run.sim, run.net, server_host, servlet, p.producer_servlet
    )
    run.services["ps"] = ps_service
    spawn_publisher(run, servlet, server_host)
    payload_fn = lambda uid: {"sql": "SELECT * FROM cpuLoad"}  # noqa: E731
    cs_retry = None
    if retry is not None or faults is not None:
        cs_retry = RetryPolicy(
            max_attempts=2,
            base_backoff=0.25,
            max_backoff=2.0,
            rng=run.rng.stream("cs-retry", system, str(users)),
        )

    if system == "rgma-ps-uc":
        cs_host = run.testbed.uc[0]
        cs_service = make_consumer_servlet_service(
            run.sim, run.net, cs_host, "uc-cs", ps_service, p.consumer_servlet,
            retry=cs_retry,
        )
        run.services["cs"] = cs_service
        return drive(
            run,
            system=system,
            x=users,
            service=cs_service,
            clients=uc_clients(run, users),
            server_host=server_host,
            payload_fn=payload_fn,
            request_size=p.consumer_servlet.request_size,
            warmup=warmup,
            window=window,
            retry=retry,
            faults=faults,
            fault_services=[ps_service] if faults is not None else None,
        )

    cs_nodes = [name for name in run.testbed.lucky if name != "lucky3"]
    cs_services: dict[str, Service] = {}
    for name in cs_nodes:
        cs_services[name] = make_consumer_servlet_service(
            run.sim,
            run.net,
            run.testbed.lucky[name],
            f"{name}-cs",
            ps_service,
            p.consumer_servlet,
            retry=cs_retry,
        )
    clients = lucky_clients(run, users, exclude=("lucky3",))
    services_by_user = [cs_services[c.name.split(".")[0]] for c in clients]
    return drive(
        run,
        system=system,
        x=users,
        service=ps_service,
        clients=clients,
        server_host=server_host,
        payload_fn=payload_fn,
        request_size=p.consumer_servlet.request_size,
        services_by_user=services_by_user,
        warmup=warmup,
        window=window,
        retry=retry,
        faults=faults,
        fault_services=[ps_service] if faults is not None else None,
    )


def _build_giis_exp2(seed: int) -> GIIS:
    giis = GIIS("lucky0", cachettl=float("inf"))
    for i, node in enumerate(("lucky3", "lucky4", "lucky5", "lucky6", "lucky7")):
        gris = GRIS(
            f"{node}.mcs.anl.gov",
            replicated_providers(10),
            cachettl=float("inf"),
            seed=seed * 101 + i,
        )

        def puller(now: float, gris: GRIS = gris) -> tuple[list, float]:
            result = gris.search(now=now)
            return result.entries, result.exec_cost

        giis.register(node, puller, now=0.0, ttl=1e12)
    giis.query(now=0.0)
    return giis


def exp2_point(
    system: str,
    users: int,
    seed: int = 1,
    *,
    params: StudyParams | None = None,
    warmup: float | None = None,
    window: float | None = None,
    retry: RetryPolicy | None = None,
    faults: FaultPlan | None = None,
) -> PointResult:
    """The pre-topology Experiment 2 wiring, verbatim."""
    if system == "mds-giis":
        monitored: tuple[str, ...] = ("lucky0",)
    elif system == "hawkeye-manager":
        monitored = ("lucky3",)
    else:
        monitored = ("lucky1",)
    run = new_run(seed, params, monitored=monitored)
    p = run.params

    if system == "mds-giis":
        giis = _build_giis_exp2(seed)
        server_host = run.testbed.lucky["lucky0"]
        service = make_giis_directory_service(run.sim, run.net, server_host, giis, p.giis)
        run.services["giis"] = service
        return drive(
            run,
            system=system,
            x=users,
            service=service,
            clients=uc_clients(run, users),
            server_host=server_host,
            payload_fn=lambda uid: {"filter": "(objectclass=MdsHost)"},
            request_size=p.giis.request_size,
            warmup=warmup,
            window=window,
            retry=retry,
            faults=faults,
        )

    if system == "hawkeye-manager":
        manager = Manager("lucky3")
        server_host = run.testbed.lucky["lucky3"]
        agent_nodes = [n for n in LUCKY_NAMES if n != "lucky3"]
        for i, node in enumerate(agent_nodes):
            agent = Agent(f"{node}.mcs.anl.gov", make_default_modules(), seed=seed * 77 + i)
            manager.register_agent(agent)
            ad, _ = agent.make_startd_ad(now=0.0)
            manager.receive_ad(ad, now=0.0)
            spawn_agent_advertiser(
                run,
                agent,
                server_host,
                p.manager.ad_ingest_cpu,
                interval=p.manager.advertise_interval,
                receive=manager.receive_ad,
            )
        service = make_manager_directory_service(
            run.sim, run.net, server_host, manager, p.manager
        )
        run.services["manager"] = service
        return drive(
            run,
            system=system,
            x=users,
            service=service,
            clients=uc_clients(run, users),
            server_host=server_host,
            payload_fn=lambda uid: {"machine": "lucky4.mcs.anl.gov"},
            request_size=p.manager.request_size,
            warmup=warmup,
            window=window,
            retry=retry,
            faults=faults,
        )

    registry = Registry("lucky1")
    server_host = run.testbed.lucky["lucky1"]
    ps_nodes = ("lucky0", "lucky3", "lucky4", "lucky5", "lucky6")
    for i, node in enumerate(ps_nodes):
        servlet = ProducerServlet(f"{node}-ps")
        for producer in make_default_producers(f"{node}.mcs.anl.gov", 10, seed=seed * 31 + i):
            servlet.attach(producer, registry, now=0.0, lease=1e9)
    service = make_registry_service(run.sim, run.net, server_host, registry, p.registry)
    run.services["registry"] = service
    if system == "rgma-registry-uc":
        clients = uc_clients(run, users)
    else:
        clients = lucky_clients(run, users, exclude=("lucky1",))
    return drive(
        run,
        system=system,
        x=users,
        service=service,
        clients=clients,
        server_host=server_host,
        payload_fn=lambda uid: {"table": "cpuLoad"},
        request_size=p.registry.request_size,
        warmup=warmup,
        window=window,
        retry=retry,
        faults=faults,
    )


def exp3_point(
    system: str,
    collectors: int,
    seed: int = 1,
    *,
    users: int = 10,
    params: StudyParams | None = None,
    warmup: float | None = None,
    window: float | None = None,
) -> PointResult:
    """The pre-topology Experiment 3 wiring, verbatim."""
    if system.startswith("mds-gris"):
        monitored: tuple[str, ...] = ("lucky7",)
    elif system == "hawkeye-agent":
        monitored = ("lucky4",)
    else:
        monitored = ("lucky3",)
    run = new_run(seed, params, monitored=monitored)
    p = run.params
    clients = uc_clients(run, users)

    if system in ("mds-gris-cache", "mds-gris-nocache"):
        cached = not system.endswith("nocache")
        gris = build_gris(run, collectors=collectors, cached=cached, seed=seed)
        server_host = run.testbed.lucky["lucky7"]
        service = make_gris_service(run.sim, run.net, server_host, gris, p.gris)
        run.services["gris"] = service
        payload_fn = lambda uid: {"filter": "(objectclass=*)"}  # noqa: E731
        request_size = p.gris.request_size
    elif system == "hawkeye-agent":
        agent = build_agent(run, modules=collectors, seed=seed)
        server_host = run.testbed.lucky["lucky4"]
        service = make_agent_service(run.sim, run.net, server_host, agent, p.agent)
        run.services["agent"] = service
        payload_fn = lambda uid: {"query": "status"}  # noqa: E731
        request_size = p.agent.request_size
    else:
        _registry, servlet = build_rgma_producer_side(run, producers=collectors, seed=seed)
        server_host = run.testbed.lucky["lucky3"]
        service = make_producer_servlet_service(
            run.sim, run.net, server_host, servlet, p.producer_servlet
        )
        run.services["ps"] = service
        spawn_publisher(run, servlet, server_host)
        payload_fn = lambda uid: {"sql": "SELECT * FROM cpuLoad"}  # noqa: E731
        request_size = p.producer_servlet.request_size

    return drive(
        run,
        system=system,
        x=collectors,
        service=service,
        clients=clients,
        server_host=server_host,
        payload_fn=payload_fn,
        request_size=request_size,
        warmup=warmup,
        window=window,
    )


def _build_giis_exp4(registrants: int, seed: int) -> GIIS:
    giis = GIIS("lucky0", cachettl=float("inf"))
    nodes = [n for n in LUCKY_NAMES if n != "lucky0"]
    for i in range(registrants):
        node = nodes[i % len(nodes)]
        gris = GRIS(
            f"{node}-inst{i}.mcs.anl.gov",
            replicated_providers(10),
            cachettl=float("inf"),
            seed=seed * 7919 + i,
        )

        def puller(now: float, gris: GRIS = gris) -> tuple[list, float]:
            result = gris.search(now=now)
            return result.entries, result.exec_cost

        giis.register(f"gris{i}", puller, now=0.0, ttl=1e12)
    giis.query(now=0.0)
    return giis


def exp4_point(
    system: str,
    servers: int,
    seed: int = 1,
    *,
    users: int = 10,
    params: StudyParams | None = None,
    warmup: float | None = None,
    window: float | None = None,
) -> PointResult:
    """The pre-topology Experiment 4 wiring, verbatim."""
    monitored = ("lucky0",) if system.startswith("mds") else ("lucky3",)
    run = new_run(seed, params, monitored=monitored)
    p = run.params
    clients = uc_clients(run, users)

    if system.startswith("mds-giis"):
        query_part = system.endswith("part")
        giis = _build_giis_exp4(servers, seed)
        server_host = run.testbed.lucky["lucky0"]
        service = make_giis_aggregate_service(
            run.sim, run.net, server_host, giis, p.giis, query_part=query_part
        )
        run.services["giis"] = service
        return drive(
            run,
            system=system,
            x=servers,
            service=service,
            clients=clients,
            server_host=server_host,
            payload_fn=lambda uid: {"filter": "(objectclass=*)"},
            request_size=p.giis.request_size,
            warmup=warmup,
            window=window,
        )

    manager = Manager("lucky3")
    server_host = run.testbed.lucky["lucky3"]
    service, collector_mutex = make_manager_aggregate_service(
        run.sim, run.net, server_host, manager, p.manager
    )
    ingest = make_manager_ingest_service(
        run.sim, run.net, server_host, manager, p.manager, collector_mutex
    )
    run.services["manager"] = service
    run.services["ingest"] = ingest

    adv_hosts = [run.testbed.lucky[n] for n in LUCKY_NAMES if n != "lucky3"]
    rng = run.rng.stream("advertisers", str(servers))

    def advertiser(machine: str, host, offset: float) -> _t.Generator:
        local_rng = run.rng.stream("ad", machine)
        ad = synthesize_startd_ad(machine, local_rng, now=0.0)
        manager.receive_ad(ad, now=0.0)
        yield run.sim.timeout(offset)
        while True:
            ad = synthesize_startd_ad(machine, local_rng, now=run.sim.now)
            try:
                yield from call(
                    run.sim,
                    run.net,
                    host,
                    ingest,
                    {"ad": ad},
                    size=p.manager.ad_wire_bytes,
                )
            except Exception:
                pass
            yield run.sim.timeout(p.manager.advertise_interval)

    for i in range(servers):
        machine = f"sim{i:04d}.pool"
        host = adv_hosts[i % len(adv_hosts)]
        offset = float(rng.uniform(0.0, p.manager.advertise_interval))
        run.sim.spawn(advertiser(machine, host, offset), name=f"adv:{machine}")

    return drive(
        run,
        system=system,
        x=servers,
        service=service,
        clients=clients,
        server_host=server_host,
        payload_fn=lambda uid: {"constraint": "TARGET.CpuLoad > 50"},
        request_size=p.manager.request_size,
        warmup=warmup,
        window=window,
    )
