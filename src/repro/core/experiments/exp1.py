"""Experiment Set 1 — information-server scalability with users (§3.3).

Reproduces Figures 5-8: throughput, response time, load1 and CPU load
of the three information servers as 1-600 concurrent users query them.

The five series of the figures:

* ``mds-gris-cache``   — GRIS on lucky7, 10 providers, data always cached;
* ``mds-gris-nocache`` — same, data never cached;
* ``hawkeye-agent``    — Agent on lucky4 (Manager on lucky3);
* ``rgma-ps-uc``       — ProducerServlet on lucky3, consumers at UC through
  a single ConsumerServlet (the paper could drive at most ~100-120 users
  this way);
* ``rgma-ps-lucky``    — same servlet, consumers on the Lucky nodes with a
  ConsumerServlet per node (up to 600 users).
"""

from __future__ import annotations

import typing as _t

from repro.core.experiments.common import (
    build_agent,
    build_gris,
    build_rgma_producer_side,
    lucky_clients,
    spawn_publisher,
    uc_clients,
)
from repro.core.params import StudyParams
from repro.core.runner import PointResult, drive, new_run
from repro.core.services import (
    make_agent_service,
    make_consumer_servlet_service,
    make_gris_service,
    make_producer_servlet_service,
)
from repro.sim.faults import FaultPlan
from repro.sim.rpc import RetryPolicy, Service

__all__ = ["SYSTEMS", "X_VALUES", "run_point", "sweep"]

SYSTEMS = (
    "mds-gris-cache",
    "mds-gris-nocache",
    "hawkeye-agent",
    "rgma-ps-lucky",
    "rgma-ps-uc",
)

# The user counts of Figures 5-8.
X_VALUES = (1, 10, 50, 100, 200, 300, 400, 500, 600)

# The paper could only drive ~100 UC consumers through one ConsumerServlet.
UC_VARIANT_MAX_USERS = 100


def run_point(
    system: str,
    users: int,
    seed: int = 1,
    *,
    params: StudyParams | None = None,
    warmup: float | None = None,
    window: float | None = None,
    retry: RetryPolicy | None = None,
    faults: FaultPlan | None = None,
) -> PointResult:
    """Measure one (system, users) coordinate of Figures 5-8.

    ``retry``/``faults`` re-run the same scenario as a fault experiment
    (see :mod:`repro.core.experiments.faults`): the plan lands on the
    information server under study — for the R-GMA variants that is the
    ProducerServlet, and the ConsumerServlets get their own small
    retry policy for the CS->PS hop.
    """
    if system not in SYSTEMS:
        raise ValueError(f"unknown exp1 system {system!r}; pick from {SYSTEMS}")
    if system == "rgma-ps-uc" and users > UC_VARIANT_MAX_USERS:
        raise ValueError(
            f"the UC variant supports at most {UC_VARIANT_MAX_USERS} users "
            "(the paper's ConsumerServlet limit)"
        )

    if system.startswith("mds-gris"):
        monitored: tuple[str, ...] = ("lucky7",)
    elif system == "hawkeye-agent":
        monitored = ("lucky4",)
    else:
        monitored = ("lucky3",)
    run = new_run(seed, params, monitored=monitored)
    p = run.params

    if system in ("mds-gris-cache", "mds-gris-nocache"):
        cached = system.endswith("cache") and not system.endswith("nocache")
        gris = build_gris(run, collectors=10, cached=cached, seed=seed)
        server_host = run.testbed.lucky["lucky7"]
        service = make_gris_service(run.sim, run.net, server_host, gris, p.gris)
        run.services["gris"] = service
        return drive(
            run,
            system=system,
            x=users,
            service=service,
            clients=uc_clients(run, users),
            server_host=server_host,
            payload_fn=lambda uid: {"filter": "(objectclass=*)"},
            request_size=p.gris.request_size,
            warmup=warmup,
            window=window,
            retry=retry,
            faults=faults,
        )

    if system == "hawkeye-agent":
        agent = build_agent(run, modules=11, seed=seed)
        server_host = run.testbed.lucky["lucky4"]
        service = make_agent_service(run.sim, run.net, server_host, agent, p.agent)
        run.services["agent"] = service
        return drive(
            run,
            system=system,
            x=users,
            service=service,
            clients=uc_clients(run, users),
            server_host=server_host,
            payload_fn=lambda uid: {"query": "status"},
            request_size=p.agent.request_size,
            warmup=warmup,
            window=window,
            retry=retry,
            faults=faults,
        )

    # R-GMA variants ---------------------------------------------------------
    _registry, servlet = build_rgma_producer_side(run, producers=10, seed=seed)
    server_host = run.testbed.lucky["lucky3"]
    ps_service = make_producer_servlet_service(
        run.sim, run.net, server_host, servlet, p.producer_servlet
    )
    run.services["ps"] = ps_service
    spawn_publisher(run, servlet, server_host)
    payload_fn = lambda uid: {"sql": "SELECT * FROM cpuLoad"}  # noqa: E731
    # Faults target the ProducerServlet (the information server under
    # study); the CS->PS hop rides through them on its own small policy.
    cs_retry = None
    if retry is not None or faults is not None:
        cs_retry = RetryPolicy(
            max_attempts=2,
            base_backoff=0.25,
            max_backoff=2.0,
            rng=run.rng.stream("cs-retry", system, str(users)),
        )

    if system == "rgma-ps-uc":
        cs_host = run.testbed.uc[0]
        cs_service = make_consumer_servlet_service(
            run.sim, run.net, cs_host, "uc-cs", ps_service, p.consumer_servlet,
            retry=cs_retry,
        )
        run.services["cs"] = cs_service
        return drive(
            run,
            system=system,
            x=users,
            service=cs_service,
            clients=uc_clients(run, users),
            server_host=server_host,
            payload_fn=payload_fn,
            request_size=p.consumer_servlet.request_size,
            warmup=warmup,
            window=window,
            retry=retry,
            faults=faults,
            fault_services=[ps_service] if faults is not None else None,
        )

    # rgma-ps-lucky: one ConsumerServlet per Lucky node, consumers local.
    cs_nodes = [name for name in run.testbed.lucky if name != "lucky3"]
    cs_services: dict[str, Service] = {}
    for name in cs_nodes:
        cs_services[name] = make_consumer_servlet_service(
            run.sim,
            run.net,
            run.testbed.lucky[name],
            f"{name}-cs",
            ps_service,
            p.consumer_servlet,
            retry=cs_retry,
        )
    clients = lucky_clients(run, users, exclude=("lucky3",))
    services_by_user = [cs_services[c.name.split(".")[0]] for c in clients]
    return drive(
        run,
        system=system,
        x=users,
        service=ps_service,  # crash/refusal accounting anchor
        clients=clients,
        server_host=server_host,
        payload_fn=payload_fn,
        request_size=p.consumer_servlet.request_size,
        services_by_user=services_by_user,
        warmup=warmup,
        window=window,
        retry=retry,
        faults=faults,
        fault_services=[ps_service] if faults is not None else None,
    )


def sweep(
    system: str,
    x_values: _t.Sequence[int] = X_VALUES,
    seed: int = 1,
    **kwargs: _t.Any,
) -> list[PointResult]:
    """Full series for one figure legend entry."""
    limit = UC_VARIANT_MAX_USERS if system == "rgma-ps-uc" else None
    return [
        run_point(system, users, seed, **kwargs)
        for users in x_values
        if limit is None or users <= limit
    ]
