"""Experiment Set 1 — information-server scalability with users (§3.3).

Reproduces Figures 5-8: throughput, response time, load1 and CPU load
of the three information servers as 1-600 concurrent users query them.

The five series of the figures:

* ``mds-gris-cache``   — GRIS on lucky7, 10 providers, data always cached;
* ``mds-gris-nocache`` — same, data never cached;
* ``hawkeye-agent``    — Agent on lucky4 (Manager on lucky3);
* ``rgma-ps-uc``       — ProducerServlet on lucky3, consumers at UC through
  a single ConsumerServlet (the paper could drive at most ~100-120 users
  this way);
* ``rgma-ps-lucky``    — same servlet, consumers on the Lucky nodes with a
  ConsumerServlet per node (up to 600 users).

Each scenario is a :func:`repro.core.topology.catalog.exp1_plan`
compiled onto a fresh run; only the workload (clients, payloads,
retry policies) lives here.
"""

from __future__ import annotations

import typing as _t

from repro.core.experiments.common import lucky_clients, sweep_points, uc_clients
from repro.core.params import StudyParams
from repro.core.runner import PointResult, drive, new_run
from repro.core.stats import AdaptiveConfig
from repro.core.topology import compile_plan
from repro.core.topology.catalog import exp1_plan
from repro.sim.faults import FaultPlan
from repro.sim.rpc import RetryPolicy

__all__ = ["SYSTEMS", "X_VALUES", "run_point", "sweep"]

SYSTEMS = (
    "mds-gris-cache",
    "mds-gris-nocache",
    "hawkeye-agent",
    "rgma-ps-lucky",
    "rgma-ps-uc",
)

# The user counts of Figures 5-8.
X_VALUES = (1, 10, 50, 100, 200, 300, 400, 500, 600)

# The paper could only drive ~100 UC consumers through one ConsumerServlet.
UC_VARIANT_MAX_USERS = 100


def run_point(
    system: str,
    users: int,
    seed: int = 1,
    *,
    params: StudyParams | None = None,
    warmup: float | None = None,
    window: float | None = None,
    adaptive: AdaptiveConfig | bool | None = None,
    retry: RetryPolicy | None = None,
    faults: FaultPlan | None = None,
    fidelity: str | None = None,
) -> PointResult:
    """Measure one (system, users) coordinate of Figures 5-8.

    ``retry``/``faults`` re-run the same scenario as a fault experiment
    (see :mod:`repro.core.experiments.faults`): the plan's fault-target
    node is the information server under study — for the R-GMA variants
    that is the ProducerServlet, and the ConsumerServlets get their own
    small retry policy for the CS->PS mediation hop.

    ``fidelity`` selects the simulation tier (``docs/FIDELITY.md``):
    ``None``/``"exact"`` run the per-client DES unchanged; ``"cohort"``
    and ``"meanfield"`` route the same deployment plan through
    :func:`repro.core.fidelity.fast_point`.  Fast tiers model the
    steady-state query path only, so they reject retry/fault/adaptive
    runs.
    """
    if system not in SYSTEMS:
        raise ValueError(f"unknown exp1 system {system!r}; pick from {SYSTEMS}")
    if system == "rgma-ps-uc" and users > UC_VARIANT_MAX_USERS:
        raise ValueError(
            f"the UC variant supports at most {UC_VARIANT_MAX_USERS} users "
            "(the paper's ConsumerServlet limit)"
        )
    if fidelity is not None and fidelity != "exact":
        from repro.core.fidelity import fast_point, require_plain_run

        require_plain_run(fidelity, adaptive=adaptive, retry=retry, faults=faults)
        return fast_point(
            exp1_plan(system, seed),
            system=system,
            x=users,
            users=users,
            tier=fidelity,
            params=params,
            seed=seed,
            warmup=warmup,
            window=window,
        )

    if system.startswith("mds-gris"):
        monitored: tuple[str, ...] = ("lucky7",)
        server_node = "lucky7"
        payload_fn = lambda uid: {"filter": "(objectclass=*)"}  # noqa: E731
    elif system == "hawkeye-agent":
        monitored = ("lucky4",)
        server_node = "lucky4"
        payload_fn = lambda uid: {"query": "status"}  # noqa: E731
    else:
        monitored = ("lucky3",)
        server_node = "lucky3"
        payload_fn = lambda uid: {"sql": "SELECT * FROM cpuLoad"}  # noqa: E731
    run = new_run(seed, params, monitored=monitored)
    p = run.params

    # The CS->PS hop rides through faults on its own small policy.
    cs_retry = None
    if system.startswith("rgma") and (retry is not None or faults is not None):
        cs_retry = RetryPolicy(
            max_attempts=2,
            base_backoff=0.25,
            max_backoff=2.0,
            rng=run.rng.stream("cs-retry", system, str(users)),
        )
    dep = compile_plan(exp1_plan(system, seed), run, mediation_retry=cs_retry)

    if system.startswith("mds-gris"):
        request_size = p.gris.request_size
    elif system == "hawkeye-agent":
        request_size = p.agent.request_size
    else:
        request_size = p.consumer_servlet.request_size

    if system == "rgma-ps-lucky":
        clients = lucky_clients(run, users, exclude=("lucky3",))
    else:
        clients = uc_clients(run, users)
    assert dep.entry is not None
    return drive(
        run,
        system=system,
        x=users,
        service=dep.entry,
        clients=clients,
        server_host=run.testbed.lucky[server_node],
        payload_fn=payload_fn,
        request_size=request_size,
        services_by_user=[dep.route(c) for c in clients] if dep.routed else None,
        warmup=warmup,
        window=window,
        adaptive=adaptive,
        retry=retry,
        faults=faults,
        fault_services=dep.fault_services if faults is not None else None,
    )


def sweep(
    system: str,
    x_values: _t.Sequence[int] = X_VALUES,
    seed: int = 1,
    **kwargs: _t.Any,
) -> list[PointResult]:
    """Full series for one figure legend entry."""
    limit = UC_VARIANT_MAX_USERS if system == "rgma-ps-uc" else None
    xs = [users for users in x_values if limit is None or users <= limit]
    return sweep_points(run_point, [(system, users, seed) for users in xs], **kwargs)
