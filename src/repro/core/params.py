"""Calibrated cost-model parameters for every service under study.

Every number here is a *calibration target*, not a measurement: the
systems under test are defunct, so service times were chosen to make
the simulated curves match the published figures' shapes (see
EXPERIMENTS.md for the per-figure comparison).  Each parameter's
docstring records which figure constrains it.  The models themselves
(connection overhead, serialized back ends, accept-queue refusal,
superlinear integration) are described in DESIGN.md §2.

Units: CPU costs in CPU-seconds on a Lucky node core (1133 MHz PIII);
latencies in seconds; sizes in bytes.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.core.costmodel import ConnectionOverhead

__all__ = [
    "GrisParams",
    "GiisParams",
    "AgentParams",
    "ProducerServletParams",
    "ConsumerServletParams",
    "RegistryParams",
    "ManagerParams",
    "WorkloadParams",
    "TestbedParams",
    "StudyParams",
    "default_params",
    "measurement_window",
]


@dataclass(frozen=True)
class GrisParams:
    """MDS GRIS service model (Experiments 1 and 3).

    * ``conn_overhead`` reproduces Fig 6's ~4 s cache-mode response
      plateau for >=50 users while keeping Fig 14's <1 s at 10 users.
    * ``provider_hold`` serializes provider execution (one slapd worker
      forks the scripts): 10 providers x 0.052 s caps uncached
      throughput below 2 queries/s (Fig 5).
    """

    cpu_per_query: float = 0.008  # slapd search CPU with data in cache
    cpu_per_entry: float = 0.0002  # result-assembly CPU per returned entry
    provider_hold: float = 0.052  # serialized seconds per uncached provider
    provider_cpu_fraction: float = 0.4  # fraction of the hold that burns CPU
    conn_overhead: ConnectionOverhead = field(
        default_factory=lambda: ConnectionOverhead(base=0.15, extra=3.8, scale=40.0)
    )
    max_threads: int = 1024  # slapd forks per connection; latency does the limiting
    backlog: int = 4096
    request_size: int = 480  # LDAP search request on the wire


@dataclass(frozen=True)
class GiisParams:
    """MDS GIIS: directory server (Exp 2) and aggregate server (Exp 4).

    * thread pool + backlog reproduce Fig 9's saturation near 100 q/s at
      ~200 users with successful responses staying <2 s (Fig 10);
    * ``cpu_per_query`` is ~2.5x the Manager's — "the load of GIIS is
      nearly twice as bad as Hawkeye Manager" (Fig 12), blamed on the
      LDAP backend;
    * ``aggregate_cpu_coeff``/``aggregate_cpu_exp`` give the superlinear
      per-registrant assembly cost behind Figs 17-18;
    * crash limits are the paper's: >200 registered GRIS under
      query-all, >500 registrations at all (§3.6).
    """

    cpu_per_query: float = 0.016
    conn_overhead: ConnectionOverhead = field(
        default_factory=lambda: ConnectionOverhead(base=0.10, extra=1.2, scale=60.0)
    )
    max_threads: int = 128
    backlog: int = 24
    request_size: int = 512
    # Experiment 4 (aggregation) cost: cpu = coeff * G**exp per query-all
    # over G registrants; query-part scales by part_fraction.
    aggregate_cpu_coeff: float = 9e-4
    aggregate_cpu_exp: float = 1.6
    part_fraction: float = 0.3
    max_queryall_registrants: int = 200
    max_registrants: int = 500
    entry_wire_bytes: int = 150  # LDIF bytes per aggregated entry


@dataclass(frozen=True)
class AgentParams:
    """Hawkeye Agent (Experiments 1 and 3).

    The Agent keeps no resident database — it re-collects modules per
    query (paper §3.3) under a single Startd lock.  The quadratic
    integration term makes m=11 cost ~22 ms (Fig 5: saturation near
    45 q/s) and m=90 cost ~1.5 s (Figs 13-14: <1 q/s, >10 s responses).
    """

    fetch_quad_coeff: float = 1.85e-4  # hold = coeff * modules^2 seconds
    fetch_cpu_fraction: float = 0.5  # fraction of the hold burning CPU
    convoy_coeff: float = 2.5e-4  # hold inflation per queued waiter (lock convoy)
    cpu_per_query: float = 0.004  # connection + ClassAd serialization
    conn_overhead: ConnectionOverhead = field(
        default_factory=lambda: ConnectionOverhead(base=0.25, extra=0.5, scale=80.0)
    )
    max_threads: int = 1024
    backlog: int = 4096
    request_size: int = 320


@dataclass(frozen=True)
class ProducerServletParams:
    """R-GMA ProducerServlet (Experiments 1 and 3).

    Servlet request handling is serialized on the buffer database
    (synchronized JDBC access): hold = linear + quadratic in producer
    count.  With 10 producers the cap is ~10 q/s and response grows
    near-linearly with users (Figs 5-6); with 90 producers throughput
    collapses below 1 q/s (Fig 13).
    """

    db_hold_linear: float = 0.008  # seconds per attached producer
    db_hold_quad: float = 2.0e-4  # seconds per producer^2 (mediation merges)
    db_cpu_fraction: float = 0.6
    convoy_coeff: float = 5e-4  # hold inflation per queued waiter (lock convoy)
    cpu_per_query: float = 0.018  # JVM + XML marshalling CPU
    conn_overhead: ConnectionOverhead = field(
        default_factory=lambda: ConnectionOverhead(base=0.35, extra=0.8, scale=60.0)
    )
    max_threads: int = 64
    backlog: int = 4096  # Java queues rather than refusing
    request_size: int = 700  # SQL query wrapped in HTTP/XML


@dataclass(frozen=True)
class ConsumerServletParams:
    """R-GMA ConsumerServlet (the mediator in front of consumers)."""

    cpu_per_query: float = 0.012
    mediation_hold: float = 0.010  # serialized mediation bookkeeping
    max_threads: int = 64
    backlog: int = 4096
    request_size: int = 700
    max_consumers: int = 120  # the paper's observed per-servlet limit (§3.1)


@dataclass(frozen=True)
class RegistryParams:
    """R-GMA Registry as a directory server (Experiment 2).

    Java thread-per-request over a 16-thread worker pool: CPU-bound at
    ~0.055 CPU-s per lookup, capping throughput near 36 q/s on the
    2-CPU Registry host with run-queue (load1) climbing past 4 — the
    paper's "lower throughput and higher load" (Figs 9, 11).
    """

    cpu_per_query: float = 0.09
    conn_overhead: ConnectionOverhead = field(
        default_factory=lambda: ConnectionOverhead(base=0.30, extra=0.9, scale=60.0)
    )
    max_threads: int = 24  # servlet worker threads actually runnable
    backlog: int = 100_000  # Java accepts and queues everything
    request_size: int = 650


@dataclass(frozen=True)
class ManagerParams:
    """Hawkeye Manager: directory (Exp 2) and aggregate server (Exp 4).

    * The indexed resident database makes directory queries cheap
      (0.006 CPU-s) — Fig 12 shows roughly half the GIIS's CPU load;
    * thread pool + backlog reproduce Fig 9's saturation ~110 q/s;
    * Exp 4 worst-case constraint scans cost ``scan_cpu_per_ad`` per
      resident Startd ad under the collector lock, and each incoming
      ad (30 s interval per simulated machine) costs ``ad_ingest_cpu``
      — together these produce Figs 17-20's Manager curves.
    """

    cpu_per_query: float = 0.006
    conn_overhead: ConnectionOverhead = field(
        default_factory=lambda: ConnectionOverhead(base=0.55, extra=0.6, scale=50.0)
    )
    max_threads: int = 128
    backlog: int = 64
    request_size: int = 400
    scan_cpu_per_ad: float = 0.004  # worst-case matchmaking per resident ad
    ad_ingest_cpu: float = 0.012  # parse + index one incoming Startd ad
    ad_ingest_hold: float = 0.004  # collector lock held per ingest
    ad_wire_bytes: int = 15_000  # serialized Startd ad
    advertise_interval: float = 30.0  # paper §3.6


@dataclass(frozen=True)
class WorkloadParams:
    """Client behaviour (paper §3.1): blocking sends, 1 s between queries."""

    think_time: float = 1.0
    think_jitter: float = 0.15  # relative jitter on the wait, breaking phase lock
    # Access pattern: "constant" (the paper's), "exponential", "pareto"
    # or "onoff" — the §4 future-work "additional patterns of user access".
    pattern: str = "constant"
    retry_wait: float = 1.0  # wait after a refused connection before retrying
    # User start times ramp over this many seconds: launching hundreds of
    # client scripts takes a while in reality, and an instantaneous start
    # would put a synthetic thundering-herd spike into the warm-up.
    start_spread: float = 8.0
    request_timeout: float | None = None  # clients block indefinitely, as in the study


@dataclass(frozen=True)
class TestbedParams:
    """The physical testbed (paper §3.1)."""

    __test__ = False  # keep pytest from collecting this as a test class

    lucky_cpus: int = 2
    lucky_cpu_rate: float = 1.0  # the 1133 MHz PIII reference
    lucky_nic_mbps: float = 100.0
    lucky_mem_mb: int = 512
    uc_cpus: int = 1
    uc_cpu_rate: float = 1.05  # 1208 MHz uniprocessor clients
    uc_nic_mbps: float = 100.0
    uc_mem_mb: int = 248
    uc_client_machines: int = 20
    max_users_per_uc_machine: int = 50
    wan_latency: float = 0.013  # UC <-> ANL one-way
    wan_mbps: float = 45.0  # shared DS3-class path between the sites
    lan_latency: float = 0.0002


@dataclass(frozen=True)
class StudyParams:
    """Everything the experiment harness needs, in one bundle."""

    gris: GrisParams = field(default_factory=GrisParams)
    giis: GiisParams = field(default_factory=GiisParams)
    agent: AgentParams = field(default_factory=AgentParams)
    producer_servlet: ProducerServletParams = field(default_factory=ProducerServletParams)
    consumer_servlet: ConsumerServletParams = field(default_factory=ConsumerServletParams)
    registry: RegistryParams = field(default_factory=RegistryParams)
    manager: ManagerParams = field(default_factory=ManagerParams)
    workload: WorkloadParams = field(default_factory=WorkloadParams)
    testbed: TestbedParams = field(default_factory=TestbedParams)


def default_params() -> StudyParams:
    """The calibrated parameter set used throughout the reproduction."""
    return StudyParams()


def measurement_window() -> tuple[float, float]:
    """(warmup, window) seconds for experiment runs.

    The paper averaged over 10-minute spans; the default here is a 60 s
    window after 20 s warm-up so the full figure sweep stays fast.  Set
    ``REPRO_FULL=1`` for the paper-faithful 600 s window.
    """
    if os.environ.get("REPRO_FULL"):
        return (60.0, 600.0)
    return (20.0, 60.0)
