"""Parallel sweep execution with deterministic merge and a point-level cache.

Every figure of the paper is a sweep over independent ``(system, x,
seed)`` points, and each point builds its own
:class:`~repro.sim.engine.Simulator` and
:class:`~repro.sim.randomness.RngHub` — so points can run in any order,
on any worker, and still produce bit-identical results.  This module
exploits that twice:

* :func:`run_specs` fans a list of :class:`PointSpec` out over a
  process pool (``jobs`` workers) and merges the results back **in
  submission order**, so output ordering, figure tables and bench JSON
  are byte-identical to the serial path;
* a content-addressed :class:`PointCache` (keyed by the fully-resolved
  call — function, arguments, :class:`~repro.core.params.StudyParams`
  contents — plus a source-version stamp) lets repeated figure or
  bench runs skip already-computed points entirely.

Specs whose arguments cannot be canonicalized (shared mutable objects
like :class:`~repro.sim.rpc.RetryPolicy` or
:class:`~repro.sim.faults.FaultPlan`) are executed inline, serially, in
submission order — exactly as the serial path would — because farming
them out would silently fork their state.

Cache invalidation: the key embeds ``source_stamp()``, a digest of
every ``repro`` source file, so *any* source change invalidates every
cached point; stale entries are simply never looked up again (prune the
directory at will).  Corrupt or undecodable entries degrade to misses.

Configuration: :func:`configure` sets process-wide defaults; the
``REPRO_JOBS`` and ``REPRO_POINTCACHE`` environment variables seed them
(the CLI ``--jobs``/``--cache-dir`` flags win).  See docs/BENCHMARKS.md.
"""

from __future__ import annotations

import dataclasses
import hashlib
import importlib
import json
import os
import pathlib
import typing as _t
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from time import perf_counter

from repro.core.metrics import MetricsSummary, ResilienceSummary
from repro.core.runner import PointResult
from repro.core.stats import ReplicationInfo, SteadyStateInfo

__all__ = [
    "PointSpec",
    "PointCache",
    "SweepStats",
    "Uncanonicalizable",
    "canonical",
    "configure",
    "default_cache",
    "default_jobs",
    "register_codec",
    "run_specs",
    "source_stamp",
    "counters_snapshot",
    "last_stats",
]

CACHE_SCHEMA = 1


# -- canonical call forms -----------------------------------------------------


class Uncanonicalizable(TypeError):
    """Raised when a call argument has no stable, content-addressed form."""


def canonical(value: _t.Any) -> _t.Any:
    """A JSON-able canonical form of ``value``, or raise Uncanonicalizable.

    Primitives pass through; tuples/lists/dicts recurse; *frozen*
    dataclasses (the parameter bundles — ``StudyParams`` and friends)
    canonicalize field-by-field under their class name, so two
    parameter sets hash equal exactly when their contents are equal.
    Anything else — live RNGs, retry policies, fault plans, lambdas —
    refuses, which marks the spec serial-only and uncacheable.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (tuple, list)):
        return [canonical(v) for v in value]
    if isinstance(value, dict):
        out = {}
        for k in sorted(value):
            if not isinstance(k, str):
                raise Uncanonicalizable(f"non-string dict key {k!r}")
            out[k] = canonical(value[k])
        return out
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        params = getattr(type(value), "__dataclass_params__", None)
        if params is not None and params.frozen:
            return {
                "__dataclass__": type(value).__qualname__,
                **{
                    f.name: canonical(getattr(value, f.name))
                    for f in dataclasses.fields(value)
                },
            }
    raise Uncanonicalizable(f"cannot canonicalize {type(value).__name__} value {value!r}")


_SOURCE_STAMP: str | None = None


def source_stamp() -> str:
    """Digest of every ``repro`` source file (memoized per process).

    Embedding this in cache keys gives the invalidation story: touch
    any file under ``src/repro`` and every previously cached point
    misses on the next run.
    """
    global _SOURCE_STAMP
    if _SOURCE_STAMP is None:
        import repro

        root = pathlib.Path(repro.__file__).parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            digest.update(str(path.relative_to(root)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _SOURCE_STAMP = digest.hexdigest()
    return _SOURCE_STAMP


# -- result codecs ------------------------------------------------------------

# Cached results round-trip through JSON via registered dataclasses.
# json floats round-trip exactly (repr-based), so a decoded PointResult
# compares equal, field for field, to the one the simulator produced.
_CODECS: dict[str, type] = {}


def register_codec(cls: type) -> type:
    """Register a dataclass for exact JSON round-tripping in the cache.

    Experiment modules register their own wrappers (``ScalePoint``,
    ``FaultPointResult``) at import time; unknown tags found on decode
    degrade to cache misses.
    """
    _CODECS[cls.__name__] = cls
    return cls


for _cls in (PointResult, MetricsSummary, ResilienceSummary, ReplicationInfo, SteadyStateInfo):
    register_codec(_cls)


class CacheDecodeError(ValueError):
    """A cache entry references a codec this process does not know."""


def encode_result(value: _t.Any) -> _t.Any:
    """Encode a (possibly nested) sweep result to JSON-able data."""
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return value
    if isinstance(value, (list, tuple)):
        return [encode_result(v) for v in value]
    if isinstance(value, dict):
        return {str(k): encode_result(v) for k, v in value.items()}
    if dataclasses.is_dataclass(value) and type(value).__name__ in _CODECS:
        return {
            "__type__": type(value).__name__,
            **{
                f.name: encode_result(getattr(value, f.name))
                for f in dataclasses.fields(value)
            },
        }
    raise CacheDecodeError(f"no codec for {type(value).__name__}")


def decode_result(data: _t.Any) -> _t.Any:
    """Inverse of :func:`encode_result`."""
    if isinstance(data, list):
        return [decode_result(v) for v in data]
    if isinstance(data, dict):
        tag = data.get("__type__")
        if tag is None:
            return {k: decode_result(v) for k, v in data.items()}
        cls = _CODECS.get(tag)
        if cls is None:
            raise CacheDecodeError(f"unknown cached result type {tag!r}")
        fields = {k: decode_result(v) for k, v in data.items() if k != "__type__"}
        return cls(**fields)
    return data


# -- point specs --------------------------------------------------------------


@dataclass(frozen=True)
class PointSpec:
    """One independent sweep point: a module-level function plus arguments.

    ``fn_ref`` is a ``"module:qualname"`` string so the call pickles to
    any worker (fork or spawn) and addresses the cache stably.
    """

    fn_ref: str
    args: tuple
    kwargs: tuple  # sorted (name, value) pairs, hash-friendly

    @classmethod
    def from_call(
        cls, fn: _t.Callable, args: _t.Sequence, kwargs: dict[str, _t.Any] | None = None
    ) -> "PointSpec":
        if fn.__qualname__ != fn.__name__:
            raise ValueError(f"{fn.__qualname__} is not module-level; cannot spec it")
        return cls(
            fn_ref=f"{fn.__module__}:{fn.__name__}",
            args=tuple(args),
            kwargs=tuple(sorted((kwargs or {}).items())),
        )

    def canonical_call(self) -> dict[str, _t.Any] | None:
        """The content-addressed call form, or None when uncanonicalizable."""
        try:
            return {
                "fn": self.fn_ref,
                "args": canonical(list(self.args)),
                "kwargs": canonical(dict(self.kwargs)),
            }
        except Uncanonicalizable:
            return None

    def resolve(self) -> _t.Callable:
        module, name = self.fn_ref.split(":")
        return getattr(importlib.import_module(module), name)


def _run_spec(spec: PointSpec) -> tuple[_t.Any, float]:
    """Worker entry point: execute one spec, timing its busy seconds."""
    start = perf_counter()
    result = spec.resolve()(*spec.args, **dict(spec.kwargs))
    return result, perf_counter() - start


# -- the point cache ----------------------------------------------------------


class PointCache:
    """Content-addressed store of sweep results under one directory.

    Layout: ``<root>/<key[:2]>/<key>.json`` where ``key`` is the SHA-256
    of the canonical call plus :func:`source_stamp`.  Entries are
    self-describing JSON; anything unreadable is treated as a miss.
    """

    def __init__(self, root: pathlib.Path | str) -> None:
        self.root = pathlib.Path(root)

    def key_for(self, spec: PointSpec) -> str | None:
        call = spec.canonical_call()
        if call is None:
            return None
        payload = json.dumps(
            {"schema": CACHE_SCHEMA, "stamp": source_stamp(), "call": call},
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    def _path(self, key: str) -> pathlib.Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> tuple[bool, _t.Any]:
        """(hit, result) — any decode problem is a miss, never an error."""
        try:
            data = json.loads(self._path(key).read_text())
            if data.get("schema") != CACHE_SCHEMA:
                return False, None
            return True, decode_result(data["result"])
        except (OSError, ValueError, KeyError, TypeError):
            return False, None

    def put(self, key: str, spec: PointSpec, result: _t.Any) -> bool:
        """Store one result; unencodable results are skipped silently."""
        try:
            encoded = encode_result(result)
        except CacheDecodeError:
            return False
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"schema": CACHE_SCHEMA, "fn": spec.fn_ref, "result": encoded}
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(payload, sort_keys=True) + "\n")
        tmp.replace(path)  # atomic: concurrent writers race benignly
        return True


# -- configuration ------------------------------------------------------------

_DEFAULT_JOBS: int | None = None
_DEFAULT_CACHE: PointCache | None = None
_CACHE_CONFIGURED = False


def configure(
    jobs: int | None = None, cache_dir: pathlib.Path | str | None = None
) -> None:
    """Set process-wide defaults for :func:`run_specs`.

    ``jobs=None`` leaves the worker count to the environment
    (``REPRO_JOBS``, else serial); ``cache_dir=None`` likewise defers to
    ``REPRO_POINTCACHE``; ``cache_dir=""`` disables caching explicitly.
    """
    global _DEFAULT_JOBS, _DEFAULT_CACHE, _CACHE_CONFIGURED
    if jobs is not None:
        _DEFAULT_JOBS = max(1, int(jobs))
    if cache_dir is not None:
        _CACHE_CONFIGURED = True
        _DEFAULT_CACHE = PointCache(cache_dir) if str(cache_dir) else None


def default_jobs() -> int:
    """Configured worker count, else ``REPRO_JOBS``, else 1 (serial)."""
    if _DEFAULT_JOBS is not None:
        return _DEFAULT_JOBS
    try:
        return max(1, int(os.environ.get("REPRO_JOBS", "1")))
    except ValueError:
        return 1


def default_cache() -> PointCache | None:
    """Configured cache, else ``REPRO_POINTCACHE``, else disabled."""
    if _CACHE_CONFIGURED:
        return _DEFAULT_CACHE
    env = os.environ.get("REPRO_POINTCACHE", "")
    return PointCache(env) if env else None


# -- execution ----------------------------------------------------------------


@dataclass
class SweepStats:
    """Accounting for one :func:`run_specs` call."""

    jobs: int = 1
    points: int = 0
    executed: int = 0
    cache_hits: int = 0
    busy_seconds: float = 0.0  # summed per-point execution time
    wall_seconds: float = 0.0

    @property
    def wall_speedup(self) -> float:
        """Summed point time over wall time — the fan-out's payoff."""
        return self.busy_seconds / self.wall_seconds if self.wall_seconds > 0 else 0.0


# Process-wide accumulators so bench glue can attribute sweep work to a
# timed region by snapshot delta (see benchmarks/benchjson.py).
_counters = {
    "points": 0,
    "executed": 0,
    "cache_hits": 0,
    "busy_seconds": 0.0,
    "max_jobs": 1,
}
_last_stats = SweepStats()


def counters_snapshot() -> dict[str, float]:
    """Copy of the process-wide sweep counters."""
    return dict(_counters)


def last_stats() -> SweepStats:
    """Stats of the most recent :func:`run_specs` call."""
    return _last_stats


def _pool(jobs: int) -> ProcessPoolExecutor:
    try:
        import multiprocessing

        ctx = multiprocessing.get_context("fork")  # cheap start, shared imports
    except ValueError:  # pragma: no cover - platforms without fork
        ctx = None
    return ProcessPoolExecutor(max_workers=jobs, mp_context=ctx)


def run_specs(
    specs: _t.Sequence[PointSpec],
    *,
    jobs: int | None = None,
    cache: PointCache | None | str = "default",
) -> list[_t.Any]:
    """Execute specs — cached, pooled or inline — and merge in order.

    The returned list is index-aligned with ``specs`` whatever mix of
    cache hits, worker results and inline runs produced it, so callers
    observe exactly the serial path's output.
    """
    global _last_stats
    jobs = default_jobs() if jobs is None else max(1, int(jobs))
    store = default_cache() if cache == "default" else cache
    start = perf_counter()
    stats = SweepStats(jobs=jobs, points=len(specs))

    results: list[_t.Any] = [None] * len(specs)
    keys: list[str | None] = [None] * len(specs)
    pending: list[int] = []  # indices still to execute, in order
    for i, spec in enumerate(specs):
        key = store.key_for(spec) if store is not None else None
        keys[i] = key
        if key is not None:
            hit, value = store.get(key)
            if hit:
                results[i] = value
                stats.cache_hits += 1
                continue
        pending.append(i)

    parallelizable = [i for i in pending if jobs > 1 and specs[i].canonical_call() is not None]
    inline = [i for i in pending if i not in set(parallelizable)]

    if parallelizable:
        with _pool(jobs) as pool:
            futures = {i: pool.submit(_run_spec, specs[i]) for i in parallelizable}
            for i, future in futures.items():
                results[i], busy = future.result()
                stats.busy_seconds += busy
                stats.executed += 1
    for i in inline:
        results[i], busy = _run_spec(specs[i])
        stats.busy_seconds += busy
        stats.executed += 1

    if store is not None:
        for i in pending:
            if keys[i] is not None:
                store.put(keys[i], specs[i], results[i])

    stats.wall_seconds = perf_counter() - start
    _counters["points"] += stats.points
    _counters["executed"] += stats.executed
    _counters["cache_hits"] += stats.cache_hits
    _counters["busy_seconds"] += stats.busy_seconds
    _counters["max_jobs"] = max(_counters["max_jobs"], jobs)
    _last_stats = stats
    return results
