"""``repro-scenario`` — check, run and fuzz declarative scenarios.

Subcommands:

* ``list``                  — named scenarios plus their models;
* ``show NAME|FILE``        — validate and summarize one scenario;
* ``check FILE...``         — round-trip every ``*.scenario.json``
  through the codec and compile its paired plan on the DES and the
  live asyncio runtime (the CI ``scenario-check`` step);
* ``run SYSTEM SCENARIO``   — one measurement point under a scenario;
* ``fuzz``                  — the seeded metamorphic fuzzer (CI
  ``fuzz-smoke``); failing cases are minimized and saved as repro
  files;
* ``replay FILE...``        — re-check saved fuzz cases (the committed
  ``tests/fuzz_corpus/``).
"""

from __future__ import annotations

import argparse
import json
import sys
import typing as _t
from pathlib import Path

from repro.core.cliversion import add_version_argument
from repro.core.experiments.scenarios import (
    NAMED_SCENARIOS,
    SYSTEMS,
    format_scenario_table,
    resolve_scenario,
    run_scenario_point,
)
from repro.core.scenario import codec
from repro.core.scenario.model import Scenario, ScenarioError

__all__ = ["main", "build_parser"]


def _describe(scenario: Scenario) -> str:
    parts = []
    for model in scenario.arrivals:
        if model.kind == "diurnal":
            parts.append(
                f"diurnal(period={model.period:g}, amplitude={model.amplitude:g})"
            )
        else:
            parts.append(
                f"flash(at={model.at:g}, duration={model.duration:g}, "
                f"peak={model.peak:g})"
            )
    if scenario.churn is not None:
        parts.append(
            f"churn(session={scenario.churn.session_time:g}, "
            f"down={scenario.churn.downtime:g})"
        )
    if scenario.wan is not None:
        wan = scenario.wan
        drawn = f"rate={wan.rate:g}" if wan.rate else f"{len(wan.episodes)} explicit"
        parts.append(f"wan({drawn}, loss={wan.loss:g})")
    if scenario.mix:
        parts.append(
            "mix(" + ", ".join(f"{c.fraction:.0%} {c.pattern}" for c in scenario.mix) + ")"
        )
    return "; ".join(parts) if parts else "empty (changes nothing)"


def _cmd_list(args: argparse.Namespace) -> int:
    width = max(map(len, NAMED_SCENARIOS), default=0)
    for name, thunk in NAMED_SCENARIOS.items():
        print(f"{name:<{width}}  {_describe(thunk())}")
    return 0


def _cmd_show(args: argparse.Namespace) -> int:
    scenario = resolve_scenario(args.name)
    print(f"scenario {scenario.name!r} (seed {scenario.seed})")
    if scenario.description:
        print(f"  {scenario.description}")
    print(f"  models: {_describe(scenario)}")
    if scenario.plan:
        print(f"  paired plan: {scenario.plan}")
    exact = scenario.requires_exact()
    print(f"  tiers: {'exact only (' + ', '.join(exact) + ')' if exact else 'all'}")
    return 0


def _compile_pair(scenario: Scenario, *, runtimes: str) -> None:
    """Compile the scenario's paired plan on the requested runtimes."""
    from repro.core.topology import catalog, planfile

    entries = catalog.catalog_entries()
    if scenario.plan in entries:
        plan = entries[scenario.plan]()
    elif Path(scenario.plan).exists():
        plan = planfile.load(scenario.plan)
    else:
        raise ScenarioError(
            f"paired plan {scenario.plan!r} is neither a catalog entry nor a file"
        )
    plan.validate()
    if "des" in runtimes:
        from repro.core.runner import new_run
        from repro.core.topology import compile_plan
        from repro.sim.rpc import RetryPolicy

        run = new_run(1)
        compile_plan(
            plan,
            run,
            registration_retry=RetryPolicy(rng=run.rng.stream("check-registrar")),
        )
    if "live" in runtimes:
        from repro.live.runtime import AsyncioRuntime

        AsyncioRuntime().compile(plan)


def _cmd_check(args: argparse.Namespace) -> int:
    failures = 0
    for path in args.paths:
        try:
            text = Path(path).read_text()
            scenario = codec.loads(text)
            if codec.loads(codec.dumps(scenario)) != scenario:
                raise ScenarioError("codec round-trip changed the scenario")
            if scenario.plan:
                _compile_pair(scenario, runtimes=args.runtimes)
            paired = f", plan {scenario.plan}" if scenario.plan else ""
            print(f"ok   {path}: {scenario.name} ({_describe(scenario)}{paired})")
        except (ScenarioError, OSError, ValueError) as exc:
            failures += 1
            print(f"FAIL {path}: {exc}")
    return 1 if failures else 0


def _cmd_run(args: argparse.Namespace) -> int:
    result = run_scenario_point(
        args.system,
        args.scenario,
        args.users,
        args.seed,
        warmup=args.warmup,
        window=args.window,
        fidelity=args.fidelity,
    )
    if args.json:
        doc: dict[str, _t.Any] = {
            "system": result.system,
            "scenario": result.scenario,
            "users": result.x,
            "throughput": result.result.throughput,
            "response_time": result.result.response_time,
        }
        if result.audit is not None:
            doc["audit"] = {
                "client_ok": result.audit.client_ok,
                "client_refused": result.audit.client_refused,
                "churn_leaves": result.audit.churn_leaves,
                "churn_rejoins": result.audit.churn_rejoins,
                "wan_episodes": result.audit.wan_episodes,
                "messages_lost": result.audit.messages_lost,
            }
        print(json.dumps(doc, indent=2))
    else:
        print(format_scenario_table([result]))
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.core.scenario.fuzz import minimize, run_fuzz, save_case

    report = run_fuzz(
        args.seed,
        args.count,
        metamorphic=not args.no_metamorphic,
        log=print,
    )
    failures = report.failures
    if not failures:
        print(f"fuzz seed {args.seed}: {args.count} cases, all invariants held")
        return 0
    print(f"fuzz seed {args.seed}: {len(failures)}/{args.count} cases FAILED")
    if args.save_failures:
        out = Path(args.save_failures)
        out.mkdir(parents=True, exist_ok=True)
        for failure in failures:
            case = failure.case
            if args.minimize:
                print(f"minimizing {case.label} ...")
                case = minimize(case, metamorphic=not args.no_metamorphic)
            path = out / f"{case.scenario.name}.json"
            save_case(case, path)
            print(f"saved repro: {path}")
    return 1


def _cmd_replay(args: argparse.Namespace) -> int:
    from repro.core.scenario.fuzz import check_case, load_case

    failures = 0
    for path in args.paths:
        case = load_case(path)
        result = check_case(case, metamorphic=not args.no_metamorphic)
        if result.ok:
            print(f"ok   {path}: {case.label}")
        else:
            failures += 1
            print(f"FAIL {path}: {case.label}")
            for violation in result.violations:
                print(f"    {violation}")
    return 1 if failures else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-scenario",
        description="Check, run and fuzz declarative measurement scenarios.",
    )
    add_version_argument(parser)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the named scenarios")

    p_show = sub.add_parser("show", help="validate and summarize one scenario")
    p_show.add_argument("name", help="named scenario or *.scenario.json path")

    p_check = sub.add_parser(
        "check", help="round-trip scenario files and compile their paired plans"
    )
    p_check.add_argument("paths", nargs="+", help="*.scenario.json files")
    p_check.add_argument(
        "--runtimes",
        default="des,live",
        help="comma-set of runtimes to compile paired plans on (des,live,none)",
    )

    p_run = sub.add_parser("run", help="run one measurement point under a scenario")
    p_run.add_argument("system", choices=SYSTEMS)
    p_run.add_argument("scenario", help="named scenario or *.scenario.json path")
    p_run.add_argument("--users", type=int, default=50)
    p_run.add_argument("--seed", type=int, default=1)
    p_run.add_argument("--warmup", type=float, default=None)
    p_run.add_argument("--window", type=float, default=None)
    p_run.add_argument(
        "--fidelity",
        choices=("exact", "cohort", "meanfield"),
        default=None,
        help="fast tiers accept environment-free scenarios only",
    )
    p_run.add_argument("--json", action="store_true")

    p_fuzz = sub.add_parser("fuzz", help="run the seeded metamorphic fuzzer")
    p_fuzz.add_argument("--seed", type=int, required=True)
    p_fuzz.add_argument("--count", type=int, default=10)
    p_fuzz.add_argument(
        "--no-metamorphic",
        action="store_true",
        help="single-run invariants only (skip doubled/extended partner runs)",
    )
    p_fuzz.add_argument(
        "--save-failures", metavar="DIR", help="write failing cases as JSON repros"
    )
    p_fuzz.add_argument(
        "--minimize",
        action="store_true",
        help="shrink failing cases before saving them",
    )

    p_replay = sub.add_parser("replay", help="re-check saved fuzz cases")
    p_replay.add_argument("paths", nargs="+", help="fuzz-case JSON files")
    p_replay.add_argument("--no-metamorphic", action="store_true")

    return parser


def main(argv: _t.Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "list": _cmd_list,
        "show": _cmd_show,
        "check": _cmd_check,
        "run": _cmd_run,
        "fuzz": _cmd_fuzz,
        "replay": _cmd_replay,
    }
    try:
        return handlers[args.command](args)
    except ScenarioError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
