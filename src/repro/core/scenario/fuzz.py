"""A seeded metamorphic fuzzer for the scenario plane.

Randomized testing for a simulator has an oracle problem: no one knows
the "right" throughput of a random deployment under a random flash
crowd.  What we *do* know are properties that must hold for every
(plan family, scenario) pair the validity rules admit:

* **conservation** — every connection a service accepted is accounted
  for: ``arrived == refused + completed + errors + dropped + open``;
* **capacity** — concurrency never exceeds ``max_threads + backlog``
  (the invariant a churn/fault double-free breaks first);
* **goodput <= offered** — clients cannot report more OK completions
  than servers completed;
* **cache bounds** — ``0 <= hits <= lookups`` on every directory cache;
* **churn bookkeeping** — rejoins never outnumber leaves,
  re-registrations never outnumber unregistrations, and no service is
  still down at the horizon once every churned node has rejoined;
* **recovery** — if churn ended comfortably before the horizon, OK
  completions resumed afterwards;

plus two *metamorphic* relations between deliberately-related runs:

* **monotone load** — doubling the closed-loop population must not
  collapse throughput unless contention signals (refusals, timeouts,
  errors) rise with it;
* **time extension** — lengthening the measurement window of an
  environment-free scenario (no churn/WAN, whose event draws depend on
  the horizon) only appends events: every monotone counter is ``>=``
  its shorter-run value.

:func:`run_fuzz` draws ``count`` cases from streams keyed only by
``(seed, index)`` — fully deterministic, independent of worker count —
and checks each.  :func:`minimize` shrinks a failing case model by
model for the committed repro corpus (``tests/fuzz_corpus/``), which
:func:`load_case` replays.
"""

from __future__ import annotations

import json
import typing as _t
from dataclasses import dataclass, field, replace
from pathlib import Path

import numpy as np

from repro.core.experiments import exp1, exp2
from repro.core.experiments.scenarios import (
    RECOVERY_SLACK,
    SYSTEMS,
    RunAudit,
    run_scenario_point,
)
from repro.core.params import default_params
from repro.core.scenario import codec
from repro.core.scenario.model import (
    ArrivalModel,
    ChurnModel,
    MixComponent,
    Scenario,
    ScenarioError,
    WanWeather,
)
from repro.core.workload import THINK_PATTERNS
from repro.sim.randomness import RngHub

__all__ = [
    "FuzzCase",
    "CaseReport",
    "FuzzReport",
    "audit_violations",
    "draw_case",
    "check_case",
    "run_fuzz",
    "minimize",
    "case_to_doc",
    "case_from_doc",
    "save_case",
    "load_case",
]

#: Relative throughput slack before "monotone load" counts as violated
#: (absorbs closed-loop sampling noise near the saturation knee).
MONOTONE_TOLERANCE = 0.10

#: Window stretch factor for the time-extension relation.
EXTENSION_FACTOR = 1.5

_USER_CAPS = {
    "rgma-ps-uc": exp1.UC_VARIANT_MAX_USERS,
    "rgma-registry-uc": exp2.UC_VARIANT_MAX_USERS,
}


@dataclass(frozen=True)
class FuzzCase:
    """One randomly drawn (plan family, scenario, load) coordinate."""

    system: str
    users: int
    seed: int  # run seed (RngHub of the simulation itself)
    warmup: float
    window: float
    scenario: Scenario

    @property
    def label(self) -> str:
        return f"{self.system}/{self.scenario.name} x{self.users} seed={self.seed}"


@dataclass(frozen=True)
class CaseReport:
    """One checked case: empty ``violations`` means every invariant held."""

    case: FuzzCase
    violations: tuple[str, ...] = ()
    throughput: float = 0.0
    client_ok: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations


@dataclass
class FuzzReport:
    """A whole fuzz run; ``failures`` drives the CI exit code."""

    seed: int
    count: int
    reports: list[CaseReport] = field(default_factory=list)

    @property
    def failures(self) -> list[CaseReport]:
        return [r for r in self.reports if not r.ok]


# -- case generation ---------------------------------------------------------


def _round(x: float, places: int = 3) -> float:
    """Shorten drawn floats so corpus files stay readable and stable."""
    return round(float(x), places)


def _draw_scenario(rng: np.random.Generator, name: str, warmup: float, window: float) -> Scenario:
    horizon = warmup + window
    arrivals: list[ArrivalModel] = []
    for _ in range(int(rng.integers(0, 3))):
        if rng.random() < 0.5:
            arrivals.append(
                ArrivalModel(
                    kind="diurnal",
                    period=_round(rng.uniform(15.0, 60.0)),
                    amplitude=_round(rng.uniform(0.0, 0.8)),
                    phase=_round(rng.uniform(0.0, 1.0)),
                )
            )
        else:
            arrivals.append(
                ArrivalModel(
                    kind="flash",
                    at=_round(rng.uniform(warmup, warmup + 0.5 * window)),
                    duration=_round(rng.uniform(3.0, 0.5 * window)),
                    peak=_round(rng.uniform(1.5, 5.0)),
                    ramp=_round(rng.uniform(0.1, 0.5)),
                )
            )

    churn = None
    if rng.random() < 0.45:
        start = _round(rng.uniform(2.0, 0.4 * horizon))
        churn = ChurnModel(
            session_time=_round(rng.uniform(6.0, 20.0)),
            downtime=_round(rng.uniform(2.0, 6.0)),
            start=start,
            end=_round(start + rng.uniform(0.3, 0.7) * window),
        )

    wan = None
    if rng.random() < 0.45:
        wan = WanWeather(
            rate=_round(rng.uniform(0.02, 0.12)),
            mean_duration=_round(rng.uniform(2.0, 6.0)),
            extra_latency=_round(rng.uniform(0.01, 0.08)),
            loss=_round(rng.uniform(0.0, 0.2)),
        )

    mix: tuple[MixComponent, ...] = ()
    if rng.random() < 0.4:
        k = int(rng.integers(2, 4))
        weights = rng.random(k) + 0.2
        fractions = weights / weights.sum()
        patterns = tuple(THINK_PATTERNS)
        mix = tuple(
            MixComponent(
                fraction=float(fractions[i]),
                pattern=patterns[int(rng.integers(0, len(patterns)))],
            )
            for i in range(k)
        )

    return Scenario(
        name=name,
        seed=int(rng.integers(0, 2**16)),
        arrivals=tuple(arrivals),
        churn=churn,
        wan=wan,
        mix=mix,
    ).validate()


def draw_case(seed: int, index: int) -> FuzzCase:
    """The ``index``-th case of fuzz run ``seed`` — a pure function.

    Every draw comes from the stream ``("fuzz", seed, index)``, so case
    *i* is identical however many workers run and whatever order cases
    execute in.
    """
    rng = RngHub(seed).stream("fuzz", str(seed), str(index))
    system = SYSTEMS[int(rng.integers(0, len(SYSTEMS)))]
    users = int(rng.integers(4, 25))
    users = min(users, _USER_CAPS.get(system, users))
    warmup = 4.0
    window = _round(rng.uniform(12.0, 20.0), 1)
    return FuzzCase(
        system=system,
        users=users,
        seed=int(rng.integers(1, 7)),
        warmup=warmup,
        window=window,
        scenario=_draw_scenario(rng, f"fuzz-{seed}-{index}", warmup, window),
    )


# -- invariants --------------------------------------------------------------


def audit_violations(audit: RunAudit, *, min_tail: float = 0.0) -> list[str]:
    """Single-run invariant violations in one :class:`RunAudit`.

    ``min_tail`` is the churn-free tail (beyond ``RECOVERY_SLACK``) a run
    must have before the recovery invariant applies — callers that know
    the scenario derive it from the worst think-time stretch over the
    tail (:func:`check_case`), since a diurnal trough can legitimately
    hold every user silent for ``think_time / MIN_RATE`` seconds.
    """
    v: list[str] = []
    for name, s in audit.services.items():
        if s.arrived != s.accounted:
            v.append(
                f"conservation: {name} arrived {s.arrived} != "
                f"refused {s.refused} + completed {s.completed} + errors {s.errors}"
                f" + dropped {s.dropped} + open {s.open_at_end}"
            )
        if s.max_concurrent > s.capacity:
            v.append(
                f"capacity: {name} max_concurrent {s.max_concurrent} "
                f"> capacity {s.capacity}"
            )
        if min(s.arrived, s.refused, s.completed, s.errors, s.dropped, s.open_at_end) < 0:
            v.append(f"negative-counter: {name} {s}")
    completed = sum(s.completed for s in audit.services.values())
    if audit.client_ok > completed:
        v.append(
            f"goodput: clients report {audit.client_ok} OK "
            f"but services completed only {completed}"
        )
    if not 0 <= audit.cache_hits <= audit.cache_lookups:
        v.append(
            f"cache-bounds: hits {audit.cache_hits} "
            f"outside [0, lookups {audit.cache_lookups}]"
        )
    if audit.churn_rejoins > audit.churn_leaves:
        v.append(
            f"churn-bookkeeping: {audit.churn_rejoins} rejoins "
            f"> {audit.churn_leaves} leaves"
        )
    if audit.directory_registers > audit.directory_unregisters:
        v.append(
            f"churn-bookkeeping: {audit.directory_registers} re-registers "
            f"> {audit.directory_unregisters} unregisters"
        )
    if audit.churn_leaves and audit.churn_rejoins == audit.churn_leaves:
        stuck = [n for n, s in audit.services.items() if s.down_at_end]
        if stuck:
            v.append(
                f"stuck-down: every churned node rejoined but {stuck} "
                "still down at the horizon (unbalanced fail/restore?)"
            )
    if (
        audit.ok_after_churn == 0
        and audit.churn_rejoins == audit.churn_leaves
        and audit.last_churn_end + RECOVERY_SLACK + min_tail < audit.horizon
    ):
        v.append(
            f"recovery: churn ended at t={audit.last_churn_end:.1f} "
            f"(horizon {audit.horizon:.1f}) but no OK completion started after "
            f"t={audit.last_churn_end + RECOVERY_SLACK:.1f}"
        )
    return v


def _recovery_tail(case: FuzzCase, audit: RunAudit, response_time: float) -> float:
    """The churn-free tail a run needs before recovery is *expected*.

    A closed-loop user must first drain whatever request was in flight
    when churn ended (~one response time), wait one (modulated) think
    time, then start AND finish a new request before the horizon — on a
    saturated system (the uncached GRIS serves in >10 s) that is two
    more response times than an idle one.
    """
    start = audit.last_churn_end + RECOVERY_SLACK
    if start >= audit.horizon:
        return 0.0
    span = audit.horizon - start
    scale = max(
        case.scenario.think_scale(start + span * i / 16.0) for i in range(17)
    )
    think = default_params().workload.think_time
    return scale * think + 2.0 * response_time + 2.0


def check_case(case: FuzzCase, *, metamorphic: bool = True) -> CaseReport:
    """Run one case (plus its metamorphic partners) against the invariants."""
    base = run_scenario_point(
        case.system,
        case.scenario,
        case.users,
        case.seed,
        warmup=case.warmup,
        window=case.window,
    )
    assert base.audit is not None
    min_tail = _recovery_tail(case, base.audit, base.result.response_time)
    violations = audit_violations(base.audit, min_tail=min_tail)

    if metamorphic:
        # Monotone load: double the population (respecting validity caps).
        doubled_users = min(2 * case.users, _USER_CAPS.get(case.system, 2 * case.users))
        if doubled_users > case.users:
            doubled = run_scenario_point(
                case.system,
                case.scenario,
                doubled_users,
                case.seed,
                warmup=case.warmup,
                window=case.window,
            )
            assert doubled.audit is not None
            violations += audit_violations(
                doubled.audit,
                min_tail=_recovery_tail(case, doubled.audit, doubled.result.response_time),
            )
            contention = lambda a: a.client_refused + a.client_timeout + a.client_error  # noqa: E731
            if (
                doubled.result.throughput
                < base.result.throughput * (1.0 - MONOTONE_TOLERANCE)
                and contention(doubled.audit) <= contention(base.audit)
            ):
                violations.append(
                    f"monotone-load: {doubled_users} users move "
                    f"{doubled.result.throughput:.2f} q/s vs "
                    f"{base.result.throughput:.2f} at {case.users}, "
                    "with no rise in contention signals"
                )

        # Time extension: only environment-free scenarios have the prefix
        # property (churn/WAN event draws depend on the horizon).
        if not case.scenario.requires_exact():
            longer = run_scenario_point(
                case.system,
                case.scenario,
                case.users,
                case.seed,
                warmup=case.warmup,
                window=_round(case.window * EXTENSION_FACTOR, 1),
            )
            assert longer.audit is not None
            violations += audit_violations(
                longer.audit,
                min_tail=_recovery_tail(case, longer.audit, longer.result.response_time),
            )
            short_total = base.audit.client_ok + base.audit.client_refused
            long_total = longer.audit.client_ok + longer.audit.client_refused
            if long_total < short_total:
                violations.append(
                    f"time-extension: stretching the window shrank resolved "
                    f"requests {short_total} -> {long_total}"
                )
            for name, s in base.audit.services.items():
                s2 = longer.audit.services.get(name)
                if s2 is not None and s2.arrived < s.arrived:
                    violations.append(
                        f"time-extension: {name} arrivals shrank "
                        f"{s.arrived} -> {s2.arrived} in the longer run"
                    )

    return CaseReport(
        case=case,
        violations=tuple(violations),
        throughput=base.result.throughput,
        client_ok=base.audit.client_ok,
    )


def run_fuzz(
    seed: int,
    count: int = 10,
    *,
    metamorphic: bool = True,
    log: _t.Callable[[str], None] | None = None,
) -> FuzzReport:
    """Draw and check ``count`` cases; deterministic for a given ``seed``."""
    report = FuzzReport(seed=seed, count=count)
    for index in range(count):
        case = draw_case(seed, index)
        result = check_case(case, metamorphic=metamorphic)
        report.reports.append(result)
        if log is not None:
            status = "ok" if result.ok else f"FAIL ({len(result.violations)})"
            log(f"[{index + 1}/{count}] {case.label}: {status}")
            for violation in result.violations:
                log(f"    {violation}")
    return report


# -- shrinking ---------------------------------------------------------------


def _shrink_candidates(case: FuzzCase) -> _t.Iterator[FuzzCase]:
    """Simpler variants of ``case``, most aggressive first."""
    sc = case.scenario
    if sc.wan is not None:
        yield replace(case, scenario=replace(sc, wan=None))
    if sc.churn is not None:
        yield replace(case, scenario=replace(sc, churn=None))
    if sc.mix:
        yield replace(case, scenario=replace(sc, mix=()))
    for i in range(len(sc.arrivals)):
        trimmed = sc.arrivals[:i] + sc.arrivals[i + 1 :]
        yield replace(case, scenario=replace(sc, arrivals=trimmed))
    if case.users > 4:
        yield replace(case, users=max(4, case.users // 2))
    if case.window > 8.0:
        yield replace(case, window=_round(max(8.0, case.window / 2), 1))


def minimize(case: FuzzCase, *, metamorphic: bool = True, max_runs: int = 40) -> FuzzCase:
    """Greedily shrink a failing case while it keeps failing.

    Budgeted at ``max_runs`` candidate evaluations; returns the smallest
    still-failing case found (possibly the input itself if nothing
    simpler reproduces).
    """
    if check_case(case, metamorphic=metamorphic).ok:
        raise ScenarioError(f"cannot minimize a passing case: {case.label}")
    runs = 0
    while runs < max_runs:
        for candidate in _shrink_candidates(case):
            runs += 1
            if not check_case(candidate, metamorphic=metamorphic).ok:
                case = candidate
                break
            if runs >= max_runs:
                break
        else:
            break
    return case


# -- corpus I/O --------------------------------------------------------------

_CASE_FIELDS = ("system", "users", "seed", "warmup", "window", "scenario")


def case_to_doc(case: FuzzCase) -> dict:
    """A JSON-ready document for one case (the corpus file format)."""
    return {
        "system": case.system,
        "users": case.users,
        "seed": case.seed,
        "warmup": case.warmup,
        "window": case.window,
        "scenario": json.loads(codec.dumps(case.scenario)),
    }


def case_from_doc(doc: dict) -> FuzzCase:
    unknown = set(doc) - set(_CASE_FIELDS)
    if unknown:
        raise ScenarioError(f"unknown fuzz-case fields: {sorted(unknown)}")
    missing = [k for k in _CASE_FIELDS if k not in doc]
    if missing:
        raise ScenarioError(f"fuzz case missing fields: {missing}")
    return FuzzCase(
        system=str(doc["system"]),
        users=int(doc["users"]),
        seed=int(doc["seed"]),
        warmup=float(doc["warmup"]),
        window=float(doc["window"]),
        scenario=codec.loads(json.dumps(doc["scenario"])),
    )


def save_case(case: FuzzCase, path: str | Path) -> None:
    Path(path).write_text(json.dumps(case_to_doc(case), indent=2) + "\n")


def load_case(path: str | Path) -> FuzzCase:
    try:
        doc = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise ScenarioError(f"{path}: not valid JSON ({exc})") from exc
    if not isinstance(doc, dict):
        raise ScenarioError(f"{path}: fuzz case must be a JSON object")
    return case_from_doc(doc)
