"""Scenario files: JSON persistence for :class:`Scenario`.

A ``.scenario.json`` file is plain JSON — the four generative model
sections keyed by name — so scenarios live next to the plans they pair
with (``examples/*.scenario.json``) and are validated in CI with
``repro-scenario check``.  The codec is strict the way the plan codec
is: unknown fields are errors, defaults are omitted on write, and
``loads(dumps(s)) == s`` for every valid scenario.
"""

from __future__ import annotations

import dataclasses
import json
import typing as _t
from pathlib import Path

from repro.core.scenario.model import (
    ArrivalModel,
    ChurnModel,
    MixComponent,
    Scenario,
    ScenarioError,
    WanEpisode,
    WanWeather,
)

__all__ = ["dumps", "loads", "dump", "load"]

# Per-arrival-kind field sets: a diurnal model carrying flash fields (or
# vice versa) is almost certainly a typo, so the codec rejects it.
_ARRIVAL_FIELDS: dict[str, tuple[str, ...]] = {
    "diurnal": ("period", "amplitude", "phase"),
    "flash": ("at", "duration", "peak", "ramp"),
}


def _to_dict(obj: _t.Any, *, skip: tuple[str, ...] = ()) -> dict[str, _t.Any]:
    """Dataclass -> dict with default-valued fields omitted."""
    out: dict[str, _t.Any] = {}
    for f in dataclasses.fields(obj):
        if f.name in skip:
            continue
        value = getattr(obj, f.name)
        if f.default is not dataclasses.MISSING and value == f.default:
            continue
        out[f.name] = value
    return out


def _from_dict(
    cls: type, raw: _t.Any, *, where: str, allowed: set[str] | None = None
) -> _t.Any:
    if not isinstance(raw, dict):
        raise ScenarioError(f"{where}: expected an object, got {type(raw).__name__}")
    names = {f.name for f in dataclasses.fields(cls)}
    allowed = names if allowed is None else allowed
    unknown = set(raw) - allowed
    if unknown:
        raise ScenarioError(f"{where}: unknown fields {sorted(unknown)}")
    try:
        return cls(**raw)
    except TypeError as exc:
        raise ScenarioError(f"{where}: {exc}") from exc


def _arrival_to_dict(model: ArrivalModel) -> dict[str, _t.Any]:
    out: dict[str, _t.Any] = {"kind": model.kind}
    defaults = ArrivalModel(kind=model.kind)
    for name in _ARRIVAL_FIELDS[model.kind]:
        value = getattr(model, name)
        if value != getattr(defaults, name):
            out[name] = value
    return out


def _arrival_from_dict(raw: _t.Any, index: int) -> ArrivalModel:
    where = f"arrivals[{index}]"
    if not isinstance(raw, dict):
        raise ScenarioError(f"{where}: expected an object, got {type(raw).__name__}")
    kind = raw.get("kind")
    if kind not in _ARRIVAL_FIELDS:
        raise ScenarioError(
            f"{where}: unknown kind {kind!r}; pick from {tuple(_ARRIVAL_FIELDS)}"
        )
    return _from_dict(
        ArrivalModel, raw, where=where, allowed={"kind", *_ARRIVAL_FIELDS[kind]}
    )


def dumps(scenario: Scenario) -> str:
    """Serialize a scenario to indented JSON (defaults omitted)."""
    doc: dict[str, _t.Any] = {"name": scenario.name}
    if scenario.description:
        doc["description"] = scenario.description
    if scenario.seed:
        doc["seed"] = scenario.seed
    if scenario.plan:
        doc["plan"] = scenario.plan
    if scenario.arrivals:
        doc["arrivals"] = [_arrival_to_dict(m) for m in scenario.arrivals]
    if scenario.churn is not None:
        churn = _to_dict(scenario.churn)
        if scenario.churn.targets:
            churn["targets"] = list(scenario.churn.targets)
        doc["churn"] = churn
    if scenario.wan is not None:
        wan = _to_dict(scenario.wan, skip=("episodes",))
        if scenario.wan.episodes:
            wan["episodes"] = [_to_dict(ep) for ep in scenario.wan.episodes]
        doc["wan"] = wan
    if scenario.mix:
        doc["mix"] = [_to_dict(c) for c in scenario.mix]
    return json.dumps(doc, indent=2) + "\n"


def loads(text: str) -> Scenario:
    """Parse and validate a scenario; errors become :class:`ScenarioError`."""
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ScenarioError(f"not valid JSON: {exc}") from exc
    if not isinstance(doc, dict):
        raise ScenarioError("a scenario file must hold a JSON object")
    known = {"name", "description", "seed", "plan", "arrivals", "churn", "wan", "mix"}
    unknown = set(doc) - known
    if unknown:
        raise ScenarioError(f"unknown top-level fields {sorted(unknown)}")
    if not isinstance(doc.get("name"), str) or not doc["name"]:
        raise ScenarioError("a scenario needs a non-empty string name")

    arrivals = tuple(
        _arrival_from_dict(raw, i) for i, raw in enumerate(_seq(doc, "arrivals"))
    )
    churn = None
    if "churn" in doc:
        raw = dict(_obj(doc, "churn"))
        if "targets" in raw:
            raw["targets"] = tuple(raw["targets"])
        churn = _from_dict(ChurnModel, raw, where="churn")
    wan = None
    if "wan" in doc:
        raw = dict(_obj(doc, "wan"))
        episodes = raw.pop("episodes", [])
        if not isinstance(episodes, list):
            raise ScenarioError("wan.episodes: expected a list")
        raw["episodes"] = tuple(
            _from_dict(WanEpisode, ep, where=f"wan.episodes[{i}]")
            for i, ep in enumerate(episodes)
        )
        wan = _from_dict(
            WanWeather,
            raw,
            where="wan",
            allowed={f.name for f in dataclasses.fields(WanWeather)},
        )
    mix = tuple(
        _from_dict(MixComponent, raw, where=f"mix[{i}]")
        for i, raw in enumerate(_seq(doc, "mix"))
    )
    return Scenario(
        name=doc["name"],
        description=doc.get("description", ""),
        seed=doc.get("seed", 0),
        plan=doc.get("plan", ""),
        arrivals=arrivals,
        churn=churn,
        wan=wan,
        mix=mix,
    ).validate()


def _seq(doc: dict, key: str) -> list:
    raw = doc.get(key, [])
    if not isinstance(raw, list):
        raise ScenarioError(f"{key}: expected a list, got {type(raw).__name__}")
    return raw


def _obj(doc: dict, key: str) -> dict:
    raw = doc[key]
    if not isinstance(raw, dict):
        raise ScenarioError(f"{key}: expected an object, got {type(raw).__name__}")
    return raw


def dump(scenario: Scenario, path: str | Path) -> None:
    Path(path).write_text(dumps(scenario))


def load(path: str | Path) -> Scenario:
    return loads(Path(path).read_text())
