"""Generative scenario models: churn, diurnal load, flash crowds, WAN weather.

The paper measures steady state under fixed user counts; the deployments
it studied were dominated by *dynamics* — R-GMA's "first results after
deployment" reports registrant churn and correlated degradation as the
operational killers.  A :class:`Scenario` bundles four generative models
into one declarative, seeded description of those dynamics:

* **arrival modulation** — diurnal sinusoids and flash-crowd spikes that
  scale the closed-loop think time of every user over simulated time
  (:class:`ArrivalModel`);
* **registrant churn** — servers leaving and rejoining mid-window,
  driving real register/unregister traffic through the per-system
  directory machinery (:class:`ChurnModel`);
* **WAN weather** — correlated inter-site latency/loss episodes layered
  onto :class:`~repro.sim.network.Network` (:class:`WanWeather`);
* **client mixes** — heterogeneous user populations split across the
  think-time patterns of :data:`~repro.core.workload.THINK_PATTERNS`
  (:class:`MixComponent`).

Everything here is deliberately simulator-free: the same models drive
the exact DES (:mod:`repro.core.scenario.apply`), the fast fidelity
tiers (via :meth:`Scenario.effective_workload`) and the live asyncio
plane's load generator (:mod:`repro.live.loadgen`).  All randomness is
drawn from generators the caller derives from the scenario seed, so a
scenario is exactly reproducible and independent of worker count.
"""

from __future__ import annotations

import math
import typing as _t
from dataclasses import dataclass, replace

import numpy as np

from repro.core.params import WorkloadParams
from repro.core.workload import THINK_PATTERNS

__all__ = [
    "ScenarioError",
    "ArrivalModel",
    "ChurnEvent",
    "ChurnModel",
    "WanEpisode",
    "WanWeather",
    "MixComponent",
    "Scenario",
]

# The modulation floor: a rate factor never drops below this, so think
# times stay finite however the models compose.
_MIN_RATE = 0.05

ARRIVAL_KINDS = ("diurnal", "flash")


class ScenarioError(ValueError):
    """A scenario that cannot exist (bad shape, or an invalid tier ask)."""


@dataclass(frozen=True)
class ArrivalModel:
    """One multiplicative modulation of the instantaneous arrival rate.

    ``kind="diurnal"`` is a sinusoid: rate factor
    ``1 + amplitude * sin(2*pi*(t/period + phase))`` — the day/night load
    swing GridMonitor reports, compressed to simulation-window periods.

    ``kind="flash"`` is a flash crowd: outside ``[at, at+duration]`` the
    factor is 1; inside, it ramps linearly to ``peak`` over the first
    ``ramp`` fraction of the episode, holds, and decays over the last
    ``ramp`` fraction — the arrival spike a release announcement or a
    failure-triggered dashboard rush produces.

    A factor of ``f`` divides every sampled think time by ``f``: users
    query ``f`` times faster at the peak.  Factors from multiple models
    multiply.
    """

    kind: str
    # diurnal fields
    period: float = 60.0
    amplitude: float = 0.5
    phase: float = 0.0
    # flash fields
    at: float = 0.0
    duration: float = 0.0
    peak: float = 4.0
    ramp: float = 0.25

    def validate(self) -> "ArrivalModel":
        if self.kind not in ARRIVAL_KINDS:
            raise ScenarioError(
                f"unknown arrival kind {self.kind!r}; pick from {ARRIVAL_KINDS}"
            )
        if self.kind == "diurnal":
            if self.period <= 0:
                raise ScenarioError(f"diurnal period must be positive: {self.period}")
            if not 0.0 <= self.amplitude < 1.0:
                raise ScenarioError(
                    f"diurnal amplitude must be in [0, 1): {self.amplitude}"
                )
        else:
            if self.duration <= 0:
                raise ScenarioError(f"flash duration must be positive: {self.duration}")
            if self.peak < 1.0:
                raise ScenarioError(f"flash peak must be >= 1: {self.peak}")
            if not 0.0 < self.ramp <= 0.5:
                raise ScenarioError(f"flash ramp must be in (0, 0.5]: {self.ramp}")
        return self

    def rate(self, t: float) -> float:
        """The instantaneous rate factor at simulated time ``t``."""
        if self.kind == "diurnal":
            return 1.0 + self.amplitude * math.sin(
                2.0 * math.pi * (t / self.period + self.phase)
            )
        # flash crowd
        dt = t - self.at
        if dt < 0.0 or dt > self.duration:
            return 1.0
        edge = self.ramp * self.duration
        if dt < edge:
            frac = dt / edge
        elif dt > self.duration - edge:
            frac = (self.duration - dt) / edge
        else:
            frac = 1.0
        return 1.0 + (self.peak - 1.0) * frac


@dataclass(frozen=True)
class ChurnEvent:
    """One node's leave/rejoin pair on the scenario timeline."""

    node: str
    leave: float
    rejoin: float


@dataclass(frozen=True)
class ChurnModel:
    """Registrant churn: servers leaving and rejoining mid-window.

    Each candidate node runs independent up/down sessions: up-times are
    exponential with mean ``session_time``, down-times exponential with
    mean ``downtime`` (floored at ``min_downtime``).  Leave events are
    drawn inside ``[start, end]`` only, so a run whose horizon extends
    past ``end`` always gets a churn-free recovery tail — the window the
    recovery invariant measures.

    ``targets`` restricts churn to named plan nodes; empty means every
    eligible node (every exposed non-collector service of the compiled
    deployment).
    """

    session_time: float = 30.0
    downtime: float = 8.0
    min_downtime: float = 1.0
    start: float = 0.0
    end: float | None = None
    targets: tuple[str, ...] = ()

    def validate(self) -> "ChurnModel":
        if self.session_time <= 0:
            raise ScenarioError(f"session_time must be positive: {self.session_time}")
        if self.downtime <= 0 or self.min_downtime < 0:
            raise ScenarioError(
                f"downtime must be positive: {self.downtime}/{self.min_downtime}"
            )
        if self.end is not None and self.end <= self.start:
            raise ScenarioError(f"churn window is empty: [{self.start}, {self.end}]")
        return self

    def events(
        self,
        nodes: _t.Sequence[str],
        horizon: float,
        rng_for: _t.Callable[[str], np.random.Generator],
    ) -> list[ChurnEvent]:
        """The deterministic churn timeline for ``nodes``.

        Each node draws from its own named stream (``rng_for(node)``), so
        adding or filtering nodes never perturbs the others' sessions.
        """
        end = horizon if self.end is None else min(self.end, horizon)
        out: list[ChurnEvent] = []
        for node in nodes:
            if self.targets and node not in self.targets:
                continue
            rng = rng_for(node)
            t = self.start
            while True:
                t += float(rng.exponential(self.session_time))
                if t >= end:
                    break
                down = max(self.min_downtime, float(rng.exponential(self.downtime)))
                out.append(ChurnEvent(node=node, leave=t, rejoin=t + down))
                t += down
        out.sort(key=lambda e: (e.leave, e.node))
        return out

    def last_end(self, events: _t.Sequence[ChurnEvent]) -> float:
        """Rejoin time of the final churn event (0.0 when none fired)."""
        return max((e.rejoin for e in events), default=0.0)


@dataclass(frozen=True)
class WanEpisode:
    """One correlated degradation window on the inter-site path."""

    start: float
    duration: float
    extra_latency: float = 0.05
    loss: float = 0.05

    @property
    def end(self) -> float:
        return self.start + self.duration

    def validate(self) -> "WanEpisode":
        if self.duration <= 0:
            raise ScenarioError(f"episode duration must be positive: {self.duration}")
        if self.extra_latency < 0:
            raise ScenarioError(f"negative extra latency: {self.extra_latency}")
        if not 0.0 <= self.loss < 1.0:
            raise ScenarioError(f"loss probability out of range: {self.loss}")
        return self


@dataclass(frozen=True)
class WanWeather:
    """Correlated WAN latency/loss episodes between client and server sites.

    Either list explicit ``episodes`` or let the model draw them: episode
    gaps are exponential at ``rate`` per second inside ``[start, end]``,
    durations exponential with mean ``mean_duration``, and each episode
    jitters ``extra_latency``/``loss`` by ±50 %.  Generated and explicit
    episodes are merged and made non-overlapping in time order.
    """

    episodes: tuple[WanEpisode, ...] = ()
    rate: float = 0.0
    mean_duration: float = 8.0
    extra_latency: float = 0.05
    loss: float = 0.05
    start: float = 0.0
    end: float | None = None

    def validate(self) -> "WanWeather":
        if self.rate < 0:
            raise ScenarioError(f"negative episode rate: {self.rate}")
        if self.rate > 0 and self.mean_duration <= 0:
            raise ScenarioError(f"mean_duration must be positive: {self.mean_duration}")
        if self.extra_latency < 0:
            raise ScenarioError(f"negative extra latency: {self.extra_latency}")
        if not 0.0 <= self.loss < 1.0:
            raise ScenarioError(f"loss probability out of range: {self.loss}")
        for ep in self.episodes:
            ep.validate()
        return self

    def draw(self, horizon: float, rng: np.random.Generator) -> tuple[WanEpisode, ...]:
        """Explicit plus generated episodes, time-sorted and disjoint."""
        end = horizon if self.end is None else min(self.end, horizon)
        drawn: list[WanEpisode] = list(self.episodes)
        if self.rate > 0:
            t = self.start
            while True:
                t += float(rng.exponential(1.0 / self.rate))
                if t >= end:
                    break
                duration = max(0.5, float(rng.exponential(self.mean_duration)))
                drawn.append(
                    WanEpisode(
                        start=t,
                        duration=duration,
                        extra_latency=self.extra_latency
                        * float(rng.uniform(0.5, 1.5)),
                        loss=min(0.95, self.loss * float(rng.uniform(0.5, 1.5))),
                    )
                )
                t += duration
        drawn.sort(key=lambda e: e.start)
        disjoint: list[WanEpisode] = []
        cursor = 0.0
        for ep in drawn:
            start = max(ep.start, cursor)
            if start >= ep.end:
                continue
            disjoint.append(replace(ep, start=start, duration=ep.end - start))
            cursor = ep.end
        return tuple(disjoint)


@dataclass(frozen=True)
class MixComponent:
    """One slice of a heterogeneous client population.

    ``fraction`` of the users run ``pattern`` (any key of
    :data:`~repro.core.workload.THINK_PATTERNS`) with an optional
    ``think_time`` override; unset fields inherit the run's base
    :class:`~repro.core.params.WorkloadParams`.
    """

    fraction: float
    pattern: str = "constant"
    think_time: float | None = None

    def validate(self) -> "MixComponent":
        if not 0.0 < self.fraction <= 1.0:
            raise ScenarioError(f"mix fraction out of range: {self.fraction}")
        if self.pattern not in THINK_PATTERNS:
            raise ScenarioError(
                f"unknown think pattern {self.pattern!r}; "
                f"pick from {tuple(THINK_PATTERNS)}"
            )
        if self.think_time is not None and self.think_time <= 0:
            raise ScenarioError(f"think_time must be positive: {self.think_time}")
        return self

    def workload(self, base: WorkloadParams) -> WorkloadParams:
        """The component's effective workload over the run's base one."""
        return replace(
            base,
            pattern=self.pattern,
            think_time=self.think_time if self.think_time is not None else base.think_time,
        )


@dataclass(frozen=True)
class Scenario:
    """A declarative, seeded bundle of the four generative models.

    ``plan`` optionally names the deployment this scenario is written
    against — a catalog entry or an ``examples/*.plan`` path — which the
    CI ``scenario-check`` job compiles the pair against.  An empty model
    (no arrivals, churn, wan or mix) is valid and changes nothing: runs
    stay byte-identical to scenario-free ones.
    """

    name: str
    description: str = ""
    seed: int = 0
    plan: str = ""
    arrivals: tuple[ArrivalModel, ...] = ()
    churn: ChurnModel | None = None
    wan: WanWeather | None = None
    mix: tuple[MixComponent, ...] = ()

    # -- validation --------------------------------------------------------

    def validate(self) -> "Scenario":
        if not self.name:
            raise ScenarioError("a scenario needs a name")
        for model in self.arrivals:
            model.validate()
        if self.churn is not None:
            self.churn.validate()
        if self.wan is not None:
            self.wan.validate()
        if self.mix:
            for comp in self.mix:
                comp.validate()
            total = sum(c.fraction for c in self.mix)
            if not math.isclose(total, 1.0, rel_tol=0, abs_tol=1e-6):
                raise ScenarioError(f"mix fractions must sum to 1, got {total:g}")
        return self

    # -- arrival modulation ------------------------------------------------

    def rate_factor(self, t: float) -> float:
        """The combined (multiplicative) arrival-rate factor at ``t``."""
        factor = 1.0
        for model in self.arrivals:
            factor *= model.rate(t)
        return max(factor, _MIN_RATE)

    def mean_rate_factor(self, start: float, end: float, steps: int = 256) -> float:
        """Window-averaged rate factor (midpoint rule on a fixed grid)."""
        if end <= start:
            return 1.0
        dt = (end - start) / steps
        return (
            sum(self.rate_factor(start + (i + 0.5) * dt) for i in range(steps)) / steps
        )

    def think_scale(self, t: float) -> float:
        """The think-time multiplier at ``t`` (1/rate factor)."""
        return 1.0 / self.rate_factor(t)

    # -- population partitioning -------------------------------------------

    def partition(self, n_users: int) -> list[tuple[int, MixComponent]]:
        """Split ``n_users`` across the mix (largest-remainder rounding).

        With no mix, the whole population runs the base workload as one
        component of fraction 1.
        """
        if not self.mix:
            return [(n_users, MixComponent(fraction=1.0))] if n_users else []
        counts = [int(math.floor(c.fraction * n_users)) for c in self.mix]
        remainders = sorted(
            range(len(self.mix)),
            key=lambda i: (self.mix[i].fraction * n_users) - counts[i],
            reverse=True,
        )
        short = n_users - sum(counts)
        for i in remainders[:short]:
            counts[i] += 1
        return [(count, comp) for count, comp in zip(counts, self.mix) if count > 0]

    def component_workloads(
        self, base: WorkloadParams, n_users: int
    ) -> list[tuple[int, WorkloadParams]]:
        """(count, workload) pairs for spawning the mixed population."""
        if not self.mix:
            return [(n_users, base)] if n_users else []
        return [(count, comp.workload(base)) for count, comp in self.partition(n_users)]

    # -- fast-tier projection ----------------------------------------------

    def requires_exact(self) -> list[str]:
        """The environment models only the exact DES can honour."""
        features = []
        if self.churn is not None:
            features.append("churn")
        if self.wan is not None:
            features.append("wan")
        return features

    def effective_workload(
        self, base: WorkloadParams, start: float, end: float, *, tier: str = "meanfield"
    ) -> WorkloadParams:
        """The steady-state workload a fast tier should solve with.

        Arrival modulation becomes a window-mean think-time scale; a
        client mix becomes its population-weighted mean think time.  The
        cohort tier additionally needs one shared think *pattern* (its
        vectorized sampler runs one pattern per engine); heterogeneous-
        pattern mixes raise :class:`ScenarioError` there.  Churn and WAN
        weather are event-level models with no steady-state equivalent —
        :meth:`requires_exact` names them and callers must reject first.
        """
        blocked = self.requires_exact()
        if blocked:
            raise ScenarioError(
                f"scenario {self.name!r} uses {', '.join(blocked)}; "
                "those models need the exact DES tier"
            )
        think = base.think_time
        pattern = base.pattern
        if self.mix:
            think = sum(
                c.fraction * (c.think_time if c.think_time is not None else base.think_time)
                for c in self.mix
            )
            patterns = {c.pattern for c in self.mix}
            if len(patterns) == 1:
                pattern = next(iter(patterns))
            elif tier == "cohort":
                raise ScenarioError(
                    f"scenario {self.name!r} mixes think patterns {sorted(patterns)}; "
                    "the cohort tier runs a single pattern — use meanfield or exact"
                )
        scale = self.mean_rate_factor(start, end)
        return replace(base, think_time=think / scale, pattern=pattern)
