"""Applying a :class:`Scenario`'s environment models to the exact DES.

:func:`apply_scenario` installs the *environment* half of a scenario —
registrant churn and WAN weather — onto a compiled
:class:`~repro.core.topology.adapters.Deployment` before the workload
runs.  (The workload half — arrival modulation and client mixes — rides
into :func:`repro.core.runner.drive` via its ``scenario`` parameter.)

Churn is real register/unregister traffic, per system:

* **MDS** — directly-registered GRIS are :meth:`~repro.mds.giis.GIIS.
  unregister`-ed on leave and re-registered with their saved pullers on
  rejoin; soft-state registrants instead go *silent* (their registrar
  gate closes), so the GIIS lease sweeper expires them and the first
  renewal cycle after rejoin re-registers — the honest soft-state path.
* **R-GMA** — a churned ProducerServlet's producers are
  :meth:`~repro.rgma.registry.Registry.unregister`-ed on leave and
  re-registered (fresh leases) on rejoin.
* **Hawkeye** — the Manager has no unregister: agent ads lapse via
  ``ad_lifetime`` exactly as Condor's do, so churn is service-level
  only (connections refused while the node is out).

In every system the churned node's :class:`~repro.sim.rpc.Service`
objects are :meth:`~repro.sim.rpc.Service.fail`-ed for the outage;
outages are depth-counted, so churn composes with an overlapping
:class:`~repro.sim.faults.FaultPlan` without double-frees.
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass, field

from repro.core.runner import ScenarioRun
from repro.core.scenario.model import ChurnEvent, Scenario
from repro.core.topology.adapters import Deployment
from repro.core.topology.plan import CollectorSpec, EdgeKind
from repro.errors import ServiceCrashError
from repro.mds.giis import GIIS
from repro.sim.network import WanConditions

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.mds.registration import Registration
    from repro.rgma.registry import Registry
    from repro.rgma.producer_servlet import ProducerServlet

__all__ = ["ScenarioOps", "apply_scenario", "churn_candidates"]


@dataclass
class ScenarioOps:
    """What a scenario's environment controllers actually did to a run."""

    churn_events: list[ChurnEvent] = field(default_factory=list)
    churn_leaves: int = 0
    churn_rejoins: int = 0
    directory_unregisters: int = 0
    directory_registers: int = 0
    directory_errors: int = 0  # register/unregister refused (crashed directory)
    wan_episodes: int = 0
    messages_lost: int = 0

    @property
    def last_churn_end(self) -> float:
        return max((e.rejoin for e in self.churn_events), default=0.0)


def churn_candidates(dep: Deployment) -> list[str]:
    """Plan nodes eligible for churn: network actors, in plan order.

    Collectors never leave on their own (they live inside their server
    process); every other node qualifies if it exposes a service or
    holds a registration into a directory.
    """
    out = []
    for spec in dep.plan.nodes:
        if isinstance(spec, CollectorSpec):
            continue
        if dep.node_services(spec.name) or dep.plan.edges_from(
            spec.name, EdgeKind.REGISTRATION
        ):
            out.append(spec.name)
    return out


class _DirectoryChurn:
    """Per-system register/unregister traffic for churn events."""

    def __init__(self, run: ScenarioRun, dep: Deployment, ops: ScenarioOps) -> None:
        self.run = run
        self.dep = dep
        self.ops = ops
        # node -> saved direct MDS registrations, for re-registration.
        self._saved_mds: dict[str, list[tuple[GIIS, str, "Registration"]]] = {}
        # node -> (registry, servlet, lease) for R-GMA re-registration.
        self._rgma: dict[str, list[tuple["Registry", "ProducerServlet", float]]] = {}
        for edge in dep.plan.edges:
            if edge.kind is not EdgeKind.REGISTRATION:
                continue
            source = dep.objects.get(edge.source)
            target = dep.objects.get(edge.target)
            if source is not None and hasattr(source, "producers"):
                # R-GMA: ProducerServlet -> Registry.
                self._rgma.setdefault(edge.source, []).append(
                    (target, source, float(edge.options.get("lease", 1e9)))
                )

    def _mds_labels(self, node: str) -> list[tuple[GIIS, str]]:
        """(giis, label) pairs for a node's *direct* MDS registrations."""
        out: list[tuple[GIIS, str]] = []
        for edge in self.dep.plan.edges_from(node, EdgeKind.REGISTRATION):
            if edge.options.get("soft_state"):
                continue  # the registrar gate handles these
            giis = self.dep.objects.get(edge.target)
            if not isinstance(giis, GIIS):
                continue
            source = self.dep.objects.get(node)
            if isinstance(source, list):
                fmt = edge.options.get("label_format", node + "{i}")
                out.extend((giis, fmt.format(i=i)) for i in range(len(source)))
            else:
                out.append((giis, edge.options.get("label", node)))
        return out

    def leave(self, node: str) -> None:
        ops = self.ops
        saved = self._saved_mds.setdefault(node, [])
        for giis, label in self._mds_labels(node):
            try:
                reg = giis.unregister(label)
            except ServiceCrashError:
                ops.directory_errors += 1
                continue
            if reg is not None:
                saved.append((giis, label, reg))
                ops.directory_unregisters += 1
        for registry, servlet, _lease in self._rgma.get(node, ()):
            for producer in servlet.producers:
                if registry.unregister(producer.producer_id):
                    ops.directory_unregisters += 1

    def rejoin(self, node: str, now: float) -> None:
        ops = self.ops
        for giis, label, reg in self._saved_mds.pop(node, []):
            try:
                giis.register(label, reg.puller, now=now, ttl=reg.ttl)
            except ServiceCrashError:
                ops.directory_errors += 1
                continue
            ops.directory_registers += 1
        for registry, servlet, lease in self._rgma.get(node, ()):
            for producer in servlet.producers:
                try:
                    registry.register(
                        producer.producer_id,
                        producer.table,
                        servlet.name,
                        producer.predicate,
                        now=now,
                        lease=lease,
                    )
                except ServiceCrashError:
                    ops.directory_errors += 1
                    continue
                ops.directory_registers += 1


def apply_scenario(
    scenario: Scenario,
    run: ScenarioRun,
    dep: Deployment,
    *,
    horizon: float,
) -> ScenarioOps:
    """Install a scenario's churn and WAN controllers on a deployment.

    Everything is drawn up front from streams keyed by the scenario's
    own seed (independent of the run seed and of worker count), then
    replayed by simulation processes.  A scenario with neither churn nor
    WAN weather spawns nothing and leaves the run untouched.
    """
    ops = ScenarioOps()
    sim = run.sim

    if scenario.churn is not None:
        candidates = churn_candidates(dep)
        events = scenario.churn.events(
            candidates,
            horizon,
            lambda node: run.rng.stream(
                "scenario", scenario.name, str(scenario.seed), "churn", node
            ),
        )
        ops.churn_events = list(events)
        directory = _DirectoryChurn(run, dep, ops)
        node_down: set[str] = dep.extras.setdefault("node_down", set())

        def churn_cycle(event: ChurnEvent) -> _t.Generator:
            yield sim.timeout(event.leave)
            ops.churn_leaves += 1
            node_down.add(event.node)
            for svc in dep.node_services(event.node):
                svc.fail(f"churn: {event.node} left")
            directory.leave(event.node)
            yield sim.timeout(event.rejoin - event.leave)
            node_down.discard(event.node)
            for svc in dep.node_services(event.node):
                svc.restore()
            directory.rejoin(event.node, sim.now)
            ops.churn_rejoins += 1

        for event in events:
            sim.spawn(churn_cycle(event), name=f"churn:{event.node}@{event.leave:g}")

    if scenario.wan is not None:
        episodes = scenario.wan.draw(
            horizon,
            run.rng.stream("scenario", scenario.name, str(scenario.seed), "wan-draw"),
        )
        loss_rng = run.rng.stream(
            "scenario", scenario.name, str(scenario.seed), "wan-loss"
        )
        net = run.net

        def weather_controller() -> _t.Generator:
            for episode in episodes:
                delay = episode.start - sim.now
                if delay > 0:
                    yield sim.timeout(delay)
                conditions = WanConditions(
                    episode.extra_latency,
                    episode.loss,
                    loss_rng if episode.loss > 0 else None,
                )
                net.weather = conditions
                ops.wan_episodes += 1
                yield sim.timeout(episode.duration)
                ops.messages_lost += conditions.lost
                net.weather = None

        if episodes:
            sim.spawn(weather_controller(), name="wan-weather")

    return ops
