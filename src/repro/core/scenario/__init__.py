"""The declarative scenario plane: generative dynamics over deployments.

``repro.core.scenario`` turns the paper's static measurement points
into *scenarios*: seeded, declarative JSON bundles of diurnal/flash
arrival modulation, registrant churn, correlated WAN weather and
heterogeneous client mixes (:mod:`~repro.core.scenario.model`), with a
strict codec (:mod:`~repro.core.scenario.codec`), DES installation
(:mod:`~repro.core.scenario.apply`), a metamorphic fuzzer
(:mod:`~repro.core.scenario.fuzz`) and the ``repro-scenario`` CLI
(:mod:`~repro.core.scenario.cli`).  See docs/SCENARIOS.md.
"""

import typing as _t

from repro.core.scenario.codec import dump, dumps, load, loads
from repro.core.scenario.model import (
    ArrivalModel,
    ChurnEvent,
    ChurnModel,
    MixComponent,
    Scenario,
    ScenarioError,
    WanEpisode,
    WanWeather,
)

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.core.scenario.apply import (  # noqa: F401
        ScenarioOps,
        apply_scenario,
        churn_candidates,
    )

# The apply module installs scenarios on the exact DES and so imports
# the simulator; resolve its names lazily to keep ``import
# repro.core.scenario`` (and therefore :mod:`repro.live`) sim-free.
_APPLY_EXPORTS = ("ScenarioOps", "apply_scenario", "churn_candidates")


def __getattr__(name: str) -> _t.Any:
    if name in _APPLY_EXPORTS:
        from repro.core.scenario import apply

        return getattr(apply, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "ArrivalModel",
    "ChurnEvent",
    "ChurnModel",
    "MixComponent",
    "Scenario",
    "ScenarioError",
    "ScenarioOps",
    "WanEpisode",
    "WanWeather",
    "apply_scenario",
    "churn_candidates",
    "dump",
    "dumps",
    "load",
    "loads",
]
