"""DES service factories: each monitoring component as a network service.

The request/response logic itself lives in the runtime-agnostic kernels
(:mod:`repro.core.kernels`); this module is the *DES binding* — each
factory builds the simulator-owned pieces (a
:class:`~repro.sim.resources.Mutex` per serialized back end, the
:class:`~repro.sim.rpc.Service` container) and hands the kernel to
:func:`repro.core.desruntime.kernel_service` for interpretation.  The
live plane (:mod:`repro.live`) binds the *same* kernels to asyncio.

Cost-model conventions (DESIGN.md §2):

* serialized back ends are a :class:`~repro.sim.resources.Mutex`; the
  hold is split into a CPU part (runnable) and a blocked part, which is
  what makes host load1 *drop* past saturation as the paper observes;
* concurrency-dependent connection overhead lives on the Service itself
  (``conn_overhead``);
* accept-queue refusal comes from the Service's thread/backlog limits.
"""

from __future__ import annotations

import typing as _t

from repro.core.components import Role, System
from repro.core.desruntime import kernel_service
from repro.core.kernels.hawkeye import (
    AgentKernel,
    ManagerAggregateKernel,
    ManagerDirectoryKernel,
    ManagerFanoutKernel,
    ManagerIngestKernel,
)
from repro.core.kernels.mds import (
    GiisAggregateKernel,
    GiisDirectoryKernel,
    GiisFanoutKernel,
    GiisLeafKernel,
    GiisRegistrationKernel,
    GrisKernel,
)
from repro.core.kernels.rgma import (
    ConsumerServletKernel,
    ProducerServletKernel,
    RegistryKernel,
)
from repro.core.params import (
    AgentParams,
    ConsumerServletParams,
    GiisParams,
    GrisParams,
    ManagerParams,
    ProducerServletParams,
    RegistryParams,
)
from repro.hawkeye.agent import Agent
from repro.hawkeye.manager import Manager
from repro.mds.giis import GIIS
from repro.mds.gris import GRIS
from repro.rgma.producer_servlet import ProducerServlet
from repro.rgma.registry import Registry
from repro.sim.engine import Simulator
from repro.sim.host import Host
from repro.sim.network import Network
from repro.sim.resources import Mutex
from repro.sim.rpc import RetryPolicy, Service

__all__ = [
    "SERVICE_FACTORIES",
    "service_factory",
    "make_gris_service",
    "make_giis_directory_service",
    "make_giis_aggregate_service",
    "make_giis_registration_service",
    "make_giis_leaf_service",
    "make_giis_fanout_service",
    "make_manager_fanout_service",
    "make_agent_service",
    "make_producer_servlet_service",
    "make_consumer_servlet_service",
    "make_registry_service",
    "make_manager_directory_service",
    "make_manager_aggregate_service",
    "make_manager_ingest_service",
]

# Role-keyed adapter registry: (system, role, variant) -> factory.  The
# topology compiler (repro.core.topology) resolves Table-1 cells through
# this instead of importing factories by name, so a plan stays
# declarative about *which role* a node plays and the registry decides
# which cost-model adapter realizes it.
SERVICE_FACTORIES: dict[tuple[System, Role, str], _t.Callable[..., _t.Any]] = {}


def _factory(system: System, *keys: tuple[Role, str]):
    """Register a service factory under one or more (role, variant) cells."""

    def decorate(fn: _t.Callable[..., _t.Any]) -> _t.Callable[..., _t.Any]:
        for role, variant in keys:
            SERVICE_FACTORIES[(system, role, variant)] = fn
        return fn

    return decorate


def service_factory(
    system: System, role: Role, variant: str = "default"
) -> _t.Callable[..., _t.Any]:
    """Table-1 dispatch: the factory realizing ``role`` for ``system``."""
    try:
        return SERVICE_FACTORIES[(system, role, variant)]
    except KeyError:
        raise KeyError(
            f"no service adapter for {system.value} / {role.value} / {variant!r}"
        ) from None


# -- MDS ----------------------------------------------------------------------


@_factory(System.MDS, (Role.INFORMATION_SERVER, "default"))
def make_gris_service(
    sim: Simulator, net: Network, host: Host, gris: GRIS, p: GrisParams
) -> Service:
    """The MDS GRIS as a network service (Experiments 1 and 3)."""
    kernel = GrisKernel(
        gris, p, providers_lock=Mutex(sim, name=f"gris:{gris.hostname}:providers")
    )
    return kernel_service(sim, net, host, kernel.spec())


@_factory(System.MDS, (Role.DIRECTORY_SERVER, "default"))
def make_giis_directory_service(
    sim: Simulator, net: Network, host: Host, giis: GIIS, p: GiisParams
) -> Service:
    """The GIIS in its directory-server role (Experiment 2)."""
    return kernel_service(sim, net, host, GiisDirectoryKernel(giis, p).spec())


@_factory(System.MDS, (Role.AGGREGATE_INFORMATION_SERVER, "default"))
def make_giis_aggregate_service(
    sim: Simulator,
    net: Network,
    host: Host,
    giis: GIIS,
    p: GiisParams,
    *,
    query_part: bool = False,
    part_size: int = 10,
) -> Service:
    """The GIIS in its aggregate role (Experiment 4)."""
    kernel = GiisAggregateKernel(
        giis,
        p,
        assembly_lock=Mutex(sim, name=f"giis:{giis.name}:assembly"),
        query_part=query_part,
        part_size=part_size,
    )
    return kernel_service(sim, net, host, kernel.spec())


@_factory(
    System.MDS,
    (Role.DIRECTORY_SERVER, "registration"),
    (Role.AGGREGATE_INFORMATION_SERVER, "registration"),
)
def make_giis_registration_service(
    sim: Simulator,
    net: Network,
    host: Host,
    giis: GIIS,
    p: GiisParams,
    pullers: _t.Mapping[str, _t.Callable[[float], tuple[list, float]]],
) -> Service:
    """The GIIS's soft-state registration endpoint."""
    return kernel_service(sim, net, host, GiisRegistrationKernel(giis, p, pullers).spec())


@_factory(System.MDS, (Role.AGGREGATE_INFORMATION_SERVER, "leaf"))
def make_giis_leaf_service(
    sim: Simulator, net: Network, host: Host, giis: GIIS, p: GiisParams
) -> Service:
    """A mid-/leaf-level GIIS inside a hierarchy (§3.6's suggested fix)."""
    return kernel_service(sim, net, host, GiisLeafKernel(giis, p).spec())


@_factory(System.MDS, (Role.AGGREGATE_INFORMATION_SERVER, "fanout"))
def make_giis_fanout_service(
    sim: Simulator,
    net: Network,
    host: Host,
    children: _t.Sequence[Service],
    p: GiisParams,
    *,
    label: str = "giis:top",
    top: bool = True,
) -> Service:
    """An interior GIIS aggregating child GIIS services concurrently."""
    kernel = GiisFanoutKernel(children, p, label=label, top=top)
    return kernel_service(sim, net, host, kernel.spec())


# -- Hawkeye -------------------------------------------------------------


@_factory(System.HAWKEYE, (Role.INFORMATION_SERVER, "default"))
def make_agent_service(
    sim: Simulator, net: Network, host: Host, agent: Agent, p: AgentParams
) -> Service:
    """The Hawkeye Agent as a network service (Experiments 1 and 3)."""
    kernel = AgentKernel(
        agent, p, startd_lock=Mutex(sim, name=f"agent:{agent.machine}:startd")
    )
    return kernel_service(sim, net, host, kernel.spec())


@_factory(System.HAWKEYE, (Role.DIRECTORY_SERVER, "default"))
def make_manager_directory_service(
    sim: Simulator, net: Network, host: Host, manager: Manager, p: ManagerParams
) -> Service:
    """The Manager in its directory role (Experiment 2): indexed lookups."""
    return kernel_service(sim, net, host, ManagerDirectoryKernel(manager, p).spec())


@_factory(System.HAWKEYE, (Role.AGGREGATE_INFORMATION_SERVER, "default"))
def make_manager_aggregate_service(
    sim: Simulator,
    net: Network,
    host: Host,
    manager: Manager,
    p: ManagerParams,
    collector_mutex: Mutex | None = None,
) -> tuple[Service, Mutex]:
    """The Manager in its aggregate role (Experiment 4).

    Returns the service and the collector lock so the ingest service can
    share it.
    """
    lock = collector_mutex or Mutex(sim, name=f"manager:{manager.name}:collector")
    kernel = ManagerAggregateKernel(manager, p, collector_lock=lock)
    return kernel_service(sim, net, host, kernel.spec()), lock


@_factory(
    System.HAWKEYE,
    (Role.AGGREGATE_INFORMATION_SERVER, "ingest"),
    (Role.DIRECTORY_SERVER, "ingest"),
)
def make_manager_ingest_service(
    sim: Simulator,
    net: Network,
    host: Host,
    manager: Manager,
    p: ManagerParams,
    collector_mutex: Mutex,
) -> Service:
    """The Manager's ad-ingestion path (hawkeye_advertise traffic)."""
    kernel = ManagerIngestKernel(manager, p, collector_lock=collector_mutex)
    return kernel_service(sim, net, host, kernel.spec())


@_factory(System.HAWKEYE, (Role.AGGREGATE_INFORMATION_SERVER, "fanout"))
def make_manager_fanout_service(
    sim: Simulator,
    net: Network,
    host: Host,
    children: _t.Sequence[Service],
    p: ManagerParams,
    *,
    label: str = "manager:top",
    top: bool = True,
) -> Service:
    """An interior Manager forwarding constraint scans to child Managers."""
    kernel = ManagerFanoutKernel(children, p, label=label, top=top)
    return kernel_service(sim, net, host, kernel.spec())


# -- R-GMA ----------------------------------------------------------------


@_factory(System.RGMA, (Role.INFORMATION_SERVER, "default"))
def make_producer_servlet_service(
    sim: Simulator, net: Network, host: Host, servlet: ProducerServlet, p: ProducerServletParams
) -> Service:
    """The R-GMA ProducerServlet (Experiments 1 and 3)."""
    kernel = ProducerServletKernel(
        servlet, p, db_lock=Mutex(sim, name=f"ps:{servlet.name}:db")
    )
    return kernel_service(sim, net, host, kernel.spec())


@_factory(System.RGMA, (Role.INFORMATION_SERVER, "mediator"))
def make_consumer_servlet_service(
    sim: Simulator,
    net: Network,
    host: Host,
    name: str,
    ps_service: Service,
    p: ConsumerServletParams,
    retry: RetryPolicy | None = None,
) -> Service:
    """An R-GMA ConsumerServlet forwarding mediated queries to a
    ProducerServlet service."""
    kernel = ConsumerServletKernel(
        name,
        ps_service,
        p,
        mediation_lock=Mutex(sim, name=f"cs:{name}:mediation"),
        retry=retry,
    )
    return kernel_service(sim, net, host, kernel.spec())


@_factory(System.RGMA, (Role.DIRECTORY_SERVER, "default"))
def make_registry_service(
    sim: Simulator, net: Network, host: Host, registry: Registry, p: RegistryParams
) -> Service:
    """The R-GMA Registry as a directory server (Experiment 2)."""
    return kernel_service(sim, net, host, RegistryKernel(registry, p).spec())
