"""Simulation adapters: each monitoring component as a network service.

This is where the functional systems (``repro.mds`` / ``repro.rgma`` /
``repro.hawkeye``) meet the cost models (``repro.core.params``): every
factory wraps a functional object in a :class:`~repro.sim.rpc.Service`
whose handler charges calibrated CPU/lock/latency costs while producing
*real* answers (LDAP entries, SQL rows, ClassAds).

Cost-model conventions (DESIGN.md §2):

* serialized back ends are a :class:`~repro.sim.resources.Mutex`; the
  hold is split into a CPU part (runnable) and a blocked part, which is
  what makes host load1 *drop* past saturation as the paper observes;
* concurrency-dependent connection overhead lives on the Service itself
  (``conn_overhead``);
* accept-queue refusal comes from the Service's thread/backlog limits.
"""

from __future__ import annotations

import typing as _t

from repro.core.components import Role, System
from repro.core.costmodel import busy_split, held
from repro.core.params import (
    AgentParams,
    ConsumerServletParams,
    GiisParams,
    GrisParams,
    ManagerParams,
    ProducerServletParams,
    RegistryParams,
)
from repro.errors import RegistryError, ServiceCrashError
from repro.hawkeye.agent import Agent
from repro.hawkeye.manager import Manager
from repro.mds.giis import GIIS
from repro.mds.gris import GRIS
from repro.rgma.consumer_servlet import ConsumerServlet
from repro.rgma.producer_servlet import ProducerServlet
from repro.rgma.registry import Registry
from repro.sim.engine import Simulator
from repro.sim.host import Host
from repro.sim.network import Network
from repro.sim.resources import Mutex
from repro.sim.rpc import Request, Response, RetryPolicy, Service, call

__all__ = [
    "SERVICE_FACTORIES",
    "service_factory",
    "make_gris_service",
    "make_giis_directory_service",
    "make_giis_aggregate_service",
    "make_giis_registration_service",
    "make_giis_leaf_service",
    "make_giis_fanout_service",
    "make_manager_fanout_service",
    "make_agent_service",
    "make_producer_servlet_service",
    "make_consumer_servlet_service",
    "make_registry_service",
    "make_manager_directory_service",
    "make_manager_aggregate_service",
    "make_manager_ingest_service",
]

# Role-keyed adapter registry: (system, role, variant) -> factory.  The
# topology compiler (repro.core.topology) resolves Table-1 cells through
# this instead of importing factories by name, so a plan stays
# declarative about *which role* a node plays and the registry decides
# which cost-model adapter realizes it.
SERVICE_FACTORIES: dict[tuple[System, Role, str], _t.Callable[..., _t.Any]] = {}


def _factory(system: System, *keys: tuple[Role, str]):
    """Register a service factory under one or more (role, variant) cells."""

    def decorate(fn: _t.Callable[..., _t.Any]) -> _t.Callable[..., _t.Any]:
        for role, variant in keys:
            SERVICE_FACTORIES[(system, role, variant)] = fn
        return fn

    return decorate


def service_factory(
    system: System, role: Role, variant: str = "default"
) -> _t.Callable[..., _t.Any]:
    """Table-1 dispatch: the factory realizing ``role`` for ``system``."""
    try:
        return SERVICE_FACTORIES[(system, role, variant)]
    except KeyError:
        raise KeyError(
            f"no service adapter for {system.value} / {role.value} / {variant!r}"
        ) from None


# -- MDS ----------------------------------------------------------------------


def _gris_stale_count(gris: GRIS, now: float) -> int:
    """How many providers a search at ``now`` would re-run (no side effects)."""
    return gris.cache.stale_count(now, (provider.name for provider in gris.providers))


@_factory(System.MDS, (Role.INFORMATION_SERVER, "default"))
def make_gris_service(
    sim: Simulator, net: Network, host: Host, gris: GRIS, p: GrisParams
) -> Service:
    """The MDS GRIS as a network service (Experiments 1 and 3)."""
    provider_mutex = Mutex(sim, name=f"gris:{gris.hostname}:providers")

    def handler(service: Service, request: Request) -> _t.Generator:
        yield host.compute(p.cpu_per_query)
        if _gris_stale_count(gris, sim.now):
            yield provider_mutex.acquire()
            try:
                stale = _gris_stale_count(gris, sim.now)  # recheck after queueing
                if stale:
                    yield from busy_split(
                        sim, host, stale * p.provider_hold, p.provider_cpu_fraction
                    )
                result = gris.search(now=sim.now)
            finally:
                provider_mutex.release()
        else:
            result = gris.search(now=sim.now)
        yield host.compute(len(result.entries) * p.cpu_per_entry)
        return Response(
            value={"entries": len(result.entries), "fetched": result.fetched},
            size=result.estimated_size(),
        )

    return Service(
        sim,
        net,
        host,
        f"gris:{gris.hostname}",
        handler,
        max_threads=p.max_threads,
        backlog=p.backlog,
        conn_overhead=p.conn_overhead,
    )


@_factory(System.MDS, (Role.DIRECTORY_SERVER, "default"))
def make_giis_directory_service(
    sim: Simulator, net: Network, host: Host, giis: GIIS, p: GiisParams
) -> Service:
    """The GIIS in its directory-server role (Experiment 2).

    Data is always in cache (the paper set cachettl very large), so a
    query is pure LDAP-backend work.
    """

    def handler(service: Service, request: Request) -> _t.Generator:
        yield host.compute(p.cpu_per_query)
        result = giis.query(now=sim.now)
        return Response(
            value={"entries": len(result.entries)},
            size=result.estimated_size(),
        )

    return Service(
        sim,
        net,
        host,
        f"giis:{giis.name}",
        handler,
        max_threads=p.max_threads,
        backlog=p.backlog,
        conn_overhead=p.conn_overhead,
    )


@_factory(System.MDS, (Role.AGGREGATE_INFORMATION_SERVER, "default"))
def make_giis_aggregate_service(
    sim: Simulator,
    net: Network,
    host: Host,
    giis: GIIS,
    p: GiisParams,
    *,
    query_part: bool = False,
    part_size: int = 10,
) -> Service:
    """The GIIS in its aggregate role (Experiment 4).

    Result assembly over G registrants is serialized in the LDAP
    backend with superlinear cost; ``query_part`` asks for a fixed-size
    subset of registrants (the paper's second query type).
    """
    assembly_mutex = Mutex(sim, name=f"giis:{giis.name}:assembly")

    def handler(service: Service, request: Request) -> _t.Generator:
        g = giis.registrant_count
        if not query_part and p.max_queryall_registrants and g > p.max_queryall_registrants:
            giis.crashed = True
            service.crash(f"query-all over {g} registrants")
            raise ServiceCrashError(
                f"GIIS {giis.name} crashed answering query-all over {g} registrants"
            )
        scale = p.part_fraction if query_part else 1.0
        cost = scale * p.aggregate_cpu_coeff * (g ** p.aggregate_cpu_exp)
        yield from held(sim, host, assembly_mutex, cost, cpu_fraction=0.85)
        if query_part:
            names = [reg.name for reg in giis.registrations.alive(sim.now)][:part_size]
            result = giis.query(now=sim.now, subset=names)
        else:
            result = giis.query(now=sim.now)
        size = max(result.estimated_size(), len(result.entries) * p.entry_wire_bytes)
        return Response(value={"entries": len(result.entries)}, size=size)

    suffix = "part" if query_part else "all"
    return Service(
        sim,
        net,
        host,
        f"giis:{giis.name}:{suffix}",
        handler,
        max_threads=p.max_threads,
        backlog=p.backlog,
        conn_overhead=p.conn_overhead,
    )


@_factory(
    System.MDS,
    (Role.DIRECTORY_SERVER, "registration"),
    (Role.AGGREGATE_INFORMATION_SERVER, "registration"),
)
def make_giis_registration_service(
    sim: Simulator,
    net: Network,
    host: Host,
    giis: GIIS,
    p: GiisParams,
    pullers: _t.Mapping[str, _t.Callable[[float], tuple[list, float]]],
) -> Service:
    """The GIIS's soft-state registration endpoint.

    Accepts ``{"op": "register"|"renew", "name": ..., "ttl": ...}``
    payloads from downstream GRIS (see
    :func:`repro.mds.resilience.soft_state_registrar`).  A renew of an
    expired/unknown name answers ``{"renewed": False}`` so the client
    knows to fall back to a full re-register — the recovery path after
    an injected GIIS outage outlives the registration leases.

    ``pullers`` maps registrant names to their pull callbacks (the wire
    protocol carries names; the in-process GIIS needs the callable).
    """

    def handler(service: Service, request: Request) -> _t.Generator:
        yield host.compute(p.cpu_per_query)
        payload = request.payload if isinstance(request.payload, dict) else {}
        op = payload.get("op", "renew")
        name = payload.get("name", "")
        ttl = float(payload.get("ttl", 600.0))
        if op == "register":
            puller = pullers.get(name)
            if puller is None:
                raise RegistryError(f"no puller known for registrant {name!r}")
            giis.register(name, puller, now=sim.now, ttl=ttl)
            return Response(value={"registered": True}, size=128)
        renewed = giis.renew(name, now=sim.now)
        return Response(value={"renewed": renewed}, size=96)

    return Service(
        sim,
        net,
        host,
        f"giis:{giis.name}:reg",
        handler,
        max_threads=p.max_threads,
        backlog=p.backlog,
    )


@_factory(System.MDS, (Role.AGGREGATE_INFORMATION_SERVER, "leaf"))
def make_giis_leaf_service(
    sim: Simulator, net: Network, host: Host, giis: GIIS, p: GiisParams
) -> Service:
    """A mid-/leaf-level GIIS inside a hierarchy (§3.6's suggested fix).

    Unlike the top-level aggregate, a subtree GIIS answers from its own
    primed cache with pure CPU assembly cost — the serialized LDAP
    backend bottleneck belongs to the node the users hit, and the whole
    point of the hierarchy is that this work happens in parallel across
    nodes.
    """

    def handler(service: Service, request: Request) -> _t.Generator:
        cost = p.aggregate_cpu_coeff * (giis.registrant_count ** p.aggregate_cpu_exp)
        yield host.compute(cost)
        result = giis.query(now=sim.now)
        size = max(result.estimated_size(), len(result.entries) * p.entry_wire_bytes)
        return Response(value={"entries": len(result.entries), "size": size}, size=size)

    return Service(
        sim,
        net,
        host,
        f"giis:{giis.name}",
        handler,
        max_threads=p.max_threads,
        backlog=p.backlog,
    )


@_factory(System.MDS, (Role.AGGREGATE_INFORMATION_SERVER, "fanout"))
def make_giis_fanout_service(
    sim: Simulator,
    net: Network,
    host: Host,
    children: _t.Sequence[Service],
    p: GiisParams,
    *,
    label: str = "giis:top",
    top: bool = True,
) -> Service:
    """An interior GIIS aggregating child GIIS services concurrently.

    The node's own assembly cost covers only its direct children; the
    heavy per-registrant work happens in parallel at the children.
    ``top`` adds client connection overhead (only the root faces users).
    """
    k = len(children)
    cost = p.aggregate_cpu_coeff * (k ** p.aggregate_cpu_exp)

    def sub_call(child: Service, payload: _t.Any) -> _t.Generator:
        value = yield from call(sim, net, host, child, payload, size=512)
        return value

    def handler(service: Service, request: Request) -> _t.Generator:
        yield host.compute(cost)
        workers = [
            sim.spawn(sub_call(child, request.payload), name=f"fan:{child.name}")
            for child in children
        ]
        yield sim.all_of(workers)
        entries = sum(w.value["entries"] for w in workers if w.ok and isinstance(w.value, dict))
        size = sum(w.value["size"] for w in workers if w.ok and isinstance(w.value, dict))
        return Response(
            value={"entries": entries, "size": max(size, 512)}, size=max(size, 512)
        )

    return Service(
        sim,
        net,
        host,
        label,
        handler,
        max_threads=p.max_threads,
        backlog=p.backlog,
        conn_overhead=p.conn_overhead if top else None,
    )


# -- Hawkeye -------------------------------------------------------------


@_factory(System.HAWKEYE, (Role.INFORMATION_SERVER, "default"))
def make_agent_service(
    sim: Simulator, net: Network, host: Host, agent: Agent, p: AgentParams
) -> Service:
    """The Hawkeye Agent as a network service (Experiments 1 and 3).

    Every query re-collects the modules under the Startd lock — the
    Agent "has to retrieve new information for each query" (§3.3) —
    with the quadratic integration cost of ClassAd merging.
    """
    startd_mutex = Mutex(sim, name=f"agent:{agent.machine}:startd")

    def handler(service: Service, request: Request) -> _t.Generator:
        yield host.compute(p.cpu_per_query)
        m = agent.module_count
        # Lock-convoy degradation: the hold inflates with the queue the
        # request joins, producing the paper's post-threshold decline in
        # throughput and host load (Figs 5, 7).
        hold = p.fetch_quad_coeff * (m * m) * (1.0 + p.convoy_coeff * startd_mutex.queue_length)
        yield startd_mutex.acquire()
        try:
            yield from busy_split(sim, host, hold, p.fetch_cpu_fraction)
            answer = agent.query(now=sim.now)
        finally:
            startd_mutex.release()
        return Response(
            value={"attrs": len(answer.ad), "modules": answer.modules_run},
            size=answer.estimated_size(),
        )

    return Service(
        sim,
        net,
        host,
        f"agent:{agent.machine}",
        handler,
        max_threads=p.max_threads,
        backlog=p.backlog,
        conn_overhead=p.conn_overhead,
    )


@_factory(System.HAWKEYE, (Role.DIRECTORY_SERVER, "default"))
def make_manager_directory_service(
    sim: Simulator, net: Network, host: Host, manager: Manager, p: ManagerParams
) -> Service:
    """The Manager in its directory role (Experiment 2): indexed lookups."""

    def handler(service: Service, request: Request) -> _t.Generator:
        yield host.compute(p.cpu_per_query)
        machine = None
        if isinstance(request.payload, dict):
            machine = request.payload.get("machine")
        if machine:
            answer = manager.query_machine(machine)
        else:
            answer = manager.query('Name == "lucky4.mcs.anl.gov"')
        return Response(
            value={"ads": len(answer.ads)},
            size=max(answer.estimated_size(), 512),
        )

    return Service(
        sim,
        net,
        host,
        f"manager:{manager.name}:dir",
        handler,
        max_threads=p.max_threads,
        backlog=p.backlog,
        conn_overhead=p.conn_overhead,
    )


@_factory(System.HAWKEYE, (Role.AGGREGATE_INFORMATION_SERVER, "default"))
def make_manager_aggregate_service(
    sim: Simulator,
    net: Network,
    host: Host,
    manager: Manager,
    p: ManagerParams,
    collector_mutex: Mutex | None = None,
) -> tuple[Service, Mutex]:
    """The Manager in its aggregate role (Experiment 4).

    Queries run the paper's worst case — "a constraint that was not met
    by any machine" — scanning every resident Startd ad under the
    collector lock.  Returns the service and the lock so the ingest
    service can share it.
    """
    lock = collector_mutex or Mutex(sim, name=f"manager:{manager.name}:collector")

    def handler(service: Service, request: Request) -> _t.Generator:
        yield host.compute(p.cpu_per_query)
        pool = manager.pool_size
        scan_cost = p.scan_cpu_per_ad * pool
        yield lock.acquire()
        try:
            if scan_cost > 0:
                yield host.compute(scan_cost)
            answer = manager.query("TARGET.CpuLoad > 50")  # matches nothing
        finally:
            lock.release()
        return Response(value={"ads": len(answer.ads), "scanned": answer.scanned}, size=512)

    service = Service(
        sim,
        net,
        host,
        f"manager:{manager.name}:agg",
        handler,
        max_threads=p.max_threads,
        backlog=p.backlog,
        conn_overhead=p.conn_overhead,
    )
    return service, lock


@_factory(
    System.HAWKEYE,
    (Role.AGGREGATE_INFORMATION_SERVER, "ingest"),
    (Role.DIRECTORY_SERVER, "ingest"),
)
def make_manager_ingest_service(
    sim: Simulator,
    net: Network,
    host: Host,
    manager: Manager,
    p: ManagerParams,
    collector_mutex: Mutex,
) -> Service:
    """The Manager's ad-ingestion path (hawkeye_advertise traffic)."""

    def handler(service: Service, request: Request) -> _t.Generator:
        yield host.compute(p.ad_ingest_cpu)
        yield from held(sim, host, collector_mutex, p.ad_ingest_hold, cpu_fraction=1.0)
        ad = request.payload["ad"]
        manager.receive_ad(ad, now=sim.now)
        return Response(value={"ok": True}, size=64)

    return Service(
        sim,
        net,
        host,
        f"manager:{manager.name}:ingest",
        handler,
        max_threads=16,
        backlog=256,
    )


@_factory(System.HAWKEYE, (Role.AGGREGATE_INFORMATION_SERVER, "fanout"))
def make_manager_fanout_service(
    sim: Simulator,
    net: Network,
    host: Host,
    children: _t.Sequence[Service],
    p: ManagerParams,
    *,
    label: str = "manager:top",
    top: bool = True,
) -> Service:
    """An interior Manager forwarding constraint scans to child Managers.

    Each child scans its own pool concurrently; this node only merges
    the k child answers (CPU-cheap, like the directory path).
    """
    k = len(children)

    def sub_call(child: Service, payload: _t.Any) -> _t.Generator:
        value = yield from call(sim, net, host, child, payload, size=p.request_size)
        return value

    def handler(service: Service, request: Request) -> _t.Generator:
        yield host.compute(p.cpu_per_query * max(1, k))
        workers = [
            sim.spawn(sub_call(child, request.payload), name=f"fan:{child.name}")
            for child in children
        ]
        yield sim.all_of(workers)
        ads = sum(w.value["ads"] for w in workers if w.ok and isinstance(w.value, dict))
        scanned = sum(w.value["scanned"] for w in workers if w.ok and isinstance(w.value, dict))
        return Response(value={"ads": ads, "scanned": scanned}, size=512)

    return Service(
        sim,
        net,
        host,
        label,
        handler,
        max_threads=p.max_threads,
        backlog=p.backlog,
        conn_overhead=p.conn_overhead if top else None,
    )


# -- R-GMA ----------------------------------------------------------------


@_factory(System.RGMA, (Role.INFORMATION_SERVER, "default"))
def make_producer_servlet_service(
    sim: Simulator, net: Network, host: Host, servlet: ProducerServlet, p: ProducerServletParams
) -> Service:
    """The R-GMA ProducerServlet (Experiments 1 and 3).

    Queries serialize on the buffer database; the hold grows with the
    number of attached producers (linear + quadratic mediation term).
    """
    db_mutex = Mutex(sim, name=f"ps:{servlet.name}:db")

    def handler(service: Service, request: Request) -> _t.Generator:
        yield host.compute(p.cpu_per_query)
        m = len(servlet.producers)
        hold = p.db_hold_linear * m + p.db_hold_quad * (m * m)
        # Lock-convoy degradation past the saturation threshold (Figs 5, 7).
        hold *= 1.0 + p.convoy_coeff * db_mutex.queue_length
        yield from held(sim, host, db_mutex, hold, p.db_cpu_fraction)
        sql = "SELECT * FROM cpuLoad"
        if isinstance(request.payload, dict):
            sql = request.payload.get("sql", sql)
        answer = servlet.answer(sql)
        return Response(
            value={"rows": len(answer.result.rows)},
            size=answer.estimated_size(),
        )

    return Service(
        sim,
        net,
        host,
        f"ps:{servlet.name}",
        handler,
        max_threads=p.max_threads,
        backlog=p.backlog,
        conn_overhead=p.conn_overhead,
    )


@_factory(System.RGMA, (Role.INFORMATION_SERVER, "mediator"))
def make_consumer_servlet_service(
    sim: Simulator,
    net: Network,
    host: Host,
    name: str,
    ps_service: Service,
    p: ConsumerServletParams,
    retry: RetryPolicy | None = None,
) -> Service:
    """An R-GMA ConsumerServlet forwarding mediated queries to a
    ProducerServlet service.

    Registry consultation is mediated once per distinct query and then
    cached (R-GMA's mediation plans), so the steady-state path is
    CS -> PS -> CS.  ``retry`` makes the CS->PS hop resilient: during a
    ProducerServlet outage the servlet retries with backoff instead of
    bubbling the first refusal straight to its consumer.
    """
    mediation_mutex = Mutex(sim, name=f"cs:{name}:mediation")

    def handler(service: Service, request: Request) -> _t.Generator:
        yield host.compute(p.cpu_per_query)
        yield from held(sim, host, mediation_mutex, p.mediation_hold, cpu_fraction=1.0)
        value = yield from call(
            sim, net, host, ps_service, request.payload, size=p.request_size, retry=retry
        )
        return Response(value=value, size=1024)

    return Service(
        sim,
        net,
        host,
        f"cs:{name}",
        handler,
        max_threads=p.max_threads,
        backlog=p.backlog,
    )


@_factory(System.RGMA, (Role.DIRECTORY_SERVER, "default"))
def make_registry_service(
    sim: Simulator, net: Network, host: Host, registry: Registry, p: RegistryParams
) -> Service:
    """The R-GMA Registry as a directory server (Experiment 2).

    Thread-per-request Java over a small worker pool: queries are
    CPU-bound, so the run queue (load1) climbs well past the other
    directory servers' — Figures 9 and 11.
    """

    def handler(service: Service, request: Request) -> _t.Generator:
        yield host.compute(p.cpu_per_query)
        table = "cpuLoad"
        if isinstance(request.payload, dict):
            table = request.payload.get("table", table)
        regs = registry.lookup(table, now=sim.now)
        return Response(value={"producers": len(regs)}, size=max(256, 128 * len(regs)))

    return Service(
        sim,
        net,
        host,
        f"registry:{registry.name}",
        handler,
        max_threads=p.max_threads,
        backlog=p.backlog,
        conn_overhead=p.conn_overhead,
    )
