"""Closed-loop user simulation (paper §3.1).

"All requests to the servers ... occurred with a one-second wait
period.  That is, after a user queried a service component and received
a response, the user waited one second before sending its next query.
Note this does not mean that queries were sent once a second, rather,
this is equivalent to blocking sends with a 1-second wait in between."

Each simulated user is one process: issue a blocking request, record
the outcome, wait ``think_time``, repeat.  Refused connections (server
backlog full) are retried after ``retry_wait``.

The paper's future work plans "additional patterns of user access"
(§4); :data:`THINK_PATTERNS` provides them: the paper's near-constant
wait, exponential (Poisson users), heavy-tailed Pareto, and a bursty
on/off pattern.  Select with ``WorkloadParams.pattern``.
"""

from __future__ import annotations

import typing as _t

import numpy as np

from repro.core.metrics import (
    OUTCOME_ERROR,
    OUTCOME_OK,
    OUTCOME_REFUSED,
    OUTCOME_TIMEOUT,
    RequestLog,
)
from repro.core.params import WorkloadParams
from repro.errors import RequestTimeoutError, ServiceUnavailableError

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator
    from repro.sim.host import Host
    from repro.sim.network import Network
    from repro.sim.rpc import RetryPolicy, Service

__all__ = ["spawn_users", "user_process", "THINK_PATTERNS", "make_think_sampler"]

# A think-time multiplier sampled at the moment each wait begins; the
# scenario plane uses it for diurnal/flash-crowd arrival modulation.
ThinkScale = _t.Callable[[float], float]


def _constant_pattern(wp: WorkloadParams, rng: np.random.Generator) -> _t.Callable[[], float]:
    """The paper's wait: 1 s with a little de-phasing jitter."""

    def sample() -> float:
        jitter = 1.0 + float(rng.uniform(-wp.think_jitter, wp.think_jitter))
        return wp.think_time * jitter

    return sample


def _exponential_pattern(wp: WorkloadParams, rng: np.random.Generator) -> _t.Callable[[], float]:
    """Memoryless waits with the same mean (Poisson-like users)."""

    def sample() -> float:
        return float(rng.exponential(wp.think_time))

    return sample


def _pareto_pattern(wp: WorkloadParams, rng: np.random.Generator) -> _t.Callable[[], float]:
    """Heavy-tailed waits (shape 1.5), mean matched to ``think_time``."""
    shape = 1.5
    scale = wp.think_time * (shape - 1.0) / shape  # mean = scale*shape/(shape-1)

    def sample() -> float:
        return float(scale * (1.0 + rng.pareto(shape)))

    return sample


def _onoff_pattern(wp: WorkloadParams, rng: np.random.Generator) -> _t.Callable[[], float]:
    """Bursty users: runs of quick-fire queries separated by long idles.

    Mean wait still ~``think_time``: bursts of ~8 queries at 0.1x
    spacing, then one idle of ~8x.
    """
    state = {"left": int(rng.integers(1, 9))}

    def sample() -> float:
        state["left"] -= 1
        if state["left"] > 0:
            return 0.1 * wp.think_time
        state["left"] = int(rng.integers(4, 13))
        return float(rng.exponential(7.3 * wp.think_time))

    return sample


THINK_PATTERNS: dict[str, _t.Callable[[WorkloadParams, np.random.Generator], _t.Callable[[], float]]] = {
    "constant": _constant_pattern,
    "exponential": _exponential_pattern,
    "pareto": _pareto_pattern,
    "onoff": _onoff_pattern,
}


def make_think_sampler(wp: WorkloadParams, rng: np.random.Generator) -> _t.Callable[[], float]:
    """The wait-time sampler for ``wp.pattern`` (KeyError on unknown)."""
    return THINK_PATTERNS[wp.pattern](wp, rng)


def user_process(
    sim: Simulator,
    net: Network,
    user_id: int,
    client_host: Host,
    service: Service,
    payload_fn: _t.Callable[[int], _t.Any],
    request_size: int,
    log: RequestLog,
    wp: WorkloadParams,
    rng: np.random.Generator,
    retry: RetryPolicy | None = None,
    think_scale: ThinkScale | None = None,
) -> _t.Generator:
    """One user's infinite query loop (the run(until=...) ends it).

    ``think_scale`` maps the current simulation time to a multiplier on
    the sampled wait — scenario arrival modulation.  ``None`` leaves the
    wait untouched.

    With ``retry``, each logical query runs through the policy's
    backoff/breaker loop; only the final outcome is logged, so refused
    records then mean "gave up after retries" (or a fast-fail from an
    open circuit breaker).
    """
    from repro.sim.rpc import call  # runtime-only: keeps the module sim-free at import

    think = make_think_sampler(wp, rng)
    # Desynchronize start times so users don't arrive in lockstep.
    yield sim.timeout(float(rng.uniform(0.0, wp.start_spread)))
    while True:
        started = sim.now
        try:
            yield from call(
                sim,
                net,
                client_host,
                service,
                payload_fn(user_id),
                size=request_size,
                timeout=wp.request_timeout,
                retry=retry,
            )
            log.add(user_id, started, sim.now, OUTCOME_OK)
        except ServiceUnavailableError:
            log.add(user_id, started, sim.now, OUTCOME_REFUSED)
            yield sim.timeout(wp.retry_wait)
            continue
        except RequestTimeoutError:
            log.add(user_id, started, sim.now, OUTCOME_TIMEOUT)
        except Exception:
            log.add(user_id, started, sim.now, OUTCOME_ERROR)
        # The paper's 1-second wait by default (with a little jitter so
        # hundreds of identical closed loops don't phase-lock into
        # request waves); other access patterns via wp.pattern.
        wait = think()
        if think_scale is not None:
            wait *= think_scale(sim.now)
        yield sim.timeout(wait)


def spawn_users(
    sim: Simulator,
    net: Network,
    clients: _t.Sequence[Host],
    service: Service,
    *,
    log: RequestLog,
    wp: WorkloadParams,
    rng: np.random.Generator,
    payload_fn: _t.Callable[[int], _t.Any] = lambda uid: {"query": "all"},
    request_size: int = 512,
    services_by_user: _t.Sequence[Service] | None = None,
    retry: RetryPolicy | None = None,
    think_scale: ThinkScale | None = None,
    first_id: int = 0,
) -> int:
    """Start one user process per entry of ``clients``.

    ``services_by_user`` optionally routes each user to its own service
    (the R-GMA lucky variant runs one ConsumerServlet per node).
    ``retry`` is shared by every user, so its stats accumulate the
    run-level retry amplification.  ``first_id`` offsets the user ids
    (scenario client mixes spawn the population in groups).  Returns the
    number of users started.
    """
    for offset, client in enumerate(clients):
        user_id = first_id + offset
        target = services_by_user[offset] if services_by_user is not None else service
        sim.spawn(
            user_process(
                sim,
                net,
                user_id,
                client,
                target,
                payload_fn,
                request_size,
                log,
                wp,
                rng,
                retry=retry,
                think_scale=think_scale,
            ),
            name=f"user{user_id}",
        )
    return len(clients)
