"""Trace-driven (open-loop) workload replay.

The paper's workload is closed-loop: each user blocks, then waits 1 s
(§3.1).  Real monitoring deployments also see *open-loop* traffic —
cron-driven pollers, portals, schedulers — whose arrival times don't
react to server latency.  This module replays a recorded arrival trace
against any simulated service, which both supports the "additional
patterns of user access" future work (§4) with real traces and lets
users stress a deployment with traffic captured from their own grid.

Trace format: CSV with header ``time,user[,payload]`` — seconds since
trace start, an opaque user id, and an optional payload string.
"""

from __future__ import annotations

import io
import typing as _t
from dataclasses import dataclass

import numpy as np

from repro.core.metrics import (
    OUTCOME_ERROR,
    OUTCOME_OK,
    OUTCOME_REFUSED,
    OUTCOME_TIMEOUT,
    RequestLog,
)
from repro.errors import ReproError, RequestTimeoutError, ServiceUnavailableError
from repro.sim.engine import Simulator
from repro.sim.host import Host
from repro.sim.network import Network
from repro.sim.rpc import Service, call

__all__ = [
    "TraceEntry",
    "load_trace",
    "dump_trace",
    "synthesize_poisson_trace",
    "replay_trace",
]


@dataclass(frozen=True)
class TraceEntry:
    """One recorded request arrival."""

    time: float
    user: int
    payload: str = ""


def load_trace(source: str | io.TextIOBase) -> list[TraceEntry]:
    """Parse a ``time,user[,payload]`` CSV; returns time-sorted entries."""
    text = source.read() if hasattr(source, "read") else source
    entries: list[TraceEntry] = []
    lines = [ln for ln in text.splitlines() if ln.strip()]
    if not lines:
        raise ReproError("empty trace")
    start = 0
    if lines[0].lower().replace(" ", "").startswith("time,user"):
        start = 1
    for lineno, line in enumerate(lines[start:], start=start + 1):
        parts = [p.strip() for p in line.split(",", 2)]
        if len(parts) < 2:
            raise ReproError(f"trace line {lineno}: need time,user — got {line!r}")
        try:
            when = float(parts[0])
            user = int(parts[1])
        except ValueError as exc:
            raise ReproError(f"trace line {lineno}: {exc}") from exc
        if when < 0:
            raise ReproError(f"trace line {lineno}: negative time {when}")
        entries.append(TraceEntry(when, user, parts[2] if len(parts) > 2 else ""))
    entries.sort(key=lambda e: (e.time, e.user))
    return entries


def dump_trace(entries: _t.Iterable[TraceEntry]) -> str:
    """Serialize entries back to the CSV format (with header)."""
    lines = ["time,user,payload"]
    for entry in entries:
        lines.append(f"{entry.time:.6f},{entry.user},{entry.payload}")
    return "\n".join(lines) + "\n"


def synthesize_poisson_trace(
    rate: float,
    duration: float,
    users: int,
    rng: np.random.Generator,
) -> list[TraceEntry]:
    """A Poisson arrival trace at ``rate`` req/s spread over ``users``."""
    if rate <= 0 or duration <= 0 or users <= 0:
        raise ReproError("rate, duration and users must be positive")
    entries: list[TraceEntry] = []
    t = float(rng.exponential(1.0 / rate))
    while t < duration:
        entries.append(TraceEntry(t, int(rng.integers(0, users))))
        t += float(rng.exponential(1.0 / rate))
    return entries


def replay_trace(
    sim: Simulator,
    net: Network,
    entries: _t.Sequence[TraceEntry],
    service: Service,
    clients: _t.Sequence[Host],
    *,
    log: RequestLog,
    payload_fn: _t.Callable[[TraceEntry], _t.Any] | None = None,
    request_size: int = 512,
    timeout: float | None = None,
) -> int:
    """Schedule every trace entry as an independent (open-loop) request.

    Each entry's request is issued from ``clients[user % len(clients)]``
    at exactly its recorded time, regardless of earlier outcomes —
    that's what makes open-loop overload qualitatively harsher than the
    paper's closed loop.  Returns the number of requests scheduled.
    """
    if not clients:
        raise ReproError("replay_trace needs at least one client host")

    def one_shot(entry: TraceEntry) -> _t.Generator:
        yield sim.timeout(entry.time)
        client = clients[entry.user % len(clients)]
        started = sim.now
        payload = payload_fn(entry) if payload_fn is not None else entry.payload
        try:
            yield from call(sim, net, client, service, payload, size=request_size, timeout=timeout)
            log.add(entry.user, started, sim.now, OUTCOME_OK)
        except ServiceUnavailableError:
            log.add(entry.user, started, sim.now, OUTCOME_REFUSED)
        except RequestTimeoutError:
            log.add(entry.user, started, sim.now, OUTCOME_TIMEOUT)
        except Exception:
            log.add(entry.user, started, sim.now, OUTCOME_ERROR)

    for entry in entries:
        sim.spawn(one_shot(entry), name=f"trace:{entry.user}@{entry.time:.3f}")
    return len(entries)
