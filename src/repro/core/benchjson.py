"""Machine-readable benchmark records (schema, IO and comparison).

Every ``benchmarks/bench_*`` module writes — alongside its human-readable
``.txt`` figure tables — one JSON file of performance records::

    {
      "schema": 1,
      "bench": "bench_exp1",
      "records": [
        {
          "bench": "bench_exp1",
          "name": "point_100_users[mds-gris-cache]",
          "config": {"system": "mds-gris-cache", "users": 100},
          "wall_seconds": 0.123,
          "events": 18042,
          "events_per_sec": 146682.9,
          "throughput": 97.3,
          "latency_p50": 0.021,
          "latency_p95": 0.055,
          "jobs": 4,
          "wall_speedup": 3.1,
          "cache_hits": 0
        },
        ...
      ]
    }

``events``/``throughput``/``latency_*`` come from the run's
:class:`~repro.core.runner.PointResult` (aggregated when a benchmark
times a whole sweep); timing-only benchmarks that produce no point
results record ``events = 0`` and are exempt from the throughput gate.
``jobs``/``wall_speedup``/``cache_hits`` (schema 2) describe how the
sweep executed: worker-process count, summed point time over wall time,
and points served from the :mod:`repro.core.parallel` point cache
(``0``/``0.0`` for benchmarks that bypass the sweep executor).
``replications``/``throughput_ci``/``converged`` (schema 3) describe
how the measurement was estimated: replication count, 95% CI half-width
on throughput and whether the adaptive stopping rule converged — exact
single-run benchmarks record ``1``/``0.0``/``true``.
``fidelity``/``population`` (schema 4) describe the simulation tier
that produced the points (``"exact"``, ``"cohort"`` or ``"meanfield"``;
``"mixed"`` when a sweep combined tiers — see docs/FIDELITY.md) and the
largest client population modelled (``0`` when no point carried one).
Mean-field records have ``events_per_sec == 0`` (no event loop ran) and
are therefore wall-clock-only for the throughput gate.

:func:`compare` diffs a results directory against a committed baseline
directory with a relative tolerance; :func:`append_history` /
:func:`load_history` maintain the accumulated run-over-run history that
``repro-bench gate`` feeds to :func:`repro.core.stats.changepoint_gate`.
The ``repro-bench`` CLI (:mod:`repro.core.benchcli`) wraps both for CI.
See docs/BENCHMARKS.md.
"""

from __future__ import annotations

import json
import pathlib
import typing as _t
from dataclasses import dataclass, field

__all__ = [
    "SCHEMA_VERSION",
    "BenchRecord",
    "Comparison",
    "record_from_result",
    "write_bench_file",
    "load_bench_file",
    "load_records",
    "compare",
    "append_history",
    "load_history",
    "history_series",
    "prune_history",
]

SCHEMA_VERSION = 4

# Schema 1 records lack jobs/wall_speedup/cache_hits, schema 2 lacks
# replications/throughput_ci/converged, schema 3 lacks
# fidelity/population; all decode with the field defaults, so committed
# baselines keep loading.
_READABLE_SCHEMAS = (1, 2, 3, 4)


@dataclass
class BenchRecord:
    """One benchmark measurement."""

    bench: str
    name: str
    config: dict[str, _t.Any] = field(default_factory=dict)
    wall_seconds: float = 0.0
    events: int = 0
    events_per_sec: float = 0.0
    throughput: float = 0.0
    latency_p50: float = 0.0
    latency_p95: float = 0.0
    # Sweep-execution metadata (schema 2): how the points were produced.
    jobs: int = 1
    wall_speedup: float = 0.0  # summed point seconds / wall seconds; 0 = n/a
    cache_hits: int = 0
    # Estimation metadata (schema 3): how the measurement was estimated.
    replications: int = 1
    throughput_ci: float = 0.0  # mean 95% CI half-width across sweep points
    converged: bool = True  # adaptive stopping rule met its precision target
    # Fidelity metadata (schema 4): which simulation tier produced the
    # points and the largest client population modelled.
    fidelity: str = "exact"
    population: int = 0

    @property
    def key(self) -> tuple[str, str]:
        return (self.bench, self.name)

    def to_dict(self) -> dict[str, _t.Any]:
        return {
            "bench": self.bench,
            "name": self.name,
            "config": self.config,
            "wall_seconds": round(self.wall_seconds, 6),
            "events": self.events,
            "events_per_sec": round(self.events_per_sec, 1),
            "throughput": round(self.throughput, 4),
            "latency_p50": round(self.latency_p50, 6),
            "latency_p95": round(self.latency_p95, 6),
            "jobs": self.jobs,
            "wall_speedup": round(self.wall_speedup, 4),
            "cache_hits": self.cache_hits,
            "replications": self.replications,
            "throughput_ci": round(self.throughput_ci, 4),
            "converged": self.converged,
            "fidelity": self.fidelity,
            "population": self.population,
        }

    @classmethod
    def from_dict(cls, data: dict[str, _t.Any]) -> "BenchRecord":
        return cls(
            bench=str(data["bench"]),
            name=str(data["name"]),
            config=dict(data.get("config") or {}),
            wall_seconds=float(data.get("wall_seconds", 0.0)),
            events=int(data.get("events", 0)),
            events_per_sec=float(data.get("events_per_sec", 0.0)),
            throughput=float(data.get("throughput", 0.0)),
            latency_p50=float(data.get("latency_p50", 0.0)),
            latency_p95=float(data.get("latency_p95", 0.0)),
            jobs=int(data.get("jobs", 1)),
            wall_speedup=float(data.get("wall_speedup", 0.0)),
            cache_hits=int(data.get("cache_hits", 0)),
            replications=int(data.get("replications", 1)),
            throughput_ci=float(data.get("throughput_ci", 0.0)),
            converged=bool(data.get("converged", True)),
            fidelity=str(data.get("fidelity", "exact")),
            population=int(data.get("population", 0)),
        )


# -- extraction ---------------------------------------------------------------


def _point_results(obj: _t.Any) -> list[_t.Any]:
    """Recursively collect PointResult-shaped objects out of ``obj``.

    Benchmarks return all sorts of shapes — one point, a sweep list, a
    dict of label -> point, wrappers like ScalePoint (``.result``) or
    FaultPointResult (``.baseline`` / ``.faulted``).  Duck-typing keeps
    this schema module free of experiment imports.
    """
    if obj is None:
        return []
    if hasattr(obj, "sim_events") and hasattr(obj, "summary"):
        return [obj]
    if isinstance(obj, dict):
        out: list[_t.Any] = []
        for value in obj.values():
            out.extend(_point_results(value))
        return out
    if isinstance(obj, (list, tuple)):
        out = []
        for value in obj:
            out.extend(_point_results(value))
        return out
    out = []
    for attr in ("result", "baseline", "faulted"):
        if hasattr(obj, attr):
            out.extend(_point_results(getattr(obj, attr)))
    return out


def record_from_result(
    bench: str,
    name: str,
    wall_seconds: float,
    result: _t.Any = None,
    config: dict[str, _t.Any] | None = None,
) -> BenchRecord:
    """Build one record from whatever a benchmark callable returned.

    With point results available the record carries engine events and
    client-side metrics (summed events; mean throughput; worst-case
    latency percentiles across the sweep).  Without any, it is a
    wall-clock-only record (``events = 0``).
    """
    points = _point_results(result)
    events = sum(p.sim_events for p in points)
    throughput = (
        sum(p.summary.throughput for p in points) / len(points) if points else 0.0
    )
    latency_p50 = max((p.summary.latency_p50 for p in points), default=0.0)
    latency_p95 = max((p.summary.latency_p95 for p in points), default=0.0)
    # Estimation metadata (schema 3): adaptive-mode points carry a
    # ReplicationInfo on ``.ci``; exact points record the defaults.
    infos = [p.ci for p in points if getattr(p, "ci", None) is not None]
    replications = max((i.replications for i in infos), default=1)
    throughput_ci = sum(i.throughput_ci for i in infos) / len(infos) if infos else 0.0
    converged = all(i.converged for i in infos)
    # Fidelity metadata (schema 4): one tier per record, or "mixed" when
    # a sweep combined tiers (pre-fidelity PointResults read as exact).
    tiers = {getattr(p, "fidelity", "exact") for p in points}
    fidelity = tiers.pop() if len(tiers) == 1 else ("mixed" if tiers else "exact")
    population = max((getattr(p, "population", 0) for p in points), default=0)
    return BenchRecord(
        bench=bench,
        name=name,
        config=dict(config or {}),
        wall_seconds=wall_seconds,
        events=events,
        events_per_sec=events / wall_seconds if wall_seconds > 0 and events else 0.0,
        throughput=throughput,
        latency_p50=latency_p50,
        latency_p95=latency_p95,
        replications=replications,
        throughput_ci=throughput_ci,
        converged=converged,
        fidelity=fidelity,
        population=population,
    )


# -- IO -----------------------------------------------------------------------


def write_bench_file(
    path: pathlib.Path | str, bench: str, records: _t.Sequence[BenchRecord]
) -> pathlib.Path:
    """Write one bench module's records; creates parent dirs on first use."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "schema": SCHEMA_VERSION,
        "bench": bench,
        "records": [r.to_dict() for r in sorted(records, key=lambda r: r.name)],
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_bench_file(path: pathlib.Path | str) -> list[BenchRecord]:
    """Records of one JSON file (raises ValueError on schema mismatch)."""
    data = json.loads(pathlib.Path(path).read_text())
    if data.get("schema") not in _READABLE_SCHEMAS:
        raise ValueError(f"{path}: unsupported schema {data.get('schema')!r}")
    return [BenchRecord.from_dict(r) for r in data.get("records", [])]


def load_records(directory: pathlib.Path | str) -> dict[tuple[str, str], BenchRecord]:
    """All records under ``directory/*.json``, keyed by (bench, name)."""
    directory = pathlib.Path(directory)
    records: dict[tuple[str, str], BenchRecord] = {}
    for path in sorted(directory.glob("*.json")):
        for record in load_bench_file(path):
            records[record.key] = record
    return records


# -- history ------------------------------------------------------------------

_HISTORY_PATTERN = "run-*.json"


def _history_paths(history_dir: pathlib.Path | str) -> list[pathlib.Path]:
    """Snapshot files oldest-first (zero-padded names sort lexically)."""
    return sorted(pathlib.Path(history_dir).glob(_HISTORY_PATTERN))


def append_history(
    history_dir: pathlib.Path | str,
    run: pathlib.Path | str | dict[tuple[str, str], "BenchRecord"],
) -> pathlib.Path:
    """Snapshot one run's records into the accumulated history.

    ``run`` is a results directory (every ``*.json`` in it is folded
    into the snapshot) or an already-loaded ``{(bench, name): record}``
    mapping.  Snapshots are written as ``run-NNNNN.json`` with a
    monotonically increasing index, so a lexical sort of the directory
    is the chronological run order — no timestamps needed, which keeps
    the CI cache deterministic.
    """
    records = run if isinstance(run, dict) else load_records(run)
    if not records:
        raise ValueError(f"append_history: no records in {run!r}")
    paths = _history_paths(history_dir)
    last = int(paths[-1].stem.split("-", 1)[1]) if paths else 0
    path = pathlib.Path(history_dir) / f"run-{last + 1:05d}.json"
    return write_bench_file(path, "history", list(records.values()))


def load_history(
    history_dir: pathlib.Path | str,
) -> list[dict[tuple[str, str], "BenchRecord"]]:
    """All history snapshots, oldest first, each keyed by (bench, name)."""
    out: list[dict[tuple[str, str], BenchRecord]] = []
    for path in _history_paths(history_dir):
        out.append({r.key: r for r in load_bench_file(path)})
    return out


def history_series(
    history: _t.Sequence[dict[tuple[str, str], "BenchRecord"]],
    key: tuple[str, str],
) -> list[float]:
    """Chronological events/sec of one record key (absent runs skipped)."""
    return [
        run[key].events_per_sec for run in history if key in run
    ]


def prune_history(history_dir: pathlib.Path | str, keep: int) -> int:
    """Drop the oldest snapshots beyond ``keep``; returns how many."""
    if keep < 1:
        raise ValueError(f"keep must be >= 1, got {keep}")
    paths = _history_paths(history_dir)
    stale = paths[:-keep] if len(paths) > keep else []
    for path in stale:
        path.unlink()
    return len(stale)


# -- comparison ---------------------------------------------------------------


@dataclass(frozen=True)
class Comparison:
    """Verdict for one baseline record against the current run."""

    key: tuple[str, str]
    baseline: float  # baseline events_per_sec
    current: float | None  # run events_per_sec, None when missing
    ratio: float | None  # current / baseline
    status: str  # "ok" | "regression" | "missing"

    def describe(self) -> str:
        bench, name = self.key
        if self.status == "missing":
            return f"MISSING     {bench}:{name} (no record in run)"
        assert self.current is not None and self.ratio is not None
        tag = "REGRESSION" if self.status == "regression" else "ok"
        return (
            f"{tag:<11} {bench}:{name} "
            f"{self.current:>12,.0f} ev/s vs baseline {self.baseline:>12,.0f} "
            f"({self.ratio:.2f}x)"
        )


def compare(
    run: dict[tuple[str, str], "BenchRecord"],
    baseline: dict[tuple[str, str], "BenchRecord"],
    tolerance: float = 0.25,
) -> list[Comparison]:
    """Diff a run against a baseline on ``events_per_sec``.

    Every baseline record with a non-zero events rate must be present in
    the run and within ``tolerance`` (relative drop) of the baseline;
    wall-clock-only baselines (``events_per_sec == 0``) only need to be
    present.  Extra run records are fine — they become the next
    baseline on refresh.
    """
    if not 0.0 <= tolerance < 1.0:
        raise ValueError(f"tolerance must be in [0, 1), got {tolerance}")
    out: list[Comparison] = []
    for key in sorted(baseline):
        base = baseline[key]
        current = run.get(key)
        if current is None:
            out.append(Comparison(key, base.events_per_sec, None, None, "missing"))
            continue
        if base.events_per_sec <= 0.0:
            out.append(Comparison(key, 0.0, current.events_per_sec, 1.0, "ok"))
            continue
        ratio = current.events_per_sec / base.events_per_sec
        status = "regression" if ratio < 1.0 - tolerance else "ok"
        out.append(Comparison(key, base.events_per_sec, current.events_per_sec, ratio, status))
    return out
