"""Statistical measurement rigor: changepoints, steady state, adaptive CIs.

The paper fixes a warm-up period, measures one 600 s window and reports
single-run means; SHARP-style methodology (PELT changepoint detection +
the "Adaptive stopping rule for performance measurements") replaces
both with *detected* steady state and *replication until convergence*.
This module supplies the machinery, consumed in three places:

* :func:`detect_steady_state` — find the warm-up / cool-down boundaries
  of a run from its own metric stream (bucketed completion rates)
  instead of trusting the configured warm-up
  (:func:`repro.core.runner.drive` with ``adaptive=``);
* :func:`adaptive_replications` — fan seeded replications of one sweep
  point out through :mod:`repro.core.parallel` until the confidence
  interval on the chosen metric converges (or a replication cap is
  hit), reporting mean ± CI half-width
  (:func:`repro.core.experiments.common.adaptive_sweep_points`);
* :func:`changepoint_gate` — decide whether a benchmark's events/sec
  history contains a genuine level shift, replacing the blunt
  single-baseline tolerance in CI (``repro-bench gate``).

Everything here is dependency-free offline math over plain sequences;
:mod:`repro.core.parallel` is imported lazily by the replication
controller only, so the module stays importable from anywhere in the
core without cycles.
"""

from __future__ import annotations

import math
import typing as _t
from dataclasses import dataclass, replace

__all__ = [
    "AdaptiveConfig",
    "AdaptiveEstimate",
    "ConfidenceInterval",
    "GateVerdict",
    "ReplicationInfo",
    "SteadyState",
    "SteadyStateInfo",
    "adaptive_replications",
    "changepoint_gate",
    "default_penalty",
    "detect_steady_state",
    "mean_ci",
    "pelt_changepoints",
    "robust_noise_sigma2",
    "segment_means",
]


# -- changepoint detection (PELT) ---------------------------------------------
#
# Killick/Fearnhead/Eckley's Pruned Exact Linear Time search over a
# piecewise-constant-mean model: segment cost is the sum of squared
# deviations from the segment mean (computable in O(1) from prefix
# sums), and each accepted changepoint pays a fixed penalty.  Pruning
# keeps the candidate-start set small, so typical series (tens to a few
# hundred points) solve in well under a millisecond.


def robust_noise_sigma2(values: _t.Sequence[float]) -> float:
    """Noise variance estimated from successive differences.

    For i.i.d. noise around a piecewise-constant signal the differences
    ``d_i = x_{i+1} - x_i`` are ~ N(0, 2 sigma^2) away from the (few)
    shift points; the *median* of ``d_i^2`` ignores those shifts.  With
    median(chi^2_1) ~= 0.4549, sigma^2 ~= median(d^2) / 0.9098.
    """
    n = len(values)
    if n < 2:
        return 0.0
    diffs = sorted((values[i + 1] - values[i]) ** 2 for i in range(n - 1))
    mid = len(diffs) // 2
    if len(diffs) % 2:
        med = diffs[mid]
    else:
        med = 0.5 * (diffs[mid - 1] + diffs[mid])
    return med / 0.9098


def default_penalty(values: _t.Sequence[float], beta: float = 3.0) -> float:
    """BIC-style penalty ``beta * sigma^2 * ln n`` with a noise floor.

    The floor (a tiny fraction of the mean magnitude, squared) keeps a
    noiseless series from getting a zero penalty — a constant series
    must yield *no* changepoints, while an exact single step must still
    be cheap enough to detect.
    """
    n = len(values)
    if n < 2:
        return math.inf
    sigma2 = robust_noise_sigma2(values)
    scale = sum(abs(v) for v in values) / n
    floor = (1e-4 * scale) ** 2 + 1e-12
    return beta * max(sigma2, floor) * math.log(n)


def pelt_changepoints(
    values: _t.Sequence[float],
    penalty: float | None = None,
    min_size: int = 2,
) -> list[int]:
    """Changepoint indices of ``values`` under a piecewise-constant model.

    Returns the sorted list of segment-start indices *after* each shift
    (``[]`` when the series is best explained by one segment): a return
    of ``[k]`` means segments ``values[:k]`` and ``values[k:]``.

    ``penalty`` defaults to :func:`default_penalty`; ``min_size`` is the
    minimum points per segment.  Series shorter than ``2 * min_size``
    cannot contain a changepoint and return ``[]``.
    """
    n = len(values)
    if min_size < 1:
        raise ValueError(f"min_size must be >= 1, got {min_size}")
    if n < 2 * min_size:
        return []
    if penalty is None:
        penalty = default_penalty(values)
    if not math.isfinite(penalty):
        return []

    # Prefix sums for O(1) segment SSE.
    s1 = [0.0] * (n + 1)
    s2 = [0.0] * (n + 1)
    for i, v in enumerate(values):
        s1[i + 1] = s1[i] + v
        s2[i + 1] = s2[i] + v * v

    def cost(i: int, j: int) -> float:
        """SSE of values[i:j] around its own mean."""
        m = j - i
        total = s1[j] - s1[i]
        return (s2[j] - s2[i]) - total * total / m

    # f[t]: optimal cost of values[:t]; prev[t]: last segment start.
    f = [math.inf] * (n + 1)
    f[0] = -penalty
    prev = [0] * (n + 1)
    candidates = [0]
    for t in range(min_size, n + 1):
        best, best_s = math.inf, 0
        for s in candidates:
            if t - s < min_size:
                continue
            c = f[s] + cost(s, t) + penalty
            if c < best:
                best, best_s = c, s
        f[t] = best
        prev[t] = best_s
        # Prune starts that can never win again (PELT inequality).
        candidates = [s for s in candidates if f[s] + cost(s, t) <= f[t]]
        candidates.append(t - min_size + 1)

    # Backtrack the optimal segmentation.
    cps: list[int] = []
    t = n
    while t > 0:
        s = prev[t]
        if s > 0:
            cps.append(s)
        t = s
    cps.reverse()
    return cps


def segment_means(
    values: _t.Sequence[float], changepoints: _t.Sequence[int]
) -> list[tuple[int, int, float]]:
    """``(start, end, mean)`` per segment implied by ``changepoints``."""
    bounds = [0, *changepoints, len(values)]
    out = []
    for i in range(len(bounds) - 1):
        lo, hi = bounds[i], bounds[i + 1]
        seg = values[lo:hi]
        out.append((lo, hi, sum(seg) / len(seg) if seg else 0.0))
    return out


# -- steady-state detection ---------------------------------------------------


@dataclass(frozen=True)
class SteadyState:
    """Steady-state boundaries detected from one run's metric stream.

    ``start``/``end`` are in the stream's time units (bucket edges);
    ``stable`` is False when no segment long enough to trust was found,
    in which case callers should keep their configured window.
    """

    start: float
    end: float
    stable: bool
    changepoints: tuple[float, ...] = ()
    level: float = 0.0  # mean of the chosen segment


def detect_steady_state(
    values: _t.Sequence[float],
    *,
    dt: float = 1.0,
    origin: float = 0.0,
    penalty: float | None = None,
    min_size: int = 5,
    min_fraction: float = 0.25,
) -> SteadyState:
    """Find the longest stable regime of a bucketed metric series.

    ``values[i]`` covers ``[origin + i*dt, origin + (i+1)*dt)``.  PELT
    segments the series; the longest segment is the steady state, its
    boundaries become the measurement window.  The detection is
    rejected (``stable=False``, full-span window returned) when the
    longest segment covers less than ``min_fraction`` of the series —
    a run that noisy has no steady state worth trusting.
    """
    n = len(values)
    span_end = origin + n * dt
    if n < 2 * min_size:
        return SteadyState(start=origin, end=span_end, stable=False)
    cps = pelt_changepoints(values, penalty=penalty, min_size=min_size)
    segments = segment_means(values, cps)
    lo, hi, level = max(segments, key=lambda s: (s[1] - s[0], -s[0]))
    stable = (hi - lo) >= max(min_size, min_fraction * n)
    if not stable:
        return SteadyState(
            start=origin,
            end=span_end,
            stable=False,
            changepoints=tuple(origin + c * dt for c in cps),
        )
    return SteadyState(
        start=origin + lo * dt,
        end=origin + hi * dt,
        stable=True,
        changepoints=tuple(origin + c * dt for c in cps),
        level=level,
    )


# -- confidence intervals -----------------------------------------------------

# Two-sided Student-t critical values, df 1..30, then the normal limit.
_T_TABLE: dict[float, tuple[float, tuple[float, ...]]] = {
    0.90: (
        1.645,
        (6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895, 1.860, 1.833, 1.812,
         1.796, 1.782, 1.771, 1.761, 1.753, 1.746, 1.740, 1.734, 1.729, 1.725,
         1.721, 1.717, 1.714, 1.711, 1.708, 1.706, 1.703, 1.701, 1.699, 1.697),
    ),
    0.95: (
        1.960,
        (12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
         2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
         2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042),
    ),
    0.99: (
        2.576,
        (63.657, 9.925, 5.841, 4.604, 4.032, 3.707, 3.499, 3.355, 3.250, 3.169,
         3.106, 3.055, 3.012, 2.977, 2.947, 2.921, 2.898, 2.878, 2.861, 2.845,
         2.831, 2.819, 2.807, 2.797, 2.787, 2.779, 2.771, 2.763, 2.756, 2.750),
    ),
}


def t_critical(df: int, confidence: float = 0.95) -> float:
    """Two-sided Student-t critical value (tabulated confidences only)."""
    if confidence not in _T_TABLE:
        raise ValueError(
            f"confidence must be one of {sorted(_T_TABLE)}, got {confidence}"
        )
    if df < 1:
        raise ValueError(f"degrees of freedom must be >= 1, got {df}")
    limit, table = _T_TABLE[confidence]
    return table[df - 1] if df <= len(table) else limit


@dataclass(frozen=True)
class ConfidenceInterval:
    """Mean ± half-width at ``confidence`` over ``n`` observations."""

    mean: float
    half_width: float
    n: int
    confidence: float

    @property
    def relative(self) -> float:
        """Half-width as a fraction of the mean (inf for a zero mean)."""
        if self.mean == 0.0:
            return 0.0 if self.half_width == 0.0 else math.inf
        return self.half_width / abs(self.mean)


def mean_ci(values: _t.Sequence[float], confidence: float = 0.95) -> ConfidenceInterval:
    """Student-t confidence interval on the mean of ``values``."""
    n = len(values)
    if n == 0:
        raise ValueError("mean_ci needs at least one observation")
    mean = sum(values) / n
    if n == 1:
        return ConfidenceInterval(mean=mean, half_width=math.inf, n=1, confidence=confidence)
    var = sum((v - mean) ** 2 for v in values) / (n - 1)
    hw = t_critical(n - 1, confidence) * math.sqrt(var / n)
    return ConfidenceInterval(mean=mean, half_width=hw, n=n, confidence=confidence)


# -- adaptive replication controller ------------------------------------------


@dataclass(frozen=True)
class AdaptiveConfig:
    """Knobs of the adaptive measurement mode.

    Replications stop as soon as the ``confidence`` CI half-width on
    ``metric`` falls below ``rel_precision`` of the mean (after at
    least ``min_replications``), or hard-stop at ``max_replications``.
    ``batch`` replications are launched per round so the fan-out
    through :mod:`repro.core.parallel` keeps workers busy.
    ``seed_stride`` separates replication seeds from the base seed —
    replication ``k`` of a point seeded ``s`` runs with
    ``s + k * seed_stride``.
    """

    rel_precision: float = 0.05
    confidence: float = 0.95
    min_replications: int = 3
    max_replications: int = 10
    batch: int = 2
    metric: str = "throughput"
    seed_stride: int = 1009
    # Steady-state detection inside each replication (see runner.drive).
    bucket: float = 1.0

    def __post_init__(self) -> None:
        if self.min_replications < 2:
            raise ValueError("min_replications must be >= 2 (a CI needs variance)")
        if self.max_replications < self.min_replications:
            raise ValueError("max_replications must be >= min_replications")
        if not 0.0 < self.rel_precision < 1.0:
            raise ValueError(f"rel_precision must be in (0, 1), got {self.rel_precision}")


@dataclass(frozen=True)
class ReplicationInfo:
    """How one reported point was estimated (attached to PointResult)."""

    replications: int
    converged: bool
    confidence: float
    throughput_ci: float  # CI half-width on throughput (q/s)
    response_time_ci: float  # CI half-width on response time (s)


@dataclass(frozen=True)
class SteadyStateInfo:
    """Detected measurement window of one run (attached to PointResult)."""

    warmup: float  # detected warm-up end (window start)
    window_start: float
    window_end: float
    stable: bool
    changepoints: int  # how many regime shifts the stream contained


@dataclass(frozen=True)
class AdaptiveEstimate:
    """Replication-until-convergence result for one sweep point."""

    results: tuple  # the individual replication PointResults
    ci: ConfidenceInterval  # on the stopping metric
    converged: bool

    @property
    def replications(self) -> int:
        return len(self.results)


def _metric_value(result: _t.Any, metric: str) -> float:
    value = getattr(result, metric)
    return float(value)


def adaptive_replications(
    fn: _t.Callable,
    args: _t.Sequence,
    kwargs: dict[str, _t.Any] | None = None,
    *,
    base_seed: int = 1,
    seed_kw: str | None = None,
    config: AdaptiveConfig | None = None,
    jobs: int | None = None,
) -> AdaptiveEstimate:
    """Replicate ``fn(*args, seed_k, **kwargs)`` until its CI converges.

    ``fn`` must be a module-level sweep-point function (the
    :class:`~repro.core.parallel.PointSpec` contract).  The seed of
    replication ``k`` is ``base_seed + k * config.seed_stride`` and is
    passed positionally appended to ``args`` unless ``seed_kw`` names a
    keyword.  Each batch fans out through
    :func:`repro.core.parallel.run_specs`, so replications parallelize
    and individually hit the point cache; the stopping rule is applied
    between batches, making the replication count — and therefore the
    result — independent of worker scheduling.
    """
    from repro.core.parallel import PointSpec, run_specs  # lazy: avoids a cycle

    cfg = config or AdaptiveConfig()
    kwargs = dict(kwargs or {})

    def spec_for(k: int) -> "PointSpec":
        seed = base_seed + k * cfg.seed_stride
        if seed_kw is None:
            return PointSpec.from_call(fn, (*args, seed), kwargs)
        return PointSpec.from_call(fn, tuple(args), {**kwargs, seed_kw: seed})

    results: list[_t.Any] = []
    while True:
        want = cfg.min_replications if not results else min(
            cfg.batch, cfg.max_replications - len(results)
        )
        specs = [spec_for(len(results) + i) for i in range(want)]
        results.extend(run_specs(specs, jobs=jobs))
        ci = mean_ci(
            [_metric_value(r, cfg.metric) for r in results], confidence=cfg.confidence
        )
        converged = ci.relative <= cfg.rel_precision
        if converged or len(results) >= cfg.max_replications:
            return AdaptiveEstimate(results=tuple(results), ci=ci, converged=converged)


# -- the history-aware perf gate ----------------------------------------------


@dataclass(frozen=True)
class GateVerdict:
    """Changepoint-gate decision for one benchmark record key.

    ``status``:

    * ``ok`` — no level shift, current run within the noise-adaptive
      tolerance of the detected stable level;
    * ``regression`` — a detected downward level shift, or a current
      run far below the stable level;
    * ``improved`` — a detected *upward* level shift (informational —
      refresh baselines to make it the new level);
    * ``short`` — not enough history to judge (callers fall back to the
      single-baseline tolerance compare).
    """

    key: tuple[str, str]
    status: str
    current: float
    level: float  # detected stable events/sec level (0 = untracked)
    tolerance: float  # relative drop allowed below the level
    runs: int
    shift_at: int | None = None  # history index where a level shift begins
    detail: str = ""

    def describe(self) -> str:
        bench, name = self.key
        tag = {"regression": "REGRESSION", "improved": "IMPROVED"}.get(
            self.status, self.status
        )
        head = f"{tag:<11} {bench}:{name}"
        if self.level <= 0.0:
            return f"{head} (untracked: no events/sec history)"
        body = (
            f"{self.current:>12,.0f} ev/s vs level {self.level:>12,.0f} "
            f"over {self.runs} runs (tol {self.tolerance:.0%})"
        )
        return f"{head} {body}" + (f" — {self.detail}" if self.detail else "")


def changepoint_gate(
    series: _t.Sequence[float],
    key: tuple[str, str] = ("bench", "record"),
    *,
    min_history: int = 5,
    min_drop: float = 0.10,
    sigmas: float = 4.0,
    penalty: float | None = None,
) -> GateVerdict:
    """Judge the latest run of one events/sec history.

    ``series`` is chronological with the gated (current) run last.  Two
    complementary checks:

    1. **Level shift** — PELT over the full series; if the final
       segment's mean sits more than ``min_drop`` below the preceding
       segment's, a genuine (multi-run) regression has landed.
    2. **Current vs stable level** — PELT over the *prior* runs finds
       the stable level the current run must hold; the allowed drop is
       the larger of ``min_drop`` and ``sigmas`` standard deviations of
       that stable segment, so a noisy benchmark earns a wider gate and
       a quiet one a tighter gate.

    Upward shifts report ``improved`` (refresh baselines; see
    docs/BENCHMARKS.md for the blessing policy).
    """
    runs = len(series)
    if runs < max(min_history, 3):
        return GateVerdict(
            key=key,
            status="short",
            current=series[-1] if runs else 0.0,
            level=0.0,
            tolerance=min_drop,
            runs=runs,
            detail=f"history has {runs} runs (< {min_history})",
        )
    current = series[-1]
    prior = list(series[:-1])

    # Untracked records (wall-clock-only benches) carry no rate to gate.
    if all(v <= 0.0 for v in prior):
        return GateVerdict(
            key=key, status="ok", current=current, level=0.0,
            tolerance=min_drop, runs=runs,
        )

    # Check 1: persistent level shift across the full series.
    cps = pelt_changepoints(series, penalty=penalty)
    if cps:
        segs = segment_means(series, cps)
        prev_mean = segs[-2][2]
        last_lo, _, last_mean = segs[-1]
        if prev_mean > 0.0 and last_mean < prev_mean * (1.0 - min_drop):
            return GateVerdict(
                key=key,
                status="regression",
                current=current,
                level=prev_mean,
                tolerance=min_drop,
                runs=runs,
                shift_at=last_lo,
                detail=(
                    f"level shift at run {last_lo + 1}/{runs}: "
                    f"{prev_mean:,.0f} -> {last_mean:,.0f} ev/s "
                    f"({last_mean / prev_mean:.2f}x)"
                ),
            )

    # Check 2: the current run against the detected stable level.
    prior_cps = pelt_changepoints(prior, penalty=penalty)
    lo, hi, level = segment_means(prior, prior_cps)[-1]
    stable = prior[lo:hi]
    if level <= 0.0:
        return GateVerdict(
            key=key, status="ok", current=current, level=0.0,
            tolerance=min_drop, runs=runs,
        )
    if len(stable) > 1:
        var = sum((v - level) ** 2 for v in stable) / (len(stable) - 1)
        rel_sigma = math.sqrt(var) / level
    else:
        rel_sigma = 0.0
    tolerance = max(min_drop, sigmas * rel_sigma)
    if current < level * (1.0 - tolerance):
        return GateVerdict(
            key=key,
            status="regression",
            current=current,
            level=level,
            tolerance=tolerance,
            runs=runs,
            detail=f"current run {current / level:.2f}x the stable level",
        )
    if cps:
        segs = segment_means(series, cps)
        prev_mean, last_mean = segs[-2][2], segs[-1][2]
        if prev_mean > 0.0 and last_mean > prev_mean * (1.0 + min_drop):
            return GateVerdict(
                key=key,
                status="improved",
                current=current,
                level=level,
                tolerance=tolerance,
                runs=runs,
                shift_at=segs[-1][0],
                detail=(
                    f"level shift up at run {segs[-1][0] + 1}/{runs} "
                    f"({last_mean / prev_mean:.2f}x) — consider refreshing baselines"
                ),
            )
    return GateVerdict(
        key=key, status="ok", current=current, level=level,
        tolerance=tolerance, runs=runs,
    )


# Re-exported convenience: summaries averaged across replications live
# with the metrics types, but the reduction is statistical, so it sits
# here next to the CI machinery that annotates it.


def summarize_replications(
    results: _t.Sequence[_t.Any], confidence: float = 0.95
) -> tuple[_t.Any, ReplicationInfo, bool]:
    """Mean summary + CI info across replication PointResults.

    Returns ``(mean_summary, info, crashed_any)`` where
    ``mean_summary`` is a :class:`~repro.core.metrics.MetricsSummary`
    whose float fields are replication means (counts are rounded
    means), built from the first result's summary via
    :func:`dataclasses.replace` so new fields inherit sensibly.
    """
    if not results:
        raise ValueError("summarize_replications needs at least one result")
    summaries = [r.summary for r in results]
    n = len(summaries)

    def fmean(attr: str) -> float:
        return sum(getattr(s, attr) for s in summaries) / n

    def imean(attr: str) -> int:
        return round(sum(getattr(s, attr) for s in summaries) / n)

    mean_summary = replace(
        summaries[0],
        throughput=fmean("throughput"),
        response_time=fmean("response_time"),
        load1=fmean("load1"),
        cpu_load=fmean("cpu_load"),
        completed=imean("completed"),
        refused=imean("refused"),
        timeouts=imean("timeouts"),
        errors=imean("errors"),
        window=fmean("window"),
        latency_p50=fmean("latency_p50"),
        latency_p95=fmean("latency_p95"),
    )
    throughput_ci = mean_ci([s.throughput for s in summaries], confidence)
    response_ci = mean_ci([s.response_time for s in summaries], confidence)
    info = ReplicationInfo(
        replications=n,
        converged=True,  # caller overrides from the controller's verdict
        confidence=confidence,
        throughput_ci=0.0 if n < 2 else throughput_ci.half_width,
        response_time_ci=0.0 if n < 2 else response_ci.half_width,
    )
    return mean_summary, info, any(r.crashed for r in results)
