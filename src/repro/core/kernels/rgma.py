"""R-GMA service kernels: ProducerServlet, ConsumerServlet, Registry.

Op sequences mirror the former inline DES handlers exactly — see the
module docstring in :mod:`repro.core.kernels.mds` for why ordering is
load-bearing.
"""

from __future__ import annotations

import typing as _t

from repro.core.kernels.ops import (
    CLOCK,
    Call,
    Compute,
    Held,
    KernelResponse,
    KernelSpec,
    QueueDepth,
)
from repro.relational.types import encode_result

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.core.params import (
        ConsumerServletParams,
        ProducerServletParams,
        RegistryParams,
    )
    from repro.rgma.producer_servlet import ProducerServlet
    from repro.rgma.registry import Registry

__all__ = [
    "ProducerServletKernel",
    "ConsumerServletKernel",
    "RegistryKernel",
]


class ProducerServletKernel:
    """The ProducerServlet: SQL answers serialized on the buffer database.

    The hold grows with the number of attached producers (linear +
    quadratic mediation term) and inflates with the lock convoy past
    saturation (Figs 5, 7).
    """

    def __init__(
        self,
        servlet: "ProducerServlet",
        params: "ProducerServletParams",
        *,
        db_lock: _t.Any,
        wire: bool = False,
    ) -> None:
        self.servlet = servlet
        self.params = params
        self.db_lock = db_lock
        self.wire = wire

    def spec(self) -> KernelSpec:
        p = self.params
        return KernelSpec(
            f"ps:{self.servlet.name}",
            self.handle,
            max_threads=p.max_threads,
            backlog=p.backlog,
            conn_overhead=p.conn_overhead,
        )

    def handle(self, payload: _t.Any) -> _t.Generator:
        p, servlet = self.params, self.servlet
        yield Compute(p.cpu_per_query)
        m = len(servlet.producers)
        hold = p.db_hold_linear * m + p.db_hold_quad * (m * m)
        # Convoy inflation uses the queue this request joins: read the
        # depth *before* queueing on the lock.
        depth = yield QueueDepth(self.db_lock)
        hold *= 1.0 + p.convoy_coeff * depth
        yield Held(self.db_lock, hold, p.db_cpu_fraction)
        sql = "SELECT * FROM cpuLoad"
        if isinstance(payload, dict):
            sql = payload.get("sql", sql)
        answer = servlet.answer(sql)
        return KernelResponse(
            value={"rows": len(answer.result.rows)},
            size=answer.estimated_size(),
            wire=(
                encode_result(answer.result.columns, answer.result.rows)
                if self.wire
                else None
            ),
        )


class ConsumerServletKernel:
    """An R-GMA ConsumerServlet forwarding mediated queries upstream.

    Registry consultation is mediated once per distinct query and then
    cached (R-GMA's mediation plans), so the steady-state path is
    CS -> PS -> CS.  ``retry`` is an opaque runtime-owned policy making
    the CS->PS hop resilient during ProducerServlet outages.
    """

    def __init__(
        self,
        name: str,
        upstream: _t.Any,
        params: "ConsumerServletParams",
        *,
        mediation_lock: _t.Any,
        retry: _t.Any = None,
    ) -> None:
        self.name = name
        self.upstream = upstream
        self.params = params
        self.mediation_lock = mediation_lock
        self.retry = retry

    def spec(self) -> KernelSpec:
        p = self.params
        return KernelSpec(
            f"cs:{self.name}",
            self.handle,
            max_threads=p.max_threads,
            backlog=p.backlog,
        )

    def handle(self, payload: _t.Any) -> _t.Generator:
        p = self.params
        yield Compute(p.cpu_per_query)
        yield Held(self.mediation_lock, p.mediation_hold, 1.0)
        value = yield Call(self.upstream, payload, p.request_size, self.retry)
        return KernelResponse(value=value, size=1024)


class RegistryKernel:
    """The R-GMA Registry as a directory server (Experiment 2).

    Thread-per-request Java over a small worker pool: queries are
    CPU-bound, so the run queue climbs well past the other directory
    servers' — Figures 9 and 11.
    """

    def __init__(self, registry: "Registry", params: "RegistryParams") -> None:
        self.registry = registry
        self.params = params

    def spec(self) -> KernelSpec:
        p = self.params
        return KernelSpec(
            f"registry:{self.registry.name}",
            self.handle,
            max_threads=p.max_threads,
            backlog=p.backlog,
            conn_overhead=p.conn_overhead,
        )

    def handle(self, payload: _t.Any) -> _t.Generator:
        yield Compute(self.params.cpu_per_query)
        table = "cpuLoad"
        if isinstance(payload, dict):
            table = payload.get("table", table)
        now = yield CLOCK
        regs = self.registry.lookup(table, now=now)
        return KernelResponse(
            value={"producers": len(regs)}, size=max(256, 128 * len(regs))
        )
