"""Hawkeye service kernels: the Agent and the Manager's three faces.

Op sequences mirror the former inline DES handlers exactly — see the
module docstring in :mod:`repro.core.kernels.mds` for why ordering is
load-bearing.
"""

from __future__ import annotations

import typing as _t

from repro.core.kernels.ops import (
    CLOCK,
    Acquire,
    Busy,
    Compute,
    Fanout,
    Held,
    KernelResponse,
    KernelSpec,
    QueueDepth,
    Release,
)

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.core.params import AgentParams, ManagerParams
    from repro.hawkeye.agent import Agent
    from repro.hawkeye.manager import Manager

__all__ = [
    "AgentKernel",
    "ManagerDirectoryKernel",
    "ManagerAggregateKernel",
    "ManagerIngestKernel",
    "ManagerFanoutKernel",
]


class AgentKernel:
    """The Hawkeye Agent: per-query module re-collection under the Startd lock.

    The Agent "has to retrieve new information for each query" (§3.3);
    the quadratic integration cost plus lock-convoy inflation produce
    the paper's post-threshold decline (Figs 5, 7).
    """

    def __init__(
        self, agent: "Agent", params: "AgentParams", *, startd_lock: _t.Any, wire: bool = False
    ) -> None:
        self.agent = agent
        self.params = params
        self.startd_lock = startd_lock
        self.wire = wire

    def spec(self) -> KernelSpec:
        p = self.params
        return KernelSpec(
            f"agent:{self.agent.machine}",
            self.handle,
            max_threads=p.max_threads,
            backlog=p.backlog,
            conn_overhead=p.conn_overhead,
        )

    def handle(self, payload: _t.Any) -> _t.Generator:
        p, agent = self.params, self.agent
        yield Compute(p.cpu_per_query)
        m = agent.module_count
        # Convoy degradation: the hold inflates with the queue this
        # request joins — depth must be read *before* acquiring.
        depth = yield QueueDepth(self.startd_lock)
        hold = p.fetch_quad_coeff * (m * m) * (1.0 + p.convoy_coeff * depth)
        yield Acquire(self.startd_lock)
        try:
            yield Busy(hold, p.fetch_cpu_fraction)
            now = yield CLOCK
            answer = agent.query(now=now)
        finally:
            yield Release(self.startd_lock)
        return KernelResponse(
            value={"attrs": len(answer.ad), "modules": answer.modules_run},
            size=answer.estimated_size(),
            wire=answer.ad.serialize() if self.wire else None,
        )


class ManagerDirectoryKernel:
    """The Manager in its directory role (Experiment 2): indexed lookups."""

    def __init__(self, manager: "Manager", params: "ManagerParams", *, wire: bool = False) -> None:
        self.manager = manager
        self.params = params
        self.wire = wire

    def spec(self) -> KernelSpec:
        p = self.params
        return KernelSpec(
            f"manager:{self.manager.name}:dir",
            self.handle,
            max_threads=p.max_threads,
            backlog=p.backlog,
            conn_overhead=p.conn_overhead,
        )

    def handle(self, payload: _t.Any) -> _t.Generator:
        yield Compute(self.params.cpu_per_query)
        machine = None
        if isinstance(payload, dict):
            machine = payload.get("machine")
        if machine:
            answer = self.manager.query_machine(machine)
        else:
            answer = self.manager.query('Name == "lucky4.mcs.anl.gov"')
        return KernelResponse(
            value={"ads": len(answer.ads)},
            size=max(answer.estimated_size(), 512),
            wire="\n\n".join(ad.serialize() for ad in answer.ads) if self.wire else None,
        )


class ManagerAggregateKernel:
    """The Manager in its aggregate role (Experiment 4).

    Queries run the paper's worst case — "a constraint that was not met
    by any machine" — scanning every resident Startd ad under the
    collector lock (shared with the ingest kernel).
    """

    def __init__(
        self, manager: "Manager", params: "ManagerParams", *, collector_lock: _t.Any
    ) -> None:
        self.manager = manager
        self.params = params
        self.collector_lock = collector_lock

    def spec(self) -> KernelSpec:
        p = self.params
        return KernelSpec(
            f"manager:{self.manager.name}:agg",
            self.handle,
            max_threads=p.max_threads,
            backlog=p.backlog,
            conn_overhead=p.conn_overhead,
        )

    def handle(self, payload: _t.Any) -> _t.Generator:
        p = self.params
        yield Compute(p.cpu_per_query)
        pool = self.manager.pool_size
        scan_cost = p.scan_cpu_per_ad * pool
        yield Acquire(self.collector_lock)
        try:
            if scan_cost > 0:
                yield Compute(scan_cost)
            answer = self.manager.query("TARGET.CpuLoad > 50")  # matches nothing
        finally:
            yield Release(self.collector_lock)
        return KernelResponse(
            value={"ads": len(answer.ads), "scanned": answer.scanned}, size=512
        )


class ManagerIngestKernel:
    """The Manager's ad-ingestion path (hawkeye_advertise traffic)."""

    #: Condor's collector admits few concurrent updaters; these bounds
    #: are part of the calibrated model, not per-deployment knobs.
    MAX_THREADS = 16
    BACKLOG = 256

    def __init__(
        self, manager: "Manager", params: "ManagerParams", *, collector_lock: _t.Any
    ) -> None:
        self.manager = manager
        self.params = params
        self.collector_lock = collector_lock

    def spec(self) -> KernelSpec:
        return KernelSpec(
            f"manager:{self.manager.name}:ingest",
            self.handle,
            max_threads=self.MAX_THREADS,
            backlog=self.BACKLOG,
        )

    def handle(self, payload: _t.Any) -> _t.Generator:
        p = self.params
        yield Compute(p.ad_ingest_cpu)
        yield Held(self.collector_lock, p.ad_ingest_hold, 1.0)
        ad = payload["ad"]
        now = yield CLOCK
        self.manager.receive_ad(ad, now=now)
        return KernelResponse(value={"ok": True}, size=64)


class ManagerFanoutKernel:
    """An interior Manager forwarding constraint scans to child Managers.

    Each child scans its own pool concurrently; this node only merges
    the k child answers (CPU-cheap, like the directory path).
    """

    def __init__(
        self,
        children: _t.Sequence[_t.Any],
        params: "ManagerParams",
        *,
        label: str = "manager:top",
        top: bool = True,
    ) -> None:
        self.children = tuple(children)
        self.params = params
        self.label = label
        self.top = top

    def spec(self) -> KernelSpec:
        p = self.params
        return KernelSpec(
            self.label,
            self.handle,
            max_threads=p.max_threads,
            backlog=p.backlog,
            conn_overhead=p.conn_overhead if self.top else None,
        )

    def handle(self, payload: _t.Any) -> _t.Generator:
        p = self.params
        k = len(self.children)
        yield Compute(p.cpu_per_query * max(1, k))
        results = yield Fanout(self.children, payload, p.request_size)
        ads = sum(v["ads"] for ok, v in results if ok and isinstance(v, dict))
        scanned = sum(v["scanned"] for ok, v in results if ok and isinstance(v, dict))
        return KernelResponse(value={"ads": ads, "scanned": scanned}, size=512)
