"""Plan materialization: domain objects and edges, runtime-free.

The first two compile phases of a :class:`DeploymentPlan` — build the
functional objects (GRIS, GIIS, Manager, Agent, ProducerServlet,
Registry) and apply the plan's edges (registrations, producer
attachment, priming) — involve no simulator and no sockets, yet they
used to live inside the DES topology adapters.  This module is their
single home: :mod:`repro.core.topology` calls these functions to fill a
``Deployment``, and the live plane (:mod:`repro.live`) calls the same
functions so both runtimes serve *identical* data from an identical
plan.

Everything here is deterministic in the plan (seeds come from specs),
mutates only the ``objects``/``extras`` dicts it is handed, and imports
nothing from :mod:`repro.sim`.
"""

from __future__ import annotations

import typing as _t

from repro.core.components import System
from repro.core.topology.plan import (
    AggregateSpec,
    CollectorSpec,
    DeploymentPlan,
    DirectorySpec,
    EdgeKind,
    NodeSpec,
    ServerSpec,
)

__all__ = [
    "bank_placements",
    "materialize_plan",
    "connect_plan",
    "mds_materialize",
    "mds_connect",
    "rgma_materialize",
    "rgma_connect",
    "hawkeye_materialize",
    "hawkeye_connect",
]


def bank_placements(spec: NodeSpec) -> list[str]:
    """Round-robin placement list for a replicated bank."""
    hosts = spec.options.get("hosts")
    if hosts:
        return list(hosts)
    if spec.host is not None:
        return [spec.host]
    return []


# -- MDS ----------------------------------------------------------------------


def _mds_collector_count(plan: DeploymentPlan, spec: NodeSpec) -> int:
    for edge in plan.edges_to(spec.name, EdgeKind.COLLECTION):
        source = plan.node(edge.source)
        assert isinstance(source, CollectorSpec)
        return source.count
    return 10


def _make_puller(gris: _t.Any) -> _t.Callable[[float], tuple[list, float]]:
    def puller(now: float, gris=gris) -> tuple[list, float]:
        result = gris.search(now=now)
        return result.entries, result.exec_cost

    return puller


def mds_materialize(
    plan: DeploymentPlan, objects: dict[str, _t.Any], extras: dict[str, _t.Any]
) -> None:
    from repro.mds.giis import GIIS
    from repro.mds.gris import GRIS
    from repro.mds.providers import replicated_providers

    for spec in plan.nodes:
        if isinstance(spec, ServerSpec):
            count = _mds_collector_count(plan, spec)
            ttl = float("inf") if spec.cached else 0.0
            if spec.replicas == 1 and "hostname_format" not in spec.options:
                hostname = spec.options.get("hostname", f"{spec.host}.mcs.anl.gov")
                gris = GRIS(
                    hostname, replicated_providers(count), cachettl=ttl, seed=spec.seed
                )
                if spec.primed:
                    gris.search(now=0.0)  # prime the cache before measurement
                objects[spec.name] = gris
                continue
            # A bank: "multiple instances at each Lucky node" (paper §3.6).
            placements = bank_placements(spec)
            name_format = spec.options.get("hostname_format", spec.name + "{i}")
            bank = []
            for i in range(spec.replicas):
                node = placements[i % len(placements)] if placements else ""
                hostname = name_format.format(node=node, i=i)
                bank.append(
                    GRIS(
                        hostname,
                        replicated_providers(count),
                        cachettl=ttl,
                        seed=spec.seed + i,
                    )
                )
            objects[spec.name] = bank
        elif isinstance(spec, (AggregateSpec, DirectorySpec)):
            if spec.variant == "fanout":
                continue  # pure service node, no resident GIIS state
            objects[spec.name] = GIIS(
                spec.options.get("giis_name", spec.name),
                cachettl=spec.options.get("cachettl", float("inf")),
            )


def mds_connect(
    plan: DeploymentPlan, objects: dict[str, _t.Any], extras: dict[str, _t.Any]
) -> None:
    for edge in plan.edges:
        if edge.kind is not EdgeKind.REGISTRATION:
            continue
        giis = objects[edge.target]
        pullers = extras.setdefault(f"pullers:{edge.target}", {})
        ttl = float(edge.options.get("ttl", 1e12))
        source = objects[edge.source]
        if isinstance(source, list):
            label_format = edge.options.get("label_format", edge.source + "{i}")
            for i, gris in enumerate(source):
                label = label_format.format(i=i)
                puller = _make_puller(gris)
                pullers[label] = puller
                giis.register(label, puller, now=0.0, ttl=ttl)
        else:
            label = edge.options.get("label", edge.source)
            puller = _make_puller(source)
            pullers[label] = puller
            giis.register(label, puller, now=0.0, ttl=ttl)
    for spec in plan.nodes:
        if isinstance(spec, (AggregateSpec, DirectorySpec)) and spec.primed:
            # "cachettl ... set to a very large value ... always in cache"
            objects[spec.name].query(now=0.0)


# -- R-GMA --------------------------------------------------------------------


def rgma_materialize(
    plan: DeploymentPlan, objects: dict[str, _t.Any], extras: dict[str, _t.Any]
) -> None:
    from repro.rgma.producer import make_default_producers
    from repro.rgma.producer_servlet import ProducerServlet
    from repro.rgma.registry import Registry

    for spec in plan.nodes:
        if isinstance(spec, DirectorySpec):
            objects[spec.name] = Registry(spec.options.get("registry_name", spec.name))
        elif isinstance(spec, ServerSpec) and spec.variant == "default":
            servlet = ProducerServlet(spec.options.get("servlet_name", spec.name))
            objects[spec.name] = servlet
            for edge in plan.edges_to(spec.name, EdgeKind.COLLECTION):
                collector = plan.node(edge.source)
                assert isinstance(collector, CollectorSpec)
                hostname = spec.options.get("producer_host", f"{spec.host}.mcs.anl.gov")
                extras[f"producers:{spec.name}"] = make_default_producers(
                    hostname, collector.count, seed=collector.seed
                )


def rgma_connect(
    plan: DeploymentPlan, objects: dict[str, _t.Any], extras: dict[str, _t.Any]
) -> None:
    for edge in plan.edges:
        if edge.kind is not EdgeKind.REGISTRATION:
            continue
        servlet = objects[edge.source]
        registry = objects[edge.target]
        lease = float(edge.options.get("lease", 1e9))
        for producer in extras.get(f"producers:{edge.source}", ()):
            servlet.attach(producer, registry, now=0.0, lease=lease)
    for spec in plan.nodes:
        if isinstance(spec, ServerSpec) and spec.variant == "default" and spec.primed:
            # Initial measurement round so queries return rows.
            objects[spec.name].publish_all(now=0.0)


# -- Hawkeye ------------------------------------------------------------------


def _hawkeye_modules(plan: DeploymentPlan, spec: ServerSpec) -> list:
    from repro.hawkeye.modules import make_default_modules, replicated_modules

    for edge in plan.edges_to(spec.name, EdgeKind.COLLECTION):
        collector = plan.node(edge.source)
        assert isinstance(collector, CollectorSpec)
        if collector.flavor == "default":
            return make_default_modules()
        return replicated_modules(collector.count)
    return make_default_modules()


def hawkeye_materialize(
    plan: DeploymentPlan, objects: dict[str, _t.Any], extras: dict[str, _t.Any]
) -> None:
    from repro.hawkeye.agent import Agent
    from repro.hawkeye.manager import Manager

    for spec in plan.nodes:
        if isinstance(spec, (AggregateSpec, DirectorySpec)):
            if spec.variant == "fanout":
                continue
            objects[spec.name] = Manager(spec.options.get("manager_name", spec.name))
        elif isinstance(spec, ServerSpec) and not spec.options.get("synthetic"):
            objects[spec.name] = Agent(
                spec.options.get("agent_machine", f"{spec.host}.mcs.anl.gov"),
                _hawkeye_modules(plan, spec),
                seed=spec.seed,
            )


def hawkeye_connect(
    plan: DeploymentPlan, objects: dict[str, _t.Any], extras: dict[str, _t.Any]
) -> None:
    for edge in plan.edges:
        if edge.kind is not EdgeKind.REGISTRATION:
            continue
        agent = objects[edge.source]
        manager = objects[edge.target]
        manager.register_agent(agent)
        ad, _ = agent.make_startd_ad(now=0.0)
        manager.receive_ad(ad, now=0.0)  # pool is warm at t=0


# -- dispatch -----------------------------------------------------------------

_MATERIALIZE = {
    System.MDS: mds_materialize,
    System.RGMA: rgma_materialize,
    System.HAWKEYE: hawkeye_materialize,
}
_CONNECT = {
    System.MDS: mds_connect,
    System.RGMA: rgma_connect,
    System.HAWKEYE: hawkeye_connect,
}


def materialize_plan(
    plan: DeploymentPlan, objects: dict[str, _t.Any], extras: dict[str, _t.Any]
) -> None:
    """Phase-1 compile: build the plan's functional objects into ``objects``."""
    _MATERIALIZE[plan.system](plan, objects, extras)


def connect_plan(
    plan: DeploymentPlan, objects: dict[str, _t.Any], extras: dict[str, _t.Any]
) -> None:
    """Phase-2 compile: apply the plan's edges and prime caches."""
    _CONNECT[plan.system](plan, objects, extras)
