"""Runtime-agnostic service kernels: one plan, two runtimes.

Every Table-1 role is implemented here exactly once, as a *kernel* — a
small object whose ``handle(payload)`` generator yields runtime
operations (:mod:`repro.core.kernels.ops`) and returns a
:class:`~repro.core.kernels.ops.KernelResponse` computed by the real
functional machinery (``repro.ldap`` / ``repro.relational`` /
``repro.classad``).  Runtimes interpret the ops:

* :mod:`repro.core.desruntime` maps them onto simulator events — the
  deterministic twin, byte-identical to the pre-kernel DES handlers;
* :mod:`repro.live` maps them onto asyncio primitives behind real
  localhost listeners.

This package must stay importable with :mod:`repro.sim` absent — a
test enforces it — so kernels receive clocks, locks and call targets
as injected opaque tokens and never import a runtime.
"""

from repro.core.kernels.build import (
    bank_placements,
    connect_plan,
    materialize_plan,
)
from repro.core.kernels.hawkeye import (
    AgentKernel,
    ManagerAggregateKernel,
    ManagerDirectoryKernel,
    ManagerFanoutKernel,
    ManagerIngestKernel,
)
from repro.core.kernels.mds import (
    GiisAggregateKernel,
    GiisDirectoryKernel,
    GiisFanoutKernel,
    GiisLeafKernel,
    GiisRegistrationKernel,
    GrisKernel,
)
from repro.core.kernels.ops import (
    CLOCK,
    Acquire,
    Busy,
    Call,
    Clock,
    Compute,
    CrashSelf,
    Fanout,
    Held,
    KernelResponse,
    KernelSpec,
    QueueDepth,
    Release,
)
from repro.core.kernels.rgma import (
    ConsumerServletKernel,
    ProducerServletKernel,
    RegistryKernel,
)

__all__ = [
    # ops
    "CLOCK",
    "Acquire",
    "Busy",
    "Call",
    "Clock",
    "Compute",
    "CrashSelf",
    "Fanout",
    "Held",
    "KernelResponse",
    "KernelSpec",
    "QueueDepth",
    "Release",
    # kernels
    "GrisKernel",
    "GiisDirectoryKernel",
    "GiisAggregateKernel",
    "GiisRegistrationKernel",
    "GiisLeafKernel",
    "GiisFanoutKernel",
    "AgentKernel",
    "ManagerDirectoryKernel",
    "ManagerAggregateKernel",
    "ManagerIngestKernel",
    "ManagerFanoutKernel",
    "ProducerServletKernel",
    "ConsumerServletKernel",
    "RegistryKernel",
    # plan materialization
    "bank_placements",
    "materialize_plan",
    "connect_plan",
]
