"""The kernel operation protocol: what a service kernel may ask of its runtime.

A kernel's ``handle(payload)`` is a generator that yields *operations*
— small descriptions of runtime effects (spend CPU, read the clock,
take a lock, call another service) — and receives the operation's
result back at the ``yield``.  The kernel itself never touches a
runtime: the DES adapter (:mod:`repro.core.desruntime`) maps each op
onto simulator events, and the live plane (:mod:`repro.live`) maps the
same ops onto asyncio primitives and real sockets.  That is the whole
trick behind "one plan, two runtimes": the service logic is written
once, here, against this protocol.

Locks and call targets are *opaque tokens* owned by the runtime: the
DES injects :class:`repro.sim.resources.Mutex` objects and
:class:`repro.sim.rpc.Service` targets, the live plane injects
``LiveLock`` objects and async client stubs.  A kernel only threads
them through ops, so this module imports nothing from either runtime.

Ops carry integer ``tag`` attributes so runtime dispatch is a flat
compare chain rather than ``isinstance`` checks — the DES interpreter
sits on the hot path of every simulated request.
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass

__all__ = [
    "OP_COMPUTE",
    "OP_CLOCK",
    "OP_ACQUIRE",
    "OP_RELEASE",
    "OP_BUSY",
    "OP_HELD",
    "OP_QUEUE_DEPTH",
    "OP_CALL",
    "OP_FANOUT",
    "OP_CRASH",
    "Compute",
    "Clock",
    "CLOCK",
    "Acquire",
    "Release",
    "Busy",
    "Held",
    "QueueDepth",
    "Call",
    "Fanout",
    "CrashSelf",
    "KernelResponse",
    "KernelSpec",
    "KernelHandler",
]

OP_COMPUTE = 0
OP_CLOCK = 1
OP_ACQUIRE = 2
OP_RELEASE = 3
OP_BUSY = 4
OP_HELD = 5
OP_QUEUE_DEPTH = 6
OP_CALL = 7
OP_FANOUT = 8
OP_CRASH = 9


class Compute:
    """Spend ``seconds`` of runnable CPU time on the service's host."""

    __slots__ = ("seconds",)
    tag = OP_COMPUTE

    def __init__(self, seconds: float) -> None:
        self.seconds = seconds


class Clock:
    """Read the runtime's current time; the yield returns ``now``."""

    __slots__ = ()
    tag = OP_CLOCK


#: The one :class:`Clock` instance — ``now = yield CLOCK``.
CLOCK = Clock()


class Acquire:
    """Block until ``lock`` (an opaque runtime token) is held."""

    __slots__ = ("lock",)
    tag = OP_ACQUIRE

    def __init__(self, lock: _t.Any) -> None:
        self.lock = lock


class Release:
    """Release a lock previously taken with :class:`Acquire`."""

    __slots__ = ("lock",)
    tag = OP_RELEASE

    def __init__(self, lock: _t.Any) -> None:
        self.lock = lock


class Busy:
    """Spend ``hold`` seconds, ``cpu_fraction`` of it runnable CPU.

    The remainder is blocked I/O — on the DES this is what makes host
    load1 *drop* past saturation (DESIGN.md §2); the live plane simply
    sleeps the whole hold.
    """

    __slots__ = ("hold", "cpu_fraction")
    tag = OP_BUSY

    def __init__(self, hold: float, cpu_fraction: float) -> None:
        self.hold = hold
        self.cpu_fraction = cpu_fraction


class Held:
    """:class:`Acquire` + :class:`Busy` + guaranteed release."""

    __slots__ = ("lock", "hold", "cpu_fraction")
    tag = OP_HELD

    def __init__(self, lock: _t.Any, hold: float, cpu_fraction: float) -> None:
        self.lock = lock
        self.hold = hold
        self.cpu_fraction = cpu_fraction


class QueueDepth:
    """Read how many waiters are queued on ``lock`` (no blocking)."""

    __slots__ = ("lock",)
    tag = OP_QUEUE_DEPTH

    def __init__(self, lock: _t.Any) -> None:
        self.lock = lock


class Call:
    """Issue a request to another service and return its answer value.

    ``target`` is an opaque runtime token (a simulated Service or a live
    client stub); ``retry`` is an optional runtime-owned retry policy
    threaded through untouched.
    """

    __slots__ = ("target", "payload", "size", "retry")
    tag = OP_CALL

    def __init__(
        self, target: _t.Any, payload: _t.Any, size: int, retry: _t.Any = None
    ) -> None:
        self.target = target
        self.payload = payload
        self.size = size
        self.retry = retry


class Fanout:
    """Call every target concurrently; returns ``[(ok, value), ...]``.

    Order matches ``targets``.  ``ok`` is False when that leg failed
    (refused/timed out/crashed), in which case ``value`` describes the
    failure and must not be trusted as an answer.
    """

    __slots__ = ("targets", "payload", "size")
    tag = OP_FANOUT

    def __init__(self, targets: _t.Sequence[_t.Any], payload: _t.Any, size: int) -> None:
        self.targets = targets
        self.payload = payload
        self.size = size


class CrashSelf:
    """Take this service down: mark it crashed and fail the request.

    The runtime records ``reason`` against the service and raises a
    crash error carrying ``message`` through the kernel (so pending
    ``finally`` blocks run) and on to the client.
    """

    __slots__ = ("reason", "message")
    tag = OP_CRASH

    def __init__(self, reason: str, message: str) -> None:
        self.reason = reason
        self.message = message


@dataclass
class KernelResponse:
    """What a kernel returns: an answer value plus its wire size.

    ``value`` is the small structured answer the DES carries between
    simulated services; ``size`` drives simulated/real transfer costs.
    ``wire`` is the full serialized body (LDIF text, encoded SQL result,
    ClassAd text) and is only populated when the kernel was built with
    ``wire=True`` — the live plane wants real bytes on the socket, the
    DES must not pay for encoding it never looks at.
    """

    value: _t.Any
    size: int
    wire: str | None = None


#: A kernel handler: payload in, generator of ops out, KernelResponse returned.
KernelHandler = _t.Callable[[_t.Any], _t.Generator[_t.Any, _t.Any, KernelResponse]]


@dataclass(frozen=True)
class KernelSpec:
    """Everything a runtime needs to host one kernel as a service.

    ``conn_overhead`` is a :class:`repro.core.costmodel.ConnectionOverhead`
    or None; ``max_threads``/``backlog`` bound concurrent admissions and
    the accept queue in *both* runtimes (the live plane emulates refusal
    the same way the simulated Service does).
    """

    name: str
    handle: KernelHandler
    max_threads: int
    backlog: int
    conn_overhead: _t.Any = None
