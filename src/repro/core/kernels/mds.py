"""MDS2 service kernels: GRIS and GIIS in every Table-1 role.

Each kernel reproduces, op for op, the handler a DES service factory in
:mod:`repro.core.services` used to inline — the byte-identity of the
figures depends on the *sequence* of runtime effects staying exactly as
it was (same computes, same lock order, same clock reads relative to
time-advancing ops).  Comments mark the spots where ordering is load-
bearing.
"""

from __future__ import annotations

import typing as _t

from repro.core.kernels.ops import (
    CLOCK,
    Acquire,
    Busy,
    Compute,
    CrashSelf,
    Fanout,
    Held,
    KernelResponse,
    KernelSpec,
    Release,
)
from repro.errors import RegistryError
from repro.ldap.ldif import to_ldif

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.core.params import GiisParams, GrisParams
    from repro.mds.giis import GIIS
    from repro.mds.gris import GRIS

__all__ = [
    "GrisKernel",
    "GiisDirectoryKernel",
    "GiisAggregateKernel",
    "GiisRegistrationKernel",
    "GiisLeafKernel",
    "GiisFanoutKernel",
]


def _stale_count(gris: "GRIS", now: float) -> int:
    """How many providers a search at ``now`` would re-run (no side effects)."""
    return gris.cache.stale_count(now, (provider.name for provider in gris.providers))


class GrisKernel:
    """The GRIS: TTL-cached providers behind a serialized slapd worker."""

    def __init__(
        self,
        gris: "GRIS",
        params: "GrisParams",
        *,
        providers_lock: _t.Any,
        wire: bool = False,
    ) -> None:
        self.gris = gris
        self.params = params
        self.providers_lock = providers_lock
        self.wire = wire

    def spec(self) -> KernelSpec:
        p = self.params
        return KernelSpec(
            f"gris:{self.gris.hostname}",
            self.handle,
            max_threads=p.max_threads,
            backlog=p.backlog,
            conn_overhead=p.conn_overhead,
        )

    def handle(self, payload: _t.Any) -> _t.Generator:
        p, gris = self.params, self.gris
        yield Compute(p.cpu_per_query)
        now = yield CLOCK
        if _stale_count(gris, now):
            yield Acquire(self.providers_lock)
            try:
                now = yield CLOCK
                stale = _stale_count(gris, now)  # recheck after queueing
                if stale:
                    yield Busy(stale * p.provider_hold, p.provider_cpu_fraction)
                    now = yield CLOCK
                result = gris.search(now=now)
            finally:
                yield Release(self.providers_lock)
        else:
            result = gris.search(now=now)
        yield Compute(len(result.entries) * p.cpu_per_entry)
        return KernelResponse(
            value={"entries": len(result.entries), "fetched": result.fetched},
            size=result.estimated_size(),
            wire=to_ldif(result.entries) if self.wire else None,
        )


class GiisDirectoryKernel:
    """The GIIS in its directory-server role: warm cache, pure backend CPU."""

    def __init__(self, giis: "GIIS", params: "GiisParams", *, wire: bool = False) -> None:
        self.giis = giis
        self.params = params
        self.wire = wire

    def spec(self) -> KernelSpec:
        p = self.params
        return KernelSpec(
            f"giis:{self.giis.name}",
            self.handle,
            max_threads=p.max_threads,
            backlog=p.backlog,
            conn_overhead=p.conn_overhead,
        )

    def handle(self, payload: _t.Any) -> _t.Generator:
        yield Compute(self.params.cpu_per_query)
        now = yield CLOCK
        result = self.giis.query(now=now)
        return KernelResponse(
            value={"entries": len(result.entries)},
            size=result.estimated_size(),
            wire=to_ldif(result.entries) if self.wire else None,
        )


class GiisAggregateKernel:
    """The GIIS in its aggregate role: superlinear serialized assembly.

    ``query_part`` asks for a fixed-size registrant subset (the paper's
    second query type); query-all past the registrant limit crashes the
    server, as observed in §3.6.
    """

    def __init__(
        self,
        giis: "GIIS",
        params: "GiisParams",
        *,
        assembly_lock: _t.Any,
        query_part: bool = False,
        part_size: int = 10,
        wire: bool = False,
    ) -> None:
        self.giis = giis
        self.params = params
        self.assembly_lock = assembly_lock
        self.query_part = query_part
        self.part_size = part_size
        self.wire = wire

    def spec(self) -> KernelSpec:
        p = self.params
        suffix = "part" if self.query_part else "all"
        return KernelSpec(
            f"giis:{self.giis.name}:{suffix}",
            self.handle,
            max_threads=p.max_threads,
            backlog=p.backlog,
            conn_overhead=p.conn_overhead,
        )

    def handle(self, payload: _t.Any) -> _t.Generator:
        p, giis = self.params, self.giis
        g = giis.registrant_count
        if not self.query_part and p.max_queryall_registrants and g > p.max_queryall_registrants:
            giis.crashed = True
            yield CrashSelf(
                f"query-all over {g} registrants",
                f"GIIS {giis.name} crashed answering query-all over {g} registrants",
            )
        scale = p.part_fraction if self.query_part else 1.0
        cost = scale * p.aggregate_cpu_coeff * (g ** p.aggregate_cpu_exp)
        yield Held(self.assembly_lock, cost, 0.85)
        now = yield CLOCK
        if self.query_part:
            names = [reg.name for reg in giis.registrations.alive(now)][: self.part_size]
            result = giis.query(now=now, subset=names)
        else:
            result = giis.query(now=now)
        size = max(result.estimated_size(), len(result.entries) * p.entry_wire_bytes)
        return KernelResponse(
            value={"entries": len(result.entries)},
            size=size,
            wire=to_ldif(result.entries) if self.wire else None,
        )


class GiisRegistrationKernel:
    """The GIIS's soft-state registration endpoint.

    Accepts ``{"op": "register"|"renew", "name": ..., "ttl": ...}``; a
    renew of an expired/unknown name answers ``{"renewed": False}`` so
    the client falls back to a full re-register.  ``pullers`` maps
    registrant names to their pull callbacks (the wire carries names;
    the in-process GIIS needs the callable).
    """

    def __init__(
        self,
        giis: "GIIS",
        params: "GiisParams",
        pullers: _t.Mapping[str, _t.Callable[[float], tuple[list, float]]],
    ) -> None:
        self.giis = giis
        self.params = params
        self.pullers = pullers

    def spec(self) -> KernelSpec:
        p = self.params
        return KernelSpec(
            f"giis:{self.giis.name}:reg",
            self.handle,
            max_threads=p.max_threads,
            backlog=p.backlog,
        )

    def handle(self, payload: _t.Any) -> _t.Generator:
        yield Compute(self.params.cpu_per_query)
        payload = payload if isinstance(payload, dict) else {}
        op = payload.get("op", "renew")
        name = payload.get("name", "")
        ttl = float(payload.get("ttl", 600.0))
        now = yield CLOCK
        if op == "register":
            puller = self.pullers.get(name)
            if puller is None:
                raise RegistryError(f"no puller known for registrant {name!r}")
            self.giis.register(name, puller, now=now, ttl=ttl)
            return KernelResponse(value={"registered": True}, size=128)
        renewed = self.giis.renew(name, now=now)
        return KernelResponse(value={"renewed": renewed}, size=96)


class GiisLeafKernel:
    """A mid-/leaf-level GIIS inside a hierarchy (§3.6's suggested fix).

    Answers from its own primed cache with pure CPU assembly cost — the
    serialized-backend bottleneck belongs to the node users hit.
    """

    def __init__(self, giis: "GIIS", params: "GiisParams", *, wire: bool = False) -> None:
        self.giis = giis
        self.params = params
        self.wire = wire

    def spec(self) -> KernelSpec:
        p = self.params
        return KernelSpec(
            f"giis:{self.giis.name}",
            self.handle,
            max_threads=p.max_threads,
            backlog=p.backlog,
        )

    def handle(self, payload: _t.Any) -> _t.Generator:
        p, giis = self.params, self.giis
        cost = p.aggregate_cpu_coeff * (giis.registrant_count ** p.aggregate_cpu_exp)
        yield Compute(cost)
        now = yield CLOCK
        result = giis.query(now=now)
        size = max(result.estimated_size(), len(result.entries) * p.entry_wire_bytes)
        return KernelResponse(
            value={"entries": len(result.entries), "size": size},
            size=size,
            wire=to_ldif(result.entries) if self.wire else None,
        )


class GiisFanoutKernel:
    """An interior GIIS aggregating child GIIS services concurrently.

    The node's own assembly cost covers only its direct children; the
    heavy per-registrant work happens in parallel at the children.
    ``top`` adds client connection overhead (only the root faces users).
    """

    def __init__(
        self,
        children: _t.Sequence[_t.Any],
        params: "GiisParams",
        *,
        label: str = "giis:top",
        top: bool = True,
    ) -> None:
        self.children = tuple(children)
        self.params = params
        self.label = label
        self.top = top
        k = len(self.children)
        self.cost = params.aggregate_cpu_coeff * (k ** params.aggregate_cpu_exp)

    def spec(self) -> KernelSpec:
        p = self.params
        return KernelSpec(
            self.label,
            self.handle,
            max_threads=p.max_threads,
            backlog=p.backlog,
            conn_overhead=p.conn_overhead if self.top else None,
        )

    def handle(self, payload: _t.Any) -> _t.Generator:
        yield Compute(self.cost)
        results = yield Fanout(self.children, payload, 512)
        entries = sum(v["entries"] for ok, v in results if ok and isinstance(v, dict))
        size = sum(v["size"] for ok, v in results if ok and isinstance(v, dict))
        return KernelResponse(
            value={"entries": entries, "size": max(size, 512)}, size=max(size, 512)
        )
