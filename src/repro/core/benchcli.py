"""``repro-bench`` — compare, refresh and inspect benchmark JSON records.

Subcommands
-----------

``compare``
    Diff ``benchmarks/results/*.json`` against ``benchmarks/baselines/``
    and exit non-zero when any baseline record regressed (events/sec
    dropped more than ``--tolerance``, default 25%) or is missing from
    the run.  This is CI's perf gate.

``baseline``
    Copy the current run's records over the committed baselines — the
    refresh step after an intentional perf change (see
    docs/BENCHMARKS.md for the policy).

``show``
    Print the current run's records as a table.

Exit codes: 0 ok, 1 regression/missing records, 2 usage or IO error.
"""

from __future__ import annotations

import argparse
import pathlib
import shutil
import sys
import typing as _t

from repro.core.benchjson import compare, load_records

__all__ = ["main"]

EXIT_OK = 0
EXIT_REGRESSION = 1
EXIT_ERROR = 2

_DEFAULT_RUN = pathlib.Path("benchmarks/results")
_DEFAULT_BASELINE = pathlib.Path("benchmarks/baselines")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Compare and maintain machine-readable benchmark records.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    cmp_p = sub.add_parser("compare", help="diff a run against the committed baselines")
    cmp_p.add_argument("--run", type=pathlib.Path, default=_DEFAULT_RUN)
    cmp_p.add_argument("--baseline", type=pathlib.Path, default=_DEFAULT_BASELINE)
    cmp_p.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed relative events/sec drop before failing (default 0.25)",
    )

    base_p = sub.add_parser("baseline", help="refresh baselines from the current run")
    base_p.add_argument("--run", type=pathlib.Path, default=_DEFAULT_RUN)
    base_p.add_argument("--baseline", type=pathlib.Path, default=_DEFAULT_BASELINE)

    show_p = sub.add_parser("show", help="print the current run's records")
    show_p.add_argument("--run", type=pathlib.Path, default=_DEFAULT_RUN)
    return parser


def _cmd_compare(args: argparse.Namespace, out: _t.TextIO) -> int:
    try:
        run = load_records(args.run)
        baseline = load_records(args.baseline)
        results = compare(run, baseline, tolerance=args.tolerance)
    except (OSError, ValueError) as exc:
        print(f"repro-bench: {exc}", file=sys.stderr)
        return EXIT_ERROR
    if not baseline:
        print(f"repro-bench: no baseline records under {args.baseline}", file=sys.stderr)
        return EXIT_ERROR
    for result in results:
        print(result.describe(), file=out)
    bad = [r for r in results if r.status != "ok"]
    gated = sum(1 for r in results if r.baseline > 0)
    print(
        f"\n{len(results)} baseline records ({gated} throughput-gated), "
        f"{len(bad)} failing, tolerance {args.tolerance:.0%}",
        file=out,
    )
    return EXIT_REGRESSION if bad else EXIT_OK


def _cmd_baseline(args: argparse.Namespace, out: _t.TextIO) -> int:
    run_dir = pathlib.Path(args.run)
    files = sorted(run_dir.glob("*.json"))
    if not files:
        print(f"repro-bench: no *.json records under {run_dir}", file=sys.stderr)
        return EXIT_ERROR
    baseline_dir = pathlib.Path(args.baseline)
    baseline_dir.mkdir(parents=True, exist_ok=True)
    for path in files:
        shutil.copyfile(path, baseline_dir / path.name)
        print(f"baselined {path.name}", file=out)
    return EXIT_OK


def _cmd_show(args: argparse.Namespace, out: _t.TextIO) -> int:
    try:
        run = load_records(args.run)
    except (OSError, ValueError) as exc:
        print(f"repro-bench: {exc}", file=sys.stderr)
        return EXIT_ERROR
    if not run:
        print(f"repro-bench: no records under {args.run}", file=sys.stderr)
        return EXIT_ERROR
    header = (
        f"{'bench:name':<60} {'wall s':>9} {'events':>10} {'ev/s':>12} "
        f"{'q/s':>8} {'p95 s':>8} {'jobs':>5} {'spdup':>6} {'hits':>5}"
    )
    print(header, file=out)
    print("-" * len(header), file=out)
    for (bench, name), rec in sorted(run.items()):
        print(
            f"{bench + ':' + name:<60} {rec.wall_seconds:>9.3f} {rec.events:>10,d} "
            f"{rec.events_per_sec:>12,.0f} {rec.throughput:>8.2f} {rec.latency_p95:>8.4f} "
            f"{rec.jobs:>5d} {rec.wall_speedup:>6.2f} {rec.cache_hits:>5d}",
            file=out,
        )
    return EXIT_OK


def main(argv: _t.Sequence[str] | None = None, out: _t.TextIO = sys.stdout) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "compare":
        return _cmd_compare(args, out)
    if args.command == "baseline":
        return _cmd_baseline(args, out)
    return _cmd_show(args, out)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
