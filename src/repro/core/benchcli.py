"""``repro-bench`` — compare, refresh and inspect benchmark JSON records.

Subcommands
-----------

``compare``
    Diff ``benchmarks/results/*.json`` against ``benchmarks/baselines/``
    and exit non-zero when any baseline record regressed (events/sec
    dropped more than ``--tolerance``, default 25%) or is missing from
    the run.  The single-baseline gate — still used for scheduled
    full-window runs and as the ``gate`` fallback on short history.

``gate``
    History-aware perf gate: judge the current run against the
    accumulated run-over-run history in ``benchmarks/results-history/``
    with changepoint detection
    (:func:`repro.core.stats.changepoint_gate`) — a noise-adaptive
    tolerance per record instead of one fixed percentage.  Records with
    fewer than ``--min-history`` runs fall back to the ``compare``
    tolerance against the committed baselines.  ``--append`` snapshots
    the run into the history afterwards (CI restores/saves the history
    directory via its cache).

``baseline``
    Copy the current run's records over the committed baselines — the
    refresh step after an intentional perf change (see
    docs/BENCHMARKS.md for the policy).

``show``
    Print the current run's records as a table.

Exit codes: 0 ok, 1 regression/missing records, 2 usage or IO error.
"""

from __future__ import annotations

import argparse
import pathlib
import shutil
import sys
import typing as _t

from repro.core.cliversion import add_version_argument
from repro.core.benchjson import (
    append_history,
    compare,
    history_series,
    load_history,
    load_records,
    prune_history,
)
from repro.core.stats import changepoint_gate

__all__ = ["main"]

EXIT_OK = 0
EXIT_REGRESSION = 1
EXIT_ERROR = 2

_DEFAULT_RUN = pathlib.Path("benchmarks/results")
_DEFAULT_BASELINE = pathlib.Path("benchmarks/baselines")
_DEFAULT_HISTORY = pathlib.Path("benchmarks/results-history")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Compare and maintain machine-readable benchmark records.",
    )
    add_version_argument(parser)
    sub = parser.add_subparsers(dest="command", required=True)

    cmp_p = sub.add_parser("compare", help="diff a run against the committed baselines")
    cmp_p.add_argument("--run", type=pathlib.Path, default=_DEFAULT_RUN)
    cmp_p.add_argument("--baseline", type=pathlib.Path, default=_DEFAULT_BASELINE)
    cmp_p.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed relative events/sec drop before failing (default 0.25)",
    )

    gate_p = sub.add_parser(
        "gate", help="history-aware perf gate (changepoint detection over past runs)"
    )
    gate_p.add_argument("--run", type=pathlib.Path, default=_DEFAULT_RUN)
    gate_p.add_argument("--history", type=pathlib.Path, default=_DEFAULT_HISTORY)
    gate_p.add_argument("--baseline", type=pathlib.Path, default=_DEFAULT_BASELINE)
    gate_p.add_argument(
        "--min-history",
        type=int,
        default=5,
        help="runs (incl. this one) a record needs before the changepoint gate "
        "judges it; shorter records fall back to compare (default 5)",
    )
    gate_p.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="fallback compare tolerance for short-history records (default 0.25)",
    )
    gate_p.add_argument(
        "--min-drop",
        type=float,
        default=0.10,
        help="minimum relative drop treated as a regression (default 0.10)",
    )
    gate_p.add_argument(
        "--sigmas",
        type=float,
        default=4.0,
        help="noise-adaptive widening: allow this many stable-segment standard "
        "deviations below the level (default 4.0)",
    )
    gate_p.add_argument(
        "--append",
        action="store_true",
        help="snapshot this run into the history after gating",
    )
    gate_p.add_argument(
        "--max-history",
        type=int,
        default=50,
        metavar="N",
        help="with --append, keep only the newest N snapshots (default 50)",
    )
    gate_p.add_argument(
        "--reset-history",
        action="store_true",
        help="clear the accumulated history first (bless an intentional level shift)",
    )

    base_p = sub.add_parser("baseline", help="refresh baselines from the current run")
    base_p.add_argument("--run", type=pathlib.Path, default=_DEFAULT_RUN)
    base_p.add_argument("--baseline", type=pathlib.Path, default=_DEFAULT_BASELINE)

    show_p = sub.add_parser("show", help="print the current run's records")
    show_p.add_argument("--run", type=pathlib.Path, default=_DEFAULT_RUN)
    return parser


def _cmd_compare(args: argparse.Namespace, out: _t.TextIO) -> int:
    try:
        run = load_records(args.run)
        baseline = load_records(args.baseline)
        results = compare(run, baseline, tolerance=args.tolerance)
    except (OSError, ValueError) as exc:
        print(f"repro-bench: {exc}", file=sys.stderr)
        return EXIT_ERROR
    if not baseline:
        print(f"repro-bench: no baseline records under {args.baseline}", file=sys.stderr)
        return EXIT_ERROR
    for result in results:
        print(result.describe(), file=out)
    bad = [r for r in results if r.status != "ok"]
    gated = sum(1 for r in results if r.baseline > 0)
    print(
        f"\n{len(results)} baseline records ({gated} throughput-gated), "
        f"{len(bad)} failing, tolerance {args.tolerance:.0%}",
        file=out,
    )
    return EXIT_REGRESSION if bad else EXIT_OK


def _cmd_gate(args: argparse.Namespace, out: _t.TextIO) -> int:
    try:
        run = load_records(args.run)
    except (OSError, ValueError) as exc:
        print(f"repro-bench: {exc}", file=sys.stderr)
        return EXIT_ERROR
    if not run:
        print(f"repro-bench: no records under {args.run}", file=sys.stderr)
        return EXIT_ERROR
    try:
        if args.reset_history and args.history.is_dir():
            for path in sorted(args.history.glob("run-*.json")):
                path.unlink()
            print(f"reset history under {args.history}", file=out)
        history = load_history(args.history) if args.history.is_dir() else []
        baseline = load_records(args.baseline) if args.baseline.is_dir() else {}
    except (OSError, ValueError) as exc:
        print(f"repro-bench: {exc}", file=sys.stderr)
        return EXIT_ERROR

    # Changepoint-gate every throughput-tracked record of the run whose
    # history (plus this run) is long enough; the rest fall back below.
    verdicts = []
    short: set[tuple[str, str]] = set()
    for key in sorted(run):
        record = run[key]
        if record.events_per_sec <= 0.0:
            continue  # wall-clock-only record, exempt (matches compare)
        series = history_series(history, key) + [record.events_per_sec]
        verdict = changepoint_gate(
            series,
            key,
            min_history=args.min_history,
            min_drop=args.min_drop,
            sigmas=args.sigmas,
        )
        if verdict.status == "short":
            short.add(key)
        else:
            verdicts.append(verdict)
    for verdict in verdicts:
        print(verdict.describe(), file=out)

    # Fallback: short-history records (and any record missing from the
    # run entirely) are judged by the old single-baseline tolerance.
    fallback_base = {
        key: rec
        for key, rec in baseline.items()
        if key in short or (key not in run and rec.events_per_sec > 0.0)
    }
    fallback = compare(run, fallback_base, tolerance=args.tolerance) if fallback_base else []
    for result in fallback:
        print(f"{result.describe()}  [fallback: history < {args.min_history} runs]", file=out)
    unjudged = sorted(short - set(fallback_base))
    for bench, name in unjudged:
        print(f"new         {bench}:{name} (no history, no baseline)", file=out)

    if args.append:
        try:
            path = append_history(args.history, run)
            pruned = prune_history(args.history, args.max_history)
        except (OSError, ValueError) as exc:
            print(f"repro-bench: {exc}", file=sys.stderr)
            return EXIT_ERROR
        print(f"appended {path.name} ({len(history) + 1} runs"
              f"{f', pruned {pruned}' if pruned else ''})", file=out)

    regressions = sum(1 for v in verdicts if v.status == "regression")
    improved = sum(1 for v in verdicts if v.status == "improved")
    fallback_bad = sum(1 for r in fallback if r.status != "ok")
    print(
        f"\n{len(verdicts)} changepoint-gated records over {len(history) + 1} runs "
        f"({regressions} regressed, {improved} improved), "
        f"{len(fallback)} on compare fallback ({fallback_bad} failing), "
        f"{len(unjudged)} new",
        file=out,
    )
    return EXIT_REGRESSION if regressions or fallback_bad else EXIT_OK


def _cmd_baseline(args: argparse.Namespace, out: _t.TextIO) -> int:
    run_dir = pathlib.Path(args.run)
    files = sorted(run_dir.glob("*.json"))
    if not files:
        print(f"repro-bench: no *.json records under {run_dir}", file=sys.stderr)
        return EXIT_ERROR
    baseline_dir = pathlib.Path(args.baseline)
    baseline_dir.mkdir(parents=True, exist_ok=True)
    for path in files:
        shutil.copyfile(path, baseline_dir / path.name)
        print(f"baselined {path.name}", file=out)
    return EXIT_OK


def _cmd_show(args: argparse.Namespace, out: _t.TextIO) -> int:
    try:
        run = load_records(args.run)
    except (OSError, ValueError) as exc:
        print(f"repro-bench: {exc}", file=sys.stderr)
        return EXIT_ERROR
    if not run:
        print(f"repro-bench: no records under {args.run}", file=sys.stderr)
        return EXIT_ERROR
    header = (
        f"{'bench:name':<60} {'wall s':>9} {'events':>10} {'ev/s':>12} "
        f"{'q/s':>8} {'p95 s':>8} {'jobs':>5} {'spdup':>6} {'hits':>5} "
        f"{'fidelity':>9} {'popul.':>9}"
    )
    print(header, file=out)
    print("-" * len(header), file=out)
    for (bench, name), rec in sorted(run.items()):
        pop = f"{rec.population:,d}" if rec.population else "-"
        print(
            f"{bench + ':' + name:<60} {rec.wall_seconds:>9.3f} {rec.events:>10,d} "
            f"{rec.events_per_sec:>12,.0f} {rec.throughput:>8.2f} {rec.latency_p95:>8.4f} "
            f"{rec.jobs:>5d} {rec.wall_speedup:>6.2f} {rec.cache_hits:>5d} "
            f"{rec.fidelity:>9} {pop:>9}",
            file=out,
        )
    return EXIT_OK


def main(argv: _t.Sequence[str] | None = None, out: _t.TextIO = sys.stdout) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "compare":
        return _cmd_compare(args, out)
    if args.command == "gate":
        return _cmd_gate(args, out)
    if args.command == "baseline":
        return _cmd_baseline(args, out)
    return _cmd_show(args, out)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
