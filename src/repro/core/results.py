"""Result containers and renderers for the reproduced figures.

A :class:`Figure` holds one or more :class:`Series` (legend entry →
(x, y) points) plus axis labels, and renders to aligned text tables,
CSV, or a quick ASCII chart — enough to eyeball every curve against the
paper without a plotting stack.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Series", "Figure"]


@dataclass
class Series:
    """One legend entry of a figure."""

    label: str
    points: list[tuple[float, float]] = field(default_factory=list)
    dnf: list[float] = field(default_factory=list)  # x values that crashed
    # Optional x -> CI half-width (populated by adaptive-mode sweeps;
    # empty for exact-mode figures, whose tables stay byte-identical).
    ci: dict[float, float] = field(default_factory=dict)

    def add(self, x: float, y: float, ci: float | None = None) -> None:
        self.points.append((x, y))
        if ci is not None:
            self.ci[x] = ci

    def mark_dnf(self, x: float) -> None:
        self.dnf.append(x)

    @property
    def xs(self) -> list[float]:
        return [x for x, _y in self.points]

    @property
    def ys(self) -> list[float]:
        return [y for _x, y in self.points]

    def y_at(self, x: float) -> float | None:
        for px, py in self.points:
            if px == x:
                return py
        return None


@dataclass
class Figure:
    """A reproduced figure: series + labels."""

    number: int
    title: str
    xlabel: str
    ylabel: str
    series: list[Series] = field(default_factory=list)

    def series_by_label(self, label: str) -> Series:
        for s in self.series:
            if s.label == label:
                return s
        raise KeyError(label)

    def all_xs(self) -> list[float]:
        xs: list[float] = []
        for s in self.series:
            for x in s.xs + s.dnf:
                if x not in xs:
                    xs.append(x)
        return sorted(xs)

    # -- rendering ------------------------------------------------------------
    def to_table(self) -> str:
        """Aligned text table: one row per x, one column per series."""
        xs = self.all_xs()
        label_width = max(12, *(len(s.label) for s in self.series)) + 2
        head = f"Figure {self.number}: {self.title}"
        lines = [head, "=" * len(head)]
        header = f"{self.xlabel:>16s} " + "".join(
            f"{s.label:>{label_width}s}" for s in self.series
        )
        lines.append(header)
        lines.append("-" * len(header))
        for x in xs:
            row = [f"{x:>16g} "]
            for s in self.series:
                if x in s.dnf:
                    row.append(f"{'CRASH':>{label_width}s}")
                else:
                    y = s.y_at(x)
                    row.append(
                        f"{'-':>{label_width}s}" if y is None else f"{y:>{label_width}.3f}"
                    )
            lines.append("".join(row))
        lines.append(f"(y axis: {self.ylabel})")
        for s in self.series:
            if s.ci:
                spread = "  ".join(f"{x:g}:±{hw:.3f}" for x, hw in sorted(s.ci.items()))
                lines.append(f"(95% CI half-width, {s.label}: {spread})")
        return "\n".join(lines)

    def to_markdown(self) -> str:
        """GitHub-flavoured markdown table of the figure."""
        xs = self.all_xs()
        header = [self.xlabel] + [s.label for s in self.series]
        lines = [
            f"**Figure {self.number}: {self.title}** ({self.ylabel})",
            "",
            "| " + " | ".join(header) + " |",
            "|" + "|".join("---" for _ in header) + "|",
        ]
        for x in xs:
            cells = [f"{x:g}"]
            for s in self.series:
                if x in s.dnf:
                    cells.append("CRASH")
                else:
                    y = s.y_at(x)
                    cells.append("—" if y is None else f"{y:.3f}")
            lines.append("| " + " | ".join(cells) + " |")
        return "\n".join(lines)

    def to_csv(self) -> str:
        """CSV rows: figure,series,x,y (DNF points get an empty y)."""
        rows = ["figure,series,x,y"]
        for s in self.series:
            for x, y in s.points:
                rows.append(f"{self.number},{s.label},{x:g},{y:.6g}")
            for x in s.dnf:
                rows.append(f"{self.number},{s.label},{x:g},")
        return "\n".join(rows) + "\n"

    def to_ascii_chart(self, width: int = 64, height: int = 16) -> str:
        """A rough ASCII scatter of every series (one marker per series)."""
        markers = "ox+*#@%&"
        points = [(x, y) for s in self.series for x, y in s.points]
        if not points:
            return f"Figure {self.number}: (no data)"
        xmax = max(x for x, _ in points) or 1.0
        ymax = max(y for _, y in points) or 1.0
        grid = [[" "] * width for _ in range(height)]
        for si, s in enumerate(self.series):
            mark = markers[si % len(markers)]
            for x, y in s.points:
                col = min(width - 1, int(x / xmax * (width - 1)))
                row = min(height - 1, int(y / ymax * (height - 1)))
                grid[height - 1 - row][col] = mark
        lines = [f"Figure {self.number}: {self.title}  (ymax={ymax:.3g})"]
        lines += ["|" + "".join(row) for row in grid]
        lines.append("+" + "-" * width + f"> {self.xlabel} (xmax={xmax:g})")
        for si, s in enumerate(self.series):
            lines.append(f"  {markers[si % len(markers)]} = {s.label}")
        return "\n".join(lines)
