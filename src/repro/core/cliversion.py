"""Shared ``--version`` support for every repro CLI.

All five entry points (``repro-bench``, ``repro-figures``,
``repro-report``, ``repro-topology``, ``repro-serve``) report the same
version: the installed package metadata when available, the in-tree
``repro.__version__`` when running from a source checkout.
"""

from __future__ import annotations

import argparse

__all__ = ["repro_version", "add_version_argument"]


def repro_version() -> str:
    """The package version, from metadata or the source tree."""
    try:
        from importlib.metadata import version

        return version("repro")
    except Exception:
        import repro

        return getattr(repro, "__version__", "unknown")


def add_version_argument(parser: argparse.ArgumentParser) -> None:
    """Attach the standard ``--version`` flag to ``parser``."""
    parser.add_argument(
        "--version",
        action="version",
        version=f"%(prog)s {repro_version()}",
        help="print the repro package version and exit",
    )
