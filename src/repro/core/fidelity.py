"""Fast fidelity tiers: analytic station models of the exact scenarios.

The exact tier simulates one Python object per client and per request,
which tops out around ~10^3 users.  This module provides the two fast
tiers that break that ceiling (ROADMAP: million-user sweeps):

* ``meanfield`` — a fixed-point solution of the closed queueing network
  induced by the scenario's cost model (Schweitzer approximate MVA with
  a Seidmann reduction for multi-server stations, an outer fixed point
  for the concurrency-dependent connection overhead, and a population
  cap for accept-queue refusal).  O(stations) per point, any N.
* ``cohort`` — :mod:`repro.sim.cohort` steps numpy state vectors for
  the whole client population through the same station chain in event
  epochs; stochastic (think jitter, start spread) and conserving
  (every request is completed or refused), at ~10^5-10^6 users.

Both tiers consume a :class:`ServiceModel` built by
:func:`model_for_plan` from the same :class:`DeploymentPlan` the exact
tier compiles, with per-query costs taken verbatim from
:mod:`repro.core.params` and entry counts / response sizes measured on
cheap *representative* functional objects (a real GRIS/GIIS/Agent/
Manager/servlet answering one query) — never a full plan compile, so a
10^4-node tree model costs milliseconds.

Validity envelope (docs/FIDELITY.md): background traffic that the
exact tier simulates (producer publish rounds, Hawkeye local
advertising) is ignored — it is <0.3% of a host CPU in every committed
scenario; client-side NIC contention is ignored; Experiment-4
aggregate scenarios (crash limits, wire advertising) require the exact
tier and raise :class:`FidelityError` here.
"""

from __future__ import annotations

import math
import typing as _t
from dataclasses import dataclass

from repro.core.components import Role, System
from repro.core.metrics import MetricsSummary
from repro.core.params import StudyParams, default_params, measurement_window
from repro.core.runner import PointResult
from repro.core.topology.plan import (
    FIDELITY_TIERS,
    CollectorSpec,
    DeploymentPlan,
    EdgeKind,
    NodeSpec,
    ServerSpec,
)
from repro.sim.rpc import ConnectionOverhead

__all__ = [
    "TIERS",
    "FAST_TIERS",
    "FidelityError",
    "require_plain_run",
    "Station",
    "ServiceModel",
    "MeanFieldSolution",
    "model_for_plan",
    "tier_for_plan",
    "solve_meanfield",
    "load1_ramp",
    "fast_point",
    "projected_exact_cost",
]

TIERS = FIDELITY_TIERS
FAST_TIERS = tuple(t for t in FIDELITY_TIERS if t != "exact")

_NIC_RATE = 100.0e6 / 8.0  # bytes/s through one host NIC
_LOOPBACK = 1e-4
_SAME_SITE_LATENCY = 1e-3  # Network.default_latency for intra-site hops


class FidelityError(ValueError):
    """A scenario a fast tier cannot model faithfully."""


def require_plain_run(tier: str, **features: object) -> None:
    """Reject experiment features the fast tiers do not model.

    The fast tiers compute steady-state query-path metrics only; any
    truthy keyword (``retry=``, ``faults=``, ``adaptive=`` ...) names a
    feature that needs the exact per-client DES.
    """
    if tier not in TIERS:
        raise FidelityError(f"unknown fidelity tier {tier!r}; pick from {TIERS}")
    on = sorted(name for name, value in features.items() if value)
    if on:
        raise FidelityError(
            f"fidelity tier {tier!r} cannot model {', '.join(on)}; "
            "use the exact tier for those runs"
        )


@dataclass(frozen=True)
class Station:
    """One queueing resource a request visits, in visit order.

    ``demand`` is the total resource-seconds one query consumes here;
    ``service`` the no-contention time the query spends here (defaults
    to ``demand``; smaller when the work fans out across the station's
    ``servers``, e.g. a tree query scanning every leaf in parallel).
    ``servers=0`` is a pure delay (no queueing at all).

    ``monitored_cpu`` is the part of ``demand`` that burns CPU on the
    *monitored* host (feeds the Ganglia cpu% estimate).  ``load_queue``
    marks stations whose queued requests are runnable threads on the
    monitored host (CPU stations); ``load_util`` credits a fractional
    runnable thread while the station is busy (serialized holds that
    burn CPU for ``cpu_fraction`` of the hold).

    ``in_server`` marks the thread-slot window: stations between
    admission and handler return.  Only these count toward the
    connection-overhead active count and the accept-queue refusal
    limit — the exact engine releases the slot before the response
    transfer, so response-path stations are ``in_server=False``.
    """

    name: str
    demand: float
    servers: int = 1
    service: float | None = None
    convoy: float = 0.0  # hold inflation per queued request
    monitored_cpu: float = 0.0
    load_queue: bool = False
    load_util: float = 0.0
    in_server: bool = True

    @property
    def base_service(self) -> float:
        return self.demand if self.service is None else self.service


@dataclass(frozen=True)
class ServiceModel:
    """Everything a fast tier needs about one deployed scenario."""

    name: str
    stations: tuple[Station, ...]
    pre_delay: float  # request-path latency (transfers + propagation)
    post_delay: float  # response-path latency after the last station
    conn: ConnectionOverhead | None
    max_threads: int
    backlog: int
    cpus: int  # monitored host CPUs
    cpu_rate: float = 1.0
    refusal_rtt: float = 0.0  # client-observed cost of one refused attempt
    response_bytes: int = 0
    notes: str = ""

    @property
    def capacity(self) -> int:
        """The accept-queue refusal limit (threads + backlog)."""
        return self.max_threads + self.backlog


# -- representative functional objects --------------------------------------
#
# Entry counts and wire sizes come from real answers of cheaply built
# functional objects, so the fast tiers inherit them from the same code
# path the exact tier exercises instead of hard-coding byte counts.


def _rep_gris(collectors: int, cached: bool, seed: int = 0):
    from repro.mds.gris import GRIS
    from repro.mds.providers import replicated_providers

    ttl = float("inf") if cached else 0.0
    gris = GRIS(
        "fidelity-model.mcs.anl.gov",
        replicated_providers(collectors),
        cachettl=ttl,
        seed=seed,
    )
    result = gris.search(now=0.0)  # primes the cache when cached
    if cached:
        result = gris.search(now=0.0)  # measure the steady (cached) answer
    return gris, result


def _rep_giis_directory(registrants: int, collectors: int = 10):
    from repro.mds.giis import GIIS

    giis = GIIS("fidelity-model", cachettl=float("inf"))
    for i in range(registrants):
        gris, _ = _rep_gris(collectors, cached=True, seed=101 + i)
        giis.register(f"gris{i}", _gris_puller(gris), now=0.0, ttl=1e12)
    return giis, giis.query(now=0.0)


def _gris_puller(gris):
    def pull(now: float):
        result = gris.search(now=now)
        return result.entries, result.exec_cost

    return pull


def _rep_agent(modules: int, seed: int = 0):
    from repro.hawkeye.agent import Agent
    from repro.hawkeye.modules import replicated_modules

    agent = Agent("fidelity-model.pool", replicated_modules(modules), seed=seed)
    return agent, agent.query(now=0.0)


def _rep_manager(agent_machines: _t.Sequence[str]):
    from repro.hawkeye.agent import Agent
    from repro.hawkeye.manager import Manager
    from repro.hawkeye.modules import make_default_modules

    manager = Manager("fidelity-model")
    for machine in agent_machines:
        agent = Agent(machine, make_default_modules(), seed=0)
        manager.register_agent(agent)
        ad, _ = agent.make_startd_ad(now=0.0)
        manager.receive_ad(ad, now=0.0)
    return manager


def _rep_producer_servlet(producers: int, seed: int = 0):
    from repro.rgma.producer import make_default_producers
    from repro.rgma.producer_servlet import ProducerServlet
    from repro.rgma.registry import Registry

    registry = Registry("fidelity-model")
    servlet = ProducerServlet("fidelity-ps")
    for producer in make_default_producers("lucky3.mcs.anl.gov", producers, seed=seed):
        servlet.attach(producer, registry, now=0.0, lease=1e9)
    servlet.publish_all(now=0.0)
    return registry, servlet, servlet.answer("SELECT * FROM cpuLoad")


# -- model construction ------------------------------------------------------


def tier_for_plan(plan: DeploymentPlan) -> str:
    """The fidelity tier the plan's entry node requests."""
    return plan.node(plan.entry).fidelity


def _collector_count(plan: DeploymentPlan, spec: NodeSpec, default: int = 10) -> int:
    for edge in plan.edges_to(spec.name, EdgeKind.COLLECTION):
        source = plan.node(edge.source)
        if isinstance(source, CollectorSpec):
            return source.count
    return default


def _wan_legs(request: int, response: int, p: StudyParams) -> tuple[float, float, list[Station]]:
    """(pre_delay, post_delay, network stations) for UC clients -> ANL server."""
    tb = p.testbed
    wan_rate = tb.wan_mbps * 1e6 / 8.0
    pre = tb.wan_latency + 2 * request / _NIC_RATE
    post = tb.wan_latency + response / _NIC_RATE
    stations = [
        Station("nic-out", demand=response / _NIC_RATE, in_server=False),
        Station("wan", demand=(request + response) / wan_rate, in_server=False),
    ]
    return pre, post, stations


def _lan_legs(request: int, response: int, p: StudyParams) -> tuple[float, float, list[Station]]:
    """(pre, post, stations) for clients on the ANL LAN."""
    tb = p.testbed
    pre = tb.lan_latency + 2 * request / _NIC_RATE
    post = tb.lan_latency + response / _NIC_RATE
    return pre, post, [Station("nic-out", demand=response / _NIC_RATE, in_server=False)]


def _gris_model(plan: DeploymentPlan, p: StudyParams) -> ServiceModel:
    entry = plan.node(plan.entry)
    assert isinstance(entry, ServerSpec)
    collectors = _collector_count(plan, entry)
    gp = p.gris
    _, result = _rep_gris(collectors, cached=entry.cached, seed=entry.seed)
    response = result.estimated_size()
    cpu = gp.cpu_per_query + len(result.entries) * gp.cpu_per_entry
    stations = [
        Station("cpu", demand=cpu, servers=p.testbed.lucky_cpus,
                monitored_cpu=cpu, load_queue=True),
    ]
    if not entry.cached:
        hold = collectors * gp.provider_hold
        stations.append(
            Station("providers", demand=hold,
                    monitored_cpu=hold * gp.provider_cpu_fraction,
                    load_util=gp.provider_cpu_fraction)
        )
    pre, post, net = _wan_legs(gp.request_size, response, p)
    return ServiceModel(
        name=plan.name, stations=tuple(stations + net), pre_delay=pre, post_delay=post,
        conn=gp.conn_overhead, max_threads=gp.max_threads, backlog=gp.backlog,
        cpus=p.testbed.lucky_cpus, cpu_rate=p.testbed.lucky_cpu_rate,
        refusal_rtt=pre + p.testbed.wan_latency, response_bytes=response,
    )


def _agent_model(plan: DeploymentPlan, p: StudyParams) -> ServiceModel:
    entry = plan.node(plan.entry)
    modules = _collector_count(plan, entry, default=11)
    ap = p.agent
    _, answer = _rep_agent(modules, seed=entry.seed)
    response = answer.estimated_size()
    hold = ap.fetch_quad_coeff * modules * modules
    stations = [
        Station("cpu", demand=ap.cpu_per_query, servers=p.testbed.lucky_cpus,
                monitored_cpu=ap.cpu_per_query, load_queue=True),
        Station("startd", demand=hold, convoy=ap.convoy_coeff,
                monitored_cpu=hold * ap.fetch_cpu_fraction,
                load_util=ap.fetch_cpu_fraction),
    ]
    pre, post, net = _wan_legs(ap.request_size, response, p)
    return ServiceModel(
        name=plan.name, stations=tuple(stations + net), pre_delay=pre, post_delay=post,
        conn=ap.conn_overhead, max_threads=ap.max_threads, backlog=ap.backlog,
        cpus=p.testbed.lucky_cpus, cpu_rate=p.testbed.lucky_cpu_rate,
        refusal_rtt=pre + p.testbed.wan_latency, response_bytes=response,
    )


def _ps_stations(plan: DeploymentPlan, p: StudyParams, ps_name: str) -> tuple[list[Station], int]:
    """The ProducerServlet's own stations plus its response size."""
    pp = p.producer_servlet
    producers = _collector_count(plan, plan.node(ps_name))
    _, _, answer = _rep_producer_servlet(producers)
    hold = pp.db_hold_linear * producers + pp.db_hold_quad * producers * producers
    stations = [
        Station("ps-cpu", demand=pp.cpu_per_query, servers=p.testbed.lucky_cpus,
                monitored_cpu=pp.cpu_per_query, load_queue=True),
        Station("ps-db", demand=hold, convoy=pp.convoy_coeff,
                monitored_cpu=hold * pp.db_cpu_fraction,
                load_util=pp.db_cpu_fraction),
    ]
    return stations, answer.estimated_size()


def _rgma_model(plan: DeploymentPlan, p: StudyParams) -> ServiceModel:
    entry = plan.node(plan.entry)
    pp = p.producer_servlet
    cp = p.consumer_servlet
    tb = p.testbed
    if entry.variant == "mediator":
        # exp1 rgma-ps-uc: UC consumers -> one CS at UC -> PS over the WAN.
        mediation = [e.target for e in plan.edges_from(plan.entry, EdgeKind.MEDIATION)]
        ps_stations, response = _ps_stations(plan, p, mediation[0])
        wan_rate = tb.wan_mbps * 1e6 / 8.0
        stations = [
            Station("cs-cpu", demand=cp.cpu_per_query / tb.uc_cpu_rate,
                    servers=tb.uc_cpus, in_server=False),
            Station("cs-mediation", demand=cp.mediation_hold, in_server=False),
            *ps_stations,
            # CS -> PS request and PS -> CS response both cross the WAN;
            # the CS -> consumer response (1024 B) stays on the UC LAN.
            Station("ps-nic-out", demand=response / _NIC_RATE, in_server=False),
            Station("wan", demand=(cp.request_size + response) / wan_rate,
                    in_server=False),
        ]
        pre = _SAME_SITE_LATENCY + tb.wan_latency + 2 * cp.request_size / _NIC_RATE
        post = tb.wan_latency + _SAME_SITE_LATENCY + 1024 / _NIC_RATE
        return ServiceModel(
            name=plan.name, stations=tuple(stations), pre_delay=pre, post_delay=post,
            conn=pp.conn_overhead, max_threads=pp.max_threads, backlog=pp.backlog,
            cpus=tb.lucky_cpus, cpu_rate=tb.lucky_cpu_rate,
            refusal_rtt=pre + tb.wan_latency, response_bytes=response,
        )
    mediators = [e.source for e in plan.edges_to(plan.entry, EdgeKind.MEDIATION)]
    if mediators:
        # exp1 rgma-ps-lucky: consumers on the Lucky nodes, a CS per node
        # (loopback to the local CS, LAN to the shared PS on lucky3).
        n_cs = len(mediators)
        ps_stations, response = _ps_stations(plan, p, plan.entry)
        stations = [
            Station("cs-cpu", demand=cp.cpu_per_query,
                    servers=n_cs * tb.lucky_cpus, in_server=False),
            Station("cs-mediation", demand=cp.mediation_hold, servers=n_cs,
                    service=cp.mediation_hold, in_server=False),
            *ps_stations,
            Station("ps-nic-out", demand=response / _NIC_RATE, in_server=False),
        ]
        pre = _LOOPBACK + tb.lan_latency + 2 * cp.request_size / _NIC_RATE
        post = tb.lan_latency + _LOOPBACK + (response + 1024) / _NIC_RATE
        return ServiceModel(
            name=plan.name, stations=tuple(stations), pre_delay=pre, post_delay=post,
            conn=pp.conn_overhead, max_threads=pp.max_threads, backlog=pp.backlog,
            cpus=tb.lucky_cpus, cpu_rate=tb.lucky_cpu_rate,
            refusal_rtt=pre + tb.lan_latency, response_bytes=response,
        )
    # exp3 rgma-ps: UC consumers query the ProducerServlet directly.
    ps_stations, response = _ps_stations(plan, p, plan.entry)
    pre, post, net = _wan_legs(pp.request_size, response, p)
    return ServiceModel(
        name=plan.name, stations=tuple(ps_stations + net), pre_delay=pre, post_delay=post,
        conn=pp.conn_overhead, max_threads=pp.max_threads, backlog=pp.backlog,
        cpus=tb.lucky_cpus, cpu_rate=tb.lucky_cpu_rate,
        refusal_rtt=pre + tb.wan_latency, response_bytes=response,
    )


def _giis_directory_model(plan: DeploymentPlan, p: StudyParams) -> ServiceModel:
    gp = p.giis
    registrants = len(plan.edges_to(plan.entry, EdgeKind.REGISTRATION))
    _, result = _rep_giis_directory(registrants)
    response = result.estimated_size()
    stations = [
        Station("cpu", demand=gp.cpu_per_query, servers=p.testbed.lucky_cpus,
                monitored_cpu=gp.cpu_per_query, load_queue=True),
    ]
    pre, post, net = _wan_legs(gp.request_size, response, p)
    return ServiceModel(
        name=plan.name, stations=tuple(stations + net), pre_delay=pre, post_delay=post,
        conn=gp.conn_overhead, max_threads=gp.max_threads, backlog=gp.backlog,
        cpus=p.testbed.lucky_cpus, cpu_rate=p.testbed.lucky_cpu_rate,
        refusal_rtt=pre + p.testbed.wan_latency, response_bytes=response,
    )


def _manager_directory_model(plan: DeploymentPlan, p: StudyParams) -> ServiceModel:
    mp = p.manager
    agents = [
        plan.node(e.source).options.get(
            "agent_machine", f"{plan.node(e.source).host}.mcs.anl.gov"
        )
        for e in plan.edges_to(plan.entry, EdgeKind.REGISTRATION)
    ]
    manager = _rep_manager(agents)
    answer = manager.query_machine("lucky4.mcs.anl.gov")
    response = max(answer.estimated_size(), 512)
    stations = [
        Station("cpu", demand=mp.cpu_per_query, servers=p.testbed.lucky_cpus,
                monitored_cpu=mp.cpu_per_query, load_queue=True),
    ]
    pre, post, net = _wan_legs(mp.request_size, response, p)
    return ServiceModel(
        name=plan.name, stations=tuple(stations + net), pre_delay=pre, post_delay=post,
        conn=mp.conn_overhead, max_threads=mp.max_threads, backlog=mp.backlog,
        cpus=p.testbed.lucky_cpus, cpu_rate=p.testbed.lucky_cpu_rate,
        refusal_rtt=pre + p.testbed.wan_latency, response_bytes=response,
        notes="background agent advertising ignored (<0.3% host CPU)",
    )


def _registry_model(plan: DeploymentPlan, p: StudyParams) -> ServiceModel:
    from repro.rgma.producer import make_default_producers
    from repro.rgma.producer_servlet import ProducerServlet
    from repro.rgma.registry import Registry

    rp = p.registry
    ps_nodes = [e.source for e in plan.edges_to(plan.entry, EdgeKind.REGISTRATION)]
    registry = Registry("fidelity-model")
    for i, node in enumerate(ps_nodes or ["lucky3-ps"]):
        servlet = ProducerServlet(node)
        producers = make_default_producers(f"{node}.mcs.anl.gov", 10, seed=i)
        for producer in producers:
            servlet.attach(producer, registry, now=0.0, lease=1e9)
    regs = registry.lookup("cpuLoad", now=0.0)
    response = max(256, 128 * len(regs))
    stations = [
        Station("cpu", demand=rp.cpu_per_query, servers=p.testbed.lucky_cpus,
                monitored_cpu=rp.cpu_per_query, load_queue=True),
    ]
    lucky = plan.name.endswith("lucky")
    if lucky:
        pre, post, net = _lan_legs(rp.request_size, response, p)
        rtt_back = p.testbed.lan_latency
    else:
        pre, post, net = _wan_legs(rp.request_size, response, p)
        rtt_back = p.testbed.wan_latency
    return ServiceModel(
        name=plan.name, stations=tuple(stations + net), pre_delay=pre, post_delay=post,
        conn=rp.conn_overhead, max_threads=rp.max_threads, backlog=rp.backlog,
        cpus=p.testbed.lucky_cpus, cpu_rate=p.testbed.lucky_cpu_rate,
        refusal_rtt=pre + rtt_back, response_bytes=response,
    )


def _tree_shape(plan: DeploymentPlan) -> tuple[int, int, int, int]:
    """(depth, fanout, leaf_aggregates, interior_aggregates) of a tree plan.

    Walks one root-to-leaf path of the (complete, symmetric) tree that
    :func:`repro.core.topology.catalog.hierarchy_plan` builds; the leaf
    fan-out comes from the leaf's registration edges (a GRIS bank's
    replica count for MDS, one edge per Agent for Hawkeye).
    """
    children: dict[str, list[str]] = {}
    for edge in plan.edges:
        if edge.kind is EdgeKind.AGGREGATION:
            children.setdefault(edge.target, []).append(edge.source)
    depth = 1
    node = plan.entry
    fanout = 0
    while node in children:
        kids = children[node]
        fanout = fanout or len(kids)
        node = kids[0]
        depth += 1
    reg = plan.edges_to(node, EdgeKind.REGISTRATION)
    if reg:
        source = plan.node(reg[0].source)
        leaf_fanout = source.replicas if source.replicas > 1 else len(reg)
    else:
        leaf_fanout = max(fanout, 1)
    if fanout == 0:
        fanout = leaf_fanout
    leaf_aggs = fanout ** (depth - 1)
    interior = sum(fanout**level for level in range(1, depth - 1))
    return depth, fanout, leaf_aggs, interior


def _tree_model(plan: DeploymentPlan, p: StudyParams) -> ServiceModel:
    depth, fanout, leaf_aggs, interior = _tree_shape(plan)
    tb = p.testbed
    pool_cpus = 6 * tb.lucky_cpus  # hierarchy_plan places non-top nodes on 6 Luckys
    if plan.system is System.MDS:
        gp = p.giis
        _, leaf_result = _rep_giis_directory(fanout)
        leaf_bytes = max(leaf_result.estimated_size(),
                         len(leaf_result.entries) * gp.entry_wire_bytes)
        leaf_cost = gp.aggregate_cpu_coeff * (fanout ** gp.aggregate_cpu_exp)
        top_cost = gp.aggregate_cpu_coeff * (fanout ** gp.aggregate_cpu_exp)
        int_cost = top_cost
        leaf_servers = min(pool_cpus, max(1, leaf_aggs * tb.lucky_cpus))
        conn, threads, backlog = gp.conn_overhead, gp.max_threads, gp.backlog
        request = gp.request_size
    else:
        mp = p.manager
        leaf_cost = mp.cpu_per_query + mp.scan_cpu_per_ad * fanout
        top_cost = mp.cpu_per_query * max(1, fanout)
        int_cost = top_cost
        leaf_bytes = 512
        # Each leaf Manager serializes its scans on its collector lock,
        # so parallelism is min(leaves, pool CPUs).
        leaf_servers = min(pool_cpus, max(1, leaf_aggs))
        conn, threads, backlog = mp.conn_overhead, mp.max_threads, mp.backlog
        request = mp.request_size
    if depth == 1:
        # The "tree" is a single leaf aggregate on the top host.
        response = leaf_bytes
        stations = [
            Station("top-cpu", demand=leaf_cost, servers=tb.lucky_cpus,
                    monitored_cpu=leaf_cost, load_queue=True),
        ]
    else:
        response = leaf_aggs * leaf_bytes
        stations = [
            Station("top-cpu", demand=top_cost, servers=tb.lucky_cpus,
                    monitored_cpu=top_cost, load_queue=True),
            Station("lan", demand=2 * (depth - 1) * tb.lan_latency, servers=0),
            Station("leaves", demand=leaf_aggs * leaf_cost, servers=leaf_servers,
                    service=leaf_cost),
        ]
        if interior:
            stations.append(
                Station("interior", demand=interior * int_cost, servers=pool_cpus,
                        service=max(0, depth - 2) * int_cost)
            )
        # Child responses funnel through the top node's NIC while the
        # handler thread is held (the fan-out happens inside _serve).
        stations.append(
            Station("top-nic-in", demand=response / _NIC_RATE, servers=1)
        )
    pre, post, net = _wan_legs(request, response, p)
    return ServiceModel(
        name=plan.name, stations=tuple(stations + net), pre_delay=pre, post_delay=post,
        conn=conn, max_threads=threads, backlog=backlog,
        cpus=tb.lucky_cpus, cpu_rate=tb.lucky_cpu_rate,
        refusal_rtt=pre + tb.wan_latency, response_bytes=response,
        notes=f"tree depth={depth} fanout={fanout} leaves={leaf_aggs}",
    )


def model_for_plan(plan: DeploymentPlan, params: StudyParams | None = None) -> ServiceModel:
    """Build the fast-tier station model for a catalog plan.

    Covers every exp1/exp2/exp3 scenario and the hierarchy trees.
    Experiment-4 aggregate scenarios (serialized query-all with crash
    limits, wire advertising banks) raise :class:`FidelityError` — they
    need the exact tier.
    """
    p = params or default_params()
    entry = plan.node(plan.entry)
    if any(e.options.get("mode") == "wire" for e in plan.edges):
        raise FidelityError(
            f"plan {plan.name!r}: wire-advertising banks need the exact tier"
        )
    if plan.system is System.MDS:
        if entry.role is Role.INFORMATION_SERVER:
            return _gris_model(plan, p)
        if entry.role is Role.DIRECTORY_SERVER:
            return _giis_directory_model(plan, p)
        if entry.variant in ("fanout", "leaf"):
            return _tree_model(plan, p)
        raise FidelityError(
            f"plan {plan.name!r}: the exp4 GIIS aggregate (crash limits) "
            "needs the exact tier"
        )
    if plan.system is System.HAWKEYE:
        if entry.role is Role.INFORMATION_SERVER:
            return _agent_model(plan, p)
        if entry.role is Role.DIRECTORY_SERVER:
            return _manager_directory_model(plan, p)
        return _tree_model(plan, p)
    if entry.role is Role.DIRECTORY_SERVER:
        return _registry_model(plan, p)
    return _rgma_model(plan, p)


# -- mean-field solver -------------------------------------------------------


@dataclass(frozen=True)
class MeanFieldSolution:
    """The fixed point for one (model, population) coordinate."""

    throughput: float  # successful queries/s
    response: float  # mean seconds per successful query
    load1: float
    cpu_pct: float
    refusal_rate: float  # refused connections/s
    admitted: int  # population inside the service loop (<= users)
    in_flight: float  # mean concurrency inside the thread-slot window
    conn_delay: float
    queues: tuple[float, ...]  # mean queue length per station


def _amva(
    model: ServiceModel, n: float, think: float
) -> tuple[float, float, float, float, list[float]]:
    """Schweitzer AMVA over the station chain for population ``n``.

    Returns (X, R_total, R_in_server, conn_delay, queues).  Multi-server
    stations use the Seidmann reduction (queueing on demand/servers, the
    rest of the no-contention service as pure delay); the connection
    overhead is an inner fixed point on the in-server concurrency.
    """
    stations = model.stations
    q = [0.0] * len(stations)
    conn_delay = model.conn.latency(0) if model.conn else 0.0
    x = 0.0
    factor = (n - 1) / n if n > 0 else 0.0
    for _ in range(400):
        r_total = model.pre_delay + model.post_delay + conn_delay
        r_in = conn_delay
        r_each = []
        for i, st in enumerate(stations):
            scale = 1.0 + st.convoy * _convoy_queue(model, st, q[i])
            if st.servers == 0:
                r = st.base_service * scale
            else:
                per_server = st.demand * scale / st.servers
                r = st.base_service * scale + per_server * q[i] * factor
            r_each.append(r)
            r_total += r
            if st.in_server:
                r_in += r
        x_new = n / (think + r_total)
        x = x_new if x == 0.0 else 0.5 * x + 0.5 * x_new
        converged = True
        for i, st in enumerate(stations):
            # Clamp to the population: a closed network can never queue
            # more than N requests anywhere, and the convoy feedback
            # (hold grows with queue, queue grows with hold) would
            # otherwise diverge past saturation instead of pinning the
            # fixed point at the population limit.  The station queue of
            # a saturated in-server station deliberately stands in for
            # the accept-queue/backlog wait too (the closed-network
            # identity N = X*(R+Z) forces the waiting somewhere), which
            # is why it is NOT capped at max_threads — only the convoy
            # scale is (see _convoy_queue).
            q_new = min(x * r_each[i], float(n))
            if abs(q_new - q[i]) > 1e-9 * (1.0 + q[i]):
                converged = False
            q[i] = 0.5 * q[i] + 0.5 * q_new
        if model.conn is not None:
            # The exact engine charges latency(active) after the request
            # takes its slot: an arrival sees the others (arrival theorem
            # -> factor) plus itself.
            active = min(x * r_in * factor + 1.0, float(model.max_threads))
            new_delay = model.conn.latency(active)
            if abs(new_delay - conn_delay) > 1e-12:
                converged = False
            conn_delay = 0.5 * conn_delay + 0.5 * new_delay
        if converged:
            break
    r_total = model.pre_delay + model.post_delay + conn_delay
    r_in = conn_delay
    for i, st in enumerate(stations):
        scale = 1.0 + st.convoy * _convoy_queue(model, st, q[i])
        if st.servers == 0:
            r = st.base_service * scale
        else:
            per_server = st.demand * scale / st.servers
            r = st.base_service * scale + per_server * q[i] * factor
        r_total += r
        if st.in_server:
            r_in += r
    x = n / (think + r_total)
    return x, r_total, r_in, conn_delay, q


def _convoy_queue(model: ServiceModel, st: Station, q: float) -> float:
    """The queue length a serialized hold actually convoys behind.

    An in-server station is driven by at most ``max_threads`` handler
    threads, so even when the MVA station queue inflates past that (it
    absorbs the accept-queue wait at saturation), the convoy scale must
    only see the thread-pool's worth of contenders.
    """
    if st.in_server:
        return min(q, float(model.max_threads))
    return q


def solve_meanfield(
    model: ServiceModel,
    users: int,
    *,
    think: float | None = None,
    retry_wait: float = 1.0,
) -> MeanFieldSolution:
    """Solve the closed network; cap the admitted population at the
    accept-queue limit and convert the excess into a refusal rate."""
    if users < 1:
        raise FidelityError(f"population must be >= 1, got {users}")
    z = 1.0 if think is None else think
    threads = float(model.max_threads)
    admitted = users
    x, r_total, r_in, conn_delay, q = _amva(model, users, z)
    r_srv = r_in  # in-server residence while holding a handler thread
    if x * r_in > threads:
        # The handler pool binds first: a request holds its thread
        # through the connection-overhead sleep and every in-server
        # station, so sustained throughput caps at threads / residence.
        # Find the largest closed population whose in-server concurrency
        # fits the pool (continuous bisection: an integer population grid
        # is too coarse when x*r_in crosses the pool size steeply) ...
        lo, hi = 1.0, float(users)  # x*r_in(lo) <= threads < x*r_in(hi)
        for _ in range(60):
            if hi - lo <= 1e-3 * hi:
                break
            mid = 0.5 * (lo + hi)
            xm, _, rm, _, _ = _amva(model, mid, z)
            if xm * rm > threads:
                hi = mid
            else:
                lo = mid
        x, r_total, r_in, conn_delay, q = _amva(model, lo, z)
        admitted = int(round(lo))
        r_srv = r_in
        # ... then fill the accept queue (backlog) with the next waiting
        # clients — they add a Little's-law wait to the response time and
        # count toward the in-flight total the admission rule sees —
        # and only the population beyond *that* cycles through refusals.
        backlog_occ = min(float(users - admitted), float(model.backlog))
        if x > 0.0 and backlog_occ > 0.0:
            backlog_wait = backlog_occ / x
            r_total += backlog_wait
            r_in += backlog_wait
            admitted = min(users, admitted + int(round(backlog_occ)))
    refusal_cycle = retry_wait + model.refusal_rtt
    refusal_rate = (users - admitted) / refusal_cycle if admitted < users else 0.0
    # Runnable threads on the monitored host: requests queued for its
    # CPU count, but threads sleeping through the connection-overhead
    # phase do not (and backlog waiters are blocked, not runnable), so
    # apportion the occupied thread pool by time *not* spent in the
    # connection phase.
    occupancy = min(x * r_srv, threads)
    runnable_cap = occupancy * max(0.0, r_srv - conn_delay) / r_srv if r_srv > 0 else 0.0
    load1 = 0.0
    cpu_seconds = 0.0
    for i, st in enumerate(model.stations):
        cpu_seconds += st.monitored_cpu * (1.0 + st.convoy * q[i])
        if st.load_queue:
            load1 += min(q[i], runnable_cap)
        elif st.load_util:
            demand = st.demand * (1.0 + st.convoy * q[i])
            busy = min(float(st.servers or 1), x * demand)
            load1 += busy * st.load_util
    cpu_pct = 100.0 * min(1.0, x * cpu_seconds / (model.cpus * model.cpu_rate))
    return MeanFieldSolution(
        throughput=x,
        response=r_total,
        load1=load1,
        cpu_pct=cpu_pct,
        refusal_rate=refusal_rate,
        admitted=admitted,
        in_flight=x * r_in,
        conn_delay=conn_delay,
        queues=tuple(q),
    )


def load1_ramp(warmup: float, window: float) -> float:
    """Window-mean convergence factor of the 1-minute load EMA.

    The exact tier's load1 is a 60 s exponential moving average started
    at zero (:mod:`repro.sim.loadavg`), so a measurement window early in
    the run reads only a fraction of the steady-state run queue.  The
    fast tiers compute steady-state load and scale it by the mean of
    ``1 - exp(-t/60)`` over the window — ~0.55 for the default (20, 60)
    schedule, ~0.96 for the paper-faithful ``REPRO_FULL`` one.
    """
    if window <= 0.0:
        return 1.0
    period = 60.0
    return 1.0 - (period / window) * (
        math.exp(-warmup / period) - math.exp(-(warmup + window) / period)
    )


# -- the fast-tier entry point ----------------------------------------------


def fast_point(
    plan: DeploymentPlan,
    *,
    system: str,
    x: float,
    users: int,
    tier: str | None = None,
    params: StudyParams | None = None,
    seed: int = 1,
    warmup: float | None = None,
    window: float | None = None,
) -> PointResult:
    """One figure point on a fast fidelity tier.

    ``tier`` defaults to the plan entry node's ``fidelity`` field; the
    result carries the tier and population on
    :attr:`~repro.core.runner.PointResult.fidelity` /
    :attr:`~repro.core.runner.PointResult.population`.
    """
    p = params or default_params()
    tier = tier or tier_for_plan(plan)
    if tier not in FAST_TIERS:
        raise FidelityError(
            f"fast_point needs a fast tier {FAST_TIERS}, got {tier!r} "
            "(the exact tier runs through repro.core.runner.drive)"
        )
    default_warmup, default_window = measurement_window()
    warmup = default_warmup if warmup is None else warmup
    window = default_window if window is None else window
    model = model_for_plan(plan, p)
    wp = p.workload
    if tier == "meanfield":
        sol = solve_meanfield(model, users, think=wp.think_time, retry_wait=wp.retry_wait)
        completed = int(round(sol.throughput * window))
        summary = MetricsSummary(
            throughput=sol.throughput,
            response_time=sol.response,
            load1=sol.load1 * load1_ramp(warmup, window),
            cpu_load=sol.cpu_pct,
            completed=completed,
            refused=int(round(sol.refusal_rate * window)),
            timeouts=0,
            errors=0,
            window=window,
            latency_p50=sol.response,
            latency_p95=sol.response,
        )
        return PointResult(
            system=system, x=x, summary=summary, sim_events=0,
            fidelity=tier, population=users,
        )
    from repro.sim.cohort import CohortEngine

    engine = CohortEngine(model, users, workload=wp, seed=seed)
    summary = engine.run(warmup=warmup, window=window)
    return PointResult(
        system=system, x=x, summary=summary, sim_events=engine.events,
        fidelity=tier, population=users,
    )


def projected_exact_cost(wall_small: float, users_small: int, users_big: int) -> float:
    """Conservative projection of the exact tier's wall-clock at scale.

    Exact-DES work grows at least linearly with the client population
    (every client is a process; every request a handful of heap events),
    so scaling a measured small-N wall time linearly *underestimates*
    the true large-N cost — which makes speedup claims against it
    conservative.
    """
    if users_small <= 0 or wall_small <= 0:
        raise ValueError("need a positive small-N measurement")
    return wall_small * (users_big / users_small)


