"""The simulated Lucky/UC testbed (paper §3.1).

Seven dual-PIII Linux nodes (lucky0, lucky1, lucky3..lucky7 — there was
no lucky2) on a 100 Mbps LAN at Argonne, plus a 20-machine client
cluster at the University of Chicago reached over a WAN.
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass, field

from repro.core.params import TestbedParams

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator
    from repro.sim.host import Host
    from repro.sim.monitor import Ganglia
    from repro.sim.network import Network

__all__ = ["Testbed", "build_testbed", "LUCKY_NAMES"]

# lucky{0,1,3,...,7}: the paper's seven nodes (no lucky2).
LUCKY_NAMES = ("lucky0", "lucky1", "lucky3", "lucky4", "lucky5", "lucky6", "lucky7")


@dataclass
class Testbed:
    """Hosts, network and monitor of one experiment run."""

    sim: Simulator
    net: Network
    lucky: dict[str, Host] = field(default_factory=dict)
    uc: list[Host] = field(default_factory=list)
    monitor: Ganglia | None = None

    def host(self, name: str) -> Host:
        """Any testbed host by name (lucky nodes or ucNN clients)."""
        if name in self.lucky:
            return self.lucky[name]
        for client in self.uc:
            if client.name == name:
                return client
        raise KeyError(f"no testbed host named {name!r}")

    def all_hosts(self) -> list[Host]:
        return list(self.lucky.values()) + list(self.uc)


def build_testbed(
    sim: Simulator,
    params: TestbedParams,
    *,
    monitor_interval: float = 5.0,
    monitored: tuple[str, ...] | None = None,
) -> Testbed:
    """Construct the Lucky + UC topology inside ``sim``.

    ``monitored`` restricts Ganglia sampling to named hosts (sampling
    all 27 hosts is wasted work when one server is under study).
    """
    from repro.sim.host import Host
    from repro.sim.monitor import Ganglia
    from repro.sim.network import Network

    net = Network(sim, default_latency=params.lan_latency)
    net.set_latency("anl", "uc", params.wan_latency)
    net.add_shared_link("anl", "uc", params.wan_mbps)

    testbed = Testbed(sim=sim, net=net)
    for name in LUCKY_NAMES:
        testbed.lucky[name] = Host(
            sim,
            f"{name}.mcs.anl.gov",
            cpus=params.lucky_cpus,
            cpu_rate=params.lucky_cpu_rate,
            nic_mbps=params.lucky_nic_mbps,
            mem_mb=params.lucky_mem_mb,
            site="anl",
        )
    # Keep short aliases too: testbed.lucky["lucky3"].
    testbed.lucky = {name: testbed.lucky[name] for name in LUCKY_NAMES}
    for i in range(params.uc_client_machines):
        # Fifteen faster clients, five slower ones (paper §3.1).
        rate = params.uc_cpu_rate if i < 15 else params.uc_cpu_rate * 0.7
        testbed.uc.append(
            Host(
                sim,
                f"uc{i:02d}.cs.uchicago.edu",
                cpus=params.uc_cpus,
                cpu_rate=rate,
                nic_mbps=params.uc_nic_mbps,
                mem_mb=params.uc_mem_mb,
                site="uc",
            )
        )
    hosts = testbed.all_hosts()
    if monitored is not None:
        wanted = set(monitored)
        hosts = [h for h in hosts if h.name in wanted or h.name.split(".")[0] in wanted]
    testbed.monitor = Ganglia(sim, hosts, interval=monitor_interval)
    return testbed


def assign_users_to_clients(
    n_users: int, machines: list[Host], max_per_machine: int
) -> list[Host]:
    """Spread users over client machines as the study did (§3.1):
    "evenly divide the number of simulated users by the number of
    machines to balance the load, with a maximum of 50 users per
    machine"."""
    capacity = len(machines) * max_per_machine
    if n_users > capacity:
        raise ValueError(
            f"{n_users} users exceed client capacity {capacity} "
            f"({len(machines)} machines x {max_per_machine})"
        )
    return [machines[i % len(machines)] for i in range(n_users)]
