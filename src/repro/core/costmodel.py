"""Shared cost-model primitives for the service adapters.

Every system in the study serializes some back end — slapd's provider
execution, the ProducerServlet's buffer database, the Manager's
collector — and the paper's load1 *drop* past saturation falls out of
how that serialized hold is split between runnable CPU time and blocked
I/O time (DESIGN.md §2).  The split used to be re-implemented inside
each ``make_*_service`` factory; this module is the single home for it.

:class:`ConnectionOverhead` lives here too (it used to be defined in
:mod:`repro.sim.rpc`): it is pure arithmetic shared by *both* runtimes
— the DES charges it as a simulated delay, the live asyncio plane
(:mod:`repro.live`) sleeps it for real — so it must not drag the
simulator into the import graph of the runtime-agnostic kernels.
This module imports nothing from :mod:`repro.sim` at runtime.
"""

from __future__ import annotations

import math
import typing as _t
from dataclasses import dataclass

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator
    from repro.sim.host import Host
    from repro.sim.resources import Mutex

__all__ = ["ConnectionOverhead", "busy_split", "held"]


@dataclass(frozen=True)
class ConnectionOverhead:
    """Concurrency-dependent per-request latency ``L(c)``.

    ``L(c) = base + extra * (1 - exp(-c / scale))`` where ``c`` is the
    number of connections open at the server when the request is
    admitted.  This phenomenological stand-in for connection management
    plus GSI-handshake cost reproduces the GRIS-cache response plateau
    (~4 s for >=50 users, Figure 6) while remaining sub-second at 10
    users (Figure 14).  See DESIGN.md §2.
    """

    base: float = 0.0
    extra: float = 0.0
    scale: float = 20.0

    def latency(self, connections: int) -> float:
        """Latency charged to a request admitted with ``connections`` open."""
        if self.extra == 0.0:
            return self.base
        return self.base + self.extra * (1.0 - math.exp(-connections / self.scale))


def busy_split(
    sim: "Simulator", host: "Host", hold: float, cpu_fraction: float
) -> _t.Generator:
    """Spend ``hold`` seconds, ``cpu_fraction`` of it runnable on ``host``.

    The CPU part shows up in the host's run queue (load1, CPU load); the
    remainder is blocked I/O — the process sleeps, exactly like a slapd
    worker waiting on disk.
    """
    cpu_part = hold * cpu_fraction
    io_part = hold - cpu_part
    if cpu_part > 0:
        yield host.compute(cpu_part)
    if io_part > 0:
        yield sim.timeout(io_part)


def held(
    sim: "Simulator", host: "Host", mutex: "Mutex", hold: float, cpu_fraction: float
) -> _t.Generator:
    """Hold ``mutex`` for ``hold`` seconds, part CPU, part blocked I/O."""
    yield mutex.acquire()
    try:
        yield from busy_split(sim, host, hold, cpu_fraction)
    finally:
        mutex.release()
