"""Shared cost-model primitives for the service adapters.

Every system in the study serializes some back end — slapd's provider
execution, the ProducerServlet's buffer database, the Manager's
collector — and the paper's load1 *drop* past saturation falls out of
how that serialized hold is split between runnable CPU time and blocked
I/O time (DESIGN.md §2).  The split used to be re-implemented inside
each ``make_*_service`` factory; this module is the single home for it.
"""

from __future__ import annotations

import typing as _t

from repro.sim.engine import Simulator
from repro.sim.host import Host
from repro.sim.resources import Mutex

__all__ = ["busy_split", "held"]


def busy_split(
    sim: Simulator, host: Host, hold: float, cpu_fraction: float
) -> _t.Generator:
    """Spend ``hold`` seconds, ``cpu_fraction`` of it runnable on ``host``.

    The CPU part shows up in the host's run queue (load1, CPU load); the
    remainder is blocked I/O — the process sleeps, exactly like a slapd
    worker waiting on disk.
    """
    cpu_part = hold * cpu_fraction
    io_part = hold - cpu_part
    if cpu_part > 0:
        yield host.compute(cpu_part)
    if io_part > 0:
        yield sim.timeout(io_part)


def held(
    sim: Simulator, host: Host, mutex: Mutex, hold: float, cpu_fraction: float
) -> _t.Generator:
    """Hold ``mutex`` for ``hold`` seconds, part CPU, part blocked I/O."""
    yield mutex.acquire()
    try:
        yield from busy_split(sim, host, hold, cpu_fraction)
    finally:
        mutex.release()
