"""The study harness — the paper's primary contribution, reproduced.

``repro.core`` turns the three functional systems plus the simulated
testbed into the benchmark methodology of the paper:

* :mod:`repro.core.components` — Table 1's component/role mapping;
* :mod:`repro.core.params` — calibrated cost models (see DESIGN.md §2);
* :mod:`repro.core.testbed` — the Lucky/UC topology;
* :mod:`repro.core.workload` — blocking closed-loop users, 1 s waits;
* :mod:`repro.core.metrics` — throughput/response/load/load1 estimators;
* :mod:`repro.core.kernels` — runtime-agnostic service kernels;
* :mod:`repro.core.services` — kernels bound to the simulated runtime;
* :mod:`repro.core.runner` — per-point orchestration;
* :mod:`repro.core.experiments` — the four experiment sets (§3.3-§3.6);
* :mod:`repro.core.figures` — Figures 5-20 registry and CLI;
* :mod:`repro.core.results` — series/figure containers and renderers.

The re-exports below resolve lazily (PEP 562) so that sim-free modules
— :mod:`repro.core.kernels` and the live plane built on them — can be
imported without dragging the discrete-event simulator along.
"""

import importlib

_LAZY = {
    "Role": "repro.core.components",
    "System": "repro.core.components",
    "COMPONENT_MAPPING": "repro.core.components",
    "component_for": "repro.core.components",
    "StudyParams": "repro.core.params",
    "default_params": "repro.core.params",
    "measurement_window": "repro.core.params",
    "Testbed": "repro.core.testbed",
    "build_testbed": "repro.core.testbed",
    "LUCKY_NAMES": "repro.core.testbed",
    "RequestLog": "repro.core.metrics",
    "MetricsSummary": "repro.core.metrics",
    "summarize": "repro.core.metrics",
    "ScenarioRun": "repro.core.runner",
    "PointResult": "repro.core.runner",
    "new_run": "repro.core.runner",
    "drive": "repro.core.runner",
    "Figure": "repro.core.results",
    "Series": "repro.core.results",
    "ReplicateStat": "repro.core.replication",
    "replicate_point": "repro.core.replication",
    "summarize_replicates": "repro.core.replication",
}

__all__ = list(_LAZY)


def __getattr__(name: str):
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    value = getattr(importlib.import_module(module), name)
    globals()[name] = value
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_LAZY))
