"""The study harness — the paper's primary contribution, reproduced.

``repro.core`` turns the three functional systems plus the simulated
testbed into the benchmark methodology of the paper:

* :mod:`repro.core.components` — Table 1's component/role mapping;
* :mod:`repro.core.params` — calibrated cost models (see DESIGN.md §2);
* :mod:`repro.core.testbed` — the Lucky/UC topology;
* :mod:`repro.core.workload` — blocking closed-loop users, 1 s waits;
* :mod:`repro.core.metrics` — throughput/response/load/load1 estimators;
* :mod:`repro.core.services` — each component as a simulated service;
* :mod:`repro.core.runner` — per-point orchestration;
* :mod:`repro.core.experiments` — the four experiment sets (§3.3-§3.6);
* :mod:`repro.core.figures` — Figures 5-20 registry and CLI;
* :mod:`repro.core.results` — series/figure containers and renderers.
"""

from repro.core.components import COMPONENT_MAPPING, Role, System, component_for
from repro.core.metrics import MetricsSummary, RequestLog, summarize
from repro.core.params import StudyParams, default_params, measurement_window
from repro.core.replication import ReplicateStat, replicate_point, summarize_replicates
from repro.core.results import Figure, Series
from repro.core.runner import PointResult, ScenarioRun, drive, new_run
from repro.core.testbed import LUCKY_NAMES, Testbed, build_testbed

__all__ = [
    "Role",
    "System",
    "COMPONENT_MAPPING",
    "component_for",
    "StudyParams",
    "default_params",
    "measurement_window",
    "Testbed",
    "build_testbed",
    "LUCKY_NAMES",
    "RequestLog",
    "MetricsSummary",
    "summarize",
    "ScenarioRun",
    "PointResult",
    "new_run",
    "drive",
    "Figure",
    "Series",
    "ReplicateStat",
    "replicate_point",
    "summarize_replicates",
]
