"""Table 1 of the paper: the cross-system component mapping.

To compare three differently-shaped systems, the paper maps their parts
onto four functional roles:

====================  ====================  ================  =========
Role                  MDS                   R-GMA             Hawkeye
====================  ====================  ================  =========
Information Collector Information Provider  Producer          Module
Information Server    GRIS                  ProducerServlet   Agent
Aggregate Info Server GIIS                  (none)            Manager
Directory Server      GIIS                  Registry          Manager
====================  ====================  ================  =========

This module encodes that mapping as data plus the role protocols the
experiment harness programs against.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["Role", "System", "COMPONENT_MAPPING", "component_for", "roles_of"]


class Role(enum.Enum):
    """The four functional roles of Table 1."""

    INFORMATION_COLLECTOR = "information collector"
    INFORMATION_SERVER = "information server"
    AGGREGATE_INFORMATION_SERVER = "aggregate information server"
    DIRECTORY_SERVER = "directory server"


class System(enum.Enum):
    """The three monitoring and information services under study."""

    MDS = "MDS"
    RGMA = "R-GMA"
    HAWKEYE = "Hawkeye"


@dataclass(frozen=True)
class ComponentEntry:
    """One cell of Table 1."""

    system: System
    role: Role
    component: str | None  # None where the system has no such component


COMPONENT_MAPPING: tuple[ComponentEntry, ...] = (
    ComponentEntry(System.MDS, Role.INFORMATION_COLLECTOR, "Information Provider"),
    ComponentEntry(System.MDS, Role.INFORMATION_SERVER, "GRIS"),
    ComponentEntry(System.MDS, Role.AGGREGATE_INFORMATION_SERVER, "GIIS"),
    ComponentEntry(System.MDS, Role.DIRECTORY_SERVER, "GIIS"),
    ComponentEntry(System.RGMA, Role.INFORMATION_COLLECTOR, "Producer"),
    ComponentEntry(System.RGMA, Role.INFORMATION_SERVER, "ProducerServlet"),
    ComponentEntry(System.RGMA, Role.AGGREGATE_INFORMATION_SERVER, None),
    ComponentEntry(System.RGMA, Role.DIRECTORY_SERVER, "Registry"),
    ComponentEntry(System.HAWKEYE, Role.INFORMATION_COLLECTOR, "Module"),
    ComponentEntry(System.HAWKEYE, Role.INFORMATION_SERVER, "Agent"),
    ComponentEntry(System.HAWKEYE, Role.AGGREGATE_INFORMATION_SERVER, "Manager"),
    ComponentEntry(System.HAWKEYE, Role.DIRECTORY_SERVER, "Manager"),
)


def component_for(system: System, role: Role) -> str | None:
    """Table-1 lookup: which component plays ``role`` in ``system``."""
    for entry in COMPONENT_MAPPING:
        if entry.system is system and entry.role is role:
            return entry.component
    raise KeyError((system, role))  # pragma: no cover - mapping is total


def roles_of(system: System, component: str) -> list[Role]:
    """Reverse lookup: the roles a named component plays (GIIS plays two)."""
    return [
        entry.role
        for entry in COMPONENT_MAPPING
        if entry.system is system and entry.component == component
    ]


def render_table1() -> str:
    """Render Table 1 as aligned text (used by docs and the CLI)."""
    systems = [System.MDS, System.RGMA, System.HAWKEYE]
    header = ["Role".ljust(30)] + [s.value.ljust(20) for s in systems]
    lines = ["".join(header)]
    lines.append("-" * len(lines[0]))
    for role in Role:
        cells = [role.value.title().ljust(30)]
        for system in systems:
            cells.append(str(component_for(system, role) or "None").ljust(20))
        lines.append("".join(cells))
    return "\n".join(lines)
