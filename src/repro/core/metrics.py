"""Performance metrics (paper §3.2).

* **throughput** — "the average number of requests (or queries)
  processed by a service component per second";
* **response time** — "the average amount of time (in seconds) required
  for a service component to handle a request sent from a user";
* **load** — percent CPU in user+system mode (from the Ganglia monitor);
* **load1** — the one-minute load average.

:class:`RequestLog` accumulates per-request records during a run;
:func:`summarize` reduces the measurement window to one
:class:`MetricsSummary`, averaging "over all the values recorded during
the time span" exactly as the paper does.
"""

from __future__ import annotations

import math
import typing as _t
from dataclasses import dataclass, field

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.sim.faults import Outage
    from repro.sim.host import Host
    from repro.sim.monitor import Ganglia
    from repro.sim.rpc import RetryStats

__all__ = [
    "RequestRecord",
    "RequestLog",
    "MetricsSummary",
    "StreamingLatency",
    "bucket_rates",
    "summarize",
    "ResilienceSummary",
    "resilience_summary",
]

OUTCOME_OK = "ok"
OUTCOME_REFUSED = "refused"
OUTCOME_TIMEOUT = "timeout"
OUTCOME_ERROR = "error"


@dataclass(frozen=True)
class RequestRecord:
    """One client-observed request."""

    user: int
    started: float
    finished: float
    outcome: str

    @property
    def duration(self) -> float:
        return self.finished - self.started


@dataclass
class RequestLog:
    """Append-only log of request records for one run."""

    records: list[RequestRecord] = field(default_factory=list)

    def add(self, user: int, started: float, finished: float, outcome: str) -> None:
        self.records.append(RequestRecord(user, started, finished, outcome))

    def in_window(self, start: float, end: float) -> list[RequestRecord]:
        """Records *completing* inside [start, end]."""
        return [r for r in self.records if start <= r.finished <= end]

    def count(self, outcome: str) -> int:
        return sum(1 for r in self.records if r.outcome == outcome)


class StreamingLatency:
    """Streaming percentile accumulator over a log-spaced histogram.

    Latencies are folded in one at a time — O(1) per observation, fixed
    memory — instead of appending to a list that must be sorted at
    reduction time.  Quantiles come from the cumulative histogram with
    geometric interpolation inside the hit bucket; exact ``min``/``max``
    tighten the extreme quantiles.  The default range (100 µs .. 10 ks,
    512 buckets) spans everything the study produces at ~3.6% relative
    resolution per bucket, which is far below run-to-run noise.
    """

    __slots__ = ("lo", "hi", "counts", "count", "total", "min", "max", "_log_lo", "_inv_width")

    def __init__(self, lo: float = 1e-4, hi: float = 1e4, buckets: int = 512) -> None:
        if not (0 < lo < hi) or buckets < 2:
            raise ValueError(f"bad histogram shape: lo={lo} hi={hi} buckets={buckets}")
        self.lo = lo
        self.hi = hi
        self.counts = [0] * buckets
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = 0.0
        self._log_lo = math.log(lo)
        self._inv_width = buckets / (math.log(hi) - self._log_lo)

    def add(self, value: float) -> None:
        """Fold one latency observation into the histogram."""
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value <= self.lo:
            index = 0
        else:
            index = int((math.log(value) - self._log_lo) * self._inv_width)
            last = len(self.counts) - 1
            if index > last:
                index = last
        self.counts[index] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (0 <= q <= 1) of the observations."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for index, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            seen += bucket_count
            if seen >= rank:
                # Geometric midpoint-ish interpolation inside the bucket,
                # clamped to the exact observed extremes.
                edge = 1.0 / self._inv_width
                low = math.exp(self._log_lo + index * edge)
                high = math.exp(self._log_lo + (index + 1) * edge)
                fraction = 1.0 - (seen - rank) / bucket_count
                estimate = low * (high / low) ** fraction
                return min(max(estimate, self.min), self.max)
        return self.max

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p95(self) -> float:
        return self.quantile(0.95)


@dataclass(frozen=True)
class MetricsSummary:
    """The four figures' worth of numbers for one experiment point."""

    throughput: float  # successful queries per second
    response_time: float  # mean seconds per successful query
    load1: float  # server host one-minute load average
    cpu_load: float  # server host CPU percent
    completed: int
    refused: int
    timeouts: int
    errors: int
    window: float
    # Streaming-histogram latency percentiles over successful queries in
    # the window.  Not part of any paper figure (tables stay byte-for-
    # byte); recorded for the machine-readable benchmark side-channel.
    latency_p50: float = 0.0
    latency_p95: float = 0.0


@dataclass(frozen=True)
class ResilienceSummary:
    """Fault-experiment metrics reported alongside the paper's four.

    * **goodput** — successful queries per second over the whole
      measurement window, outage included (unlike ``throughput``, which
      the paper computes over a healthy window);
    * **retry amplification** — wire attempts per logical request; the
      retry storm a fault provokes, and what the circuit breaker caps;
    * **recovery_time** — seconds after the last injected restart until
      the per-second success rate is back to ``recovery_fraction`` of
      its pre-fault level (None when it never recovers, 0.0 when the
      dip never reached the threshold).
    """

    goodput: float
    pre_outage_rate: float  # successful q/s before the first outage
    during_outage_rate: float  # successful q/s inside outage windows
    post_outage_rate: float  # successful q/s after the last restart
    recovery_time: float | None
    downtime: float  # injected outage seconds inside the window
    logical_calls: int
    attempts: int
    retries: int
    exhausted: int
    breaker_rejections: int
    backoff_time: float

    @property
    def retry_amplification(self) -> float:
        return self.attempts / self.logical_calls if self.logical_calls else 0.0


def bucket_rates(
    records: _t.Sequence[RequestRecord], start: float, end: float, bucket: float
) -> list[float]:
    """Successful completions per second, bucketed over [start, end).

    This is the metric stream the adaptive measurement mode feeds to
    :func:`repro.core.stats.detect_steady_state` (and what
    :func:`resilience_summary` computes recovery over).
    """
    n = max(1, int((end - start) / bucket + 0.5))
    counts = [0] * n
    for r in records:
        if r.outcome == OUTCOME_OK and start <= r.finished < end:
            counts[min(n - 1, int((r.finished - start) / bucket))] += 1
    return [c / bucket for c in counts]


def resilience_summary(
    log: RequestLog,
    *,
    window_start: float,
    window_end: float,
    outages: _t.Sequence[Outage] = (),
    retry_stats: RetryStats | None = None,
    bucket: float = 1.0,
    recovery_fraction: float = 0.8,
    smoothing: int = 5,
) -> ResilienceSummary:
    """Reduce one faulted run to goodput / amplification / recovery.

    The rates are computed from 1 s success buckets; recovery is the
    first time after the last restart when the ``smoothing``-bucket
    rolling mean regains ``recovery_fraction`` of the pre-outage rate.
    """
    window = window_end - window_start
    if window <= 0:
        raise ValueError(f"empty measurement window [{window_start}, {window_end}]")
    records = log.in_window(window_start, window_end)
    successes = [r for r in records if r.outcome == OUTCOME_OK]
    goodput = len(successes) / window

    first_down = min((o.start for o in outages), default=window_end)
    last_up = max((o.end for o in outages), default=window_start)
    downtime = sum(
        max(0.0, min(o.end, window_end) - max(o.start, window_start)) for o in outages
    )

    def rate(span_start: float, span_end: float) -> float:
        span = span_end - span_start
        if span <= 0:
            return 0.0
        return sum(1 for r in successes if span_start <= r.finished < span_end) / span

    pre = rate(window_start, min(first_down, window_end))
    during = (
        sum(1 for r in successes if any(o.start <= r.finished < o.end for o in outages))
        / downtime
        if downtime > 0
        else 0.0
    )
    post = rate(max(last_up, window_start), window_end)

    recovery: float | None
    if not outages:
        recovery = 0.0
    else:
        recovery = None
        rates = bucket_rates(successes, window_start, window_end, bucket)
        threshold = recovery_fraction * pre
        from_bucket = max(0, int((last_up - window_start) / bucket))
        for i in range(from_bucket, len(rates)):
            lo = max(0, i - smoothing + 1)
            rolling = sum(rates[lo : i + 1]) / (i + 1 - lo)
            if rolling >= threshold:
                recovery = max(0.0, (window_start + (i + 1) * bucket) - last_up)
                break

    from repro.sim.rpc import RetryStats  # runtime-only: module stays sim-free at import

    rs = retry_stats or RetryStats()
    return ResilienceSummary(
        goodput=goodput,
        pre_outage_rate=pre,
        during_outage_rate=during,
        post_outage_rate=post,
        recovery_time=recovery,
        downtime=downtime,
        logical_calls=rs.calls,
        attempts=rs.attempts,
        retries=rs.retries,
        exhausted=rs.exhausted,
        breaker_rejections=rs.breaker_rejections,
        backoff_time=rs.backoff_time,
    )


def summarize(
    log: RequestLog,
    monitor: Ganglia,
    server_host: Host,
    window_start: float,
    window_end: float,
) -> MetricsSummary:
    """Reduce one run's raw records to the paper's reported metrics."""
    window = window_end - window_start
    if window <= 0:
        raise ValueError(f"empty measurement window [{window_start}, {window_end}]")
    in_window = log.in_window(window_start, window_end)
    successes = [r for r in in_window if r.outcome == OUTCOME_OK]
    throughput = len(successes) / window
    response = (
        sum(r.duration for r in successes) / len(successes) if successes else 0.0
    )
    latency = StreamingLatency()
    for r in successes:
        latency.add(r.duration)
    cpu_load, load1 = monitor.window_average(server_host, window_start, window_end)
    return MetricsSummary(
        throughput=throughput,
        response_time=response,
        load1=load1,
        cpu_load=cpu_load,
        completed=len(successes),
        refused=sum(1 for r in in_window if r.outcome == OUTCOME_REFUSED),
        timeouts=sum(1 for r in in_window if r.outcome == OUTCOME_TIMEOUT),
        errors=sum(1 for r in in_window if r.outcome == OUTCOME_ERROR),
        window=window,
        latency_p50=latency.p50,
        latency_p95=latency.p95,
    )
