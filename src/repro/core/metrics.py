"""Performance metrics (paper §3.2).

* **throughput** — "the average number of requests (or queries)
  processed by a service component per second";
* **response time** — "the average amount of time (in seconds) required
  for a service component to handle a request sent from a user";
* **load** — percent CPU in user+system mode (from the Ganglia monitor);
* **load1** — the one-minute load average.

:class:`RequestLog` accumulates per-request records during a run;
:func:`summarize` reduces the measurement window to one
:class:`MetricsSummary`, averaging "over all the values recorded during
the time span" exactly as the paper does.
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass, field

from repro.sim.host import Host
from repro.sim.monitor import Ganglia

__all__ = ["RequestRecord", "RequestLog", "MetricsSummary", "summarize"]

OUTCOME_OK = "ok"
OUTCOME_REFUSED = "refused"
OUTCOME_TIMEOUT = "timeout"
OUTCOME_ERROR = "error"


@dataclass(frozen=True)
class RequestRecord:
    """One client-observed request."""

    user: int
    started: float
    finished: float
    outcome: str

    @property
    def duration(self) -> float:
        return self.finished - self.started


@dataclass
class RequestLog:
    """Append-only log of request records for one run."""

    records: list[RequestRecord] = field(default_factory=list)

    def add(self, user: int, started: float, finished: float, outcome: str) -> None:
        self.records.append(RequestRecord(user, started, finished, outcome))

    def in_window(self, start: float, end: float) -> list[RequestRecord]:
        """Records *completing* inside [start, end]."""
        return [r for r in self.records if start <= r.finished <= end]

    def count(self, outcome: str) -> int:
        return sum(1 for r in self.records if r.outcome == outcome)


@dataclass(frozen=True)
class MetricsSummary:
    """The four figures' worth of numbers for one experiment point."""

    throughput: float  # successful queries per second
    response_time: float  # mean seconds per successful query
    load1: float  # server host one-minute load average
    cpu_load: float  # server host CPU percent
    completed: int
    refused: int
    timeouts: int
    errors: int
    window: float


def summarize(
    log: RequestLog,
    monitor: Ganglia,
    server_host: Host,
    window_start: float,
    window_end: float,
) -> MetricsSummary:
    """Reduce one run's raw records to the paper's reported metrics."""
    window = window_end - window_start
    if window <= 0:
        raise ValueError(f"empty measurement window [{window_start}, {window_end}]")
    in_window = log.in_window(window_start, window_end)
    successes = [r for r in in_window if r.outcome == OUTCOME_OK]
    throughput = len(successes) / window
    response = (
        sum(r.duration for r in successes) / len(successes) if successes else 0.0
    )
    cpu_load, load1 = monitor.window_average(server_host, window_start, window_end)
    return MetricsSummary(
        throughput=throughput,
        response_time=response,
        load1=load1,
        cpu_load=cpu_load,
        completed=len(successes),
        refused=sum(1 for r in in_window if r.outcome == OUTCOME_REFUSED),
        timeouts=sum(1 for r in in_window if r.outcome == OUTCOME_TIMEOUT),
        errors=sum(1 for r in in_window if r.outcome == OUTCOME_ERROR),
        window=window,
    )
