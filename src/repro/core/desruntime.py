"""The DES runtime: kernels interpreted as simulator events.

:func:`kernel_service` wraps a :class:`~repro.core.kernels.ops.KernelSpec`
in a :class:`~repro.sim.rpc.Service` whose handler *interprets* the
kernel's op stream — each op maps onto exactly the simulator yields the
pre-kernel inline handlers performed, so a kernelized service is
event-for-event identical to its ancestor (the topology equivalence and
figure-pinning tests enforce this byte-identity).

Two properties of the interpreter are load-bearing:

* pure reads (``CLOCK``, ``QueueDepth``) create *no* simulator events —
  they answer from ``sim.now`` / ``lock.queue_length`` synchronously;
* exceptions raised while executing an op (refusals, timeouts, crash
  injection arriving at a yield) are thrown *into* the kernel generator
  so its ``try/finally`` blocks run.  Kernel finallys only ever yield
  :class:`~repro.core.kernels.ops.Release`, which executes without
  yielding to the simulator — that keeps cleanup legal even when the
  delivered exception is ``GeneratorExit``.
"""

from __future__ import annotations

import typing as _t

from repro.core.costmodel import busy_split, held
from repro.core.kernels.ops import (
    OP_ACQUIRE,
    OP_BUSY,
    OP_CALL,
    OP_CLOCK,
    OP_COMPUTE,
    OP_CRASH,
    OP_FANOUT,
    OP_HELD,
    OP_QUEUE_DEPTH,
    OP_RELEASE,
    KernelSpec,
)
from repro.errors import ServiceCrashError
from repro.sim.rpc import Response, Service, call

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator
    from repro.sim.host import Host
    from repro.sim.network import Network

__all__ = ["kernel_service"]


def kernel_service(
    sim: "Simulator", net: "Network", host: "Host", spec: KernelSpec
) -> Service:
    """Host ``spec``'s kernel as a simulated network service."""
    handle = spec.handle

    def sub_call(target: _t.Any, payload: _t.Any, size: int) -> _t.Generator:
        value = yield from call(sim, net, host, target, payload, size=size)
        return value

    def handler(service: Service, request: _t.Any) -> _t.Generator:
        gen = handle(request.payload)
        try:
            op = gen.send(None)
        except StopIteration as stop:
            kr = stop.value
            return Response(value=kr.value, size=kr.size)
        while True:
            value: _t.Any = None
            try:
                tag = op.tag
                if tag == OP_COMPUTE:
                    yield host.compute(op.seconds)
                elif tag == OP_CLOCK:
                    value = sim.now
                elif tag == OP_HELD:
                    yield from held(sim, host, op.lock, op.hold, op.cpu_fraction)
                elif tag == OP_QUEUE_DEPTH:
                    value = op.lock.queue_length
                elif tag == OP_ACQUIRE:
                    yield op.lock.acquire()
                elif tag == OP_RELEASE:
                    op.lock.release()
                elif tag == OP_BUSY:
                    yield from busy_split(sim, host, op.hold, op.cpu_fraction)
                elif tag == OP_CALL:
                    value = yield from call(
                        sim, net, host, op.target, op.payload, size=op.size, retry=op.retry
                    )
                elif tag == OP_FANOUT:
                    workers = [
                        sim.spawn(
                            sub_call(target, op.payload, op.size),
                            name=f"fan:{target.name}",
                        )
                        for target in op.targets
                    ]
                    yield sim.all_of(workers)
                    value = [(w.ok, w.value) for w in workers]
                elif tag == OP_CRASH:
                    service.crash(op.reason)
                    raise ServiceCrashError(op.message)
                else:  # pragma: no cover - kernels only yield known ops
                    raise TypeError(f"unknown kernel op {op!r}")
            except BaseException as exc:
                # Run the kernel's finallys; a cleanup op (Release) may
                # come back, in which case the loop executes it and the
                # original exception resumes at the next send().
                try:
                    op = gen.throw(exc)
                except StopIteration as stop:
                    kr = stop.value
                    return Response(value=kr.value, size=kr.size)
                continue
            try:
                op = gen.send(value)
            except StopIteration as stop:
                kr = stop.value
                return Response(value=kr.value, size=kr.size)

    return Service(
        sim,
        net,
        host,
        spec.name,
        handler,
        max_threads=spec.max_threads,
        backlog=spec.backlog,
        conn_overhead=spec.conn_overhead,
    )
