"""Experiment orchestration: build a scenario, run it, reduce to metrics.

One :class:`ScenarioRun` couples a simulator, the Lucky/UC testbed, the
service under study and its workload.  :func:`drive` runs the
measurement schedule the paper used — warm-up, then a measurement
window whose completions and Ganglia samples are averaged — and returns
a :class:`PointResult` for one (system, x) coordinate of a figure.

Two measurement modes:

* **exact** (default) — the paper's fixed warm-up + window, byte-for-
  byte identical to every committed figure table;
* **adaptive** (``adaptive=`` truthy) — the same simulated horizon, but
  the measurement window is *detected* from the run's own completion
  stream via changepoint analysis (:mod:`repro.core.stats`): the
  longest stable regime becomes the window, cutting warm-up ramp and
  edge effects without a hard-coded warm-up guess.  The detected
  boundaries travel on :attr:`PointResult.steady_state`.
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass, field

from repro.core.metrics import (
    MetricsSummary,
    RequestLog,
    ResilienceSummary,
    bucket_rates,
    resilience_summary,
    summarize,
)
from repro.core.stats import (
    AdaptiveConfig,
    ReplicationInfo,
    SteadyStateInfo,
    detect_steady_state,
)
from repro.core.params import StudyParams, WorkloadParams, default_params, measurement_window
from repro.core.testbed import Testbed, build_testbed
from repro.core.workload import spawn_users
from repro.sim.engine import Simulator
from repro.sim.faults import FaultPlan, install_faults
from repro.sim.host import Host
from repro.sim.network import Network
from repro.sim.randomness import RngHub
from repro.sim.rpc import RetryPolicy, Service

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.core.scenario.model import Scenario

__all__ = ["ScenarioRun", "PointResult", "new_run", "drive"]


@dataclass
class ScenarioRun:
    """Everything assembled for one experiment point."""

    sim: Simulator
    testbed: Testbed
    params: StudyParams
    rng: RngHub
    log: RequestLog = field(default_factory=RequestLog)
    services: dict[str, Service] = field(default_factory=dict)

    @property
    def net(self) -> Network:
        return self.testbed.net


@dataclass(frozen=True)
class PointResult:
    """One (system, x) coordinate of a figure, plus run diagnostics."""

    system: str
    x: float
    summary: MetricsSummary
    crashed: bool = False
    crash_reason: str | None = None
    sim_events: int = 0
    # Populated only for runs driven with a RetryPolicy or FaultPlan.
    resilience: ResilienceSummary | None = None
    # Populated only by the adaptive measurement mode: the detected
    # steady-state window of this run, and — once replications have
    # been reduced (experiments/common.py) — the CI across them.
    steady_state: SteadyStateInfo | None = None
    ci: ReplicationInfo | None = None
    # Simulation fidelity tier that produced this point ("exact" is the
    # per-client DES; fast tiers live in repro.core.fidelity) and the
    # client population it modelled (0 = same as the sweep's x value).
    fidelity: str = "exact"
    population: int = 0

    # Figure-series accessors (Figures 5-20 plot these four metrics).
    @property
    def throughput(self) -> float:
        return self.summary.throughput

    @property
    def response_time(self) -> float:
        return self.summary.response_time

    @property
    def load1(self) -> float:
        return self.summary.load1

    @property
    def cpu_load(self) -> float:
        return self.summary.cpu_load


def new_run(
    seed: int,
    params: StudyParams | None = None,
    *,
    monitored: tuple[str, ...] | None = None,
) -> ScenarioRun:
    """Fresh simulator + testbed for one experiment point."""
    params = params or default_params()
    sim = Simulator()
    testbed = build_testbed(sim, params.testbed, monitored=monitored)
    return ScenarioRun(sim=sim, testbed=testbed, params=params, rng=RngHub(seed))


def drive(
    run: ScenarioRun,
    *,
    system: str,
    x: float,
    service: Service,
    clients: _t.Sequence[Host],
    server_host: Host,
    payload_fn: _t.Callable[[int], _t.Any],
    request_size: int,
    services_by_user: _t.Sequence[Service] | None = None,
    workload: WorkloadParams | None = None,
    warmup: float | None = None,
    window: float | None = None,
    retry: RetryPolicy | None = None,
    faults: FaultPlan | None = None,
    fault_services: _t.Sequence[Service] | None = None,
    adaptive: AdaptiveConfig | bool | None = None,
    scenario: "Scenario | None" = None,
) -> PointResult:
    """Run the workload and reduce the window to one figure point.

    ``retry`` gives every user process client-side resilience;
    ``faults`` installs a :class:`FaultPlan` on ``fault_services``
    (defaulting to the anchor ``service``) before the run.  When either
    is present the result carries a :class:`ResilienceSummary`.

    ``scenario`` applies the workload-side generative models: arrival
    modulation scales every user's think time over simulated time, and a
    client mix splits the population across think patterns (group 0
    draws from the exact stream a scenario-free run uses, so an empty
    scenario reproduces it byte-for-byte).  Churn and WAN weather are
    environment models — install them with
    :func:`repro.core.scenario.apply.apply_scenario` before calling.

    A truthy ``adaptive`` (``True`` or an
    :class:`~repro.core.stats.AdaptiveConfig`) switches this run to the
    detected steady-state window; the simulated horizon is unchanged,
    so adaptive and exact runs of the same point cost the same.
    """
    default_warmup, default_window = measurement_window()
    warmup = default_warmup if warmup is None else warmup
    window = default_window if window is None else window
    wp = workload or run.params.workload
    if faults is not None:
        install_faults(run.sim, list(fault_services or [service]), faults)
    if scenario is None:
        spawn_users(
            run.sim,
            run.net,
            clients,
            service,
            log=run.log,
            wp=wp,
            rng=run.rng.stream("workload", system, str(x)),
            payload_fn=payload_fn,
            request_size=request_size,
            services_by_user=services_by_user,
            retry=retry,
        )
    else:
        think_scale = scenario.think_scale if scenario.arrivals else None
        first = 0
        for index, (count, group_wp) in enumerate(
            scenario.component_workloads(wp, len(clients))
        ):
            # Group 0 draws from the exact stream a scenario-free run
            # uses; only extra mix groups get their own streams, so a
            # scenario without a mix perturbs nothing.
            parts = ("workload", system, str(x)) + (
                (f"mix{index}",) if index else ()
            )
            spawn_users(
                run.sim,
                run.net,
                clients[first : first + count],
                service,
                log=run.log,
                wp=group_wp,
                rng=run.rng.stream(*parts),
                payload_fn=payload_fn,
                request_size=request_size,
                services_by_user=(
                    services_by_user[first : first + count]
                    if services_by_user is not None
                    else None
                ),
                retry=retry,
                think_scale=think_scale,
                first_id=first,
            )
            first += count
    horizon = warmup + window
    run.sim.run(until=horizon)

    start, end = warmup, horizon
    steady_info = None
    if adaptive:
        cfg = adaptive if isinstance(adaptive, AdaptiveConfig) else AdaptiveConfig()
        rates = bucket_rates(run.log.records, 0.0, horizon, cfg.bucket)
        ss = detect_steady_state(rates, dt=cfg.bucket)
        if ss.stable:
            start, end = ss.start, ss.end
        steady_info = SteadyStateInfo(
            warmup=start,
            window_start=start,
            window_end=end,
            stable=ss.stable,
            changepoints=len(ss.changepoints),
        )

    summary = summarize(run.log, run.testbed.monitor, server_host, start, end)
    crashed = service.crashed or any(s.crashed for s in run.services.values())
    reason = service.crash_reason or next(
        (s.crash_reason for s in run.services.values() if s.crash_reason), None
    )
    resilience = None
    if retry is not None or faults is not None:
        resilience = resilience_summary(
            run.log,
            window_start=start,
            window_end=end,
            outages=faults.outages_within(start, end) if faults else (),
            retry_stats=retry.stats if retry is not None else None,
        )
    return PointResult(
        system=system,
        x=x,
        summary=summary,
        crashed=crashed,
        crash_reason=reason,
        sim_events=run.sim.events_processed,
        resilience=resilience,
        steady_state=steady_info,
    )
