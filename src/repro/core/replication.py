"""Multi-seed replication and confidence intervals.

The paper reports single-run averages; a simulation study can do better
by replicating each point across independent seeds and reporting a
confidence interval.  :func:`replicate_point` runs any experiment
point-function across seeds; :func:`summarize_replicates` reduces the
four metrics to mean ± half-width (Student-t) intervals.

Example::

    from repro.core.experiments import exp1
    from repro.core.replication import replicate_point, summarize_replicates

    points = replicate_point(exp1.run_point, "mds-gris-cache", 200, seeds=range(5))
    stats = summarize_replicates(points)
    print(stats["throughput"])   # ReplicateStat(mean=40.1, half_width=0.6, n=5)
"""

from __future__ import annotations

import math
import typing as _t
from dataclasses import dataclass

from repro.core.runner import PointResult

__all__ = ["ReplicateStat", "replicate_point", "summarize_replicates"]

# Two-sided 95% Student-t critical values for n-1 degrees of freedom.
_T_95 = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571, 6: 2.447, 7: 2.365,
    8: 2.306, 9: 2.262, 10: 2.228, 15: 2.131, 20: 2.086, 30: 2.042,
}


def _t_critical(df: int) -> float:
    if df <= 0:
        return float("inf")
    if df in _T_95:
        return _T_95[df]
    for known in sorted(_T_95):
        if df <= known:
            return _T_95[known]
    return 1.96  # large-sample normal approximation


@dataclass(frozen=True)
class ReplicateStat:
    """Mean and 95% confidence half-width over n replicates."""

    mean: float
    half_width: float
    n: int

    @property
    def low(self) -> float:
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        return self.mean + self.half_width

    def __str__(self) -> str:
        return f"{self.mean:.3f} ± {self.half_width:.3f} (n={self.n})"


def replicate_point(
    run_point: _t.Callable[..., PointResult],
    system: str,
    x: int,
    *,
    seeds: _t.Iterable[int] = range(1, 6),
    **kwargs: _t.Any,
) -> list[PointResult]:
    """Run one experiment point once per seed."""
    return [run_point(system, x, seed, **kwargs) for seed in seeds]


def summarize_replicates(points: _t.Sequence[PointResult]) -> dict[str, ReplicateStat]:
    """Per-metric mean ± 95% CI over replicated points.

    Crashed replicates are excluded (a DNF has no metrics); if *all*
    replicates crashed, every stat is NaN with n=0.
    """
    alive = [p for p in points if not p.crashed]
    metrics = {
        "throughput": [p.throughput for p in alive],
        "response_time": [p.response_time for p in alive],
        "load1": [p.load1 for p in alive],
        "cpu_load": [p.cpu_load for p in alive],
    }
    out: dict[str, ReplicateStat] = {}
    for name, values in metrics.items():
        n = len(values)
        if n == 0:
            out[name] = ReplicateStat(float("nan"), float("nan"), 0)
            continue
        mean = sum(values) / n
        if n == 1:
            out[name] = ReplicateStat(mean, float("inf"), 1)
            continue
        var = sum((v - mean) ** 2 for v in values) / (n - 1)
        half = _t_critical(n - 1) * math.sqrt(var / n)
        out[name] = ReplicateStat(mean, half, n)
    return out
