"""Canonical deployment plans: every scenario the paper runs, declared.

Each function returns the :class:`DeploymentPlan` behind one figure
series (or one of the repo's extension scenarios).  The experiment
drivers compile these — node names, seeds, labels and edge order are
chosen so a compiled deployment is event-for-event identical to the
hand-written wiring they replaced.
"""

from __future__ import annotations

import math
import typing as _t

from repro.core.components import System
from repro.core.testbed import LUCKY_NAMES
from repro.core.topology.plan import (
    AggregateSpec,
    CollectorSpec,
    DeploymentPlan,
    DirectorySpec,
    Edge,
    EdgeKind,
    NodeSpec,
    ServerSpec,
)

__all__ = [
    "exp1_plan",
    "exp2_plan",
    "exp3_plan",
    "exp4_plan",
    "registration_fault_plan",
    "advertise_fault_plan",
    "two_level_plan",
    "hierarchy_plan",
    "sharded_registry_plan",
    "catalog_entries",
]

# The GRIS nodes of the paper testbed (GIIS runs on lucky0).
GRIS_NODES = ("lucky3", "lucky4", "lucky5", "lucky6", "lucky7")
# The ProducerServlet nodes of §3.4 (Registry runs on lucky1).
RGMA_PS_NODES = ("lucky0", "lucky3", "lucky4", "lucky5", "lucky6")


# -- Experiment 1 / 3: information servers --------------------------------


def _gris_plan(name: str, collectors: int, cached: bool, seed: int) -> DeploymentPlan:
    nodes = (
        CollectorSpec("providers", count=collectors),
        ServerSpec(
            "gris", host="lucky7", seed=seed, cached=cached, primed=cached,
            fault_target=True,
        ),
    )
    edges = (Edge(EdgeKind.COLLECTION, "providers", "gris"),)
    return DeploymentPlan(
        System.MDS, name, nodes, edges, entry="gris",
        description=f"GRIS on lucky7, {collectors} providers, "
        f"data {'always' if cached else 'never'} cached",
    )


def _agent_plan(name: str, modules: int, seed: int) -> DeploymentPlan:
    nodes = (
        CollectorSpec("modules", count=modules),
        ServerSpec("agent", host="lucky4", seed=seed, fault_target=True),
    )
    edges = (Edge(EdgeKind.COLLECTION, "modules", "agent"),)
    return DeploymentPlan(
        System.HAWKEYE, name, nodes, edges, entry="agent",
        description=f"Hawkeye Agent on lucky4 with {modules} modules",
    )


def _ps_base(collectors: int, seed: int) -> tuple[list[NodeSpec], list[Edge]]:
    """The R-GMA producer side: PS on lucky3, Registry on lucky1."""
    nodes: list[NodeSpec] = [
        CollectorSpec("producers", count=collectors, seed=seed),
        ServerSpec(
            "ps", host="lucky3", primed=True, fault_target=True,
            options={"servlet_name": "lucky3-ps", "publisher": True},
        ),
        DirectorySpec(
            "registry", host="lucky1", expose=False, tracked=False,
            options={"registry_name": "lucky1"},
        ),
    ]
    edges: list[Edge] = [
        Edge(EdgeKind.COLLECTION, "producers", "ps"),
        Edge(EdgeKind.REGISTRATION, "ps", "registry", {"lease": 1e9}),
    ]
    return nodes, edges


def exp1_plan(system: str, seed: int = 1) -> DeploymentPlan:
    """The Figure 5-8 deployments (§3.3), one per legend entry."""
    if system == "mds-gris-cache":
        return _gris_plan("exp1-mds-gris-cache", 10, True, seed)
    if system == "mds-gris-nocache":
        return _gris_plan("exp1-mds-gris-nocache", 10, False, seed)
    if system == "hawkeye-agent":
        return _agent_plan("exp1-hawkeye-agent", 11, seed)
    nodes, edges = _ps_base(10, seed)
    if system == "rgma-ps-uc":
        nodes.append(
            ServerSpec("cs", host="uc:0", variant="mediator", options={"cs_name": "uc-cs"})
        )
        edges.append(Edge(EdgeKind.MEDIATION, "cs", "ps"))
        return DeploymentPlan(
            System.RGMA, "exp1-rgma-ps-uc", tuple(nodes), tuple(edges), entry="cs",
            description="ProducerServlet on lucky3, one ConsumerServlet at UC",
        )
    if system == "rgma-ps-lucky":
        for name in LUCKY_NAMES:
            if name == "lucky3":
                continue
            nodes.append(
                ServerSpec(
                    f"cs-{name}", host=name, variant="mediator", tracked=False,
                    options={"cs_name": f"{name}-cs"},
                )
            )
            edges.append(Edge(EdgeKind.MEDIATION, f"cs-{name}", "ps"))
        return DeploymentPlan(
            System.RGMA, "exp1-rgma-ps-lucky", tuple(nodes), tuple(edges), entry="ps",
            description="ProducerServlet on lucky3, a ConsumerServlet per Lucky node",
        )
    raise ValueError(f"unknown exp1 system {system!r}")


def exp3_plan(system: str, collectors: int, seed: int = 1) -> DeploymentPlan:
    """The Figure 13-16 deployments (§3.5): collector count on the x-axis."""
    if system == "mds-gris-cache":
        return _gris_plan(f"exp3-mds-gris-cache-{collectors}", collectors, True, seed)
    if system == "mds-gris-nocache":
        return _gris_plan(f"exp3-mds-gris-nocache-{collectors}", collectors, False, seed)
    if system == "hawkeye-agent":
        return _agent_plan(f"exp3-hawkeye-agent-{collectors}", collectors, seed)
    if system == "rgma-ps":
        nodes, edges = _ps_base(collectors, seed)
        return DeploymentPlan(
            System.RGMA, f"exp3-rgma-ps-{collectors}", tuple(nodes), tuple(edges),
            entry="ps", description="ProducerServlet on lucky3, queried directly",
        )
    raise ValueError(f"unknown exp3 system {system!r}")


# -- Experiment 2: directory servers --------------------------------------


def exp2_plan(system: str, seed: int = 1) -> DeploymentPlan:
    """The Figure 9-12 deployments (§3.4)."""
    if system == "mds-giis":
        nodes: list[NodeSpec] = [CollectorSpec("providers", count=10)]
        edges: list[Edge] = []
        for i, node in enumerate(GRIS_NODES):
            nodes.append(
                ServerSpec(node, host=node, seed=seed * 101 + i, expose=False, tracked=False)
            )
            edges.append(Edge(EdgeKind.COLLECTION, "providers", node))
            edges.append(Edge(EdgeKind.REGISTRATION, node, "giis", {"ttl": 1e12}))
        nodes.append(
            DirectorySpec(
                "giis", host="lucky0", primed=True, fault_target=True,
                options={"giis_name": "lucky0"},
            )
        )
        return DeploymentPlan(
            System.MDS, "exp2-mds-giis", tuple(nodes), tuple(edges), entry="giis",
            description="GIIS on lucky0 with a GRIS on each of lucky3-7 registered",
        )
    if system == "hawkeye-manager":
        nodes = [
            DirectorySpec(
                "manager", host="lucky3", fault_target=True,
                options={"manager_name": "lucky3"},
            )
        ]
        edges = []
        for i, node in enumerate(n for n in LUCKY_NAMES if n != "lucky3"):
            nodes.append(
                ServerSpec(node, host=node, seed=seed * 77 + i, expose=False, tracked=False)
            )
            edges.append(Edge(EdgeKind.REGISTRATION, node, "manager", {"mode": "local"}))
        return DeploymentPlan(
            System.HAWKEYE, "exp2-hawkeye-manager", tuple(nodes), tuple(edges),
            entry="manager",
            description="Manager on lucky3, six Agents advertising every 30 s",
        )
    if system in ("rgma-registry-lucky", "rgma-registry-uc"):
        nodes = [
            DirectorySpec(
                "registry", host="lucky1", fault_target=True,
                options={"registry_name": "lucky1"},
            )
        ]
        edges = []
        for i, node in enumerate(RGMA_PS_NODES):
            nodes.append(CollectorSpec(f"{node}-producers", count=10, seed=seed * 31 + i))
            nodes.append(ServerSpec(f"{node}-ps", host=node, expose=False, tracked=False))
            edges.append(Edge(EdgeKind.COLLECTION, f"{node}-producers", f"{node}-ps"))
            edges.append(Edge(EdgeKind.REGISTRATION, f"{node}-ps", "registry", {"lease": 1e9}))
        return DeploymentPlan(
            System.RGMA, f"exp2-{system}", tuple(nodes), tuple(edges), entry="registry",
            description="Registry on lucky1, five ProducerServlets x 10 producers",
        )
    raise ValueError(f"unknown exp2 system {system!r}")


# -- Experiment 4: aggregate information servers ---------------------------


def exp4_plan(system: str, servers: int, seed: int = 1) -> DeploymentPlan:
    """The Figure 17-20 deployments (§3.6): registrant count on the x-axis."""
    if system in ("mds-giis-all", "mds-giis-part"):
        nodes = (
            CollectorSpec("providers", count=10),
            ServerSpec(
                "gris-bank", replicas=servers, seed=seed * 7919, expose=False,
                tracked=False,
                options={
                    "hosts": [n for n in LUCKY_NAMES if n != "lucky0"],
                    "hostname_format": "{node}-inst{i}.mcs.anl.gov",
                },
            ),
            AggregateSpec(
                "giis", host="lucky0", primed=True,
                query_part=system.endswith("part"), fault_target=True,
                options={"giis_name": "lucky0"},
            ),
        )
        edges = (
            Edge(EdgeKind.COLLECTION, "providers", "gris-bank"),
            Edge(
                EdgeKind.REGISTRATION, "gris-bank", "giis",
                {"label_format": "gris{i}", "ttl": 1e12},
            ),
        )
        return DeploymentPlan(
            System.MDS, f"exp4-{system}-{servers}", nodes, edges, entry="giis",
            description=f"GIIS on lucky0 with {servers} simulated GRIS registered",
        )
    if system == "hawkeye-manager":
        nodes = (
            AggregateSpec(
                "manager", host="lucky3", fault_target=True,
                options={"manager_name": "lucky3"},
            ),
            ServerSpec(
                "pool", replicas=servers, expose=False, tracked=False,
                options={
                    "synthetic": True,
                    "machine_format": "sim{i:04d}.pool",
                    "hosts": [n for n in LUCKY_NAMES if n != "lucky3"],
                },
            ),
        )
        edges = (
            Edge(
                EdgeKind.AGGREGATION, "pool", "manager",
                {"mode": "wire", "offset_stream": ("advertisers", str(servers))},
            ),
        )
        return DeploymentPlan(
            System.HAWKEYE, f"exp4-hawkeye-manager-{servers}", nodes, edges,
            entry="manager",
            description=f"Manager on lucky3, {servers} machines advertising every 30 s",
        )
    raise ValueError(f"unknown exp4 system {system!r}")


# -- fault-experiment control planes ---------------------------------------


def registration_fault_plan(
    seed: int = 1, *, interval: float = 2.5, ttl: float = 6.0
) -> DeploymentPlan:
    """GIIS with five GRIS keeping soft-state leases alive over the wire."""
    nodes: list[NodeSpec] = [CollectorSpec("providers", count=10)]
    edges: list[Edge] = []
    for i, node in enumerate(GRIS_NODES):
        nodes.append(
            ServerSpec(node, host=node, seed=seed * 101 + i, expose=False, tracked=False)
        )
        edges.append(Edge(EdgeKind.COLLECTION, "providers", node))
        edges.append(
            Edge(
                EdgeKind.REGISTRATION, node, "giis",
                {"soft_state": True, "interval": interval, "ttl": ttl},
            )
        )
    nodes.append(
        DirectorySpec(
            "giis", host="lucky0", primed=True, fault_target=True,
            options={"giis_name": "lucky0"},
        )
    )
    return DeploymentPlan(
        System.MDS, "faults-mds-registration", tuple(nodes), tuple(edges), entry="giis",
        description="GIIS directory queries while GRIS renew soft-state leases",
    )


def advertise_fault_plan(seed: int = 1, *, interval: float = 10.0) -> DeploymentPlan:
    """Manager with six Agents pushing Startd ads through its ingest path."""
    nodes: list[NodeSpec] = [
        DirectorySpec(
            "manager", host="lucky3", fault_target=True,
            options={"manager_name": "lucky3"},
        )
    ]
    edges: list[Edge] = []
    for i, node in enumerate(n for n in LUCKY_NAMES if n != "lucky3"):
        nodes.append(
            ServerSpec(node, host=node, seed=seed * 77 + i, expose=False, tracked=False)
        )
        edges.append(
            Edge(
                EdgeKind.REGISTRATION, node, "manager",
                {"mode": "resilient", "interval": interval},
            )
        )
    return DeploymentPlan(
        System.HAWKEYE, "faults-hawkeye-advertise", tuple(nodes), tuple(edges),
        entry="manager",
        description="Manager directory queries while Agents advertise over the wire",
    )


# -- hierarchies (§3.6's suggested fix, and the scale sweep) ---------------


def two_level_plan(registrants: int, seed: int = 1) -> DeploymentPlan:
    """§4's two-level GIIS tree: ~sqrt(N) mids, each over ~sqrt(N) GRIS."""
    fan = max(2, round(math.sqrt(registrants)))
    mid_nodes = [n for n in LUCKY_NAMES if n != "lucky0"]
    nodes: list[NodeSpec] = []
    edges: list[Edge] = []
    assigned = 0
    i = 0
    while assigned < registrants:
        share = min(fan, registrants - assigned)
        bank = f"mid{i}-gris"
        nodes.append(
            ServerSpec(
                bank, replicas=share, seed=seed * 131, expose=False, tracked=False,
                options={"hostname_format": f"mid{i}-gris{{i}}"},
            )
        )
        nodes.append(
            AggregateSpec(
                f"mid{i}", host=mid_nodes[i % len(mid_nodes)], variant="leaf",
                primed=True, tracked=False, options={"giis_name": f"mid{i}"},
            )
        )
        edges.append(
            Edge(
                EdgeKind.REGISTRATION, bank, f"mid{i}",
                {"label_format": f"mid{i}-g{{i}}", "ttl": 1e12},
            )
        )
        edges.append(Edge(EdgeKind.AGGREGATION, f"mid{i}", "top"))
        assigned += share
        i += 1
    nodes.append(
        AggregateSpec("top", host="lucky0", variant="fanout", options={"label": "giis:top"})
    )
    return DeploymentPlan(
        System.MDS, f"two-level-giis-{registrants}", tuple(nodes), tuple(edges),
        entry="top",
        description=f"Two-level GIIS tree over {registrants} GRIS ({i} mids, fan ~{fan})",
    )


def hierarchy_plan(system: str, depth: int, fanout: int, seed: int = 1) -> DeploymentPlan:
    """An N-level aggregate tree: ``fanout**depth`` info servers total.

    ``depth`` counts aggregate levels: leaves aggregate ``fanout`` info
    servers each; interior nodes fan out to ``fanout`` child aggregates.
    MDS builds a GIIS tree (top on lucky0), Hawkeye a Manager tree (top
    on lucky3).  R-GMA has no aggregate information server (Table 1).
    """
    if system not in ("mds", "hawkeye"):
        raise ValueError(f"hierarchies exist for 'mds' and 'hawkeye', not {system!r}")
    if depth < 1 or fanout < 1:
        raise ValueError("depth and fanout must be >= 1")
    top_host = "lucky0" if system == "mds" else "lucky3"
    pool = [n for n in LUCKY_NAMES if n != top_host]
    nodes: list[NodeSpec] = []
    edges: list[Edge] = []
    counters = {"agg": 0, "place": 0}

    def place() -> str:
        host = pool[counters["place"] % len(pool)]
        counters["place"] += 1
        return host

    def build(level: int, top: bool = False) -> str:
        i = counters["agg"]
        counters["agg"] += 1
        name = "top" if top else f"agg{i}"
        host = top_host if top else place()
        if level == depth:  # a leaf aggregate over `fanout` info servers
            if system == "mds":
                bank = f"{name}-gris"
                nodes.append(
                    ServerSpec(
                        bank, replicas=fanout, seed=seed * 131 + 1000 * i,
                        expose=False, tracked=False,
                        options={"hostname_format": f"{name}-gris{{i}}"},
                    )
                )
                nodes.append(
                    AggregateSpec(
                        name, host=host, variant="leaf", primed=True, tracked=top,
                        options={"giis_name": name},
                    )
                )
                edges.append(
                    Edge(
                        EdgeKind.REGISTRATION, bank, name,
                        {"label_format": f"{name}-g{{i}}", "ttl": 1e12},
                    )
                )
            else:
                for j in range(fanout):
                    agent = f"{name}-a{j}"
                    nodes.append(
                        ServerSpec(
                            agent, seed=seed * 77 + 100 * i + j,
                            expose=False, tracked=False,
                            options={"agent_machine": f"{name}-m{j}.pool"},
                        )
                    )
                    edges.append(Edge(EdgeKind.REGISTRATION, agent, name))
                nodes.append(
                    AggregateSpec(
                        name, host=host, tracked=top, options={"manager_name": name}
                    )
                )
            return name
        children = [build(level + 1) for _ in range(fanout)]
        prefix = "giis:" if system == "mds" else "manager:"
        nodes.append(
            AggregateSpec(
                name, host=host, variant="fanout", tracked=top,
                options={"label": prefix + name},
            )
        )
        for child in children:
            edges.append(Edge(EdgeKind.AGGREGATION, child, name))
        return name

    build(1, top=True)
    plan_system = System.MDS if system == "mds" else System.HAWKEYE
    return DeploymentPlan(
        plan_system, f"hierarchy-{system}-d{depth}f{fanout}", tuple(nodes), tuple(edges),
        entry="top",
        description=f"{depth}-level {system} aggregate tree, fan-out {fanout} "
        f"({fanout ** depth} info servers)",
    )


# -- illustrative extras ----------------------------------------------------


def sharded_registry_plan(
    shards: int = 3, servlets_per_shard: int = 4, seed: int = 1
) -> DeploymentPlan:
    """An R-GMA Registry split into shards, ProducerServlets spread over them."""
    shard_hosts = ("lucky1", "lucky5", "lucky6")
    nodes: list[NodeSpec] = []
    edges: list[Edge] = []
    for s in range(shards):
        nodes.append(
            DirectorySpec(
                f"registry{s}", host=shard_hosts[s % len(shard_hosts)],
                options={"registry_name": f"registry{s}"},
            )
        )
    idx = 0
    for s in range(shards):
        for _ in range(servlets_per_shard):
            node = LUCKY_NAMES[idx % len(LUCKY_NAMES)]
            name = f"ps{idx}"
            nodes.append(CollectorSpec(f"{name}-producers", count=10, seed=seed * 31 + idx))
            nodes.append(ServerSpec(name, host=node, expose=False, tracked=False))
            edges.append(Edge(EdgeKind.COLLECTION, f"{name}-producers", name))
            edges.append(
                Edge(EdgeKind.REGISTRATION, name, f"registry{s}", {"lease": 1e9})
            )
            idx += 1
    return DeploymentPlan(
        System.RGMA, f"sharded-registry-{shards}x{servlets_per_shard}",
        tuple(nodes), tuple(edges), entry="registry0",
        description=f"{shards} Registry shards, {servlets_per_shard} servlets each",
    )


def catalog_entries() -> dict[str, _t.Callable[[], DeploymentPlan]]:
    """Named plans for the ``repro-topology`` CLI."""
    out: dict[str, _t.Callable[[], DeploymentPlan]] = {}
    for system in ("mds-gris-cache", "mds-gris-nocache", "hawkeye-agent",
                   "rgma-ps-lucky", "rgma-ps-uc"):
        out[f"exp1-{system}"] = (lambda s=system: exp1_plan(s))
    for system in ("mds-giis", "hawkeye-manager", "rgma-registry-lucky",
                   "rgma-registry-uc"):
        out[f"exp2-{system}"] = (lambda s=system: exp2_plan(s))
    for system in ("mds-gris-cache", "mds-gris-nocache", "hawkeye-agent", "rgma-ps"):
        out[f"exp3-{system}-50"] = (lambda s=system: exp3_plan(s, 50))
    for system in ("mds-giis-all", "mds-giis-part", "hawkeye-manager"):
        out[f"exp4-{system}-100"] = (lambda s=system: exp4_plan(s, 100))
    out["faults-mds-registration"] = registration_fault_plan
    out["faults-hawkeye-advertise"] = advertise_fault_plan
    out["two-level-giis-100"] = (lambda: two_level_plan(100))
    out["paper-testbed"] = (lambda: exp2_plan("mds-giis"))
    out["deep-hierarchy"] = (lambda: hierarchy_plan("mds", 3, 4))
    out["sharded-registry"] = sharded_registry_plan
    return out
