"""Plan compilation: per-system adapters turn plans into running pieces.

A :class:`SystemAdapter` compiles a validated
:class:`~repro.core.topology.plan.DeploymentPlan` against a fresh
:class:`~repro.core.runner.ScenarioRun` in four phases:

1. **materialize** — build the functional objects (GRIS, Manager,
   ProducerServlet, ...) for every node spec, in declaration order;
2. **connect** — apply the plan's edges: registrations (with labels and
   TTLs), producer attachment, agent registration, then cache priming;
3. **expose** — wrap exposed nodes in :class:`~repro.sim.rpc.Service`
   objects through the role-keyed adapter registry
   (:data:`repro.core.services.SERVICE_FACTORIES`);
4. **activate** — spawn the background processes (publishers,
   advertisers, soft-state registrars, lease sweepers) in an order that
   exactly matches the hand-written experiment wiring, so a compiled
   deployment is event-for-event identical to the legacy one.

Retry policies for the plan's attachment points (CS->PS mediation,
soft-state registration, resilient advertising) are workload-dependent,
so the caller builds them and passes them into :func:`compile_plan`.
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass, field

from repro.core.runner import ScenarioRun
from repro.core.topology.plan import DeploymentPlan, NodeSpec, PlanError
from repro.sim.host import Host
from repro.sim.rpc import RetryPolicy, Service

if _t.TYPE_CHECKING:
    from repro.core.components import System

__all__ = [
    "CompileHooks",
    "Deployment",
    "SystemAdapter",
    "ADAPTERS",
    "register_adapter",
    "compile_plan",
    "resolve_host",
]


def resolve_host(run: ScenarioRun, placement: str) -> Host:
    """Map a plan placement string to a testbed Host."""
    if placement.startswith("uc:"):
        return run.testbed.uc[int(placement[3:])]
    return run.testbed.lucky[placement]


@dataclass(frozen=True)
class CompileHooks:
    """Workload-dependent knobs the caller wires into the compile.

    These are the plan's fault/retry attachment points: the retry
    policies ride RNG streams keyed by (system, users), which only the
    experiment driver knows.
    """

    mediation_retry: RetryPolicy | None = None  # R-GMA CS -> PS hop
    registration_retry: RetryPolicy | None = None  # MDS soft-state registrars
    advertise_retry: RetryPolicy | None = None  # Hawkeye resilient advertisers


@dataclass
class Deployment:
    """A compiled plan: live objects, services and routing, ready to drive."""

    plan: DeploymentPlan
    run: ScenarioRun
    objects: dict[str, _t.Any] = field(default_factory=dict)
    services: dict[str, Service] = field(default_factory=dict)
    entry: Service | None = None
    fault_services: list[Service] = field(default_factory=list)
    routes: dict[Host, Service] = field(default_factory=dict)
    extras: dict[str, _t.Any] = field(default_factory=dict)

    @property
    def routed(self) -> bool:
        """True when clients should be mapped to per-host mediators."""
        return bool(self.routes)

    def route(self, client: Host) -> Service:
        """The service a client on ``client`` should talk to."""
        service = self.routes.get(client, self.entry)
        assert service is not None
        return service

    def node_services(self, name: str) -> list[Service]:
        """All services a node exposes: primary first, then variants."""
        out = []
        if name in self.services:
            out.append(self.services[name])
        prefix = f"{name}:"
        out.extend(svc for key, svc in self.services.items() if key.startswith(prefix))
        return out


class SystemAdapter:
    """Base compiler; subclasses fill in the four phases for one system."""

    system: _t.ClassVar["System"]

    def compile(
        self,
        plan: DeploymentPlan,
        run: ScenarioRun,
        hooks: CompileHooks | None = None,
    ) -> Deployment:
        if plan.system is not self.system:
            raise PlanError(
                f"{type(self).__name__} compiles {self.system.value} plans, "
                f"got a {plan.system.value} plan"
            )
        plan.validate()
        hooks = hooks or CompileHooks()
        dep = Deployment(plan=plan, run=run)
        self.materialize(plan, run, dep)
        self.connect(plan, run, dep, hooks)
        self.expose(plan, run, dep, hooks)
        self.activate(plan, run, dep, hooks)
        self._finalize(plan, run, dep)
        return dep

    # Phases — subclasses override what they need.
    def materialize(self, plan: DeploymentPlan, run: ScenarioRun, dep: Deployment) -> None:
        raise NotImplementedError

    def connect(
        self, plan: DeploymentPlan, run: ScenarioRun, dep: Deployment, hooks: CompileHooks
    ) -> None:
        raise NotImplementedError

    def expose(
        self, plan: DeploymentPlan, run: ScenarioRun, dep: Deployment, hooks: CompileHooks
    ) -> None:
        raise NotImplementedError

    def activate(
        self, plan: DeploymentPlan, run: ScenarioRun, dep: Deployment, hooks: CompileHooks
    ) -> None:
        pass  # many plans have no background processes

    # Shared epilogue --------------------------------------------------------

    def _finalize(self, plan: DeploymentPlan, run: ScenarioRun, dep: Deployment) -> None:
        if plan.entry not in dep.services:
            raise PlanError(
                f"plan {plan.name!r}: entry node {plan.entry!r} exposed no service"
            )
        dep.entry = dep.services[plan.entry]
        for spec in plan.nodes:
            if not spec.tracked:
                continue
            if spec.name in dep.services:
                run.services[spec.name] = dep.services[spec.name]
            prefix = f"{spec.name}:"
            for key, svc in dep.services.items():
                if key.startswith(prefix):
                    run.services[key] = svc
        for spec in plan.nodes:
            if spec.fault_target:
                dep.fault_services.extend(dep.node_services(spec.name))

    # Helpers shared by the system adapters ---------------------------------

    @staticmethod
    def node_host(run: ScenarioRun, spec: NodeSpec) -> Host:
        if spec.host is None:
            raise PlanError(f"node {spec.name!r} needs a placement to expose a service")
        return resolve_host(run, spec.host)

    @staticmethod
    def bank_placements(spec: NodeSpec) -> list[str]:
        """Round-robin placement list for a replicated bank."""
        hosts = spec.options.get("hosts")
        if hosts:
            return list(hosts)
        if spec.host is not None:
            return [spec.host]
        return []


ADAPTERS: dict["System", SystemAdapter] = {}


def register_adapter(cls: type[SystemAdapter]) -> type[SystemAdapter]:
    """Class decorator: register an adapter instance for its system."""
    ADAPTERS[cls.system] = cls()
    return cls


def compile_plan(
    plan: DeploymentPlan,
    run: ScenarioRun,
    *,
    mediation_retry: RetryPolicy | None = None,
    registration_retry: RetryPolicy | None = None,
    advertise_retry: RetryPolicy | None = None,
) -> Deployment:
    """Compile ``plan`` into ``run`` with the system's registered adapter."""
    try:
        adapter = ADAPTERS[plan.system]
    except KeyError:
        raise PlanError(
            f"no adapter registered for {plan.system.value}; "
            "import repro.core.topology to load the built-in adapters"
        ) from None
    hooks = CompileHooks(
        mediation_retry=mediation_retry,
        registration_retry=registration_retry,
        advertise_retry=advertise_retry,
    )
    return adapter.compile(plan, run, hooks)
