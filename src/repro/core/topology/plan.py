"""Declarative deployment plans: Table 1 as buildable topology.

A :class:`DeploymentPlan` says *what* an experiment deploys — typed
node specs keyed by the paper's four functional roles, explicit edges
for the relationships the paper names (registration, aggregation,
mediation) plus collection (collector banks feeding a server), and
placement onto the Lucky/UC testbed.  It says nothing about *how* a
system realizes those roles: that is the per-system adapter's job
(:mod:`repro.core.topology.adapters`), which compiles a validated plan
into functional objects, :class:`~repro.sim.rpc.Service` instances,
soft-state registration loops and fault/retry attachment points.

Validation enforces Table 1 itself: asking R-GMA for an aggregate
information server is a :class:`PlanError`, exactly as the table's
empty cell says.
"""

from __future__ import annotations

import enum
import typing as _t
from dataclasses import dataclass, field

from repro.core.components import Role, System, component_for
from repro.core.testbed import LUCKY_NAMES

__all__ = [
    "PlanError",
    "FIDELITY_TIERS",
    "EdgeKind",
    "NodeSpec",
    "CollectorSpec",
    "ServerSpec",
    "AggregateSpec",
    "DirectorySpec",
    "Edge",
    "DeploymentPlan",
]


class PlanError(ValueError):
    """A deployment plan that cannot exist (Table 1 or structure says no)."""


# Simulation fidelity tiers a plan node may request (docs/FIDELITY.md):
#
# * ``exact``     — the discrete-event simulation, one process per client
#   and per request (the default; every committed figure table uses it);
# * ``cohort``    — numpy-vectorized client cohorts stepped in event
#   epochs against the same cost model (:mod:`repro.sim.cohort`);
# * ``meanfield`` — fixed-point throughput/response/load equations over
#   the same cost model (:mod:`repro.core.fidelity`), for populations no
#   per-client engine can reach.
#
# The tuple lives here (not in repro.core.fidelity) so plan validation
# needs no import from the layer that consumes plans.
FIDELITY_TIERS = ("exact", "cohort", "meanfield")


class EdgeKind(enum.Enum):
    """The relationships between Table-1 roles that plans can express."""

    COLLECTION = "collection"  # collector bank -> information server
    REGISTRATION = "registration"  # info server -> directory/aggregate (soft state)
    AGGREGATION = "aggregation"  # info server / child aggregate -> aggregate
    MEDIATION = "mediation"  # mediator -> information server (R-GMA CS -> PS)


@dataclass(frozen=True)
class NodeSpec:
    """One deployed component; subclasses pin the Table-1 role.

    ``host`` is a testbed placement — a Lucky shortname (``"lucky7"``)
    or ``"uc:<i>"`` for the i-th UC client machine — or None when the
    adapter places replicas itself (``options["hosts"]``) or the node
    never leaves its process (in-process pullers).

    ``replicas`` turns a spec into a bank (the paper's "multiple
    instances at each Lucky node"); per-replica names/hosts/seeds come
    from ``options`` format strings interpreted by the adapter.

    ``expose`` controls whether the node gets a network service of its
    own; ``tracked`` whether that service joins the run's crash
    accounting; ``fault_target`` marks where an injected
    :class:`~repro.sim.faults.FaultPlan` lands.

    ``fidelity`` selects the simulation tier used when this node is the
    plan's entry (one of :data:`FIDELITY_TIERS`); ``"exact"`` — the
    default — is the per-client discrete-event simulation.
    """

    name: str
    host: str | None = None
    variant: str = "default"
    seed: int = 0
    replicas: int = 1
    expose: bool = True
    tracked: bool = True
    fault_target: bool = False
    options: dict[str, _t.Any] = field(default_factory=dict)
    fidelity: str = "exact"

    role: _t.ClassVar[Role]


@dataclass(frozen=True)
class CollectorSpec(NodeSpec):
    """An information-collector bank (providers / modules / producers)."""

    count: int = 10
    flavor: str = "replicated"  # "replicated" clones; "default" canonical set

    role: _t.ClassVar[Role] = Role.INFORMATION_COLLECTOR


@dataclass(frozen=True)
class ServerSpec(NodeSpec):
    """An information server (GRIS / ProducerServlet / Agent).

    ``variant="mediator"`` is the R-GMA ConsumerServlet (still an
    information server in Table-1 terms, fronting another one).
    ``cached``/``primed`` are the paper's cachettl knob and the
    prime-before-measuring step.
    """

    cached: bool = True
    primed: bool = False

    role: _t.ClassVar[Role] = Role.INFORMATION_SERVER


@dataclass(frozen=True)
class AggregateSpec(NodeSpec):
    """An aggregate information server (GIIS / Manager).

    Variants: ``default`` (the paper's serialized query-all backend),
    ``leaf`` (subtree aggregate with CPU-only assembly), ``fanout``
    (interior node forwarding to child aggregates concurrently).
    """

    primed: bool = False
    query_part: bool = False

    role: _t.ClassVar[Role] = Role.AGGREGATE_INFORMATION_SERVER


@dataclass(frozen=True)
class DirectorySpec(NodeSpec):
    """A directory server (GIIS / Registry / Manager)."""

    primed: bool = False

    role: _t.ClassVar[Role] = Role.DIRECTORY_SERVER


# Structural typing rules for edges: kind -> (allowed source roles,
# allowed target roles).
_EDGE_RULES: dict[EdgeKind, tuple[frozenset[Role], frozenset[Role]]] = {
    EdgeKind.COLLECTION: (
        frozenset({Role.INFORMATION_COLLECTOR}),
        frozenset({Role.INFORMATION_SERVER}),
    ),
    EdgeKind.REGISTRATION: (
        frozenset({Role.INFORMATION_SERVER}),
        frozenset({Role.DIRECTORY_SERVER, Role.AGGREGATE_INFORMATION_SERVER}),
    ),
    EdgeKind.AGGREGATION: (
        frozenset({Role.INFORMATION_SERVER, Role.AGGREGATE_INFORMATION_SERVER}),
        frozenset({Role.AGGREGATE_INFORMATION_SERVER}),
    ),
    EdgeKind.MEDIATION: (
        frozenset({Role.INFORMATION_SERVER}),
        frozenset({Role.INFORMATION_SERVER}),
    ),
}


@dataclass(frozen=True)
class Edge:
    """A typed relationship between two plan nodes.

    ``options`` carry the edge's protocol knobs — registration labels
    and TTLs, soft-state renewal intervals, advertise modes — which the
    system adapter interprets.
    """

    kind: EdgeKind
    source: str
    target: str
    options: dict[str, _t.Any] = field(default_factory=dict)


def _check_placement(where: str, placement: _t.Any) -> None:
    if not isinstance(placement, str):
        raise PlanError(f"{where}: placement must be a string, got {placement!r}")
    if placement.startswith("uc:"):
        try:
            index = int(placement[3:])
        except ValueError:
            index = -1
        if index < 0:
            raise PlanError(f"{where}: bad UC placement {placement!r} (want 'uc:<i>')")
        return
    if placement not in LUCKY_NAMES:
        raise PlanError(
            f"{where}: unknown testbed host {placement!r} "
            f"(Lucky nodes are {', '.join(LUCKY_NAMES)}; UC clients are 'uc:<i>')"
        )


@dataclass(frozen=True)
class DeploymentPlan:
    """A complete, validatable description of one deployment.

    ``entry`` names the node whose primary service the measured
    workload drives (the figure's server under study).
    """

    system: System
    name: str
    nodes: tuple[NodeSpec, ...]
    edges: tuple[Edge, ...] = ()
    entry: str = ""
    description: str = ""

    # -- lookups -----------------------------------------------------------

    def node(self, name: str) -> NodeSpec:
        for spec in self.nodes:
            if spec.name == name:
                return spec
        raise KeyError(f"plan {self.name!r} has no node {name!r}")

    def nodes_by_role(self, role: Role) -> list[NodeSpec]:
        return [spec for spec in self.nodes if spec.role is role]

    def edges_from(self, name: str, kind: EdgeKind | None = None) -> list[Edge]:
        return [
            e for e in self.edges if e.source == name and (kind is None or e.kind is kind)
        ]

    def edges_to(self, name: str, kind: EdgeKind | None = None) -> list[Edge]:
        return [
            e for e in self.edges if e.target == name and (kind is None or e.kind is kind)
        ]

    # -- validation --------------------------------------------------------

    def validate(self) -> "DeploymentPlan":
        """Raise :class:`PlanError` unless the plan can be deployed."""
        names: set[str] = set()
        for spec in self.nodes:
            if spec.name in names:
                raise PlanError(f"duplicate node name {spec.name!r}")
            names.add(spec.name)
            component = component_for(self.system, spec.role)
            if component is None:
                raise PlanError(
                    f"node {spec.name!r}: {self.system.value} has no "
                    f"{spec.role.value} (Table 1)"
                )
            if spec.replicas < 1:
                raise PlanError(f"node {spec.name!r}: replicas must be >= 1")
            if spec.fidelity not in FIDELITY_TIERS:
                raise PlanError(
                    f"node {spec.name!r}: unknown fidelity {spec.fidelity!r} "
                    f"(tiers are {', '.join(FIDELITY_TIERS)})"
                )
            if spec.host is not None:
                _check_placement(f"node {spec.name!r}", spec.host)
            for placement in spec.options.get("hosts", ()):
                _check_placement(f"node {spec.name!r} bank", placement)
        if not self.entry:
            raise PlanError(f"plan {self.name!r} has no entry node")
        if self.entry not in names:
            raise PlanError(f"entry {self.entry!r} is not a node of plan {self.name!r}")
        if self.node(self.entry).role is Role.INFORMATION_COLLECTOR:
            raise PlanError(f"entry {self.entry!r} is a collector; collectors serve no queries")
        for edge in self.edges:
            for endpoint in (edge.source, edge.target):
                if endpoint not in names:
                    raise PlanError(
                        f"edge {edge.kind.value} {edge.source}->{edge.target}: "
                        f"unknown node {endpoint!r}"
                    )
            src_roles, tgt_roles = _EDGE_RULES[edge.kind]
            if self.node(edge.source).role not in src_roles:
                raise PlanError(
                    f"edge {edge.kind.value} {edge.source}->{edge.target}: "
                    f"source role {self.node(edge.source).role.value!r} not allowed"
                )
            if self.node(edge.target).role not in tgt_roles:
                raise PlanError(
                    f"edge {edge.kind.value} {edge.source}->{edge.target}: "
                    f"target role {self.node(edge.target).role.value!r} not allowed"
                )
        return self

    # -- rendering ---------------------------------------------------------

    def describe(self) -> str:
        """Human-readable rendering (the ``repro-topology show`` output)."""
        lines = [f"plan {self.name!r} [{self.system.value}]"]
        if self.description:
            lines.append(f"  {self.description}")
        lines.append(f"entry: {self.entry}")
        lines.append("nodes:")
        for spec in self.nodes:
            component = component_for(self.system, spec.role) or "-"
            where = spec.host or ("bank" if spec.options.get("hosts") else "-")
            bits = [f"  {spec.name:<16} {spec.role.value} ({component}) @{where}"]
            if spec.variant != "default":
                bits.append(f"variant={spec.variant}")
            if spec.replicas != 1:
                bits.append(f"x{spec.replicas}")
            if isinstance(spec, CollectorSpec):
                bits.append(f"count={spec.count}")
            if not spec.expose and not isinstance(spec, CollectorSpec):
                bits.append("[in-process]")
            if spec.fault_target:
                bits.append("[fault-target]")
            lines.append(" ".join(bits))
        lines.append("edges:")
        for edge in self.edges:
            opts = ""
            if edge.options:
                opts = " {" + ", ".join(f"{k}={v}" for k, v in edge.options.items()) + "}"
            lines.append(f"  {edge.source} -> {edge.target}  [{edge.kind.value}]{opts}")
        return "\n".join(lines)
