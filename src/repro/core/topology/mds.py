"""The MDS adapter: plans onto GRIS/GIIS, LDAP-style soft state.

MDS realizes Table 1 with two components: the GRIS (information
server; providers forked under slapd) and the GIIS, which plays both
the aggregate and the directory role.  Registration edges become
``giis.register`` soft-state entries; edges marked ``soft_state`` also
get an over-the-wire registrar loop plus the GIIS's registration
service and lease sweeper — the fault-experiment control plane.
"""

from __future__ import annotations

import typing as _t

from repro.core.components import Role, System
from repro.core.kernels.build import mds_connect, mds_materialize
from repro.core.runner import ScenarioRun
from repro.core.services import service_factory
from repro.core.topology.adapters import (
    CompileHooks,
    Deployment,
    PlanError,
    SystemAdapter,
    register_adapter,
    resolve_host,
)
from repro.core.topology.plan import (
    AggregateSpec,
    CollectorSpec,
    DeploymentPlan,
    EdgeKind,
    ServerSpec,
)
from repro.mds.giis import GIIS
from repro.mds.resilience import RegistrarStats, soft_state_registrar

__all__ = ["MdsAdapter"]


@register_adapter
class MdsAdapter(SystemAdapter):
    system = System.MDS

    # -- phases 1+2: runtime-free, shared with the live plane ----------------

    def materialize(self, plan: DeploymentPlan, run: ScenarioRun, dep: Deployment) -> None:
        mds_materialize(plan, dep.objects, dep.extras)

    def connect(
        self, plan: DeploymentPlan, run: ScenarioRun, dep: Deployment, hooks: CompileHooks
    ) -> None:
        mds_connect(plan, dep.objects, dep.extras)

    # -- phase 3: services ---------------------------------------------------

    def expose(
        self, plan: DeploymentPlan, run: ScenarioRun, dep: Deployment, hooks: CompileHooks
    ) -> None:
        p = run.params.giis
        for spec in plan.nodes:
            if not spec.expose or isinstance(spec, CollectorSpec):
                continue
            host = self.node_host(run, spec)
            if isinstance(spec, ServerSpec):
                factory = service_factory(self.system, Role.INFORMATION_SERVER, spec.variant)
                dep.services[spec.name] = factory(
                    run.sim, run.net, host, dep.objects[spec.name], run.params.gris
                )
                continue
            if isinstance(spec, AggregateSpec) and spec.variant == "fanout":
                children = [
                    dep.services[e.source]
                    for e in plan.edges_to(spec.name, EdgeKind.AGGREGATION)
                ]
                if not children:
                    raise PlanError(f"fanout node {spec.name!r} has no aggregation edges")
                factory = service_factory(
                    self.system, Role.AGGREGATE_INFORMATION_SERVER, "fanout"
                )
                dep.services[spec.name] = factory(
                    run.sim,
                    run.net,
                    host,
                    children,
                    p,
                    label=spec.options.get("label", f"giis:{spec.name}"),
                    top=spec.name == plan.entry,
                )
                continue
            giis = dep.objects[spec.name]
            factory = service_factory(self.system, spec.role, spec.variant)
            if isinstance(spec, AggregateSpec) and spec.variant == "default":
                dep.services[spec.name] = factory(
                    run.sim, run.net, host, giis, p, query_part=spec.query_part
                )
            else:
                dep.services[spec.name] = factory(run.sim, run.net, host, giis, p)
            if any(
                e.options.get("soft_state")
                for e in plan.edges_to(spec.name, EdgeKind.REGISTRATION)
            ):
                reg_factory = service_factory(self.system, spec.role, "registration")
                dep.services[f"{spec.name}:registration"] = reg_factory(
                    run.sim, run.net, host, giis, p, dep.extras[f"pullers:{spec.name}"]
                )

    # -- phase 4: background processes ---------------------------------------

    def activate(
        self, plan: DeploymentPlan, run: ScenarioRun, dep: Deployment, hooks: CompileHooks
    ) -> None:
        swept: list[str] = []
        # Scenario churn marks nodes down here; registrars consult it
        # through their gate, so a churned-out GRIS goes silent and its
        # lease expires server-side like a crashed daemon's.
        node_down: set[str] = dep.extras.setdefault("node_down", set())
        for edge in plan.edges:
            if edge.kind is not EdgeKind.REGISTRATION or not edge.options.get("soft_state"):
                continue
            if hooks.registration_retry is None:
                raise PlanError(
                    f"edge {edge.source}->{edge.target} wants soft-state registrars; "
                    "compile with a registration_retry policy"
                )
            source = plan.node(edge.source)
            label = edge.options.get("label", edge.source)
            reg_service = dep.services[f"{edge.target}:registration"]
            st = RegistrarStats(registered=True, last_confirmed=0.0)
            dep.extras.setdefault("registrar_stats", []).append(st)
            run.sim.spawn(
                soft_state_registrar(
                    run.sim,
                    run.net,
                    resolve_host(run, source.host or ""),
                    reg_service,
                    label,
                    interval=float(edge.options["interval"]),
                    ttl=float(edge.options["ttl"]),
                    retry=hooks.registration_retry,
                    stats=st,
                    gate=lambda node=edge.source: node not in node_down,
                ),
                name=f"registrar:{label}",
            )
            if edge.target not in swept:
                swept.append(edge.target)
        for target in swept:
            giis: GIIS = dep.objects[target]

            def lease_sweeper(giis: GIIS = giis) -> _t.Generator:
                while True:
                    yield run.sim.timeout(1.0)
                    giis.sweep(run.sim.now)

            run.sim.spawn(lease_sweeper(), name="giis-sweep")
