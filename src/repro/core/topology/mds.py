"""The MDS adapter: plans onto GRIS/GIIS, LDAP-style soft state.

MDS realizes Table 1 with two components: the GRIS (information
server; providers forked under slapd) and the GIIS, which plays both
the aggregate and the directory role.  Registration edges become
``giis.register`` soft-state entries; edges marked ``soft_state`` also
get an over-the-wire registrar loop plus the GIIS's registration
service and lease sweeper — the fault-experiment control plane.
"""

from __future__ import annotations

import typing as _t

from repro.core.components import Role, System
from repro.core.runner import ScenarioRun
from repro.core.services import service_factory
from repro.core.topology.adapters import (
    CompileHooks,
    Deployment,
    PlanError,
    SystemAdapter,
    register_adapter,
    resolve_host,
)
from repro.core.topology.plan import (
    AggregateSpec,
    CollectorSpec,
    DeploymentPlan,
    DirectorySpec,
    EdgeKind,
    NodeSpec,
    ServerSpec,
)
from repro.mds.giis import GIIS
from repro.mds.gris import GRIS
from repro.mds.providers import replicated_providers
from repro.mds.resilience import RegistrarStats, soft_state_registrar

__all__ = ["MdsAdapter"]


def _make_puller(gris: GRIS) -> _t.Callable[[float], tuple[list, float]]:
    def puller(now: float, gris: GRIS = gris) -> tuple[list, float]:
        result = gris.search(now=now)
        return result.entries, result.exec_cost

    return puller


@register_adapter
class MdsAdapter(SystemAdapter):
    system = System.MDS

    # -- phase 1: functional objects ----------------------------------------

    def materialize(self, plan: DeploymentPlan, run: ScenarioRun, dep: Deployment) -> None:
        for spec in plan.nodes:
            if isinstance(spec, ServerSpec):
                self._materialize_gris(plan, dep, spec)
            elif isinstance(spec, (AggregateSpec, DirectorySpec)):
                if spec.variant == "fanout":
                    continue  # pure service node, no resident GIIS state
                dep.objects[spec.name] = GIIS(
                    spec.options.get("giis_name", spec.name),
                    cachettl=spec.options.get("cachettl", float("inf")),
                )

    def _collector_count(self, plan: DeploymentPlan, spec: NodeSpec) -> int:
        for edge in plan.edges_to(spec.name, EdgeKind.COLLECTION):
            source = plan.node(edge.source)
            assert isinstance(source, CollectorSpec)
            return source.count
        return 10

    def _materialize_gris(
        self, plan: DeploymentPlan, dep: Deployment, spec: ServerSpec
    ) -> None:
        count = self._collector_count(plan, spec)
        ttl = float("inf") if spec.cached else 0.0
        if spec.replicas == 1 and "hostname_format" not in spec.options:
            hostname = spec.options.get("hostname", f"{spec.host}.mcs.anl.gov")
            gris = GRIS(hostname, replicated_providers(count), cachettl=ttl, seed=spec.seed)
            if spec.primed:
                gris.search(now=0.0)  # prime the cache before measurement
            dep.objects[spec.name] = gris
            return
        # A bank: "multiple instances at each Lucky node" (paper §3.6).
        placements = self.bank_placements(spec)
        name_format = spec.options.get("hostname_format", spec.name + "{i}")
        bank: list[GRIS] = []
        for i in range(spec.replicas):
            node = placements[i % len(placements)] if placements else ""
            hostname = name_format.format(node=node, i=i)
            bank.append(
                GRIS(hostname, replicated_providers(count), cachettl=ttl, seed=spec.seed + i)
            )
        dep.objects[spec.name] = bank

    # -- phase 2: edges + priming -------------------------------------------

    def connect(
        self, plan: DeploymentPlan, run: ScenarioRun, dep: Deployment, hooks: CompileHooks
    ) -> None:
        for edge in plan.edges:
            if edge.kind is not EdgeKind.REGISTRATION:
                continue
            giis: GIIS = dep.objects[edge.target]
            pullers = dep.extras.setdefault(f"pullers:{edge.target}", {})
            ttl = float(edge.options.get("ttl", 1e12))
            source = dep.objects[edge.source]
            if isinstance(source, list):
                label_format = edge.options.get("label_format", edge.source + "{i}")
                for i, gris in enumerate(source):
                    label = label_format.format(i=i)
                    puller = _make_puller(gris)
                    pullers[label] = puller
                    giis.register(label, puller, now=0.0, ttl=ttl)
            else:
                label = edge.options.get("label", edge.source)
                puller = _make_puller(source)
                pullers[label] = puller
                giis.register(label, puller, now=0.0, ttl=ttl)
        for spec in plan.nodes:
            if isinstance(spec, (AggregateSpec, DirectorySpec)) and spec.primed:
                # "cachettl ... set to a very large value ... always in cache"
                dep.objects[spec.name].query(now=0.0)

    # -- phase 3: services ---------------------------------------------------

    def expose(
        self, plan: DeploymentPlan, run: ScenarioRun, dep: Deployment, hooks: CompileHooks
    ) -> None:
        p = run.params.giis
        for spec in plan.nodes:
            if not spec.expose or isinstance(spec, CollectorSpec):
                continue
            host = self.node_host(run, spec)
            if isinstance(spec, ServerSpec):
                factory = service_factory(self.system, Role.INFORMATION_SERVER, spec.variant)
                dep.services[spec.name] = factory(
                    run.sim, run.net, host, dep.objects[spec.name], run.params.gris
                )
                continue
            if isinstance(spec, AggregateSpec) and spec.variant == "fanout":
                children = [
                    dep.services[e.source]
                    for e in plan.edges_to(spec.name, EdgeKind.AGGREGATION)
                ]
                if not children:
                    raise PlanError(f"fanout node {spec.name!r} has no aggregation edges")
                factory = service_factory(
                    self.system, Role.AGGREGATE_INFORMATION_SERVER, "fanout"
                )
                dep.services[spec.name] = factory(
                    run.sim,
                    run.net,
                    host,
                    children,
                    p,
                    label=spec.options.get("label", f"giis:{spec.name}"),
                    top=spec.name == plan.entry,
                )
                continue
            giis = dep.objects[spec.name]
            factory = service_factory(self.system, spec.role, spec.variant)
            if isinstance(spec, AggregateSpec) and spec.variant == "default":
                dep.services[spec.name] = factory(
                    run.sim, run.net, host, giis, p, query_part=spec.query_part
                )
            else:
                dep.services[spec.name] = factory(run.sim, run.net, host, giis, p)
            if any(
                e.options.get("soft_state")
                for e in plan.edges_to(spec.name, EdgeKind.REGISTRATION)
            ):
                reg_factory = service_factory(self.system, spec.role, "registration")
                dep.services[f"{spec.name}:registration"] = reg_factory(
                    run.sim, run.net, host, giis, p, dep.extras[f"pullers:{spec.name}"]
                )

    # -- phase 4: background processes ---------------------------------------

    def activate(
        self, plan: DeploymentPlan, run: ScenarioRun, dep: Deployment, hooks: CompileHooks
    ) -> None:
        swept: list[str] = []
        for edge in plan.edges:
            if edge.kind is not EdgeKind.REGISTRATION or not edge.options.get("soft_state"):
                continue
            if hooks.registration_retry is None:
                raise PlanError(
                    f"edge {edge.source}->{edge.target} wants soft-state registrars; "
                    "compile with a registration_retry policy"
                )
            source = plan.node(edge.source)
            label = edge.options.get("label", edge.source)
            reg_service = dep.services[f"{edge.target}:registration"]
            st = RegistrarStats(registered=True, last_confirmed=0.0)
            dep.extras.setdefault("registrar_stats", []).append(st)
            run.sim.spawn(
                soft_state_registrar(
                    run.sim,
                    run.net,
                    resolve_host(run, source.host or ""),
                    reg_service,
                    label,
                    interval=float(edge.options["interval"]),
                    ttl=float(edge.options["ttl"]),
                    retry=hooks.registration_retry,
                    stats=st,
                ),
                name=f"registrar:{label}",
            )
            if edge.target not in swept:
                swept.append(edge.target)
        for target in swept:
            giis: GIIS = dep.objects[target]

            def lease_sweeper(giis: GIIS = giis) -> _t.Generator:
                while True:
                    yield run.sim.timeout(1.0)
                    giis.sweep(run.sim.now)

            run.sim.spawn(lease_sweeper(), name="giis-sweep")
