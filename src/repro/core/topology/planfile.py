"""Plan files: JSON persistence for :class:`DeploymentPlan`.

A ``.plan`` file is plain JSON — the node specs keyed by role kind,
the typed edges, the entry node — so deployments can live next to the
code (``examples/*.plan``) and be validated in CI with
``repro-topology check``.
"""

from __future__ import annotations

import json
import typing as _t
from pathlib import Path

from repro.core.components import System
from repro.core.topology.plan import (
    AggregateSpec,
    CollectorSpec,
    DeploymentPlan,
    DirectorySpec,
    Edge,
    EdgeKind,
    NodeSpec,
    PlanError,
    ServerSpec,
)

__all__ = ["dumps", "loads", "dump", "load"]

_KINDS: dict[str, type[NodeSpec]] = {
    "collector": CollectorSpec,
    "server": ServerSpec,
    "aggregate": AggregateSpec,
    "directory": DirectorySpec,
}
_KIND_NAMES = {cls: kind for kind, cls in _KINDS.items()}

# Per-kind extra fields on top of the NodeSpec base.
_EXTRA_FIELDS: dict[str, tuple[str, ...]] = {
    "collector": ("count", "flavor"),
    "server": ("cached", "primed"),
    "aggregate": ("primed", "query_part"),
    "directory": ("primed",),
}
_BASE_FIELDS = (
    "host", "variant", "seed", "replicas", "expose", "tracked", "fault_target",
)


def _node_to_dict(spec: NodeSpec) -> dict[str, _t.Any]:
    kind = _KIND_NAMES[type(spec)]
    out: dict[str, _t.Any] = {"kind": kind, "name": spec.name}
    for field in _BASE_FIELDS + _EXTRA_FIELDS[kind]:
        out[field] = getattr(spec, field)
    # Only serialized when non-default so committed plan files written
    # before fidelity tiers existed stay byte-identical on round-trip.
    if spec.fidelity != "exact":
        out["fidelity"] = spec.fidelity
    if spec.options:
        out["options"] = spec.options
    return out


def _node_from_dict(raw: dict[str, _t.Any]) -> NodeSpec:
    data = dict(raw)
    kind = data.pop("kind", None)
    if kind not in _KINDS:
        raise PlanError(f"node {data.get('name')!r}: unknown kind {kind!r}")
    cls = _KINDS[kind]
    allowed = {"name", "options", "fidelity", *_BASE_FIELDS, *_EXTRA_FIELDS[kind]}
    unknown = set(data) - allowed
    if unknown:
        raise PlanError(f"node {data.get('name')!r}: unknown fields {sorted(unknown)}")
    return cls(**data)


def dumps(plan: DeploymentPlan) -> str:
    """Serialize a plan to indented JSON."""
    doc = {
        "system": plan.system.value,
        "name": plan.name,
        "description": plan.description,
        "entry": plan.entry,
        "nodes": [_node_to_dict(spec) for spec in plan.nodes],
        "edges": [
            {
                "kind": e.kind.value,
                "source": e.source,
                "target": e.target,
                **({"options": e.options} if e.options else {}),
            }
            for e in plan.edges
        ],
    }
    return json.dumps(doc, indent=2) + "\n"


def loads(text: str) -> DeploymentPlan:
    """Parse a plan from JSON; structural errors become :class:`PlanError`."""
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise PlanError(f"not valid JSON: {exc}") from exc
    if not isinstance(doc, dict):
        raise PlanError("a plan file must hold a JSON object")
    try:
        system = System(doc["system"])
    except (KeyError, ValueError) as exc:
        raise PlanError(f"bad or missing system: {doc.get('system')!r}") from exc
    try:
        nodes = tuple(_node_from_dict(raw) for raw in doc.get("nodes", ()))
        edges = tuple(
            Edge(
                kind=EdgeKind(raw["kind"]),
                source=raw["source"],
                target=raw["target"],
                options=raw.get("options", {}),
            )
            for raw in doc.get("edges", ())
        )
    except (TypeError, KeyError, ValueError) as exc:
        if isinstance(exc, PlanError):
            raise
        raise PlanError(f"malformed plan file: {exc}") from exc
    return DeploymentPlan(
        system=system,
        name=doc.get("name", ""),
        nodes=nodes,
        edges=edges,
        entry=doc.get("entry", ""),
        description=doc.get("description", ""),
    )


def dump(plan: DeploymentPlan, path: str | Path) -> None:
    Path(path).write_text(dumps(plan))


def load(path: str | Path) -> DeploymentPlan:
    return loads(Path(path).read_text())
