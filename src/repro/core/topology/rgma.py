"""The R-GMA adapter: plans onto ProducerServlet/Registry/ConsumerServlet.

R-GMA has no aggregate information server (Table 1's empty cell —
plan validation enforces it), but it has the study's only *mediator*:
the ConsumerServlet, an information server fronting another one.
Mediation edges carry the CS->PS hop and its retry attachment point;
registration edges attach producers to the Registry with leases.
"""

from __future__ import annotations

import typing as _t

from repro.core.components import Role, System
from repro.core.kernels.build import rgma_connect, rgma_materialize
from repro.core.runner import ScenarioRun
from repro.core.services import service_factory
from repro.core.topology.adapters import (
    CompileHooks,
    Deployment,
    SystemAdapter,
    register_adapter,
)
from repro.core.topology.plan import (
    CollectorSpec,
    DeploymentPlan,
    DirectorySpec,
    EdgeKind,
    ServerSpec,
)
from repro.rgma.producer_servlet import ProducerServlet

__all__ = ["RgmaAdapter"]


@register_adapter
class RgmaAdapter(SystemAdapter):
    system = System.RGMA

    # -- phases 1+2: runtime-free, shared with the live plane ----------------

    def materialize(self, plan: DeploymentPlan, run: ScenarioRun, dep: Deployment) -> None:
        rgma_materialize(plan, dep.objects, dep.extras)

    def connect(
        self, plan: DeploymentPlan, run: ScenarioRun, dep: Deployment, hooks: CompileHooks
    ) -> None:
        rgma_connect(plan, dep.objects, dep.extras)

    def expose(
        self, plan: DeploymentPlan, run: ScenarioRun, dep: Deployment, hooks: CompileHooks
    ) -> None:
        p = run.params
        for spec in plan.nodes:
            if not spec.expose or isinstance(spec, CollectorSpec):
                continue
            host = self.node_host(run, spec)
            if isinstance(spec, DirectorySpec):
                factory = service_factory(self.system, Role.DIRECTORY_SERVER, spec.variant)
                dep.services[spec.name] = factory(
                    run.sim, run.net, host, dep.objects[spec.name], p.registry
                )
            elif isinstance(spec, ServerSpec) and spec.variant == "mediator":
                edges = plan.edges_from(spec.name, EdgeKind.MEDIATION)
                upstream = dep.services[edges[0].target]
                factory = service_factory(self.system, Role.INFORMATION_SERVER, "mediator")
                dep.services[spec.name] = factory(
                    run.sim,
                    run.net,
                    host,
                    spec.options.get("cs_name", spec.name),
                    upstream,
                    p.consumer_servlet,
                    retry=hooks.mediation_retry,
                )
            elif isinstance(spec, ServerSpec):
                factory = service_factory(self.system, Role.INFORMATION_SERVER, spec.variant)
                dep.services[spec.name] = factory(
                    run.sim, run.net, host, dep.objects[spec.name], p.producer_servlet
                )
        # Per-host mediator routing (the rgma-ps-lucky consumer layout):
        # when the entry is the anchor PS, clients talk to the mediator
        # co-located on their own node.
        mediators = [
            spec
            for spec in plan.nodes
            if isinstance(spec, ServerSpec) and spec.variant == "mediator"
        ]
        if mediators and plan.entry not in {spec.name for spec in mediators}:
            for spec in mediators:
                dep.routes[self.node_host(run, spec)] = dep.services[spec.name]

    def activate(
        self, plan: DeploymentPlan, run: ScenarioRun, dep: Deployment, hooks: CompileHooks
    ) -> None:
        for spec in plan.nodes:
            if not (
                isinstance(spec, ServerSpec)
                and spec.variant == "default"
                and spec.options.get("publisher")
            ):
                continue
            servlet: ProducerServlet = dep.objects[spec.name]
            host = self.node_host(run, spec)
            interval = float(spec.options.get("publish_interval", 30.0))

            def publisher(
                servlet: ProducerServlet = servlet, host=host, interval: float = interval
            ) -> _t.Generator:
                while True:
                    yield run.sim.timeout(interval)
                    count = servlet.publish_all(now=run.sim.now)
                    # Buffer inserts burn a little CPU on the servlet host.
                    yield host.compute(0.0008 * count)

            run.sim.spawn(publisher(), name=f"publisher:{servlet.name}")
