"""``repro-topology`` — inspect, export and validate deployment plans.

Subcommands:

* ``list``                 — the catalog of named plans;
* ``show NAME|FILE``       — validate and pretty-print one plan;
* ``plan NAME [-o FILE]``  — export a catalog plan as a ``.plan`` JSON file;
* ``check FILE...``        — validate plan files (the CI step).
"""

from __future__ import annotations

import argparse
import sys
import typing as _t
from pathlib import Path

from repro.core.cliversion import add_version_argument
from repro.core.topology import catalog, planfile
from repro.core.topology.plan import DeploymentPlan, PlanError

__all__ = ["main"]


def _resolve(name: str) -> DeploymentPlan:
    entries = catalog.catalog_entries()
    if name in entries:
        return entries[name]()
    path = Path(name)
    if path.exists():
        return planfile.load(path)
    raise PlanError(
        f"{name!r} is neither a catalog plan nor a file; "
        f"try 'repro-topology list'"
    )


def _cmd_list(_args: argparse.Namespace) -> int:
    entries = catalog.catalog_entries()
    width = max(len(name) for name in entries)
    for name, thunk in entries.items():
        plan = thunk()
        print(f"{name:<{width}}  [{plan.system.value}] {plan.description}")
    return 0


def _cmd_show(args: argparse.Namespace) -> int:
    plan = _resolve(args.name)
    plan.validate()
    print(plan.describe())
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    plan = _resolve(args.name)
    plan.validate()
    text = planfile.dumps(plan)
    if args.output:
        Path(args.output).write_text(text)
        print(f"wrote {args.output}")
    else:
        sys.stdout.write(text)
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    failures = 0
    for path in args.paths:
        try:
            plan = planfile.load(path)
            plan.validate()
        except (PlanError, OSError) as exc:
            failures += 1
            print(f"FAIL {path}: {exc}")
        else:
            print(
                f"ok   {path}: {plan.name} [{plan.system.value}] "
                f"{len(plan.nodes)} nodes, {len(plan.edges)} edges"
            )
    return 1 if failures else 0


def main(argv: _t.Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-topology",
        description="Inspect, export and validate declarative deployment plans.",
    )
    add_version_argument(parser)
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list the catalog of named plans")
    p_show = sub.add_parser("show", help="validate and pretty-print one plan")
    p_show.add_argument("name", help="catalog name or .plan file path")
    p_plan = sub.add_parser("plan", help="export a catalog plan as JSON")
    p_plan.add_argument("name", help="catalog name or .plan file path")
    p_plan.add_argument("-o", "--output", help="write to this file instead of stdout")
    p_check = sub.add_parser("check", help="validate plan files")
    p_check.add_argument("paths", nargs="+", help=".plan files to validate")
    args = parser.parse_args(argv)
    handler = {
        "list": _cmd_list,
        "show": _cmd_show,
        "plan": _cmd_plan,
        "check": _cmd_check,
    }[args.command]
    try:
        return handler(args)
    except PlanError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
