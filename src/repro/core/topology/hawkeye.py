"""The Hawkeye adapter: plans onto Agent/Manager, ClassAd advertising.

The Manager plays both the aggregate and the directory role (Table 1);
its data plane is push-based, so the plan's edges compile into three
advertising styles:

* ``mode="local"`` — the Experiment-2 control plane: registered Agents
  synthesize Startd ads and hand them to a co-resident collector;
* ``mode="wire"`` — Experiment 4's ``hawkeye_advertise`` traffic:
  synthetic machine banks push ads through the Manager's ingest
  service at 30-second intervals;
* ``mode="resilient"`` — the fault experiments: advertisers carry a
  retry policy and delivery stats through Manager outages.
"""

from __future__ import annotations

import typing as _t

from repro.core.components import Role, System
from repro.core.kernels.build import hawkeye_connect, hawkeye_materialize
from repro.core.runner import ScenarioRun
from repro.core.services import service_factory
from repro.core.topology.adapters import (
    CompileHooks,
    Deployment,
    PlanError,
    SystemAdapter,
    register_adapter,
    resolve_host,
)
from repro.core.topology.plan import (
    AggregateSpec,
    CollectorSpec,
    DeploymentPlan,
    Edge,
    EdgeKind,
    ServerSpec,
)
from repro.hawkeye.advertise import synthesize_startd_ad
from repro.hawkeye.agent import Agent
from repro.hawkeye.manager import Manager
from repro.hawkeye.resilience import AdvertiserStats, resilient_advertiser
from repro.sim.resources import Mutex
from repro.sim.rpc import Service, call

__all__ = ["HawkeyeAdapter"]


def _advertise_edges(plan: DeploymentPlan, name: str) -> list[Edge]:
    """Incoming edges that carry ads over the wire (need an ingest path)."""
    return [
        e
        for e in plan.edges_to(name)
        if e.kind in (EdgeKind.REGISTRATION, EdgeKind.AGGREGATION)
        and e.options.get("mode") in ("wire", "resilient")
    ]


@register_adapter
class HawkeyeAdapter(SystemAdapter):
    system = System.HAWKEYE

    # -- phases 1+2: runtime-free, shared with the live plane ----------------

    def materialize(self, plan: DeploymentPlan, run: ScenarioRun, dep: Deployment) -> None:
        hawkeye_materialize(plan, dep.objects, dep.extras)

    def connect(
        self, plan: DeploymentPlan, run: ScenarioRun, dep: Deployment, hooks: CompileHooks
    ) -> None:
        hawkeye_connect(plan, dep.objects, dep.extras)

    def expose(
        self, plan: DeploymentPlan, run: ScenarioRun, dep: Deployment, hooks: CompileHooks
    ) -> None:
        p = run.params.manager
        for spec in plan.nodes:
            if not spec.expose or isinstance(spec, CollectorSpec):
                continue
            host = self.node_host(run, spec)
            if isinstance(spec, ServerSpec):
                factory = service_factory(self.system, Role.INFORMATION_SERVER, spec.variant)
                dep.services[spec.name] = factory(
                    run.sim, run.net, host, dep.objects[spec.name], run.params.agent
                )
                continue
            if isinstance(spec, AggregateSpec) and spec.variant == "fanout":
                children = [
                    dep.services[e.source]
                    for e in plan.edges_to(spec.name, EdgeKind.AGGREGATION)
                ]
                if not children:
                    raise PlanError(f"fanout node {spec.name!r} has no aggregation edges")
                factory = service_factory(
                    self.system, Role.AGGREGATE_INFORMATION_SERVER, "fanout"
                )
                dep.services[spec.name] = factory(
                    run.sim,
                    run.net,
                    host,
                    children,
                    p,
                    label=spec.options.get("label", f"manager:{spec.name}"),
                    top=spec.name == plan.entry,
                )
                continue
            manager = dep.objects[spec.name]
            needs_ingest = bool(_advertise_edges(plan, spec.name))
            if isinstance(spec, AggregateSpec):
                factory = service_factory(
                    self.system, Role.AGGREGATE_INFORMATION_SERVER, spec.variant
                )
                service, lock = factory(run.sim, run.net, host, manager, p)
                dep.services[spec.name] = service
            else:
                factory = service_factory(self.system, Role.DIRECTORY_SERVER, spec.variant)
                dep.services[spec.name] = factory(run.sim, run.net, host, manager, p)
                lock = Mutex(run.sim, name=f"manager:{manager.name}:collector")
            if needs_ingest:
                ingest_factory = service_factory(
                    self.system, Role.AGGREGATE_INFORMATION_SERVER, "ingest"
                )
                dep.services[f"{spec.name}:ingest"] = ingest_factory(
                    run.sim, run.net, host, manager, p, lock
                )

    def activate(
        self, plan: DeploymentPlan, run: ScenarioRun, dep: Deployment, hooks: CompileHooks
    ) -> None:
        p = run.params.manager
        for edge in plan.edges:
            mode = edge.options.get("mode")
            if edge.kind is EdgeKind.REGISTRATION and mode == "local":
                self._spawn_local_advertiser(run, dep, edge, p)
            elif edge.kind is EdgeKind.REGISTRATION and mode == "resilient":
                self._spawn_resilient_advertiser(plan, run, dep, edge, hooks)
            elif edge.kind is EdgeKind.AGGREGATION and mode == "wire":
                self._spawn_wire_advertisers(plan, run, dep, edge, p)

    def _spawn_local_advertiser(
        self, run: ScenarioRun, dep: Deployment, edge: Edge, p: _t.Any
    ) -> None:
        """Experiment 2's in-process ad push (no wire, collector CPU only)."""
        agent: Agent = dep.objects[edge.source]
        manager: Manager = dep.objects[edge.target]
        manager_host = self.node_host(run, dep.plan.node(edge.target))
        interval = float(edge.options.get("interval", p.advertise_interval))
        ingest_cpu = p.ad_ingest_cpu

        def advertiser() -> _t.Generator:
            while True:
                yield run.sim.timeout(interval)
                ad, _answer = agent.make_startd_ad(now=run.sim.now)
                yield manager_host.compute(ingest_cpu)
                manager.receive_ad(ad, run.sim.now)

        run.sim.spawn(advertiser(), name=f"advertiser:{agent.machine}")

    def _spawn_resilient_advertiser(
        self,
        plan: DeploymentPlan,
        run: ScenarioRun,
        dep: Deployment,
        edge: Edge,
        hooks: CompileHooks,
    ) -> None:
        if hooks.advertise_retry is None:
            raise PlanError(
                f"edge {edge.source}->{edge.target} wants resilient advertisers; "
                "compile with an advertise_retry policy"
            )
        source = plan.node(edge.source)
        agent: Agent = dep.objects[edge.source]
        ingest = dep.services[f"{edge.target}:ingest"]
        st = AdvertiserStats(last_delivered=0.0)
        dep.extras.setdefault("advertiser_stats", []).append(st)
        label = edge.options.get("label", source.host or edge.source)
        run.sim.spawn(
            resilient_advertiser(
                run.sim,
                run.net,
                resolve_host(run, source.host or ""),
                ingest,
                agent,
                interval=float(edge.options.get("interval", 30.0)),
                retry=hooks.advertise_retry,
                stats=st,
            ),
            name=f"resilient-adv:{label}",
        )

    def _spawn_wire_advertisers(
        self, plan: DeploymentPlan, run: ScenarioRun, dep: Deployment, edge: Edge, p: _t.Any
    ) -> None:
        """Experiment 4's hawkeye_advertise pushes from a synthetic bank."""
        source = plan.node(edge.source)
        manager: Manager = dep.objects[edge.target]
        ingest: Service = dep.services[f"{edge.target}:ingest"]
        placements = self.bank_placements(source)
        machine_format = source.options.get("machine_format", source.name + "{i}")
        interval = float(edge.options.get("interval", p.advertise_interval))
        stream_key = edge.options.get("offset_stream", ("advertisers", source.name))
        rng = run.rng.stream(*stream_key)

        def advertiser(machine: str, host: _t.Any, offset: float) -> _t.Generator:
            local_rng = run.rng.stream("ad", machine)
            ad = synthesize_startd_ad(machine, local_rng, now=0.0)
            manager.receive_ad(ad, now=0.0)  # pool is warm at t=0
            yield run.sim.timeout(offset)
            while True:
                ad = synthesize_startd_ad(machine, local_rng, now=run.sim.now)
                try:
                    yield from call(
                        run.sim,
                        run.net,
                        host,
                        ingest,
                        {"ad": ad},
                        size=p.ad_wire_bytes,
                    )
                except Exception:
                    pass  # a dropped ad is just a missed update
                yield run.sim.timeout(interval)

        for i in range(source.replicas):
            machine = machine_format.format(i=i)
            host = resolve_host(run, placements[i % len(placements)])
            offset = float(rng.uniform(0.0, interval))
            run.sim.spawn(advertiser(machine, host, offset), name=f"adv:{machine}")
