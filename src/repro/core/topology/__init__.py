"""Declarative topology / deployment plane (Table 1 as code).

An experiment is a :class:`DeploymentPlan` — typed node specs keyed by
the paper's four functional roles, explicit registration / aggregation
/ mediation edges, and placement onto the Lucky/UC testbed — compiled
by a per-system :class:`SystemAdapter` into the repo's functional
objects and :class:`~repro.sim.rpc.Service` instances.

Accessing any adapter-related attribute (``compile_plan``,
``ADAPTERS``, ...) registers the MDS, R-GMA and Hawkeye adapters.  The
re-exports resolve lazily (PEP 562) so the pure plan layer —
:mod:`~repro.core.topology.plan`, :mod:`~repro.core.topology.catalog`,
:mod:`~repro.core.topology.planfile` — stays importable without the
simulator; the runtime-agnostic kernels and the live plane depend on
that.
"""

import importlib

# Names served by the pure plan module (sim-free).
_PLAN_ATTRS = {
    "FIDELITY_TIERS",
    "AggregateSpec",
    "CollectorSpec",
    "DeploymentPlan",
    "DirectorySpec",
    "Edge",
    "EdgeKind",
    "NodeSpec",
    "PlanError",
    "ServerSpec",
}

# Names served by the adapter layer (pulls in the DES runtime).
_ADAPTER_ATTRS = {
    "ADAPTERS",
    "CompileHooks",
    "Deployment",
    "SystemAdapter",
    "compile_plan",
    "register_adapter",
    "resolve_host",
}

__all__ = sorted(_PLAN_ATTRS | _ADAPTER_ATTRS)


def __getattr__(name: str):
    if name in _PLAN_ATTRS:
        module = importlib.import_module("repro.core.topology.plan")
    elif name in _ADAPTER_ATTRS:
        module = importlib.import_module("repro.core.topology.adapters")
        # Importing the system modules registers their adapters.
        importlib.import_module("repro.core.topology.mds")
        importlib.import_module("repro.core.topology.rgma")
        importlib.import_module("repro.core.topology.hawkeye")
    else:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    value = getattr(module, name)
    globals()[name] = value
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(__all__))
