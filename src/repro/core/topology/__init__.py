"""Declarative topology / deployment plane (Table 1 as code).

An experiment is a :class:`DeploymentPlan` — typed node specs keyed by
the paper's four functional roles, explicit registration / aggregation
/ mediation edges, and placement onto the Lucky/UC testbed — compiled
by a per-system :class:`SystemAdapter` into the repo's functional
objects and :class:`~repro.sim.rpc.Service` instances.

Importing this package registers the MDS, R-GMA and Hawkeye adapters.
"""

from repro.core.topology.adapters import (
    ADAPTERS,
    CompileHooks,
    Deployment,
    SystemAdapter,
    compile_plan,
    register_adapter,
    resolve_host,
)
from repro.core.topology.plan import (
    FIDELITY_TIERS,
    AggregateSpec,
    CollectorSpec,
    DeploymentPlan,
    DirectorySpec,
    Edge,
    EdgeKind,
    NodeSpec,
    PlanError,
    ServerSpec,
)

# Importing the system modules registers their adapters.
from repro.core.topology import hawkeye as _hawkeye  # noqa: F401
from repro.core.topology import mds as _mds  # noqa: F401
from repro.core.topology import rgma as _rgma  # noqa: F401

__all__ = [
    "ADAPTERS",
    "AggregateSpec",
    "CollectorSpec",
    "CompileHooks",
    "Deployment",
    "DeploymentPlan",
    "DirectorySpec",
    "Edge",
    "EdgeKind",
    "FIDELITY_TIERS",
    "NodeSpec",
    "PlanError",
    "ServerSpec",
    "SystemAdapter",
    "compile_plan",
    "register_adapter",
    "resolve_host",
]
