"""Closed-loop load generation against a live deployment.

The same user model as the DES workload (:mod:`repro.core.workload`):
each user issues a blocking request, records the outcome, thinks for a
sampled wait (the paper's 1-second pattern by default, or any of
``THINK_PATTERNS``), and repeats.  Outcomes land in the same
:class:`~repro.core.metrics.RequestLog` with the same outcome labels,
timestamped in *model seconds* from the deployment clock — so a live
window reduces with the same arithmetic as a DES window.
"""

from __future__ import annotations

import asyncio
import typing as _t
from dataclasses import dataclass

import numpy as np

from repro.core.components import System
from repro.core.metrics import (
    OUTCOME_ERROR,
    OUTCOME_OK,
    OUTCOME_REFUSED,
    OUTCOME_TIMEOUT,
    RequestLog,
)
from repro.core.params import WorkloadParams
from repro.core.scenario.model import Scenario, ScenarioError
from repro.core.workload import make_think_sampler
from repro.errors import ServiceUnavailableError
from repro.live.clients import ProtocolError, http_query, line_query

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.live.runtime import LiveDeployment

__all__ = [
    "LiveLoadResult",
    "LiveSummary",
    "default_payload",
    "query_once",
    "run_load",
    "reduce_log",
]


@dataclass
class LiveLoadResult:
    """What a load run observed, in model seconds."""

    log: RequestLog
    started: float  # model time the load began
    finished: float  # model time the load stopped
    protocol_errors: int = 0

    @property
    def duration(self) -> float:
        return self.finished - self.started


@dataclass(frozen=True)
class LiveSummary:
    """The live analogue of a DES window reduction."""

    throughput: float
    response_time: float
    completed: int
    refused: int
    timeouts: int
    errors: int
    window: float


def default_payload(system: System) -> dict[str, _t.Any]:
    """The per-system query the paper's harness issued."""
    if system is System.MDS:
        return {"filter": "(objectclass=*)"}
    if system is System.HAWKEYE:
        return {"query": "status"}
    return {"sql": "SELECT * FROM cpuLoad"}


async def query_once(
    dep: "LiveDeployment",
    name: str | None = None,
    payload: _t.Any = None,
    *,
    timeout: float | None = None,
) -> tuple[_t.Any, str]:
    """One client exchange against a deployment's service (entry by default)."""
    name = dep.entry if name is None else name
    assert name is not None
    port = dep.ports[name]
    if payload is None:
        payload = default_payload(dep.plan.system)
    if dep.plan.system is System.RGMA:
        return await http_query(dep.host, port, payload, timeout=timeout)
    verb = "SEARCH" if dep.plan.system is System.MDS else "QUERY"
    return await line_query(dep.host, port, payload, verb=verb, timeout=timeout)


async def run_load(
    dep: "LiveDeployment",
    *,
    users: int,
    duration: float,
    wp: WorkloadParams | None = None,
    seed: int = 1,
    payload: _t.Any = None,
    target: str | None = None,
    scenario: "Scenario | None" = None,
) -> LiveLoadResult:
    """Drive ``users`` closed loops for ``duration`` model seconds.

    ``target`` names the service to hit (the plan entry by default).
    Start times are de-phased over ``wp.start_spread`` exactly like the
    DES workload, so the two runtimes ramp comparably.

    ``scenario`` applies the *workload* half of a declarative scenario:
    arrival modulation scales each think wait by the scenario's rate
    factor at the current model time (anchored at load start), and a
    client mix partitions the population across think patterns exactly
    like the DES spawn does.  Churn and WAN weather manipulate
    simulated infrastructure and have no live equivalent here —
    scenarios using them are rejected (run them on the exact DES).
    """
    wp = wp or WorkloadParams()
    workloads: list[WorkloadParams] = [wp] * users
    think_scale = None
    if scenario is not None:
        scenario.validate()
        blocked = scenario.requires_exact()
        if blocked:
            raise ScenarioError(
                f"scenario {scenario.name!r} uses {', '.join(blocked)}; the live "
                "load generator models arrivals and mixes only — use the DES"
            )
        workloads = []
        for count, group_wp in scenario.component_workloads(wp, users):
            workloads.extend([group_wp] * count)
        if scenario.arrivals:
            think_scale = scenario.think_scale
    clock = dep.clock
    log = RequestLog()
    protocol_errors = [0]
    started = clock.now()
    deadline = started + duration

    async def user(uid: int) -> None:
        uwp = workloads[uid]
        rng = np.random.default_rng((seed, uid))
        think = make_think_sampler(uwp, rng)
        await clock.sleep(float(rng.uniform(0.0, min(uwp.start_spread, duration / 2))))
        while clock.now() < deadline:
            t0 = clock.now()
            try:
                await asyncio.wait_for(
                    query_once(dep, target, payload),
                    None
                    if uwp.request_timeout is None
                    else clock.wall(uwp.request_timeout),
                )
                log.add(uid, t0, clock.now(), OUTCOME_OK)
            except ServiceUnavailableError:
                log.add(uid, t0, clock.now(), OUTCOME_REFUSED)
                await clock.sleep(uwp.retry_wait)
                continue
            except asyncio.TimeoutError:
                log.add(uid, t0, clock.now(), OUTCOME_TIMEOUT)
            except ProtocolError:
                protocol_errors[0] += 1
                log.add(uid, t0, clock.now(), OUTCOME_ERROR)
            except (ConnectionError, OSError):
                log.add(uid, t0, clock.now(), OUTCOME_ERROR)
            wait = think()
            if think_scale is not None:
                wait *= think_scale(clock.now() - started)
            await clock.sleep(wait)

    tasks = [asyncio.ensure_future(user(uid)) for uid in range(users)]
    try:
        await asyncio.wait_for(
            asyncio.gather(*tasks), clock.wall(duration) + 30.0
        )
    except asyncio.TimeoutError:  # pragma: no cover - stuck-request backstop
        for task in tasks:
            task.cancel()
        await asyncio.gather(*tasks, return_exceptions=True)
    return LiveLoadResult(
        log=log,
        started=started,
        finished=clock.now(),
        protocol_errors=protocol_errors[0],
    )


def reduce_log(
    result: LiveLoadResult, *, warmup_fraction: float = 0.25
) -> LiveSummary:
    """Reduce a load run to the paper's client-side metrics.

    The first ``warmup_fraction`` of the run is dropped (ramp-in), the
    remainder is the measurement window — the live analogue of the DES
    warm-up/window split.
    """
    start = result.started + warmup_fraction * result.duration
    end = result.finished
    window = max(end - start, 1e-9)
    records = result.log.in_window(start, end)
    successes = [r for r in records if r.outcome == OUTCOME_OK]
    return LiveSummary(
        throughput=len(successes) / window,
        response_time=(
            sum(r.duration for r in successes) / len(successes) if successes else 0.0
        ),
        completed=len(successes),
        refused=sum(1 for r in records if r.outcome == OUTCOME_REFUSED),
        timeouts=sum(1 for r in records if r.outcome == OUTCOME_TIMEOUT),
        errors=sum(1 for r in records if r.outcome == OUTCOME_ERROR),
        window=window,
    )
