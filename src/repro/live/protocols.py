"""Wire protocols for the live plane, one dialect per studied system.

Each exposed :class:`~repro.live.runtime.LiveService` gets its own TCP
listener speaking the idiom of the system it reproduces:

* **MDS** — an LDAP-flavoured line protocol: the client sends one
  request line (``SEARCH <json>``, ``REGISTER <json>`` …); the server
  answers ``OK <json-value> <nbytes>`` followed by ``nbytes`` of LDIF
  body (:mod:`repro.ldap.ldif`), or ``ERR <kind> <message>``.
* **Hawkeye** — the same line framing with ClassAd bodies
  (``ad.serialize()`` text, :mod:`repro.classad`): ``QUERY <json>`` for
  reads, ``ADVERTISE <json>`` into the Manager's ingest port.
* **R-GMA** — servlets, so HTTP/1.1: ``POST /query`` with a JSON body;
  the 200 response carries the typed tab-framed SQL result set
  (:func:`repro.relational.types.encode_result`) and echoes the
  structured answer in an ``X-Repro-Value`` header.  Refusals are 503,
  application errors 500.

Every exchange is one request per connection — connection setup is part
of the studied cost model, so clients reconnect per query exactly like
the paper's harness did.
"""

from __future__ import annotations

import asyncio
import json
import typing as _t

from repro.core.components import System
from repro.errors import ServiceCrashError, ServiceUnavailableError

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.live.runtime import LiveService

__all__ = ["server_for", "MAX_LINE", "MAX_BODY"]

#: Framing limits: a request line and an HTTP body we are willing to read.
MAX_LINE = 64 * 1024
MAX_BODY = 4 * 1024 * 1024

_HAWKEYE_INGEST_VERB = "ADVERTISE"

#: Request verbs each line dialect accepts; anything else is a protocol error.
_LINE_VERBS = {
    System.MDS: frozenset({"SEARCH", "REGISTER"}),
    System.HAWKEYE: frozenset({"QUERY", _HAWKEYE_INGEST_VERB}),
}


def _encode_value(value: _t.Any) -> str:
    try:
        return json.dumps(value, separators=(",", ":"))
    except TypeError:
        return json.dumps({"repr": repr(value)}, separators=(",", ":"))


async def _serve_line(
    service: "LiveService",
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    verbs: frozenset[str] = frozenset(),
) -> None:
    """One line-framed exchange (MDS and Hawkeye dialects)."""
    try:
        line = await reader.readline()
        if not line or len(line) > MAX_LINE:
            return
        text = line.decode("utf-8", "replace").strip()
        verb, _, rest = text.partition(" ")
        if not verb:
            writer.write(b"ERR protocol empty request\n")
            return
        if verbs and verb not in verbs:
            writer.write(f"ERR protocol unknown verb {verb!r}\n".encode())
            return
        try:
            payload = json.loads(rest) if rest else {}
        except json.JSONDecodeError as exc:
            writer.write(f"ERR protocol bad json: {exc}\n".encode())
            return
        if verb == _HAWKEYE_INGEST_VERB and isinstance(payload, dict):
            payload = _decode_ad_payload(payload)
        try:
            kr = await service.request(payload)
        except ServiceUnavailableError as exc:
            writer.write(f"ERR refused {exc}\n".encode())
            return
        except ServiceCrashError as exc:
            writer.write(f"ERR crashed {exc}\n".encode())
            return
        except Exception as exc:
            writer.write(f"ERR error {type(exc).__name__}: {exc}\n".encode())
            return
        body = (kr.wire or "").encode()
        writer.write(
            f"OK {_encode_value(kr.value)} {len(body)}\n".encode() + body
        )
    finally:
        try:
            await writer.drain()
        except (ConnectionError, OSError):
            pass
        writer.close()


def _decode_ad_payload(payload: dict) -> dict:
    """ADVERTISE carries a ClassAd as serialized text; managers want the object."""
    ad_text = payload.get("ad")
    if isinstance(ad_text, str):
        from repro.classad.ads import ClassAd

        payload = dict(payload)
        payload["ad"] = ClassAd.deserialize(ad_text)
    return payload


async def _serve_http(
    service: "LiveService", reader: asyncio.StreamReader, writer: asyncio.StreamWriter
) -> None:
    """One HTTP/1.1 exchange (the R-GMA servlet dialect)."""

    def respond(status: str, body: bytes, value: _t.Any = None) -> None:
        headers = [
            f"HTTP/1.1 {status}",
            "Content-Type: text/plain; charset=utf-8",
            f"Content-Length: {len(body)}",
            "Connection: close",
        ]
        if value is not None:
            headers.append(f"X-Repro-Value: {_encode_value(value)}")
        writer.write(("\r\n".join(headers) + "\r\n\r\n").encode() + body)

    try:
        request_line = await reader.readline()
        if not request_line or len(request_line) > MAX_LINE:
            return
        try:
            method, _path, _version = request_line.decode().split(None, 2)
        except ValueError:
            respond("400 Bad Request", b"malformed request line\n")
            return
        content_length = 0
        while True:
            header = await reader.readline()
            if header in (b"\r\n", b"\n", b""):
                break
            name, _, header_value = header.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = min(int(header_value), MAX_BODY)
                except ValueError:
                    content_length = 0
        raw = await reader.readexactly(content_length) if content_length else b""
        if method.upper() != "POST":
            respond("405 Method Not Allowed", b"POST a JSON query\n")
            return
        try:
            payload = json.loads(raw) if raw else {}
        except json.JSONDecodeError as exc:
            respond("400 Bad Request", f"bad json: {exc}\n".encode())
            return
        try:
            kr = await service.request(payload)
        except ServiceUnavailableError as exc:
            respond("503 Service Unavailable", f"{exc}\n".encode())
            return
        except Exception as exc:
            respond("500 Internal Server Error", f"{type(exc).__name__}: {exc}\n".encode())
            return
        respond("200 OK", (kr.wire or "").encode(), value=kr.value)
    except asyncio.IncompleteReadError:
        pass
    finally:
        try:
            await writer.drain()
        except (ConnectionError, OSError):
            pass
        writer.close()


async def server_for(
    system: System, service: "LiveService", host: str
) -> asyncio.base_events.Server:
    """Bind ``service`` on an OS-assigned port speaking its system's dialect."""
    if system is System.RGMA:
        async def handler(reader, writer):
            await _serve_http(service, reader, writer)
    else:
        verbs = _LINE_VERBS[system]

        async def handler(reader, writer):
            await _serve_line(service, reader, writer, verbs)

    async def on_connection(
        reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            await handler(reader, writer)
        except (ConnectionError, OSError):  # client went away mid-exchange
            try:
                writer.close()
            except Exception:
                pass

    return await asyncio.start_server(on_connection, host, 0)
