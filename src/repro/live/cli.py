"""``repro-serve``: boot a deployment plan as real localhost services.

Two subcommands:

* ``serve`` — compile a catalog plan onto the asyncio runtime, bind
  every exposed service on an OS-assigned port, print the port map and
  serve until interrupted (or ``--duration`` model seconds).
* ``twin`` — run the same plan under the DES *and* the live plane,
  compare the client-observed throughput/latency curves, and exit
  non-zero on protocol errors or divergence beyond ``--tolerance``
  (the CI live-plane gate).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import typing as _t

from repro.core.cliversion import add_version_argument

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Serve a monitoring-services deployment plan over real sockets.",
    )
    add_version_argument(parser)
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="boot a plan and serve until interrupted")
    serve.add_argument("plan", help="catalog plan name (see repro-topology list)")
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--time-scale",
        type=float,
        default=1.0,
        help="wall seconds per model second (default 1.0 = real time)",
    )
    serve.add_argument(
        "--duration",
        type=float,
        default=0.0,
        help="model seconds to serve (0 = until Ctrl-C)",
    )

    twin = sub.add_parser("twin", help="compare the DES and live runtimes on one plan")
    twin.add_argument("plan", help="catalog plan name")
    twin.add_argument("--users", type=int, default=5, help="closed-loop users")
    twin.add_argument("--warmup", type=float, default=5.0, help="DES warm-up seconds")
    twin.add_argument(
        "--window", type=float, default=20.0, help="DES measurement window seconds"
    )
    twin.add_argument(
        "--duration",
        type=float,
        default=None,
        help="live run length in model seconds (default: warmup + window)",
    )
    twin.add_argument(
        "--time-scale",
        type=float,
        default=1.0,
        help="wall seconds per live model second",
    )
    twin.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help="relative divergence tolerance (default 0.35)",
    )
    twin.add_argument("--seed", type=int, default=1)
    twin.add_argument(
        "--json", action="store_true", help="emit the comparison as JSON"
    )
    return parser


def _load_plan(name: str) -> _t.Any:
    from repro.core.topology.catalog import catalog_entries

    entries = catalog_entries()
    if name not in entries:
        known = ", ".join(sorted(entries))
        raise SystemExit(f"unknown plan {name!r}; known plans: {known}")
    return entries[name]()


async def _serve(args: argparse.Namespace) -> int:
    from repro.live.runtime import AsyncioRuntime

    plan = _load_plan(args.plan)
    runtime = AsyncioRuntime(time_scale=args.time_scale, host=args.host)
    dep = runtime.compile(plan)
    await dep.start()
    try:
        print(f"{plan.name}: {len(dep.ports)} service(s) listening on {args.host}")
        for name, port in sorted(dep.ports.items()):
            marker = " (entry)" if name == dep.entry else ""
            print(f"  {name:<24} port {port}{marker}")
        for note in dep.skipped:
            print(f"  [DES-only, skipped] {note}")
        if args.duration > 0:
            await asyncio.sleep(dep.clock.wall(args.duration))
        else:
            print("serving; Ctrl-C to stop")
            while True:
                await asyncio.sleep(3600)
    except (KeyboardInterrupt, asyncio.CancelledError):
        pass
    finally:
        await dep.stop()
    return 0


def _twin(args: argparse.Namespace) -> int:
    from repro.live.twin import DEFAULT_TOLERANCE, format_report, run_twin

    plan = _load_plan(args.plan)
    report = run_twin(
        plan,
        args.users,
        warmup=args.warmup,
        window=args.window,
        duration=args.duration,
        time_scale=args.time_scale,
        tolerance=args.tolerance if args.tolerance is not None else DEFAULT_TOLERANCE,
        seed=args.seed,
    )
    if args.json:
        print(
            json.dumps(
                {
                    "plan": report.plan,
                    "users": report.users,
                    "des": {
                        "throughput": report.des_throughput,
                        "response_time": report.des_response,
                        "completed": report.des_completed,
                    },
                    "live": {
                        "throughput": report.live.throughput,
                        "response_time": report.live.response_time,
                        "completed": report.live.completed,
                        "refused": report.live.refused,
                        "errors": report.live.errors,
                    },
                    "throughput_delta": report.throughput_delta,
                    "response_delta": report.response_delta,
                    "protocol_errors": report.protocol_errors,
                    "tolerance": report.tolerance,
                    "ok": report.ok,
                },
                indent=2,
            )
        )
    else:
        print(format_report(report))
    return 0 if report.ok else 1


def main(argv: _t.Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "serve":
        try:
            return asyncio.run(_serve(args))
        except KeyboardInterrupt:
            return 0
    return _twin(args)


if __name__ == "__main__":
    sys.exit(main())
