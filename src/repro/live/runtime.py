"""The asyncio runtime: the same kernels as real concurrent services.

The DES interprets kernel ops as simulator events
(:mod:`repro.core.desruntime`); this module interprets the *same* ops as
asyncio primitives — ``Compute``/``Busy``/``Held`` become real sleeps
(scaled by ``time_scale``), locks become :class:`LiveLock` wrappers
around :class:`asyncio.Lock`, and ``Call``/``Fanout`` become awaited
requests on co-hosted :class:`LiveService` instances.

Time runs in *model seconds*: :class:`LiveClock` reads
``(monotonic - epoch) / time_scale``, and every modeled duration sleeps
``duration * time_scale`` wall seconds.  With ``time_scale=1.0`` the
live plane runs in real time; smaller values compress the model clock
so a 60-model-second window fits a short CI job.  Domain state (cache
TTLs, leases, ad staleness) sees only model seconds, so both runtimes
age the same objects at the same model rate.

This module must import cleanly with :mod:`repro.sim` absent
(``tests/live/test_import_clean.py`` enforces it) — the DES twin
harness (:mod:`repro.live.twin`) imports the simulator lazily.
"""

from __future__ import annotations

import asyncio
import time
import typing as _t

import numpy as np

from repro.core.components import System
from repro.core.kernels import (
    AgentKernel,
    GiisAggregateKernel,
    GiisDirectoryKernel,
    GiisFanoutKernel,
    GiisLeafKernel,
    GrisKernel,
    KernelResponse,
    KernelSpec,
    ManagerAggregateKernel,
    ManagerDirectoryKernel,
    ManagerFanoutKernel,
    ManagerIngestKernel,
    ProducerServletKernel,
    RegistryKernel,
    ConsumerServletKernel,
    connect_plan,
    materialize_plan,
)
from repro.core.kernels.ops import (
    OP_ACQUIRE,
    OP_BUSY,
    OP_CALL,
    OP_CLOCK,
    OP_COMPUTE,
    OP_CRASH,
    OP_FANOUT,
    OP_HELD,
    OP_QUEUE_DEPTH,
    OP_RELEASE,
)
from repro.core.params import StudyParams, default_params
from repro.core.topology.plan import (
    AggregateSpec,
    CollectorSpec,
    DeploymentPlan,
    DirectorySpec,
    EdgeKind,
    PlanError,
    ServerSpec,
)
from repro.errors import ServiceCrashError, ServiceUnavailableError

__all__ = [
    "LiveClock",
    "LiveLock",
    "LiveService",
    "LiveDeployment",
    "AsyncioRuntime",
]


class LiveClock:
    """Model time for the live plane: wall seconds over ``time_scale``."""

    def __init__(self, time_scale: float = 1.0) -> None:
        if time_scale <= 0:
            raise ValueError(f"time_scale must be positive, got {time_scale}")
        self.time_scale = time_scale
        self._epoch = time.monotonic()

    def now(self) -> float:
        """Current model time in seconds since the runtime started."""
        return (time.monotonic() - self._epoch) / self.time_scale

    def wall(self, model_seconds: float) -> float:
        """Wall-clock seconds corresponding to ``model_seconds``."""
        return model_seconds * self.time_scale

    async def sleep(self, model_seconds: float) -> None:
        if model_seconds > 0:
            await asyncio.sleep(model_seconds * self.time_scale)


class LiveLock:
    """The live plane's opaque lock token: asyncio.Lock + queue depth.

    Mirrors the two properties kernels rely on from the DES Mutex: FIFO
    mutual exclusion and a readable ``queue_length`` (how many requests
    are waiting — the convoy terms feed on it).
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = asyncio.Lock()
        self._waiters = 0

    @property
    def queue_length(self) -> int:
        return self._waiters

    async def acquire(self) -> None:
        self._waiters += 1
        try:
            await self._lock.acquire()
        finally:
            self._waiters -= 1

    def release(self) -> None:
        self._lock.release()


class LiveService:
    """One kernel hosted as an in-process async service.

    Emulates the DES Service's admission control exactly: at most
    ``max_threads`` requests run concurrently, up to ``backlog`` more
    wait for a thread, and past that the request is *refused*
    (:class:`ServiceUnavailableError` — a RST on the wire).  Connection
    overhead, when the kernel models it, is charged at admission from
    the concurrency the request observes.
    """

    def __init__(self, spec: KernelSpec, clock: LiveClock) -> None:
        self.spec = spec
        self.name = spec.name
        self.clock = clock
        self._slots = asyncio.Semaphore(spec.max_threads)
        self._active = 0
        self._queued = 0
        self.crashed = False
        self.crash_reason: str | None = None
        self.requests = 0
        self.refusals = 0

    async def request(self, payload: _t.Any) -> KernelResponse:
        """Admit and serve one request; returns the full KernelResponse."""
        self.requests += 1
        if self.crashed:
            self.refusals += 1
            raise ServiceUnavailableError(f"service {self.name} is down")
        spec = self.spec
        if self._active + self._queued >= spec.max_threads + spec.backlog:
            self.refusals += 1
            raise ServiceUnavailableError(
                f"service {self.name} refused connection (accept queue full)"
            )
        if spec.conn_overhead is not None:
            await self.clock.sleep(
                spec.conn_overhead.latency(self._active + self._queued)
            )
        self._queued += 1
        try:
            await self._slots.acquire()
        finally:
            self._queued -= 1
        self._active += 1
        try:
            return await self._drive(payload)
        finally:
            self._active -= 1
            self._slots.release()

    async def _drive(self, payload: _t.Any) -> KernelResponse:
        """Interpret the kernel's op stream on asyncio (see desruntime)."""
        gen = self.spec.handle(payload)
        try:
            op = gen.send(None)
        except StopIteration as stop:
            return stop.value
        while True:
            value: _t.Any = None
            try:
                tag = op.tag
                if tag == OP_COMPUTE:
                    await self.clock.sleep(op.seconds)
                elif tag == OP_CLOCK:
                    value = self.clock.now()
                elif tag == OP_HELD:
                    await op.lock.acquire()
                    try:
                        await self.clock.sleep(op.hold)
                    finally:
                        op.lock.release()
                elif tag == OP_QUEUE_DEPTH:
                    value = op.lock.queue_length
                elif tag == OP_ACQUIRE:
                    await op.lock.acquire()
                elif tag == OP_RELEASE:
                    op.lock.release()
                elif tag == OP_BUSY:
                    await self.clock.sleep(op.hold)
                elif tag == OP_CALL:
                    value = (await op.target.request(op.payload)).value
                elif tag == OP_FANOUT:
                    answers = await asyncio.gather(
                        *(target.request(op.payload) for target in op.targets),
                        return_exceptions=True,
                    )
                    value = [
                        (False, a)
                        if isinstance(a, BaseException)
                        else (True, a.value)
                        for a in answers
                    ]
                elif tag == OP_CRASH:
                    self.crashed = True
                    self.crash_reason = op.reason
                    raise ServiceCrashError(op.message)
                else:  # pragma: no cover - kernels only yield known ops
                    raise TypeError(f"unknown kernel op {op!r}")
            except BaseException as exc:
                # Run the kernel's finallys (they may hand back a Release,
                # which the next loop iteration executes synchronously).
                try:
                    op = gen.throw(exc)
                except StopIteration as stop:
                    return stop.value
                continue
            try:
                op = gen.send(value)
            except StopIteration as stop:
                return stop.value


class LiveDeployment:
    """A compiled plan's live services, listeners and background tasks.

    ``services`` maps node names (plus ``"<node>:ingest"`` side doors)
    to :class:`LiveService`; after :meth:`start`, ``ports`` maps every
    listening service to its bound TCP port (port 0 at bind time — the
    OS picks, the handle reports).  :meth:`stop` cancels background
    tasks and closes listeners; start/stop may be repeated.
    """

    def __init__(
        self,
        plan: DeploymentPlan,
        objects: dict[str, _t.Any],
        extras: dict[str, _t.Any],
        services: dict[str, LiveService],
        clock: LiveClock,
        *,
        entry: str | None,
        host: str = "127.0.0.1",
        skipped: tuple[str, ...] = (),
    ) -> None:
        self.plan = plan
        self.objects = objects
        self.extras = extras
        self.services = services
        self.clock = clock
        self.entry = entry
        self.host = host
        self.skipped = skipped
        self.ports: dict[str, int] = {}
        self._servers: list[asyncio.base_events.Server] = []
        self._tasks: list[asyncio.Task] = []
        self.running = False

    @property
    def entry_service(self) -> LiveService:
        if self.entry is None:
            raise PlanError(f"plan {self.plan.name!r} has no entry node")
        return self.services[self.entry]

    async def start(self) -> "LiveDeployment":
        """Bind one listener per exposed service and spawn feeders."""
        if self.running:
            raise RuntimeError(f"deployment {self.plan.name!r} already running")
        from repro.live.protocols import server_for  # cycle-free at runtime

        for name, service in self.services.items():
            server = await server_for(self.plan.system, service, self.host)
            self._servers.append(server)
            self.ports[name] = server.sockets[0].getsockname()[1]
        for factory in self._background_factories():
            self._tasks.append(asyncio.ensure_future(factory()))
        self.running = True
        return self

    async def stop(self) -> None:
        """Cancel feeders, close listeners, leave the deployment reusable."""
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._tasks.clear()
        for server in self._servers:
            server.close()
            await server.wait_closed()
        self._servers.clear()
        self.ports.clear()
        self.running = False

    async def __aenter__(self) -> "LiveDeployment":
        return await self.start()

    async def __aexit__(self, *exc: _t.Any) -> None:
        await self.stop()

    # -- background data planes (the live analogue of phase 4) --------------

    def _background_factories(self) -> list[_t.Callable[[], _t.Coroutine]]:
        out: list[_t.Callable[[], _t.Coroutine]] = []
        plan, clock = self.plan, self.clock
        if plan.system is System.RGMA:
            for spec in plan.nodes:
                if (
                    isinstance(spec, ServerSpec)
                    and spec.variant == "default"
                    and spec.options.get("publisher")
                ):
                    servlet = self.objects[spec.name]
                    interval = float(spec.options.get("publish_interval", 30.0))

                    async def publisher(servlet=servlet, interval=interval) -> None:
                        while True:
                            await clock.sleep(interval)
                            servlet.publish_all(now=clock.now())

                    out.append(publisher)
        if plan.system is System.HAWKEYE:
            for edge in plan.edges:
                mode = edge.options.get("mode")
                if edge.kind is EdgeKind.REGISTRATION and mode == "local":
                    agent = self.objects[edge.source]
                    manager = self.objects[edge.target]
                    interval = float(edge.options.get("interval", 30.0))

                    async def advertiser(
                        agent=agent, manager=manager, interval=interval
                    ) -> None:
                        while True:
                            await clock.sleep(interval)
                            ad, _answer = agent.make_startd_ad(now=clock.now())
                            manager.receive_ad(ad, clock.now())

                    out.append(advertiser)
                elif edge.kind is EdgeKind.AGGREGATION and mode == "wire":
                    out.extend(self._wire_advertisers(edge))
        return out

    def _wire_advertisers(self, edge: _t.Any) -> list[_t.Callable[[], _t.Coroutine]]:
        """Synthetic machine banks pushing ads through the ingest port."""
        from repro.hawkeye.advertise import synthesize_startd_ad

        source = self.plan.node(edge.source)
        ingest = self.services[f"{edge.target}:ingest"]
        machine_format = source.options.get("machine_format", source.name + "{i}")
        interval = float(edge.options.get("interval", 30.0))
        clock = self.clock
        offsets = np.random.default_rng(source.seed or 1).uniform(
            0.0, interval, size=source.replicas
        )

        def make(machine: str, offset: float) -> _t.Callable[[], _t.Coroutine]:
            async def advertiser() -> None:
                rng = np.random.default_rng(abs(hash(machine)) % (2**32))
                ad = synthesize_startd_ad(machine, rng, now=0.0)
                self.objects[edge.target].receive_ad(ad, now=0.0)  # warm pool
                await clock.sleep(offset)
                while True:
                    ad = synthesize_startd_ad(machine, rng, now=clock.now())
                    try:
                        await ingest.request({"ad": ad})
                    except Exception:
                        pass  # a dropped ad is just a missed update
                    await clock.sleep(interval)

            return advertiser

        return [
            make(machine_format.format(i=i), float(offsets[i]))
            for i in range(source.replicas)
        ]


class AsyncioRuntime:
    """Compile a :class:`DeploymentPlan` to live asyncio services.

    The materialize/connect phases are *shared* with the DES
    (:mod:`repro.core.kernels.build`), so both runtimes serve the same
    domain objects; only the expose phase differs — kernels get
    :class:`LiveLock` tokens and ``wire=True`` (real bytes go on real
    sockets).

    DES-only control planes (soft-state registrars, resilient
    advertisers) are skipped and reported on ``deployment.skipped`` —
    they model client-side behavior the live load generator owns.
    """

    def __init__(
        self,
        params: StudyParams | None = None,
        *,
        time_scale: float = 1.0,
        host: str = "127.0.0.1",
    ) -> None:
        self.params = params or default_params()
        self.time_scale = time_scale
        self.host = host

    def compile(self, plan: DeploymentPlan) -> LiveDeployment:
        objects: dict[str, _t.Any] = {}
        extras: dict[str, _t.Any] = {}
        materialize_plan(plan, objects, extras)
        connect_plan(plan, objects, extras)
        clock = LiveClock(self.time_scale)
        builder = _KERNEL_BUILDERS[plan.system]
        services: dict[str, LiveService] = {}
        skipped: list[str] = []
        # Pass 1: self-contained nodes; pass 2: nodes calling other
        # services (mediators, fanout interiors) resolve pass-1 targets.
        deferred: list[_t.Any] = []
        for spec in plan.nodes:
            if not spec.expose or isinstance(spec, CollectorSpec):
                continue
            if _depends_on_services(spec):
                deferred.append(spec)
                continue
            for name, kernel in builder(self, plan, spec, objects, extras, skipped):
                services[name] = LiveService(kernel.spec(), clock)
        for spec in deferred:
            for name, kernel in builder(
                self, plan, spec, objects, extras, skipped, services=services
            ):
                services[name] = LiveService(kernel.spec(), clock)
        for edge in plan.edges:
            if edge.options.get("soft_state"):
                skipped.append(f"soft-state registrar {edge.source}->{edge.target}")
            if edge.options.get("mode") == "resilient":
                skipped.append(f"resilient advertiser {edge.source}->{edge.target}")
        return LiveDeployment(
            plan,
            objects,
            extras,
            services,
            clock,
            entry=plan.entry,
            host=self.host,
            skipped=tuple(skipped),
        )

    # -- per-system kernel builders (the live expose phase) ------------------

    def _mds_kernels(
        self,
        plan: DeploymentPlan,
        spec: _t.Any,
        objects: dict[str, _t.Any],
        extras: dict[str, _t.Any],
        skipped: list[str],
        services: dict[str, LiveService] | None = None,
    ) -> list[tuple[str, _t.Any]]:
        p = self.params.giis
        if isinstance(spec, ServerSpec):
            gris = objects[spec.name]
            kernel = GrisKernel(
                gris,
                self.params.gris,
                providers_lock=LiveLock(f"gris:{gris.hostname}:providers"),
                wire=True,
            )
            return [(spec.name, kernel)]
        if isinstance(spec, AggregateSpec) and spec.variant == "fanout":
            assert services is not None
            children = [
                services[e.source]
                for e in plan.edges_to(spec.name, EdgeKind.AGGREGATION)
            ]
            label = spec.options.get("label", f"giis:{spec.name}")
            return [
                (spec.name, GiisFanoutKernel(children, p, label=label,
                                             top=spec.name == plan.entry))
            ]
        giis = objects[spec.name]
        if isinstance(spec, AggregateSpec) and spec.variant == "leaf":
            return [(spec.name, GiisLeafKernel(giis, p, wire=True))]
        if isinstance(spec, AggregateSpec):
            kernel = GiisAggregateKernel(
                giis,
                p,
                assembly_lock=LiveLock(f"giis:{giis.name}:assembly"),
                query_part=spec.query_part,
                wire=True,
            )
            return [(spec.name, kernel)]
        return [(spec.name, GiisDirectoryKernel(giis, p, wire=True))]

    def _rgma_kernels(
        self,
        plan: DeploymentPlan,
        spec: _t.Any,
        objects: dict[str, _t.Any],
        extras: dict[str, _t.Any],
        skipped: list[str],
        services: dict[str, LiveService] | None = None,
    ) -> list[tuple[str, _t.Any]]:
        p = self.params
        if isinstance(spec, DirectorySpec):
            return [(spec.name, RegistryKernel(objects[spec.name], p.registry))]
        if isinstance(spec, ServerSpec) and spec.variant == "mediator":
            assert services is not None
            upstream = services[plan.edges_from(spec.name, EdgeKind.MEDIATION)[0].target]
            name = spec.options.get("cs_name", spec.name)
            kernel = ConsumerServletKernel(
                name,
                upstream,
                p.consumer_servlet,
                mediation_lock=LiveLock(f"cs:{name}:mediation"),
            )
            return [(spec.name, kernel)]
        kernel = ProducerServletKernel(
            objects[spec.name],
            p.producer_servlet,
            db_lock=LiveLock(f"ps:{objects[spec.name].name}:db"),
            wire=True,
        )
        return [(spec.name, kernel)]

    def _hawkeye_kernels(
        self,
        plan: DeploymentPlan,
        spec: _t.Any,
        objects: dict[str, _t.Any],
        extras: dict[str, _t.Any],
        skipped: list[str],
        services: dict[str, LiveService] | None = None,
    ) -> list[tuple[str, _t.Any]]:
        p = self.params.manager
        if isinstance(spec, ServerSpec):
            agent = objects[spec.name]
            kernel = AgentKernel(
                agent,
                self.params.agent,
                startd_lock=LiveLock(f"agent:{agent.machine}:startd"),
                wire=True,
            )
            return [(spec.name, kernel)]
        if isinstance(spec, AggregateSpec) and spec.variant == "fanout":
            assert services is not None
            children = [
                services[e.source]
                for e in plan.edges_to(spec.name, EdgeKind.AGGREGATION)
            ]
            label = spec.options.get("label", f"manager:{spec.name}")
            return [
                (spec.name, ManagerFanoutKernel(children, p, label=label,
                                                top=spec.name == plan.entry))
            ]
        manager = objects[spec.name]
        lock = LiveLock(f"manager:{manager.name}:collector")
        out: list[tuple[str, _t.Any]] = []
        if isinstance(spec, AggregateSpec):
            out.append(
                (spec.name, ManagerAggregateKernel(manager, p, collector_lock=lock))
            )
        else:
            out.append((spec.name, ManagerDirectoryKernel(manager, p, wire=True)))
        needs_ingest = any(
            e.kind in (EdgeKind.REGISTRATION, EdgeKind.AGGREGATION)
            and e.options.get("mode") in ("wire", "resilient")
            for e in plan.edges_to(spec.name)
        )
        if needs_ingest:
            out.append(
                (
                    f"{spec.name}:ingest",
                    ManagerIngestKernel(manager, p, collector_lock=lock),
                )
            )
        return out


def _depends_on_services(spec: _t.Any) -> bool:
    """Does this node's kernel call other live services?"""
    if isinstance(spec, AggregateSpec) and spec.variant == "fanout":
        return True
    return isinstance(spec, ServerSpec) and spec.variant == "mediator"


_KERNEL_BUILDERS = {
    System.MDS: AsyncioRuntime._mds_kernels,
    System.RGMA: AsyncioRuntime._rgma_kernels,
    System.HAWKEYE: AsyncioRuntime._hawkeye_kernels,
}
