"""The live plane: deployment plans served over real sockets.

The same :class:`~repro.core.topology.plan.DeploymentPlan` that drives
the discrete-event twin compiles here onto an asyncio runtime — the
shared service kernels (:mod:`repro.core.kernels`) run behind real TCP
listeners speaking each system's wire dialect, and
:mod:`repro.live.twin` compares the two runtimes' curves.

This package must import cleanly without :mod:`repro.sim` (enforced by
``tests/live/test_import_clean.py``); only the twin harness and the
CLI touch the simulator, and they import it lazily.
"""

from repro.live.clients import ProtocolError, http_query, line_query
from repro.live.loadgen import (
    LiveLoadResult,
    LiveSummary,
    default_payload,
    query_once,
    reduce_log,
    run_load,
)
from repro.live.runtime import (
    AsyncioRuntime,
    LiveClock,
    LiveDeployment,
    LiveLock,
    LiveService,
)

__all__ = [
    "AsyncioRuntime",
    "LiveClock",
    "LiveDeployment",
    "LiveLock",
    "LiveService",
    "LiveLoadResult",
    "LiveSummary",
    "ProtocolError",
    "default_payload",
    "http_query",
    "line_query",
    "query_once",
    "reduce_log",
    "run_load",
]
