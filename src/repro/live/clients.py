"""Stdlib asyncio clients for the live plane's three wire dialects.

One connection per request, mirroring the study's harness (connection
cost is part of the model).  Both helpers return ``(value, body)`` —
the structured answer the service computed plus the serialized wire
body (LDIF / ClassAd text / encoded SQL result).  Refusals raise
:class:`~repro.errors.ServiceUnavailableError` so load generators can
count them the same way the DES workload does; any other malformed
exchange raises :class:`ProtocolError`.
"""

from __future__ import annotations

import asyncio
import json
import typing as _t

from repro.errors import ReproError, ServiceUnavailableError

__all__ = ["ProtocolError", "line_query", "http_query"]


class ProtocolError(ReproError):
    """The server's reply did not parse as the expected dialect."""


async def line_query(
    host: str,
    port: int,
    payload: _t.Any,
    *,
    verb: str = "SEARCH",
    timeout: float | None = None,
) -> tuple[_t.Any, str]:
    """One exchange against an MDS/Hawkeye line-framed listener."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        request = f"{verb} {json.dumps(payload, separators=(',', ':'))}\n".encode()
        writer.write(request)
        await writer.drain()
        header = await asyncio.wait_for(reader.readline(), timeout)
        if not header:
            raise ProtocolError("connection closed before a response")
        text = header.decode("utf-8", "replace").rstrip("\n")
        if text.startswith("ERR "):
            _err, _, detail = text.partition(" ")
            kind, _, message = detail.partition(" ")
            if kind in ("refused", "crashed"):
                raise ServiceUnavailableError(message or kind)
            raise ProtocolError(f"{kind}: {message}")
        if not text.startswith("OK "):
            raise ProtocolError(f"unexpected response line {text!r}")
        try:
            head, _, nbytes = text.rpartition(" ")
            value = json.loads(head[3:])  # strip the "OK " prefix
            body = await asyncio.wait_for(reader.readexactly(int(nbytes)), timeout)
        except (ValueError, asyncio.IncompleteReadError) as exc:
            raise ProtocolError(f"bad OK frame: {exc}") from exc
        return value, body.decode()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def http_query(
    host: str,
    port: int,
    payload: _t.Any,
    *,
    path: str = "/query",
    timeout: float | None = None,
) -> tuple[_t.Any, str]:
    """One HTTP POST against an R-GMA servlet listener."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        body = json.dumps(payload, separators=(",", ":")).encode()
        writer.write(
            (
                f"POST {path} HTTP/1.1\r\n"
                f"Host: {host}:{port}\r\n"
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Connection: close\r\n\r\n"
            ).encode()
            + body
        )
        await writer.drain()
        status_line = await asyncio.wait_for(reader.readline(), timeout)
        parts = status_line.decode("latin-1").split(None, 2)
        if len(parts) < 2 or not parts[1].isdigit():
            raise ProtocolError(f"bad status line {status_line!r}")
        status = int(parts[1])
        value: _t.Any = None
        content_length = 0
        while True:
            header = await asyncio.wait_for(reader.readline(), timeout)
            if header in (b"\r\n", b"\n", b""):
                break
            name, _, header_value = header.decode("latin-1").partition(":")
            name = name.strip().lower()
            if name == "content-length":
                content_length = int(header_value)
            elif name == "x-repro-value":
                value = json.loads(header_value.strip())
        response_body = (
            await asyncio.wait_for(reader.readexactly(content_length), timeout)
            if content_length
            else b""
        )
        if status == 503:
            raise ServiceUnavailableError(response_body.decode().strip() or "refused")
        if status != 200:
            raise ProtocolError(f"HTTP {status}: {response_body.decode().strip()}")
        return value, response_body.decode()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
