"""The twin harness: one plan, both runtimes, compared.

``repro-serve twin`` runs the same :class:`DeploymentPlan` through the
DES (the calibrated model behind every figure) and through the live
asyncio plane (real sockets, real sleeps), then compares the
client-side curves.  Agreement within tolerance is the cross-check that
the kernel extraction really did produce *one* service logic: the two
runtimes share the kernels and the materialize/connect phases, so a
divergence means a runtime adapter broke, not the model.

Expected, documented sources of residual delta (docs/LIVEPLANE.md):

* the DES charges simulated network latency between testbed hosts; the
  live plane runs over localhost (~0 RTT);
* live sleeps carry event-loop scheduling jitter, amplified at small
  ``time_scale``;
* the live warm-up is a fixed fraction of a (much shorter) run.

The DES side imports :mod:`repro.sim` lazily so that importing
:mod:`repro.live` never drags the simulator in.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass

from repro.core.components import System
from repro.core.params import StudyParams, WorkloadParams
from repro.core.topology.plan import DeploymentPlan, DirectorySpec
from repro.live.loadgen import (
    LiveSummary,
    default_payload,
    reduce_log,
    run_load,
)
from repro.live.runtime import AsyncioRuntime

__all__ = ["TwinReport", "des_point", "live_point", "run_twin", "format_report"]

#: Default relative tolerance for throughput/response agreement.  Wide
#: enough to absorb the documented localhost-vs-WAN and jitter deltas,
#: tight enough to catch a broken adapter (those diverge by integers,
#: not percentages).
DEFAULT_TOLERANCE = 0.35


@dataclass(frozen=True)
class TwinReport:
    """Both runtimes' client-side view of one plan, and the verdict."""

    plan: str
    users: int
    des_throughput: float
    des_response: float
    des_completed: int
    live: LiveSummary
    protocol_errors: int
    tolerance: float

    @property
    def throughput_delta(self) -> float:
        """Relative throughput disagreement (live vs DES)."""
        if self.des_throughput == 0:
            return 0.0 if self.live.throughput == 0 else float("inf")
        return abs(self.live.throughput - self.des_throughput) / self.des_throughput

    @property
    def response_delta(self) -> float:
        """Absolute response-time disagreement in model seconds."""
        return abs(self.live.response_time - self.des_response)

    @property
    def ok(self) -> bool:
        """Within tolerance and protocol-clean?

        Throughput must agree relatively; response time must agree
        either relatively or within 150 ms absolute (sub-second DES
        responses meet localhost scheduling noise).
        """
        if self.protocol_errors:
            return False
        if self.throughput_delta > self.tolerance:
            return False
        relative_ok = (
            self.des_response > 0
            and abs(self.live.response_time - self.des_response) / self.des_response
            <= self.tolerance
        )
        return relative_ok or self.response_delta <= 0.15


def _request_size(plan: DeploymentPlan, params: StudyParams) -> int:
    entry = plan.node(plan.entry) if plan.entry else None
    if plan.system is System.MDS:
        return params.gris.request_size
    if plan.system is System.HAWKEYE:
        return params.agent.request_size
    if isinstance(entry, DirectorySpec):
        return params.registry.request_size
    return params.consumer_servlet.request_size


def des_point(
    plan: DeploymentPlan,
    users: int,
    *,
    params: StudyParams | None = None,
    warmup: float = 5.0,
    window: float = 20.0,
    seed: int = 1,
    wp: WorkloadParams | None = None,
) -> tuple[float, float, int]:
    """Drive the plan under the DES; returns (throughput, response, completed).

    Clients sit on the server's LAN (Lucky nodes), not at UC — the live
    plane's clients are localhost, so the comparable DES point must not
    carry the modeled WAN round trip.
    """
    from repro.core.experiments.common import lucky_clients
    from repro.core.runner import drive, new_run
    from repro.core.topology import compile_plan

    run = new_run(seed, params)
    dep = compile_plan(plan, run)
    payload = default_payload(plan.system)
    entry_spec = plan.node(plan.entry) if plan.entry else None
    server_node = (entry_spec.host or "lucky0") if entry_spec else "lucky0"
    result = drive(
        run,
        system=plan.name,
        x=users,
        service=dep.entry,
        clients=lucky_clients(run, users, exclude=(server_node,)),
        server_host=run.testbed.lucky.get(
            server_node, next(iter(run.testbed.lucky.values()))
        ),
        payload_fn=lambda uid: payload,
        request_size=_request_size(plan, run.params),
        workload=wp,
        warmup=warmup,
        window=window,
    )
    return result.throughput, result.response_time, result.summary.completed


async def live_point(
    plan: DeploymentPlan,
    users: int,
    *,
    params: StudyParams | None = None,
    duration: float = 20.0,
    time_scale: float = 1.0,
    seed: int = 1,
    wp: WorkloadParams | None = None,
) -> tuple[LiveSummary, int]:
    """Drive the plan on the live plane; returns (summary, protocol_errors)."""
    runtime = AsyncioRuntime(params, time_scale=time_scale)
    dep = runtime.compile(plan)
    async with dep:
        result = await run_load(
            dep, users=users, duration=duration, wp=wp, seed=seed
        )
    return reduce_log(result), result.protocol_errors


def run_twin(
    plan: DeploymentPlan,
    users: int = 5,
    *,
    params: StudyParams | None = None,
    warmup: float = 5.0,
    window: float = 20.0,
    duration: float | None = None,
    time_scale: float = 1.0,
    tolerance: float = DEFAULT_TOLERANCE,
    seed: int = 1,
    wp: WorkloadParams | None = None,
) -> TwinReport:
    """Run both runtimes over ``plan`` and compare the curves.

    DES measures ``window`` model seconds after ``warmup``; the live
    side runs ``duration`` model seconds (default: warmup + window) and
    drops its own ramp-in.  ``time_scale`` compresses live wall time.
    ``wp`` feeds both user models — on short runs pass a
    ``start_spread`` well under the warm-up so the two planes finish
    ramping before either starts measuring.
    """
    des_tp, des_rt, des_done = des_point(
        plan, users, params=params, warmup=warmup, window=window, seed=seed, wp=wp
    )
    live_summary, protocol_errors = asyncio.run(
        live_point(
            plan,
            users,
            params=params,
            duration=duration if duration is not None else warmup + window,
            time_scale=time_scale,
            seed=seed,
            wp=wp,
        )
    )
    return TwinReport(
        plan=plan.name,
        users=users,
        des_throughput=des_tp,
        des_response=des_rt,
        des_completed=des_done,
        live=live_summary,
        protocol_errors=protocol_errors,
        tolerance=tolerance,
    )


def format_report(report: TwinReport) -> str:
    """Human-readable twin comparison."""
    lines = [
        f"twin comparison: {report.plan} ({report.users} users)",
        f"  {'metric':<18}{'DES':>12}{'live':>12}{'delta':>10}",
        f"  {'throughput q/s':<18}{report.des_throughput:>12.3f}"
        f"{report.live.throughput:>12.3f}{report.throughput_delta:>9.1%}",
        f"  {'response s':<18}{report.des_response:>12.3f}"
        f"{report.live.response_time:>12.3f}{report.response_delta:>9.3f}s",
        f"  completed: DES {report.des_completed}, live {report.live.completed} "
        f"(refused {report.live.refused}, errors {report.live.errors})",
        f"  protocol errors: {report.protocol_errors}",
        f"  tolerance {report.tolerance:.0%} -> {'OK' if report.ok else 'DIVERGED'}",
    ]
    return "\n".join(lines)
