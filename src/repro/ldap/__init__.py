"""Lightweight LDAP substrate: DNs, entries, filters, DIT and LDIF.

This package stands in for the OpenLDAP stack beneath MDS 2.1 (see
DESIGN.md §2): the query semantics are real — RFC 1960 filters over a
directory tree — while timing is charged by the simulation layer.
"""

from repro.ldap.dit import DIT, SCOPE_BASE, SCOPE_ONE, SCOPE_SUB
from repro.ldap.dn import DN, RDN, parse_dn
from repro.ldap.entry import Entry
from repro.ldap.filter import (
    And,
    Equality,
    Filter,
    GreaterOrEqual,
    LessOrEqual,
    Not,
    Or,
    Presence,
    Substring,
    parse_filter,
)
from repro.ldap.ldif import entry_to_ldif, from_ldif, to_ldif
from repro.ldap.schema import (
    DEVICE_OBJECTCLASSES,
    MDS_VO_SUFFIX,
    device_dn_text,
    host_dn_text,
)

__all__ = [
    "DN",
    "RDN",
    "parse_dn",
    "Entry",
    "DIT",
    "SCOPE_BASE",
    "SCOPE_ONE",
    "SCOPE_SUB",
    "Filter",
    "And",
    "Or",
    "Not",
    "Equality",
    "Presence",
    "Substring",
    "GreaterOrEqual",
    "LessOrEqual",
    "parse_filter",
    "to_ldif",
    "from_ldif",
    "entry_to_ldif",
    "MDS_VO_SUFFIX",
    "DEVICE_OBJECTCLASSES",
    "host_dn_text",
    "device_dn_text",
]
