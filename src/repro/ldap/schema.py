"""The MDS 2.1 GLUE-less schema used by the default information providers.

MDS 2.1 shipped a set of ``Mds-*`` object classes describing hosts,
CPUs, memory, filesystems, network interfaces and the OS.  We model the
attribute vocabulary that the paper's "10 default information
providers" expose so GRIS entries look like real ``grid-info-search``
output and carry realistic attribute counts/sizes.
"""

from __future__ import annotations

__all__ = [
    "MDS_VO_SUFFIX",
    "DEVICE_OBJECTCLASSES",
    "host_dn_text",
    "device_dn_text",
]

# Every MDS deployment in the study published under the local VO suffix.
MDS_VO_SUFFIX = "Mds-Vo-name=local, o=grid"

# Object class advertised by each default device-level provider.
DEVICE_OBJECTCLASSES: dict[str, str] = {
    "cpu": "MdsCpu",
    "memory": "MdsMemory",
    "filesystem": "MdsFilesystem",
    "network": "MdsNet",
    "os": "MdsOs",
    "cpu-free": "MdsCpuFree",
    "memory-vm": "MdsMemoryVm",
    "storage": "MdsStorage",
    "queue": "MdsQueue",
    "software": "MdsSoftwareDeployment",
}


def host_dn_text(hostname: str) -> str:
    """DN of a host entry under the local VO."""
    return f"Mds-Host-hn={hostname}, {MDS_VO_SUFFIX}"


def device_dn_text(hostname: str, device: str) -> str:
    """DN of a device entry beneath its host entry."""
    return f"Mds-Device-name={device}, {host_dn_text(hostname)}"
