"""LDIF (LDAP Data Interchange Format) serialization.

MDS tools exchange entries as LDIF text; the study's cost models charge
network transfers by serialized size, so round-trippable LDIF gives the
simulation realistic payload sizes for free.
"""

from __future__ import annotations

import typing as _t

from repro.errors import LdapError
from repro.ldap.entry import Entry

__all__ = ["to_ldif", "from_ldif", "entry_to_ldif"]


def entry_to_ldif(entry: Entry) -> str:
    """Serialize one entry as an LDIF record (no trailing blank line)."""
    lines = [f"dn: {entry.dn}"]
    for name in entry.attribute_names():
        for value in entry.get(name):
            lines.append(f"{name}: {value}")
    return "\n".join(lines)


def to_ldif(entries: _t.Iterable[Entry]) -> str:
    """Serialize entries as LDIF records separated by blank lines."""
    return "\n\n".join(entry_to_ldif(e) for e in entries) + "\n"


def from_ldif(text: str) -> list[Entry]:
    """Parse LDIF text produced by :func:`to_ldif` back into entries.

    Supports the subset we emit: ``dn:`` first, ``attr: value`` lines,
    records separated by blank lines, ``#`` comments ignored.
    """
    entries: list[Entry] = []
    record: list[str] = []
    for raw in text.splitlines() + [""]:
        line = raw.rstrip("\n")
        if line.startswith("#"):
            continue
        if line.strip() == "":
            if record:
                entries.append(_parse_record(record))
                record = []
            continue
        record.append(line)
    return entries


def _parse_record(lines: list[str]) -> Entry:
    if not lines[0].lower().startswith("dn:"):
        raise LdapError(f"LDIF record must start with dn:, got {lines[0]!r}")
    dn_text = lines[0][3:].strip()
    entry = Entry(dn_text)
    for line in lines[1:]:
        if ":" not in line:
            raise LdapError(f"malformed LDIF line: {line!r}")
        name, value = line.split(":", 1)
        entry.add_value(name.strip(), value.strip())
    return entry
