"""The Directory Information Tree (DIT) with scoped search.

This is the storage engine behind the simulated GRIS/GIIS back ends: a
tree of entries addressed by DN, searchable with RFC 1960 filters at the
three standard LDAP scopes (``base``, ``one``, ``sub``).  Search results
are returned in deterministic insertion order, which keeps every
experiment reproducible.
"""

from __future__ import annotations

import typing as _t

from repro.errors import EntryExistsError, NoSuchEntryError
from repro.ldap.dn import DN
from repro.ldap.entry import Entry
from repro.ldap.filter import Filter, parse_filter

__all__ = ["DIT", "SCOPE_BASE", "SCOPE_ONE", "SCOPE_SUB"]

SCOPE_BASE = "base"
SCOPE_ONE = "one"
SCOPE_SUB = "sub"


class _Node:
    __slots__ = ("entry", "children")

    def __init__(self, entry: Entry | None) -> None:
        self.entry = entry
        self.children: dict[tuple[str, str], _Node] = {}


class DIT:
    """An in-memory LDAP directory tree."""

    def __init__(self) -> None:
        self._root = _Node(None)
        self._count = 0

    # -- bookkeeping --------------------------------------------------------
    def __len__(self) -> int:
        return self._count

    def _find(self, dn: DN) -> _Node | None:
        node = self._root
        for rdn in reversed(dn.rdns):
            node = node.children.get((rdn.attr.lower(), rdn.value))
            if node is None:
                return None
        return node

    # -- mutation ---------------------------------------------------------------
    def add(self, entry: Entry, *, create_parents: bool = False) -> None:
        """Insert ``entry``; parents must exist unless ``create_parents``.

        Raises :class:`EntryExistsError` when the DN is already populated.
        """
        dn = entry.dn
        if dn.depth == 0:
            raise NoSuchEntryError("cannot add an entry at the root DN")
        node = self._root
        path: list[DN] = []
        for depth, rdn in enumerate(reversed(dn.rdns), start=1):
            key = (rdn.attr.lower(), rdn.value)
            child = node.children.get(key)
            if child is None:
                if depth < dn.depth and not create_parents:
                    missing = DN(dn.rdns[dn.depth - depth :])
                    raise NoSuchEntryError(f"parent entry does not exist: {missing}")
                child = _Node(None)
                node.children[key] = child
            node = child
            path.append(DN(dn.rdns[dn.depth - depth :]))
        if node.entry is not None:
            raise EntryExistsError(f"entry already exists: {dn}")
        node.entry = entry
        self._count += 1
        # Materialize glue entries for auto-created parents.
        if create_parents:
            probe = self._root
            for depth, rdn in enumerate(reversed(dn.rdns), start=1):
                probe = probe.children[(rdn.attr.lower(), rdn.value)]
                if depth < dn.depth and probe.entry is None:
                    probe.entry = Entry(DN(dn.rdns[dn.depth - depth :]))
                    self._count += 1

    def upsert(self, entry: Entry) -> None:
        """Insert or replace the entry at ``entry.dn`` (parents created)."""
        node = self._find(entry.dn)
        if node is not None and node.entry is not None:
            node.entry = entry
            return
        self.add(entry, create_parents=True)

    def delete(self, dn: DN, *, recursive: bool = False) -> int:
        """Remove the entry (and descendants when ``recursive``).

        Returns the number of entries removed.
        """
        if dn.depth == 0:
            raise NoSuchEntryError("cannot delete the root DN")
        parent = self._find(dn.parent)
        if parent is None:
            raise NoSuchEntryError(f"no such entry: {dn}")
        key = (dn.rdn.attr.lower(), dn.rdn.value)
        node = parent.children.get(key)
        if node is None or node.entry is None:
            raise NoSuchEntryError(f"no such entry: {dn}")
        if node.children and not recursive:
            raise EntryExistsError(f"entry has children (use recursive=True): {dn}")
        removed = self._count_subtree(node)
        del parent.children[key]
        self._count -= removed
        return removed

    def _count_subtree(self, node: _Node) -> int:
        total = 1 if node.entry is not None else 0
        for child in node.children.values():
            total += self._count_subtree(child)
        return total

    # -- lookup -------------------------------------------------------------
    def get(self, dn: DN | str) -> Entry:
        """The entry at ``dn``; raises :class:`NoSuchEntryError` if absent."""
        if isinstance(dn, str):
            dn = DN.parse(dn)
        node = self._find(dn)
        if node is None or node.entry is None:
            raise NoSuchEntryError(f"no such entry: {dn}")
        return node.entry

    def exists(self, dn: DN | str) -> bool:
        """Entry-presence test."""
        if isinstance(dn, str):
            dn = DN.parse(dn)
        node = self._find(dn)
        return node is not None and node.entry is not None

    def search(
        self,
        base: DN | str,
        scope: str = SCOPE_SUB,
        filter: Filter | str = "(objectclass=*)",
        attributes: _t.Sequence[str] | None = None,
    ) -> list[Entry]:
        """Scoped, filtered search rooted at ``base``.

        ``attributes`` optionally projects results to the named
        attributes (the RDN attribute is always retained, as in LDAP).
        """
        if isinstance(base, str):
            base = DN.parse(base)
        if isinstance(filter, str):
            filter = parse_filter(filter)
        if scope not in (SCOPE_BASE, SCOPE_ONE, SCOPE_SUB):
            raise ValueError(f"unknown scope: {scope!r}")
        node = self._find(base)
        if node is None:
            raise NoSuchEntryError(f"search base does not exist: {base}")
        hits: list[Entry] = []
        if scope == SCOPE_BASE:
            candidates: _t.Iterable[_Node] = [node] if node.entry else []
        elif scope == SCOPE_ONE:
            candidates = node.children.values()
        else:
            candidates = self._walk(node)
        for cand in candidates:
            entry = cand.entry
            if entry is not None and filter.matches(entry):
                hits.append(self._project(entry, attributes))
        return hits

    def _walk(self, node: _Node) -> _t.Iterator[_Node]:
        if node.entry is not None:
            yield node
        for child in node.children.values():
            yield from self._walk(child)

    @staticmethod
    def _project(entry: Entry, attributes: _t.Sequence[str] | None) -> Entry:
        if attributes is None:
            return entry
        wanted = {a.lower() for a in attributes}
        wanted.add(entry.dn.rdn.attr.lower()) if entry.dn.depth else None
        projected = Entry(entry.dn)
        for name in entry.attribute_names():
            if name.lower() in wanted:
                projected.put(name, entry.get(name))
        return projected

    def entries(self) -> list[Entry]:
        """Every entry in the tree, DFS order."""
        return [n.entry for n in self._walk(self._root) if n.entry is not None]
