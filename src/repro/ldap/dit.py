"""The Directory Information Tree (DIT) with scoped search.

This is the storage engine behind the simulated GRIS/GIIS back ends: a
tree of entries addressed by DN, searchable with RFC 1960 filters at the
three standard LDAP scopes (``base``, ``one``, ``sub``).  Search results
are returned in deterministic insertion order, which keeps every
experiment reproducible.

With compilation on (:mod:`repro.queryplane`), subtree searches use
attribute-value equality/presence indexes to prune to candidate entry
sets instead of walking the whole tree.  The indexes are built lazily on
the first pruned search (throwaway DITs that are only merged and never
searched — the GIIS aggregation path — pay nothing) and maintained
incrementally by ``add``/``upsert``/``delete`` afterwards.  Candidates
are re-sorted by each node's DFS path so pruned results are byte-
identical to the scan order.
"""

from __future__ import annotations

import typing as _t

from repro import queryplane
from repro.errors import EntryExistsError, NoSuchEntryError
from repro.ldap.compile import (
    AnyTerm,
    EqTerm,
    Plan,
    PresTerm,
    compile_filter,
    compile_text,
    index_key,
)
from repro.ldap.dn import DN
from repro.ldap.entry import Entry
from repro.ldap.filter import Filter, parse_filter

__all__ = ["DIT", "SCOPE_BASE", "SCOPE_ONE", "SCOPE_SUB"]

SCOPE_BASE = "base"
SCOPE_ONE = "one"
SCOPE_SUB = "sub"

_EMPTY: frozenset = frozenset()


class _Node:
    __slots__ = ("entry", "children", "path", "_next_child")

    def __init__(self, entry: Entry | None, path: tuple[int, ...] = ()) -> None:
        self.entry = entry
        self.children: dict[tuple[str, str], _Node] = {}
        # DFS-order fingerprint: parent's path plus a per-parent counter.
        # Lexicographic path order == scan order; prefix match == subtree
        # membership.  Both are what index pruning needs to restore the
        # deterministic result order after set-based candidate selection.
        self.path = path
        self._next_child = 0

    def new_child(self, key: tuple[str, str]) -> "_Node":
        child = _Node(None, self.path + (self._next_child,))
        self._next_child += 1
        self.children[key] = child
        return child


class DIT:
    """An in-memory LDAP directory tree."""

    def __init__(self) -> None:
        self._root = _Node(None)
        self._count = 0
        # Equality/presence indexes over entry attributes, keyed by
        # lowercased attribute name (and, for equality, the normalized
        # value key from repro.ldap.compile.index_key).  Built lazily.
        self._eq_index: dict[tuple[str, tuple[str, _t.Any]], set[_Node]] = {}
        self._pres_index: dict[str, set[_Node]] = {}
        self._indexes_ready = False
        self.pruned_searches = 0
        self.scanned_searches = 0

    # -- bookkeeping --------------------------------------------------------
    def __len__(self) -> int:
        return self._count

    def _find(self, dn: DN) -> _Node | None:
        node = self._root
        for rdn in reversed(dn.rdns):
            node = node.children.get((rdn.attr.lower(), rdn.value))
            if node is None:
                return None
        return node

    # -- index maintenance --------------------------------------------------
    def _ensure_indexes(self) -> None:
        if self._indexes_ready:
            return
        for node in self._walk(self._root):
            self._index_entry(node)
        self._indexes_ready = True

    def _index_entry(self, node: _Node) -> None:
        entry = node.entry
        if entry is None:
            return
        for attr, values in entry._attrs.items():
            self._pres_index.setdefault(attr, set()).add(node)
            for value in values:
                self._eq_index.setdefault((attr, index_key(value)), set()).add(node)

    def _unindex_entry(self, node: _Node, entry: Entry | None) -> None:
        if entry is None:
            return
        for attr, values in entry._attrs.items():
            bucket = self._pres_index.get(attr)
            if bucket is not None:
                bucket.discard(node)
            for value in values:
                eq_bucket = self._eq_index.get((attr, index_key(value)))
                if eq_bucket is not None:
                    eq_bucket.discard(node)

    # -- mutation ---------------------------------------------------------------
    def add(self, entry: Entry, *, create_parents: bool = False) -> None:
        """Insert ``entry``; parents must exist unless ``create_parents``.

        Raises :class:`EntryExistsError` when the DN is already populated.
        """
        dn = entry.dn
        if dn.depth == 0:
            raise NoSuchEntryError("cannot add an entry at the root DN")
        node = self._root
        for depth, rdn in enumerate(reversed(dn.rdns), start=1):
            key = (rdn.attr.lower(), rdn.value)
            child = node.children.get(key)
            if child is None:
                if depth < dn.depth and not create_parents:
                    missing = DN(dn.rdns[dn.depth - depth :])
                    raise NoSuchEntryError(f"parent entry does not exist: {missing}")
                child = node.new_child(key)
            node = child
        if node.entry is not None:
            raise EntryExistsError(f"entry already exists: {dn}")
        node.entry = entry
        self._count += 1
        if self._indexes_ready:
            self._index_entry(node)
        # Materialize glue entries for auto-created parents.
        if create_parents:
            probe = self._root
            for depth, rdn in enumerate(reversed(dn.rdns), start=1):
                probe = probe.children[(rdn.attr.lower(), rdn.value)]
                if depth < dn.depth and probe.entry is None:
                    probe.entry = Entry(DN(dn.rdns[dn.depth - depth :]))
                    self._count += 1
                    if self._indexes_ready:
                        self._index_entry(probe)

    def upsert(self, entry: Entry) -> None:
        """Insert or replace the entry at ``entry.dn`` (parents created)."""
        node = self._find(entry.dn)
        if node is not None and node.entry is not None:
            if self._indexes_ready:
                self._unindex_entry(node, node.entry)
            node.entry = entry
            if self._indexes_ready:
                self._index_entry(node)
            return
        self.add(entry, create_parents=True)

    def delete(self, dn: DN, *, recursive: bool = False) -> int:
        """Remove the entry (and descendants when ``recursive``).

        Returns the number of entries removed.
        """
        if dn.depth == 0:
            raise NoSuchEntryError("cannot delete the root DN")
        parent = self._find(dn.parent)
        if parent is None:
            raise NoSuchEntryError(f"no such entry: {dn}")
        key = (dn.rdn.attr.lower(), dn.rdn.value)
        node = parent.children.get(key)
        if node is None or node.entry is None:
            raise NoSuchEntryError(f"no such entry: {dn}")
        if node.children and not recursive:
            raise EntryExistsError(f"entry has children (use recursive=True): {dn}")
        removed = self._count_subtree(node)
        if self._indexes_ready:
            for victim in self._walk(node):
                self._unindex_entry(victim, victim.entry)
        del parent.children[key]
        self._count -= removed
        return removed

    def _count_subtree(self, node: _Node) -> int:
        total = 1 if node.entry is not None else 0
        for child in node.children.values():
            total += self._count_subtree(child)
        return total

    # -- lookup -------------------------------------------------------------
    def get(self, dn: DN | str) -> Entry:
        """The entry at ``dn``; raises :class:`NoSuchEntryError` if absent."""
        if isinstance(dn, str):
            dn = DN.parse(dn)
        node = self._find(dn)
        if node is None or node.entry is None:
            raise NoSuchEntryError(f"no such entry: {dn}")
        return node.entry

    def exists(self, dn: DN | str) -> bool:
        """Entry-presence test."""
        if isinstance(dn, str):
            dn = DN.parse(dn)
        node = self._find(dn)
        return node is not None and node.entry is not None

    def search(
        self,
        base: DN | str,
        scope: str = SCOPE_SUB,
        filter: Filter | str = "(objectclass=*)",
        attributes: _t.Sequence[str] | None = None,
        *,
        compiled: bool | None = None,
    ) -> list[Entry]:
        """Scoped, filtered search rooted at ``base``.

        ``attributes`` optionally projects results to the named
        attributes (the RDN attribute is always retained, as in LDAP).
        ``compiled`` overrides the :mod:`repro.queryplane` global for
        this call; the interpreted path is the legacy full scan.
        """
        if isinstance(base, str):
            base = DN.parse(base)
        use_compiled = queryplane.resolve(compiled)
        plan: Plan | None = None
        if isinstance(filter, str):
            if use_compiled:
                compiled_filter = compile_text(filter)
                predicate = compiled_filter.predicate
                plan = compiled_filter.plan
            else:
                predicate = parse_filter(filter).matches
        elif use_compiled:
            compiled_filter = compile_filter(filter)
            predicate = compiled_filter.predicate
            plan = compiled_filter.plan
        else:
            predicate = filter.matches
        if scope not in (SCOPE_BASE, SCOPE_ONE, SCOPE_SUB):
            raise ValueError(f"unknown scope: {scope!r}")
        node = self._find(base)
        if node is None:
            raise NoSuchEntryError(f"search base does not exist: {base}")
        hits: list[Entry] = []
        if scope == SCOPE_SUB and plan is not None:
            self._ensure_indexes()
            base_path = node.path
            depth = len(base_path)
            members = [n for n in self._resolve_plan(plan) if n.path[:depth] == base_path]
            members.sort(key=lambda n: n.path)  # restore DFS order
            self.pruned_searches += 1
            for cand in members:
                entry = cand.entry
                if entry is not None and predicate(entry):
                    hits.append(self._project(entry, attributes))
            return hits
        if scope == SCOPE_BASE:
            candidates: _t.Iterable[_Node] = [node] if node.entry else []
        elif scope == SCOPE_ONE:
            candidates = node.children.values()
        else:
            candidates = self._walk(node)
            self.scanned_searches += 1
        for cand in candidates:
            entry = cand.entry
            if entry is not None and predicate(entry):
                hits.append(self._project(entry, attributes))
        return hits

    def _resolve_plan(self, plan: Plan) -> _t.Collection[_Node]:
        if isinstance(plan, EqTerm):
            return self._eq_index.get((plan.attr, plan.key), _EMPTY)
        if isinstance(plan, PresTerm):
            return self._pres_index.get(plan.attr, _EMPTY)
        if isinstance(plan, AnyTerm):
            union: set[_Node] = set()
            for option in plan.options:
                union.update(self._resolve_plan(option))
            return union
        # PickTerm: every option over-approximates, so the smallest wins.
        return min((self._resolve_plan(o) for o in plan.options), key=len)

    def _walk(self, node: _Node) -> _t.Iterator[_Node]:
        if node.entry is not None:
            yield node
        for child in node.children.values():
            yield from self._walk(child)

    @staticmethod
    def _project(entry: Entry, attributes: _t.Sequence[str] | None) -> Entry:
        if attributes is None:
            return entry
        wanted = {a.lower() for a in attributes}
        wanted.add(entry.dn.rdn.attr.lower()) if entry.dn.depth else None
        projected = Entry(entry.dn)
        for name in entry.attribute_names():
            if name.lower() in wanted:
                projected.put(name, entry.get(name))
        return projected

    def entries(self) -> list[Entry]:
        """Every entry in the tree, DFS order."""
        return [n.entry for n in self._walk(self._root) if n.entry is not None]
