"""Distinguished-name parsing and manipulation.

MDS 2.1 names every entry with an LDAP distinguished name such as
``Mds-Device-name=cpu, Mds-Host-hn=lucky7.mcs.anl.gov, Mds-Vo-name=local,
o=grid``.  A DN is an ordered sequence of relative DNs (RDNs), most
specific first; the suffix identifies the containing subtree.

This module implements the subset of RFC 2253 the study needs:
``attr=value`` RDNs separated by commas, with backslash escaping for
commas/equals inside values.  Multi-valued RDNs (``+``) are not used by
the MDS schema and are rejected.
"""

from __future__ import annotations

import typing as _t

from repro.errors import DnSyntaxError

__all__ = ["DN", "RDN", "parse_dn"]


class RDN(_t.NamedTuple):
    """One relative distinguished name: an (attribute, value) pair."""

    attr: str
    value: str

    def __str__(self) -> str:
        escaped = self.value.replace("\\", "\\\\").replace(",", "\\,").replace("=", "\\=")
        return f"{self.attr}={escaped}"


class DN:
    """An immutable distinguished name (sequence of RDNs, leaf first)."""

    __slots__ = ("rdns", "_norm")

    def __init__(self, rdns: _t.Iterable[RDN]) -> None:
        self.rdns: tuple[RDN, ...] = tuple(rdns)
        # Case-insensitive attribute types, case-sensitive values.
        self._norm = tuple((r.attr.lower(), r.value) for r in self.rdns)

    # -- constructors ----------------------------------------------------------
    @classmethod
    def parse(cls, text: str) -> "DN":
        """Parse a string DN; ``DN.parse("")`` is the root DN."""
        return parse_dn(text)

    def child(self, attr: str, value: str) -> "DN":
        """DN one level below this one."""
        return DN((RDN(attr, value), *self.rdns))

    # -- structure --------------------------------------------------------------
    @property
    def depth(self) -> int:
        """Number of RDN components (0 for the root)."""
        return len(self.rdns)

    @property
    def rdn(self) -> RDN:
        """The leaf (most specific) RDN."""
        if not self.rdns:
            raise DnSyntaxError("root DN has no RDN")
        return self.rdns[0]

    @property
    def parent(self) -> "DN":
        """DN with the leaf RDN removed."""
        if not self.rdns:
            raise DnSyntaxError("root DN has no parent")
        return DN(self.rdns[1:])

    def is_descendant_of(self, ancestor: "DN") -> bool:
        """True when ``self`` lies strictly below ``ancestor``."""
        offset = len(self._norm) - len(ancestor._norm)
        if offset <= 0:
            return False
        return self._norm[offset:] == ancestor._norm

    def is_equal_or_descendant_of(self, base: "DN") -> bool:
        """True when ``self`` equals ``base`` or lies below it."""
        return self == base or self.is_descendant_of(base)

    # -- value semantics --------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DN):
            return NotImplemented
        return self._norm == other._norm

    def __hash__(self) -> int:
        return hash(self._norm)

    def __str__(self) -> str:
        return ", ".join(str(r) for r in self.rdns)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DN({str(self)!r})"


def parse_dn(text: str) -> DN:
    """Parse an RFC-2253-style DN string into a :class:`DN`.

    Raises :class:`~repro.errors.DnSyntaxError` on malformed input.
    """
    text = text.strip()
    if not text:
        return DN(())
    rdns: list[RDN] = []
    # Split on unescaped commas.
    parts: list[str] = []
    buf: list[str] = []
    i = 0
    while i < len(text):
        ch = text[i]
        if ch == "\\":
            if i + 1 >= len(text):
                raise DnSyntaxError(f"dangling escape at end of DN: {text!r}")
            buf.append(text[i + 1])
            i += 2
            continue
        if ch == ",":
            parts.append("".join(buf))
            buf = []
        else:
            buf.append(ch)
        i += 1
    parts.append("".join(buf))
    for part in parts:
        part = part.strip()
        if not part:
            raise DnSyntaxError(f"empty RDN component in {text!r}")
        if "+" in part.split("=", 1)[0]:
            raise DnSyntaxError(f"multi-valued RDNs are not supported: {part!r}")
        if "=" not in part:
            raise DnSyntaxError(f"RDN missing '=': {part!r}")
        attr, value = part.split("=", 1)
        attr = attr.strip()
        value = value.strip()
        if not attr:
            raise DnSyntaxError(f"RDN missing attribute type: {part!r}")
        rdns.append(RDN(attr, value))
    return DN(rdns)
