"""RFC 1960 search filters: parser and evaluator.

MDS clients select data with string filters such as
``(&(objectclass=MdsHost)(Mds-Cpu-Total-Free-1minX100>=80))``.  This
module parses the full RFC 1960 grammar — AND ``&``, OR ``|``, NOT
``!``, equality, presence ``=*``, substring ``a=*b*c``, ``>=`` and
``<=`` — and evaluates filters against :class:`~repro.ldap.entry.Entry`
objects.

Comparisons are numeric when both sides parse as numbers (matching how
OpenLDAP treats the integer-syntax attributes the MDS schema uses) and
case-insensitive-lexicographic otherwise.
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass

from repro.errors import FilterSyntaxError
from repro.ldap.entry import Entry

__all__ = [
    "Filter",
    "And",
    "Or",
    "Not",
    "Equality",
    "Presence",
    "Substring",
    "GreaterOrEqual",
    "LessOrEqual",
    "parse_filter",
]


class Filter:
    """Base class for parsed filter nodes."""

    def matches(self, entry: Entry) -> bool:
        """Evaluate this filter against ``entry``."""
        raise NotImplementedError

    def __str__(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class And(Filter):
    """``(&(f1)(f2)...)`` — true when every child matches."""

    children: tuple[Filter, ...]

    def matches(self, entry: Entry) -> bool:
        return all(child.matches(entry) for child in self.children)

    def __str__(self) -> str:
        return "(&" + "".join(str(c) for c in self.children) + ")"


@dataclass(frozen=True)
class Or(Filter):
    """``(|(f1)(f2)...)`` — true when any child matches."""

    children: tuple[Filter, ...]

    def matches(self, entry: Entry) -> bool:
        return any(child.matches(entry) for child in self.children)

    def __str__(self) -> str:
        return "(|" + "".join(str(c) for c in self.children) + ")"


@dataclass(frozen=True)
class Not(Filter):
    """``(!(f))`` — true when the child does not match."""

    child: Filter

    def matches(self, entry: Entry) -> bool:
        return not self.child.matches(entry)

    def __str__(self) -> str:
        return f"(!{self.child})"


def _as_number(text: str) -> float | None:
    try:
        return float(text)
    except ValueError:
        return None


@dataclass(frozen=True)
class Equality(Filter):
    """``(attr=value)`` with numeric or case-insensitive matching."""

    attr: str
    value: str

    def __post_init__(self) -> None:
        # Parse the comparison value once at construction; these are not
        # dataclass fields, so equality/hash/repr stay value-based.
        object.__setattr__(self, "_num", _as_number(self.value))
        object.__setattr__(self, "_lower", self.value.lower())

    def matches(self, entry: Entry) -> bool:
        want_num: float | None = self._num  # type: ignore[attr-defined]
        want_str: str = self._lower  # type: ignore[attr-defined]
        for candidate in entry.get(self.attr):
            if want_num is not None:
                got = _as_number(candidate)
                if got is not None and got == want_num:
                    return True
            if candidate.lower() == want_str:
                return True
        return False

    def __str__(self) -> str:
        return f"({self.attr}={self.value})"


@dataclass(frozen=True)
class Presence(Filter):
    """``(attr=*)`` — attribute existence."""

    attr: str

    def matches(self, entry: Entry) -> bool:
        return entry.has(self.attr)

    def __str__(self) -> str:
        return f"({self.attr}=*)"


@dataclass(frozen=True)
class Substring(Filter):
    """``(attr=ini*mid1*mid2*fin)`` — anchored/wildcard substring match."""

    attr: str
    initial: str
    middles: tuple[str, ...]
    final: str

    def __post_init__(self) -> None:
        object.__setattr__(self, "_initial_l", self.initial.lower())
        object.__setattr__(self, "_middles_l", tuple(m.lower() for m in self.middles))
        object.__setattr__(self, "_final_l", self.final.lower())

    def matches(self, entry: Entry) -> bool:
        for candidate in entry.get(self.attr):
            if self._match_one(candidate.lower()):
                return True
        return False

    def _match_one(self, text: str) -> bool:
        pos = 0
        initial: str = self._initial_l  # type: ignore[attr-defined]
        if initial:
            if not text.startswith(initial):
                return False
            pos = len(initial)
        for mid in self._middles_l:  # type: ignore[attr-defined]
            idx = text.find(mid, pos)
            if idx < 0:
                return False
            pos = idx + len(mid)
        final: str = self._final_l  # type: ignore[attr-defined]
        if final:
            return text.endswith(final) and len(text) - len(final) >= pos
        return True

    def __str__(self) -> str:
        parts = [self.initial, *self.middles, self.final]
        return f"({self.attr}={'*'.join(parts)})"


class _Ordering(Filter):
    """Shared machinery for >= and <=."""

    op: _t.Callable[[float, float], bool]
    symbol: str

    def __init__(self, attr: str, value: str) -> None:
        self.attr = attr
        self.value = value
        self._num = _as_number(value)
        self._lower = value.lower()

    def matches(self, entry: Entry) -> bool:
        want_num = self._num
        op = type(self).op
        op_str = type(self).op_str
        for candidate in entry.get(self.attr):
            if want_num is not None:
                got = _as_number(candidate)
                if got is not None:
                    if op(got, want_num):
                        return True
                    continue
            if op_str(candidate.lower(), self._lower):
                return True
        return False

    def __str__(self) -> str:
        return f"({self.attr}{self.symbol}{self.value})"

    def __eq__(self, other: object) -> bool:
        return (
            type(self) is type(other)
            and self.attr == other.attr  # type: ignore[attr-defined]
            and self.value == other.value  # type: ignore[attr-defined]
        )

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.attr, self.value))


class GreaterOrEqual(_Ordering):
    """``(attr>=value)``."""

    symbol = ">="
    op = staticmethod(lambda a, b: a >= b)
    op_str = staticmethod(lambda a, b: a >= b)


class LessOrEqual(_Ordering):
    """``(attr<=value)``."""

    symbol = "<="
    op = staticmethod(lambda a, b: a <= b)
    op_str = staticmethod(lambda a, b: a <= b)


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------


class _Parser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    def error(self, message: str) -> FilterSyntaxError:
        return FilterSyntaxError(f"{message} at position {self.pos} in {self.text!r}")

    def peek(self) -> str:
        if self.pos >= len(self.text):
            raise self.error("unexpected end of filter")
        return self.text[self.pos]

    def expect(self, ch: str) -> None:
        if self.pos >= len(self.text) or self.text[self.pos] != ch:
            raise self.error(f"expected {ch!r}")
        self.pos += 1

    def parse(self) -> Filter:
        node = self.parse_node()
        if self.pos != len(self.text):
            raise self.error("trailing characters after filter")
        return node

    def parse_node(self) -> Filter:
        self.expect("(")
        ch = self.peek()
        if ch == "&":
            self.pos += 1
            children = self.parse_children()
            node: Filter = And(tuple(children))
        elif ch == "|":
            self.pos += 1
            children = self.parse_children()
            node = Or(tuple(children))
        elif ch == "!":
            self.pos += 1
            node = Not(self.parse_node())
        else:
            node = self.parse_simple()
        self.expect(")")
        return node

    def parse_children(self) -> list[Filter]:
        children = []
        while self.peek() == "(":
            children.append(self.parse_node())
        if not children:
            raise self.error("empty AND/OR filter list")
        return children

    def parse_simple(self) -> Filter:
        start = self.pos
        while self.pos < len(self.text) and self.text[self.pos] not in "=<>~()":
            self.pos += 1
        attr = self.text[start : self.pos].strip()
        if not attr:
            raise self.error("missing attribute name")
        if self.pos >= len(self.text):
            raise self.error("truncated comparison")
        op_ch = self.text[self.pos]
        if op_ch in "<>":
            self.pos += 1
            self.expect("=")
            value = self.read_value()
            cls = GreaterOrEqual if op_ch == ">" else LessOrEqual
            return cls(attr, value)
        if op_ch == "~":
            # Approximate match: we treat it as equality (OpenLDAP without
            # phonetic indexing behaves the same for MDS attributes).
            self.pos += 1
            self.expect("=")
            return Equality(attr, self.read_value())
        self.expect("=")
        value = self.read_value()
        if value == "*":
            return Presence(attr)
        if "*" in value:
            parts = value.split("*")
            return Substring(attr, parts[0], tuple(p for p in parts[1:-1] if p), parts[-1])
        return Equality(attr, value)

    def read_value(self) -> str:
        start = self.pos
        out: list[str] = []
        while self.pos < len(self.text) and self.text[self.pos] != ")":
            ch = self.text[self.pos]
            if ch == "(":
                raise self.error("unescaped '(' in value")
            if ch == "\\":
                if self.pos + 1 >= len(self.text):
                    raise self.error("dangling escape")
                out.append(self.text[self.pos + 1])
                self.pos += 2
                continue
            out.append(ch)
            self.pos += 1
        if self.pos == start and not out:
            # Empty value is legal in LDAP (matches empty string).
            return ""
        return "".join(out)


def parse_filter(text: str) -> Filter:
    """Parse an RFC 1960 filter string into a :class:`Filter` tree.

    A bare ``attr=value`` without parentheses is accepted as a
    convenience (ldapsearch does the same).
    """
    text = text.strip()
    if not text:
        raise FilterSyntaxError("empty filter")
    if not text.startswith("("):
        text = f"({text})"
    return _Parser(text).parse()
