"""LDAP entries: a DN plus a multi-valued, case-insensitive attribute map."""

from __future__ import annotations

import typing as _t

from repro.ldap.dn import DN

__all__ = ["Entry"]


class Entry:
    """One directory entry.

    Attribute names are case-insensitive (stored with their first-seen
    spelling); values are ordered lists of strings, as in LDAP.  Values
    supplied as ints/floats are stringified on insertion.
    """

    __slots__ = ("dn", "_attrs", "_display")

    def __init__(self, dn: DN | str, attributes: _t.Mapping[str, _t.Any] | None = None) -> None:
        self.dn = dn if isinstance(dn, DN) else DN.parse(dn)
        self._attrs: dict[str, list[str]] = {}
        self._display: dict[str, str] = {}
        if attributes:
            for name, value in attributes.items():
                self.put(name, value)
        # The RDN attribute is implicitly present (LDAP requires it).
        if self.dn.depth and not self.get(self.dn.rdn.attr):
            self.put(self.dn.rdn.attr, self.dn.rdn.value)

    # -- mutation ---------------------------------------------------------------
    def put(self, name: str, value: _t.Any) -> None:
        """Replace attribute ``name`` with ``value`` (scalar or iterable)."""
        values = value if isinstance(value, (list, tuple)) else [value]
        key = name.lower()
        self._display[key] = name
        self._attrs[key] = [str(v) for v in values]

    def add_value(self, name: str, value: _t.Any) -> None:
        """Append one value to attribute ``name``.

        LDAP attribute values form a set: an exact duplicate is a no-op.
        """
        key = name.lower()
        self._display.setdefault(key, name)
        values = self._attrs.setdefault(key, [])
        text = str(value)
        if text not in values:
            values.append(text)

    def remove(self, name: str) -> None:
        """Delete attribute ``name`` if present."""
        key = name.lower()
        self._attrs.pop(key, None)
        self._display.pop(key, None)

    # -- access -----------------------------------------------------------------
    def get(self, name: str) -> list[str]:
        """All values of ``name`` (empty list when absent)."""
        return self._attrs.get(name.lower(), [])

    def first(self, name: str, default: str | None = None) -> str | None:
        """First value of ``name``, or ``default``."""
        values = self._attrs.get(name.lower())
        return values[0] if values else default

    def has(self, name: str) -> bool:
        """Attribute presence test (used by ``(attr=*)`` filters)."""
        return name.lower() in self._attrs

    def attribute_names(self) -> list[str]:
        """Attribute names with their original spelling, insertion order."""
        return [self._display[k] for k in self._attrs]

    @property
    def nattrs(self) -> int:
        """Number of attributes (drives serialized-size cost models)."""
        return len(self._attrs)

    def estimated_size(self) -> int:
        """Approximate LDIF wire size in bytes."""
        size = len(str(self.dn)) + 5
        for key, values in self._attrs.items():
            for value in values:
                size += len(key) + len(value) + 3
        return size

    def copy(self) -> "Entry":
        """Deep-enough copy (values are immutable strings)."""
        clone = Entry(self.dn)
        for key, values in self._attrs.items():
            clone.put(self._display[key], list(values))
        return clone

    def to_dict(self) -> dict[str, list[str]]:
        """Plain-dict view for assertions and serialization."""
        return {self._display[k]: list(v) for k, v in self._attrs.items()}

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Entry):
            return NotImplemented
        return self.dn == other.dn and self._attrs == other._attrs

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Entry {self.dn} ({self.nattrs} attrs)>"
