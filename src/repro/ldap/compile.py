"""Filter compilation: closed-over predicates and index prune plans.

:func:`compile_filter` turns a parsed :class:`~repro.ldap.filter.Filter`
tree into

* a **predicate** — a closure over pre-parsed numeric values and
  pre-lowered strings that answers ``predicate(entry)`` exactly like
  ``Filter.matches`` but without re-walking the AST, and
* a **prune plan** — a description of the candidate entry sets the
  :class:`~repro.ldap.dit.DIT` equality/presence indexes can supply
  before the predicate runs.  A plan is an *over*-approximation: every
  matching entry is in the candidate set, so the predicate always gets
  the final say, and filters with no indexable structure (orderings,
  substrings, NOT) simply carry no plan and fall back to the scan.

Both are cached — :func:`compile_filter` memoizes on the (hashable)
filter node, :func:`compile_text` adds an LRU keyed on the filter text
so repeated string queries skip the parser entirely.
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass
from functools import lru_cache

from repro.ldap.entry import Entry
from repro.ldap.filter import (
    And,
    Equality,
    Filter,
    GreaterOrEqual,
    LessOrEqual,
    Not,
    Or,
    Presence,
    Substring,
    _as_number,
    parse_filter,
)

__all__ = [
    "CompiledFilter",
    "compile_filter",
    "compile_text",
    "index_key",
    "EqTerm",
    "PresTerm",
    "AnyTerm",
    "PickTerm",
]

Predicate = _t.Callable[[Entry], bool]


def index_key(value: str) -> tuple[str, _t.Any]:
    """Normalize an attribute value to its equality-index key.

    Equality filters match numerically when both sides parse as numbers
    and case-insensitively otherwise, so two values that can ever test
    equal must map to the same key: numbers keyed by their float value,
    everything else (including NaN spellings, which never compare equal
    numerically) by its lowercased text.
    """
    number = _as_number(value)
    if number is not None and number == number:  # NaN falls back to text
        return ("num", number)
    return ("str", value.lower())


# -- prune plans -------------------------------------------------------------


@dataclass(frozen=True)
class EqTerm:
    """Candidates = entries holding ``attr`` equal to the keyed value."""

    attr: str
    key: tuple[str, _t.Any]


@dataclass(frozen=True)
class PresTerm:
    """Candidates = entries carrying ``attr`` at all."""

    attr: str


@dataclass(frozen=True)
class AnyTerm:
    """OR: the union of every option's candidates."""

    options: tuple["Plan", ...]


@dataclass(frozen=True)
class PickTerm:
    """AND: any single option is sound — the DIT picks the smallest."""

    options: tuple["Plan", ...]


Plan = _t.Union[EqTerm, PresTerm, AnyTerm, PickTerm]


def _build_plan(flt: Filter) -> Plan | None:
    if isinstance(flt, Equality):
        return EqTerm(flt.attr.lower(), index_key(flt.value))
    if isinstance(flt, Presence):
        return PresTerm(flt.attr.lower())
    if isinstance(flt, And):
        options = tuple(p for p in (_build_plan(c) for c in flt.children) if p is not None)
        return PickTerm(options) if options else None
    if isinstance(flt, Or):
        options = []
        for child in flt.children:
            plan = _build_plan(child)
            if plan is None:  # one unprunable branch poisons the union
                return None
            options.append(plan)
        return AnyTerm(tuple(options))
    return None  # Not / orderings / substrings: evaluate on the scan


# -- predicates --------------------------------------------------------------


def _compile_predicate(flt: Filter) -> Predicate:
    if isinstance(flt, And):
        preds = tuple(compile_filter(c).predicate for c in flt.children)

        def run_and(entry: Entry) -> bool:
            for pred in preds:
                if not pred(entry):
                    return False
            return True

        return run_and
    if isinstance(flt, Or):
        preds = tuple(compile_filter(c).predicate for c in flt.children)

        def run_or(entry: Entry) -> bool:
            for pred in preds:
                if pred(entry):
                    return True
            return False

        return run_or
    if isinstance(flt, Not):
        inner = compile_filter(flt.child).predicate
        return lambda entry: not inner(entry)
    if isinstance(flt, Equality):
        attr = flt.attr
        want_num: float | None = flt._num  # type: ignore[attr-defined]
        want_str: str = flt._lower  # type: ignore[attr-defined]

        def run_eq(entry: Entry) -> bool:
            for candidate in entry.get(attr):
                if want_num is not None:
                    got = _as_number(candidate)
                    if got is not None and got == want_num:
                        return True
                if candidate.lower() == want_str:
                    return True
            return False

        return run_eq
    if isinstance(flt, Presence):
        attr = flt.attr
        return lambda entry: entry.has(attr)
    if isinstance(flt, Substring):
        attr = flt.attr
        match_one = flt._match_one

        def run_sub(entry: Entry) -> bool:
            for candidate in entry.get(attr):
                if match_one(candidate.lower()):
                    return True
            return False

        return run_sub
    if isinstance(flt, (GreaterOrEqual, LessOrEqual)):
        attr = flt.attr
        want_num = flt._num
        want_str = flt._lower
        op = type(flt).op
        op_str = type(flt).op_str

        def run_ord(entry: Entry) -> bool:
            for candidate in entry.get(attr):
                if want_num is not None:
                    got = _as_number(candidate)
                    if got is not None:
                        if op(got, want_num):
                            return True
                        continue
                if op_str(candidate.lower(), want_str):
                    return True
            return False

        return run_ord
    return flt.matches  # unknown node type: defer to the interpreter


# -- public entry points -----------------------------------------------------


class CompiledFilter:
    """A parsed filter with its compiled predicate and prune plan."""

    __slots__ = ("filter", "predicate", "plan")

    def __init__(self, flt: Filter, predicate: Predicate, plan: Plan | None) -> None:
        self.filter = flt
        self.predicate = predicate
        self.plan = plan


@lru_cache(maxsize=512)
def compile_filter(flt: Filter) -> CompiledFilter:
    """Compile a parsed filter tree (memoized on the node)."""
    return CompiledFilter(flt, _compile_predicate(flt), _build_plan(flt))


@lru_cache(maxsize=256)
def compile_text(text: str) -> CompiledFilter:
    """Parse and compile a filter string (LRU keyed on the text)."""
    return compile_filter(parse_filter(text))
