"""Request/response messaging between simulated hosts.

A :class:`Service` lives on a host and processes requests through a
bounded thread pool with a bounded accept backlog.  Connections beyond
``max_threads + backlog`` are refused — clients see
:class:`~repro.errors.ServiceUnavailableError` — which is the mechanism
that reproduces the paper's directory-server saturation (successful
queries stay fast while throughput flat-lines, Figures 9–10).

Handlers are generator functions ``handler(service, request) -> Response``
that may yield any simulation event (CPU work, mutex acquisition, nested
RPCs...).  Client-side deadlines are supported: on timeout the *client*
stops waiting but the server keeps burning resources on the abandoned
request, exactly like a real overloaded server.
"""

from __future__ import annotations

import typing as _t
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.core.costmodel import ConnectionOverhead
from repro.errors import (
    CircuitOpenError,
    RequestTimeoutError,
    ServiceCrashError,
    ServiceUnavailableError,
    SimulationError,
)
from repro.sim.events import Event
from repro.sim.host import Host
from repro.sim.network import Network

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator
    from repro.sim.faults import FaultInjector

__all__ = [
    "Request",
    "Response",
    "Service",
    "ConnectionOverhead",
    "CircuitBreaker",
    "RetryPolicy",
    "RetryStats",
    "call",
]


@dataclass(slots=True)
class Request:
    """A message delivered to a service handler."""

    payload: _t.Any
    size: int
    client: Host
    issued_at: float


@dataclass(slots=True)
class Response:
    """What a handler returns: a value plus its wire size in bytes.

    Both message classes use slots: one of each is allocated per
    simulated RPC, where dict-backed instances were measurable.
    """

    value: _t.Any
    size: int = 1024


# ConnectionOverhead moved to repro.core.costmodel (it is shared by the
# live asyncio runtime, which must import without the simulator); it is
# re-exported here so existing imports keep working.


@dataclass
class ServiceStats:
    """Cumulative request accounting for one service."""

    arrived: int = 0
    refused: int = 0
    completed: int = 0
    errors: int = 0
    dropped: int = 0  # connections reset by an injected transient fault
    busy_time: float = 0.0
    max_concurrent: int = 0
    refusal_log: list[float] = field(default_factory=list)


class CircuitBreaker:
    """Client-side circuit breaker over a flaky service.

    Classic three-state machine: *closed* passes calls through and
    counts consecutive failures; after ``failure_threshold`` of them it
    trips *open* and rejects calls outright (:class:`CircuitOpenError`)
    for ``reset_timeout`` seconds; then one *half-open* probe is let
    through — success closes the circuit, failure re-opens it.

    Time is always passed in by the caller (``sim.now``); the breaker
    itself holds no reference to the simulator, so one instance can be
    shared by every user process of a run.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(self, *, failure_threshold: int = 5, reset_timeout: float = 30.0) -> None:
        if failure_threshold < 1:
            raise SimulationError("failure_threshold must be >= 1")
        if reset_timeout <= 0:
            raise SimulationError("reset_timeout must be positive")
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.state = self.CLOSED
        self.consecutive_failures = 0
        self.opened_at = 0.0
        self.trips = 0
        self.rejections = 0

    def allow(self, now: float) -> bool:
        """Whether a call may proceed at ``now`` (may move open->half-open)."""
        if self.state == self.OPEN:
            if now - self.opened_at >= self.reset_timeout:
                self.state = self.HALF_OPEN
                return True
            self.rejections += 1
            return False
        return True

    def record_success(self, now: float) -> None:
        self.consecutive_failures = 0
        self.state = self.CLOSED

    def record_failure(self, now: float) -> None:
        self.consecutive_failures += 1
        if self.state == self.HALF_OPEN or self.consecutive_failures >= self.failure_threshold:
            if self.state != self.OPEN:
                self.trips += 1
            self.state = self.OPEN
            self.opened_at = now


@dataclass
class RetryStats:
    """Cumulative accounting for one :class:`RetryPolicy` instance."""

    calls: int = 0  # logical calls issued through the policy
    attempts: int = 0  # wire attempts (>= calls)
    retries: int = 0  # attempts beyond the first
    succeeded: int = 0
    exhausted: int = 0  # calls that failed after max_attempts
    breaker_rejections: int = 0  # calls fast-failed by an open breaker
    backoff_time: float = 0.0  # total seconds slept between attempts

    @property
    def amplification(self) -> float:
        """Wire attempts per logical call (1.0 = no retries needed)."""
        return self.attempts / self.calls if self.calls else 0.0


class RetryPolicy:
    """Pluggable client-side resilience for :func:`call`.

    Retries :class:`ServiceUnavailableError` and
    :class:`RequestTimeoutError` up to ``max_attempts`` total tries with
    capped exponential backoff (``base * multiplier**k``, at most
    ``max_backoff``) and multiplicative jitter drawn from ``rng``.  An
    optional per-try deadline bounds each wire attempt, and an optional
    :class:`CircuitBreaker` fast-fails calls while the service looks
    dead — capping retry amplification during an outage.

    One policy instance is meant to be shared by all the client
    processes of a scenario; its :class:`RetryStats` then measure the
    run-level retry amplification the fault experiments report.
    """

    def __init__(
        self,
        *,
        max_attempts: int = 4,
        base_backoff: float = 0.5,
        multiplier: float = 2.0,
        max_backoff: float = 15.0,
        jitter: float = 0.25,
        per_try_timeout: float | None = None,
        breaker: CircuitBreaker | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        if max_attempts < 1:
            raise SimulationError("max_attempts must be >= 1")
        if base_backoff < 0 or max_backoff < 0:
            raise SimulationError("backoff times must be non-negative")
        if not 0.0 <= jitter < 1.0:
            raise SimulationError("jitter must be in [0, 1)")
        self.max_attempts = max_attempts
        self.base_backoff = base_backoff
        self.multiplier = multiplier
        self.max_backoff = max_backoff
        self.jitter = jitter
        self.per_try_timeout = per_try_timeout
        self.breaker = breaker
        self.rng = rng
        self.stats = RetryStats()

    def backoff(self, retry_index: int) -> float:
        """Sleep before retry number ``retry_index`` (1-based)."""
        if retry_index < 1:
            raise SimulationError("retry_index is 1-based")
        raw = min(
            self.base_backoff * self.multiplier ** (retry_index - 1), self.max_backoff
        )
        if self.jitter and self.rng is not None:
            raw *= 1.0 + float(self.rng.uniform(-self.jitter, self.jitter))
        return raw


HandlerFn = _t.Callable[["Service", Request], _t.Generator]


class Service:
    """A network service bound to a host.

    Parameters
    ----------
    handler:
        Generator function ``(service, request) -> Response``.
    max_threads:
        Handlers running concurrently; further connections queue.
    backlog:
        Accept-queue depth; connections past ``max_threads + backlog``
        are refused.
    conn_overhead:
        Optional :class:`ConnectionOverhead` latency model.
    """

    def __init__(
        self,
        sim: "Simulator",
        net: Network,
        host: Host,
        name: str,
        handler: HandlerFn,
        *,
        max_threads: int = 32,
        backlog: int = 512,
        conn_overhead: ConnectionOverhead | None = None,
    ) -> None:
        if max_threads < 1:
            raise SimulationError("max_threads must be >= 1")
        self.sim = sim
        self.net = net
        self.host = host
        self.name = name
        self.handler = handler
        self.max_threads = max_threads
        self.backlog = backlog
        self.conn_overhead = conn_overhead
        self.crashed = False
        self.crash_reason: str | None = None
        self.down = False
        self.down_reason: str | None = None
        self._down_depth = 0
        self.outage_log: list[tuple[float, float]] = []  # (down_at, up_at)
        self.faults: "FaultInjector | None" = None
        self.stats = ServiceStats()
        self._active = 0
        self._down_at: float | None = None
        self._slot_waiters: deque[Event] = deque()

    # -- inspection ----------------------------------------------------------
    @property
    def active(self) -> int:
        """Handlers currently executing."""
        return self._active

    @property
    def queued(self) -> int:
        """Connections accepted but waiting for a handler thread."""
        return len(self._slot_waiters)

    @property
    def concurrent(self) -> int:
        """Open connections (executing + accept queue)."""
        return self._active + len(self._slot_waiters)

    # -- lifecycle ----------------------------------------------------------
    def crash(self, reason: str) -> None:
        """Mark the service dead; all future requests are refused.

        Mirrors the hard failures the paper reports (GIIS beyond 200
        registered GRIS, Startd beyond 98 modules).
        """
        self.crashed = True
        self.crash_reason = reason

    def fail(self, reason: str) -> None:
        """Take the service down *temporarily* (crash/restart injection).

        New connections are refused while down; requests already
        admitted keep running, like a daemon wedged behind its accept
        loop.  :meth:`restore` brings the service back.

        Outages are *depth-counted*: independent controllers (a fault
        schedule and scenario churn, say) may overlap, and the service
        only comes back once every outstanding :meth:`fail` has been
        matched by a :meth:`restore` — the first restore must not revive
        a server another controller still holds down.
        """
        self._down_depth += 1
        if self.down:
            return
        self.down = True
        self.down_reason = reason
        self._down_at = self.sim.now

    def restore(self) -> None:
        """Undo one :meth:`fail`; the service revives at depth zero."""
        if not self.down:
            return
        self._down_depth -= 1
        if self._down_depth > 0:
            return
        self.down = False
        self.down_reason = None
        if self._down_at is not None:
            self.outage_log.append((self._down_at, self.sim.now))
            self._down_at = None

    @property
    def available(self) -> bool:
        """Whether a new connection would even be considered."""
        return not (self.crashed or self.down)

    # -- internals ------------------------------------------------------------
    def _acquire_thread(self) -> Event:
        event = Event(self.sim)
        if self._active < self.max_threads:
            self._active += 1
            event.succeed()
        else:
            self._slot_waiters.append(event)
        return event

    def _release_thread(self) -> None:
        if self._slot_waiters:
            self._slot_waiters.popleft().succeed()
        else:
            self._active -= 1

    def _serve(self, request: Request) -> _t.Generator:
        """Full server-side lifecycle of one admitted connection."""
        stats = self.stats
        concurrent = self._active + len(self._slot_waiters) + 1
        if concurrent > stats.max_concurrent:
            stats.max_concurrent = concurrent
        yield self._acquire_thread()
        started = self.sim.now
        try:
            faults = self.faults
            if faults is not None:
                # Injected stall: the handler thread is held the whole
                # time, so stalls eat pool capacity like real hung
                # providers do.
                stall = faults.stall_delay()
                if stall > 0:
                    yield self.sim.timeout(stall)
            if self.conn_overhead is not None:
                # Overhead scales with connections being *serviced*, not
                # with the accept queue: a queued-but-unaccepted socket
                # costs the server nothing yet.
                delay = self.conn_overhead.latency(self._active)
                if delay > 0:
                    yield self.sim.timeout(delay)
            response = yield from self.handler(self, request)
            if not isinstance(response, Response):
                raise SimulationError(
                    f"handler of service {self.name!r} returned {type(response).__name__}, "
                    "expected Response"
                )
            stats.completed += 1
            return response
        except ServiceCrashError:
            stats.errors += 1
            raise
        except (ServiceUnavailableError, RequestTimeoutError):
            # An upstream dependency refused or timed out mid-handler
            # (mediator chains during faults or churn): the admitted
            # connection still terminates, so account it — conservation
            # (arrived == refused+completed+errors+dropped+open) is a
            # fuzzer invariant.
            stats.errors += 1
            raise
        except SimulationError:
            raise
        except Exception as exc:  # handler-level application error
            stats.errors += 1
            return Response(value=exc, size=256)
        finally:
            stats.busy_time += self.sim.now - started
            self._release_thread()


def call(
    sim: "Simulator",
    net: Network,
    client: Host,
    service: Service,
    payload: _t.Any,
    *,
    size: int = 512,
    timeout: float | None = None,
    retry: RetryPolicy | None = None,
) -> _t.Generator:
    """Issue a blocking RPC from a client process; use with ``yield from``.

    Returns the handler's response value.  Raises
    :class:`ServiceUnavailableError` when refused and
    :class:`RequestTimeoutError` when the client deadline passes (the
    server keeps processing the abandoned request).

    With a :class:`RetryPolicy`, refusals and timeouts are retried with
    capped exponential backoff; ``timeout`` (or the policy's
    ``per_try_timeout``, which wins) bounds each individual attempt.
    A policy with an open circuit breaker fast-fails with
    :class:`CircuitOpenError` without touching the wire.
    """
    if retry is None:
        value = yield from _attempt(sim, net, client, service, payload, size, timeout)
        return value

    per_try = retry.per_try_timeout if retry.per_try_timeout is not None else timeout
    breaker = retry.breaker
    stats = retry.stats
    stats.calls += 1
    failures = 0
    while True:
        if breaker is not None and not breaker.allow(sim.now):
            stats.breaker_rejections += 1
            raise CircuitOpenError(
                f"circuit open for {service.name} "
                f"(tripped {breaker.trips}x, retry after {breaker.reset_timeout:g}s)"
            )
        stats.attempts += 1
        try:
            value = yield from _attempt(sim, net, client, service, payload, size, per_try)
        except (ServiceUnavailableError, RequestTimeoutError) as exc:
            if breaker is not None:
                breaker.record_failure(sim.now)
            failures += 1
            if failures >= retry.max_attempts:
                stats.exhausted += 1
                raise
            delay = retry.backoff(failures)
            stats.retries += 1
            stats.backoff_time += delay
            if delay > 0:
                yield sim.timeout(delay)
            continue
        if breaker is not None:
            breaker.record_success(sim.now)
        stats.succeeded += 1
        return value


def _attempt(
    sim: "Simulator",
    net: Network,
    client: Host,
    service: Service,
    payload: _t.Any,
    size: int,
    timeout: float | None,
) -> _t.Generator:
    """One wire attempt: the pre-retry semantics of :func:`call`."""
    worker = sim.spawn(_lifecycle(sim, net, client, service, payload, size), name=f"rpc:{service.name}")
    if timeout is None:
        value = yield worker
        return value
    deadline = sim.timeout(timeout)
    try:
        yield sim.any_of((worker, deadline))
    except SimulationError:
        raise
    if worker.triggered:
        if worker.ok:
            return worker.value
        raise worker.value
    raise RequestTimeoutError(f"call to {service.name} exceeded {timeout:g}s")


def _lifecycle(
    sim: "Simulator",
    net: Network,
    client: Host,
    service: Service,
    payload: _t.Any,
    size: int,
) -> _t.Generator:
    request = Request(payload=payload, size=size, client=client, issued_at=sim.now)
    yield from net.transfer(client, service.host, size)
    stats = service.stats
    stats.arrived += 1
    # Fast path: a healthy service with no fault injector attached skips
    # the per-condition checks (and the injector's RNG draw) entirely.
    if service.crashed or service.down or service.faults is not None:
        if service.crashed:
            stats.refused += 1
            raise ServiceUnavailableError(
                f"service {service.name} crashed: {service.crash_reason}"
            )
        if service.down:
            stats.refused += 1
            stats.refusal_log.append(sim.now)
            raise ServiceUnavailableError(
                f"service {service.name} down: {service.down_reason}"
            )
        if service.faults.drop_request():
            stats.dropped += 1
            raise ServiceUnavailableError(f"service {service.name} dropped the connection")
    if service._active + len(service._slot_waiters) >= service.max_threads + service.backlog:
        stats.refused += 1
        stats.refusal_log.append(sim.now)
        # TCP RST back to the client is effectively free but not instant.
        yield from net.transfer(service.host, client, 64)
        raise ServiceUnavailableError(f"service {service.name} refused connection (backlog full)")
    response = yield from service._serve(request)
    yield from net.transfer(service.host, client, response.size)
    if isinstance(response.value, Exception):
        raise response.value
    return response.value
