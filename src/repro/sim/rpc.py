"""Request/response messaging between simulated hosts.

A :class:`Service` lives on a host and processes requests through a
bounded thread pool with a bounded accept backlog.  Connections beyond
``max_threads + backlog`` are refused — clients see
:class:`~repro.errors.ServiceUnavailableError` — which is the mechanism
that reproduces the paper's directory-server saturation (successful
queries stay fast while throughput flat-lines, Figures 9–10).

Handlers are generator functions ``handler(service, request) -> Response``
that may yield any simulation event (CPU work, mutex acquisition, nested
RPCs...).  Client-side deadlines are supported: on timeout the *client*
stops waiting but the server keeps burning resources on the abandoned
request, exactly like a real overloaded server.
"""

from __future__ import annotations

import math
import typing as _t
from collections import deque
from dataclasses import dataclass, field

from repro.errors import (
    RequestTimeoutError,
    ServiceCrashError,
    ServiceUnavailableError,
    SimulationError,
)
from repro.sim.events import Event
from repro.sim.host import Host
from repro.sim.network import Network

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator

__all__ = ["Request", "Response", "Service", "ConnectionOverhead", "call"]


@dataclass
class Request:
    """A message delivered to a service handler."""

    payload: _t.Any
    size: int
    client: Host
    issued_at: float


@dataclass
class Response:
    """What a handler returns: a value plus its wire size in bytes."""

    value: _t.Any
    size: int = 1024


@dataclass(frozen=True)
class ConnectionOverhead:
    """Concurrency-dependent per-request latency ``L(c)``.

    ``L(c) = base + extra * (1 - exp(-c / scale))`` where ``c`` is the
    number of connections open at the server when the request is
    admitted.  This phenomenological stand-in for connection management
    plus GSI-handshake cost reproduces the GRIS-cache response plateau
    (~4 s for >=50 users, Figure 6) while remaining sub-second at 10
    users (Figure 14).  See DESIGN.md §2.
    """

    base: float = 0.0
    extra: float = 0.0
    scale: float = 20.0

    def latency(self, connections: int) -> float:
        """Latency charged to a request admitted with ``connections`` open."""
        if self.extra == 0.0:
            return self.base
        return self.base + self.extra * (1.0 - math.exp(-connections / self.scale))


@dataclass
class ServiceStats:
    """Cumulative request accounting for one service."""

    arrived: int = 0
    refused: int = 0
    completed: int = 0
    errors: int = 0
    busy_time: float = 0.0
    max_concurrent: int = 0
    refusal_log: list[float] = field(default_factory=list)


HandlerFn = _t.Callable[["Service", Request], _t.Generator]


class Service:
    """A network service bound to a host.

    Parameters
    ----------
    handler:
        Generator function ``(service, request) -> Response``.
    max_threads:
        Handlers running concurrently; further connections queue.
    backlog:
        Accept-queue depth; connections past ``max_threads + backlog``
        are refused.
    conn_overhead:
        Optional :class:`ConnectionOverhead` latency model.
    """

    def __init__(
        self,
        sim: "Simulator",
        net: Network,
        host: Host,
        name: str,
        handler: HandlerFn,
        *,
        max_threads: int = 32,
        backlog: int = 512,
        conn_overhead: ConnectionOverhead | None = None,
    ) -> None:
        if max_threads < 1:
            raise SimulationError("max_threads must be >= 1")
        self.sim = sim
        self.net = net
        self.host = host
        self.name = name
        self.handler = handler
        self.max_threads = max_threads
        self.backlog = backlog
        self.conn_overhead = conn_overhead
        self.crashed = False
        self.crash_reason: str | None = None
        self.stats = ServiceStats()
        self._active = 0
        self._slot_waiters: deque[Event] = deque()

    # -- inspection ----------------------------------------------------------
    @property
    def active(self) -> int:
        """Handlers currently executing."""
        return self._active

    @property
    def queued(self) -> int:
        """Connections accepted but waiting for a handler thread."""
        return len(self._slot_waiters)

    @property
    def concurrent(self) -> int:
        """Open connections (executing + accept queue)."""
        return self._active + len(self._slot_waiters)

    # -- lifecycle ----------------------------------------------------------
    def crash(self, reason: str) -> None:
        """Mark the service dead; all future requests are refused.

        Mirrors the hard failures the paper reports (GIIS beyond 200
        registered GRIS, Startd beyond 98 modules).
        """
        self.crashed = True
        self.crash_reason = reason

    # -- internals ------------------------------------------------------------
    def _acquire_thread(self) -> Event:
        event = Event(self.sim)
        if self._active < self.max_threads:
            self._active += 1
            event.succeed()
        else:
            self._slot_waiters.append(event)
        return event

    def _release_thread(self) -> None:
        if self._slot_waiters:
            self._slot_waiters.popleft().succeed()
        else:
            self._active -= 1

    def _serve(self, request: Request) -> _t.Generator:
        """Full server-side lifecycle of one admitted connection."""
        stats = self.stats
        stats.max_concurrent = max(stats.max_concurrent, self.concurrent + 1)
        yield self._acquire_thread()
        started = self.sim.now
        try:
            if self.conn_overhead is not None:
                # Overhead scales with connections being *serviced*, not
                # with the accept queue: a queued-but-unaccepted socket
                # costs the server nothing yet.
                delay = self.conn_overhead.latency(self._active)
                if delay > 0:
                    yield self.sim.timeout(delay)
            response = yield from self.handler(self, request)
            if not isinstance(response, Response):
                raise SimulationError(
                    f"handler of service {self.name!r} returned {type(response).__name__}, "
                    "expected Response"
                )
            stats.completed += 1
            return response
        except ServiceCrashError:
            stats.errors += 1
            raise
        except SimulationError:
            raise
        except Exception as exc:  # handler-level application error
            stats.errors += 1
            return Response(value=exc, size=256)
        finally:
            stats.busy_time += self.sim.now - started
            self._release_thread()


def call(
    sim: "Simulator",
    net: Network,
    client: Host,
    service: Service,
    payload: _t.Any,
    *,
    size: int = 512,
    timeout: float | None = None,
) -> _t.Generator:
    """Issue a blocking RPC from a client process; use with ``yield from``.

    Returns the handler's response value.  Raises
    :class:`ServiceUnavailableError` when refused and
    :class:`RequestTimeoutError` when the client deadline passes (the
    server keeps processing the abandoned request).
    """
    worker = sim.spawn(_lifecycle(sim, net, client, service, payload, size), name=f"rpc:{service.name}")
    if timeout is None:
        value = yield worker
        return value
    deadline = sim.timeout(timeout)
    try:
        yield sim.any_of((worker, deadline))
    except SimulationError:
        raise
    if worker.triggered:
        if worker.ok:
            return worker.value
        raise worker.value
    raise RequestTimeoutError(f"call to {service.name} exceeded {timeout:g}s")


def _lifecycle(
    sim: "Simulator",
    net: Network,
    client: Host,
    service: Service,
    payload: _t.Any,
    size: int,
) -> _t.Generator:
    request = Request(payload=payload, size=size, client=client, issued_at=sim.now)
    yield from net.transfer(client, service.host, size)
    service.stats.arrived += 1
    if service.crashed:
        service.stats.refused += 1
        raise ServiceUnavailableError(f"service {service.name} crashed: {service.crash_reason}")
    if service.concurrent >= service.max_threads + service.backlog:
        service.stats.refused += 1
        service.stats.refusal_log.append(sim.now)
        # TCP RST back to the client is effectively free but not instant.
        yield from net.transfer(service.host, client, 64)
        raise ServiceUnavailableError(f"service {service.name} refused connection (backlog full)")
    response = yield from service._serve(request)
    yield from net.transfer(service.host, client, response.size)
    if isinstance(response.value, Exception):
        raise response.value
    return response.value
