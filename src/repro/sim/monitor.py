"""Ganglia-like host monitoring inside the simulation.

The paper collected performance data with Ganglia at five-second
intervals (Section 3.1) and reported two load metrics (Section 3.2):

* ``load`` — percentage of CPU cycles in user+system mode
  (cpu_user + cpu_system);
* ``load1`` — the one-minute load average (``load_one``).

:class:`Ganglia` reproduces that pipeline: every ``interval`` simulated
seconds it samples each host's CPU utilization over the elapsed window
and folds the instantaneous run-queue length into the host's damped load
averages.
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass

from repro.sim.host import Host

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator

__all__ = ["Ganglia", "HostSample"]


@dataclass(frozen=True)
class HostSample:
    """One monitoring observation of one host."""

    time: float
    cpu_pct: float  # cpu_user + cpu_system over the last interval, percent
    load1: float  # one-minute load average
    runnable: int  # instantaneous run-queue length


class Ganglia:
    """Periodic sampler recording CPU load and load1 per host."""

    def __init__(self, sim: "Simulator", hosts: _t.Sequence[Host], interval: float = 5.0) -> None:
        self.sim = sim
        self.hosts = list(hosts)
        self.interval = interval
        self.records: dict[str, list[HostSample]] = {h.name: [] for h in self.hosts}
        self._prev_busy = {h.name: h.cpu.snapshot().busy_integral for h in self.hosts}
        sim.spawn(self._sampler(), name="ganglia")

    def _sampler(self) -> _t.Generator:
        while True:
            yield self.sim.timeout(self.interval)
            for host in self.hosts:
                snap = host.cpu.snapshot()
                prev = self._prev_busy[host.name]
                cpu_pct = 100.0 * (snap.busy_integral - prev) / self.interval
                self._prev_busy[host.name] = snap.busy_integral
                host.loadavg.sample(host.runnable, self.interval)
                self.records[host.name].append(
                    HostSample(
                        time=self.sim.now,
                        cpu_pct=cpu_pct,
                        load1=host.loadavg.load1,
                        runnable=host.runnable,
                    )
                )

    # -- analysis -----------------------------------------------------------
    def series(self, host: Host | str) -> list[HostSample]:
        """All samples recorded for ``host`` so far."""
        name = host if isinstance(host, str) else host.name
        return self.records[name]

    def window_average(
        self, host: Host | str, start: float, end: float
    ) -> tuple[float, float]:
        """Mean ``(cpu_pct, load1)`` over samples in ``[start, end]``.

        This is the estimator the paper uses: "values reported are the
        average over all the values recorded during a 10-minute time
        span".
        """
        samples = [s for s in self.series(host) if start <= s.time <= end]
        if not samples:
            return (0.0, 0.0)
        cpu = sum(s.cpu_pct for s in samples) / len(samples)
        load1 = sum(s.load1 for s in samples) / len(samples)
        return (cpu, load1)
