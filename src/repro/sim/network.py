"""Network topology: per-site latency and shared bottleneck links.

Bandwidth contention happens at host NICs (each a processor-sharing
queue over bytes) and optionally on shared inter-site links — the WAN
between the UC client cluster and the ANL testbed in the study.  This is
the substrate behind the paper's repeated observation that "the network
on the server side can no longer handle the traffic".
"""

from __future__ import annotations

import typing as _t

from repro.errors import SimulationError
from repro.sim.host import Host
from repro.sim.sharing import ProcessorSharing

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator

__all__ = ["Network"]

# Loopback transfers still pay a small kernel crossing.
_LOOPBACK_LATENCY = 1e-4


class Network:
    """Latency/bandwidth model connecting :class:`~repro.sim.host.Host` sites."""

    def __init__(self, sim: "Simulator", default_latency: float = 1e-3) -> None:
        self.sim = sim
        self.default_latency = default_latency
        self._latency: dict[frozenset[str], float] = {}
        self._shared: dict[frozenset[str], ProcessorSharing] = {}
        self.bytes_transferred = 0
        self.messages = 0

    # -- topology construction -------------------------------------------------
    def set_latency(self, site_a: str, site_b: str, seconds: float) -> None:
        """Set the (symmetric) one-way propagation delay between two sites."""
        if seconds < 0:
            raise SimulationError(f"negative latency: {seconds}")
        self._latency[frozenset((site_a, site_b))] = seconds

    def add_shared_link(self, site_a: str, site_b: str, mbps: float) -> ProcessorSharing:
        """Install a shared bottleneck link between two sites.

        All traffic crossing the site pair shares the link's bandwidth
        fairly (processor sharing over bytes).
        """
        link = ProcessorSharing(
            self.sim, rate=mbps * 1e6 / 8.0, servers=1, name=f"link:{site_a}<->{site_b}"
        )
        self._shared[frozenset((site_a, site_b))] = link
        return link

    def latency(self, src: Host, dst: Host) -> float:
        """One-way delay between two hosts."""
        if src is dst:
            return _LOOPBACK_LATENCY
        if src.site == dst.site:
            return self._latency.get(frozenset((src.site,)), self.default_latency)
        return self._latency.get(frozenset((src.site, dst.site)), self.default_latency)

    # -- data movement ----------------------------------------------------------
    def transfer(self, src: Host, dst: Host, nbytes: int) -> _t.Generator:
        """Move ``nbytes`` from ``src`` to ``dst``; use with ``yield from``.

        The message is serialized through the sender NIC, any shared
        inter-site link, a propagation delay, then the receiver NIC.
        Same-host transfers only pay the loopback latency.
        """
        self.messages += 1
        self.bytes_transferred += nbytes
        if src is dst:
            yield self.sim.timeout(_LOOPBACK_LATENCY)
            return nbytes
        yield src.nic_out.serve(nbytes)
        link = self._shared.get(frozenset((src.site, dst.site)))
        if link is not None:
            yield link.serve(nbytes)
        yield self.sim.timeout(self.latency(src, dst))
        yield dst.nic_in.serve(nbytes)
        return nbytes
