"""Network topology: per-site latency and shared bottleneck links.

Bandwidth contention happens at host NICs (each a processor-sharing
queue over bytes) and optionally on shared inter-site links — the WAN
between the UC client cluster and the ANL testbed in the study.  This is
the substrate behind the paper's repeated observation that "the network
on the server side can no longer handle the traffic".
"""

from __future__ import annotations

import typing as _t

from repro.errors import ServiceUnavailableError, SimulationError
from repro.sim.events import Timeout
from repro.sim.host import Host
from repro.sim.sharing import ProcessorSharing

if _t.TYPE_CHECKING:  # pragma: no cover
    import numpy as np

    from repro.sim.engine import Simulator

__all__ = ["Network", "WanConditions"]

# Loopback transfers still pay a small kernel crossing.
_LOOPBACK_LATENCY = 1e-4


class WanConditions:
    """Degraded inter-site conditions during one WAN-weather episode.

    While installed on :attr:`Network.weather`, every *cross-site*
    message pays ``extra_latency`` on top of the configured propagation
    delay and is lost with probability ``loss`` — the message still
    burns its latency budget before the loss surfaces, like a drop deep
    in the path.  Same-site and loopback traffic is untouched.
    """

    __slots__ = ("extra_latency", "loss", "rng", "lost")

    def __init__(
        self,
        extra_latency: float,
        loss: float,
        rng: "np.random.Generator | None" = None,
    ) -> None:
        if extra_latency < 0:
            raise SimulationError(f"negative extra latency: {extra_latency}")
        if not 0.0 <= loss < 1.0:
            raise SimulationError(f"loss probability out of range: {loss}")
        if loss > 0.0 and rng is None:
            raise SimulationError("lossy WAN conditions need an rng")
        self.extra_latency = extra_latency
        self.loss = loss
        self.rng = rng
        self.lost = 0


class Network:
    """Latency/bandwidth model connecting :class:`~repro.sim.host.Host` sites."""

    def __init__(self, sim: "Simulator", default_latency: float = 1e-3) -> None:
        self.sim = sim
        self.default_latency = default_latency
        self._latency: dict[frozenset[str], float] = {}
        self._shared: dict[frozenset[str], ProcessorSharing] = {}
        # Ordered-pair caches: transfer() runs for every message, and a
        # frozenset allocation per lookup is measurable there.  Both are
        # derived views of the frozenset-keyed tables above and flushed
        # whenever the topology changes.
        self._latency_cache: dict[tuple[str, str], float] = {}
        self._link_cache: dict[tuple[str, str], ProcessorSharing | None] = {}
        self.bytes_transferred = 0
        self.messages = 0
        # Scenario hook: a WanConditions while a weather episode is
        # active, None otherwise.  The None path costs one attribute
        # read per transfer and changes nothing.
        self.weather: WanConditions | None = None

    # -- topology construction -------------------------------------------------
    def set_latency(self, site_a: str, site_b: str, seconds: float) -> None:
        """Set the (symmetric) one-way propagation delay between two sites."""
        if seconds < 0:
            raise SimulationError(f"negative latency: {seconds}")
        self._latency[frozenset((site_a, site_b))] = seconds
        self._latency_cache.clear()

    def add_shared_link(self, site_a: str, site_b: str, mbps: float) -> ProcessorSharing:
        """Install a shared bottleneck link between two sites.

        All traffic crossing the site pair shares the link's bandwidth
        fairly (processor sharing over bytes).
        """
        link = ProcessorSharing(
            self.sim, rate=mbps * 1e6 / 8.0, servers=1, name=f"link:{site_a}<->{site_b}"
        )
        self._shared[frozenset((site_a, site_b))] = link
        self._link_cache.clear()
        return link

    def _site_latency(self, src_site: str, dst_site: str) -> float:
        """Latency between two (possibly equal) sites, memoized per pair."""
        key = (src_site, dst_site)
        cached = self._latency_cache.get(key)
        if cached is None:
            if src_site == dst_site:
                cached = self._latency.get(frozenset((src_site,)), self.default_latency)
            else:
                cached = self._latency.get(
                    frozenset((src_site, dst_site)), self.default_latency
                )
            self._latency_cache[key] = cached
        return cached

    def _site_link(self, src_site: str, dst_site: str) -> ProcessorSharing | None:
        """Shared bottleneck link between two sites, memoized per pair."""
        key = (src_site, dst_site)
        if key in self._link_cache:
            return self._link_cache[key]
        link = self._shared.get(frozenset((src_site, dst_site)))
        self._link_cache[key] = link
        return link

    def latency(self, src: Host, dst: Host) -> float:
        """One-way delay between two hosts."""
        if src is dst:
            return _LOOPBACK_LATENCY
        return self._site_latency(src.site, dst.site)

    # -- data movement ----------------------------------------------------------
    def transfer(self, src: Host, dst: Host, nbytes: int) -> _t.Generator:
        """Move ``nbytes`` from ``src`` to ``dst``; use with ``yield from``.

        The message is serialized through the sender NIC, any shared
        inter-site link, a propagation delay, then the receiver NIC.
        Same-host transfers only pay the loopback latency.
        """
        self.messages += 1
        self.bytes_transferred += nbytes
        sim = self.sim
        if src is dst:
            yield Timeout(sim, _LOOPBACK_LATENCY)
            return nbytes
        yield src.nic_out.serve(nbytes)
        src_site = src.site
        dst_site = dst.site
        link = self._site_link(src_site, dst_site)
        if link is not None:
            yield link.serve(nbytes)
        propagation = self._site_latency(src_site, dst_site)
        weather = self.weather
        if weather is not None and src_site != dst_site:
            propagation += weather.extra_latency
            if weather.loss > 0.0 and float(weather.rng.random()) < weather.loss:
                # The message burns its whole latency budget before the
                # drop surfaces — a loss deep in the WAN path.
                weather.lost += 1
                yield Timeout(sim, propagation)
                raise ServiceUnavailableError(
                    f"message {src_site}->{dst_site} lost to WAN weather"
                )
        yield Timeout(sim, propagation)
        yield dst.nic_in.serve(nbytes)
        return nbytes
