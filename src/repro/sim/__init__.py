"""Discrete-event simulation substrate for the monitoring-services study.

Public surface:

* :class:`Simulator` — event loop and clock;
* :class:`Event`, :class:`Timeout`, :class:`Process` — control flow;
* :class:`Resource`, :class:`Mutex`, :class:`Store` — shared resources;
* :class:`ProcessorSharing` — fluid CPU/NIC model;
* :class:`Host`, :class:`Network` — the testbed fabric;
* :class:`Service`, :func:`call` — RPC with thread pools and backlogs;
* :class:`Ganglia` — the monitoring pipeline of the paper;
* :class:`RngHub` — named reproducible random streams.
"""

from repro.sim.engine import Simulator
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.host import Host
from repro.sim.loadavg import LoadAverage
from repro.sim.monitor import Ganglia, HostSample
from repro.sim.network import Network
from repro.sim.process import Process
from repro.sim.randomness import RngHub, stable_hash
from repro.sim.resources import Mutex, Resource, Store
from repro.sim.rpc import ConnectionOverhead, Request, Response, Service, call
from repro.sim.sharing import ProcessorSharing, PsSnapshot
from repro.sim.trace import Tracer, TraceRecord

__all__ = [
    "Simulator",
    "Event",
    "Timeout",
    "AnyOf",
    "AllOf",
    "Process",
    "Resource",
    "Mutex",
    "Store",
    "ProcessorSharing",
    "PsSnapshot",
    "Host",
    "LoadAverage",
    "Network",
    "Service",
    "Request",
    "Response",
    "ConnectionOverhead",
    "call",
    "Ganglia",
    "HostSample",
    "RngHub",
    "stable_hash",
    "Tracer",
    "TraceRecord",
]
