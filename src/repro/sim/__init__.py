"""Discrete-event simulation substrate for the monitoring-services study.

Public surface:

* :class:`Simulator` — event loop and clock;
* :class:`Event`, :class:`Timeout`, :class:`Process` — control flow;
* :class:`Resource`, :class:`Mutex`, :class:`Store` — shared resources;
* :class:`ProcessorSharing` — fluid CPU/NIC model;
* :class:`Host`, :class:`Network` — the testbed fabric;
* :class:`Service`, :func:`call` — RPC with thread pools and backlogs;
* :class:`RetryPolicy`, :class:`CircuitBreaker` — client-side resilience;
* :class:`CrashRestartSchedule`, :class:`FaultPlan` — fault injection;
* :class:`Ganglia` — the monitoring pipeline of the paper;
* :class:`RngHub` — named reproducible random streams.
"""

from repro.sim.engine import Simulator
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.faults import (
    CrashRestartSchedule,
    DropInjector,
    FaultInjector,
    FaultPlan,
    Outage,
    StallInjector,
    install_faults,
)
from repro.sim.host import Host
from repro.sim.loadavg import LoadAverage
from repro.sim.monitor import Ganglia, HostSample
from repro.sim.network import Network
from repro.sim.process import Process
from repro.sim.randomness import RngHub, stable_hash
from repro.sim.resources import Mutex, Resource, Store
from repro.sim.rpc import (
    CircuitBreaker,
    ConnectionOverhead,
    Request,
    Response,
    RetryPolicy,
    RetryStats,
    Service,
    call,
)
from repro.sim.sharing import ProcessorSharing, PsSnapshot
from repro.sim.trace import Tracer, TraceRecord

__all__ = [
    "Simulator",
    "Event",
    "Timeout",
    "AnyOf",
    "AllOf",
    "Process",
    "Resource",
    "Mutex",
    "Store",
    "ProcessorSharing",
    "PsSnapshot",
    "Host",
    "LoadAverage",
    "Network",
    "Service",
    "Request",
    "Response",
    "ConnectionOverhead",
    "CircuitBreaker",
    "RetryPolicy",
    "RetryStats",
    "call",
    "Outage",
    "CrashRestartSchedule",
    "DropInjector",
    "StallInjector",
    "FaultInjector",
    "FaultPlan",
    "install_faults",
    "Ganglia",
    "HostSample",
    "RngHub",
    "stable_hash",
    "Tracer",
    "TraceRecord",
]
