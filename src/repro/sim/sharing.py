"""Egalitarian processor-sharing queues in O(log n) per event.

Both simulated CPUs and network interfaces are modelled as
processor-sharing (PS) servers: ``servers`` units each serving at
``rate`` work-units per second, shared equally among all jobs present
(each job receives ``rate * min(1, servers/n)``).  PS is the standard
fluid model for both time-sliced CPUs and fair-share TCP bandwidth, and
it is what produces the emergent saturation behaviour the paper reports.

Implementation uses the classic *virtual time* trick: because every job
receives the same instantaneous rate, a single monotone virtual clock
``V(t) = ∫ rate_per_job dt`` orders completions.  A job of size ``w``
arriving when the clock reads ``V0`` finishes when ``V`` reaches
``V0 + w``.  Jobs live in a min-heap keyed by that target, so arrivals
and departures cost O(log n) instead of the naive O(n) rescan — this is
the hot path of the whole simulation (see ``benchmarks/bench_substrates``).
"""

from __future__ import annotations

import heapq
import typing as _t
from dataclasses import dataclass
from itertools import count

from repro.errors import SimulationError
from repro.sim.events import Event

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator

__all__ = ["ProcessorSharing", "PsSnapshot"]

# Tolerance when matching virtual-time targets at completion instants.
_VT_EPS = 1e-9


@dataclass(frozen=True)
class PsSnapshot:
    """Point-in-time statistics of a PS queue (integrals since t=0)."""

    time: float
    jobs: int
    busy_integral: float  # ∫ min(n, servers)/servers dt  — utilization
    jobs_integral: float  # ∫ n dt                        — mean concurrency
    completed: int
    work_completed: float


class ProcessorSharing:
    """A multi-server egalitarian processor-sharing queue.

    Parameters
    ----------
    rate:
        Work units served per second *per server* (CPU-seconds/second for
        a CPU core, bytes/second for a NIC).
    servers:
        Number of identical servers; with ``n > servers`` jobs each job
        gets ``rate * servers / n``.
    """

    def __init__(self, sim: "Simulator", rate: float, servers: int = 1, name: str = "") -> None:
        if rate <= 0:
            raise SimulationError(f"PS rate must be positive, got {rate}")
        if servers < 1:
            raise SimulationError(f"PS servers must be >= 1, got {servers}")
        self.sim = sim
        self.rate = float(rate)
        self.servers = int(servers)
        self.name = name
        self._vt = 0.0
        self._last_t = 0.0
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = count()
        self._timer_token = 0
        # statistics
        self._busy_int = 0.0
        self._jobs_int = 0.0
        self._completed = 0
        self._work_completed = 0.0

    # -- inspection --------------------------------------------------------
    @property
    def jobs(self) -> int:
        """Number of jobs currently in service."""
        return len(self._heap)

    def snapshot(self) -> PsSnapshot:
        """Advance internal clocks to *now* and return cumulative stats."""
        self._advance(self.sim.now)
        return PsSnapshot(
            time=self.sim.now,
            jobs=len(self._heap),
            busy_integral=self._busy_int,
            jobs_integral=self._jobs_int,
            completed=self._completed,
            work_completed=self._work_completed,
        )

    # -- core mechanics ---------------------------------------------------------
    def _rate_per_job(self) -> float:
        n = len(self._heap)
        if n == 0:
            return 0.0
        return self.rate * min(1.0, self.servers / n)

    def _advance(self, t: float) -> None:
        dt = t - self._last_t
        if dt <= 0:
            return
        n = len(self._heap)
        if n:
            self._busy_int += (min(n, self.servers) / self.servers) * dt
            self._jobs_int += n * dt
            self._vt += self._rate_per_job() * dt
        self._last_t = t

    def _reschedule(self) -> None:
        """Arm a completion timer for the earliest job target."""
        self._timer_token += 1
        if not self._heap:
            return
        token = self._timer_token
        target = self._heap[0][0]
        rate = self._rate_per_job()
        eta = max(0.0, (target - self._vt) / rate)
        self.sim.call_at(self.sim.now + eta, lambda: self._on_timer(token))

    def _on_timer(self, token: int) -> None:
        if token != self._timer_token or not self._heap:
            return  # stale timer: state changed since it was armed
        self._advance(self.sim.now)
        # The earliest job completes exactly now; clamp away fp drift.
        self._vt = max(self._vt, self._heap[0][0])
        while self._heap and self._heap[0][0] <= self._vt + _VT_EPS:
            target, _seq, event = heapq.heappop(self._heap)
            self._completed += 1
            event.succeed()
        self._reschedule()

    # -- public operation ----------------------------------------------------
    def serve(self, work: float) -> Event:
        """Event that fires once ``work`` units have been served.

        Zero (or negative) work completes immediately without joining the
        queue.
        """
        event = Event(self.sim)
        if work <= 0:
            event.succeed()
            return event
        self._advance(self.sim.now)
        self._work_completed += work  # counted at admission; conserved at completion
        heapq.heappush(self._heap, (self._vt + work, next(self._seq), event))
        self._reschedule()
        return event
