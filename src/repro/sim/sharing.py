"""Egalitarian processor-sharing queues in O(log n) per event.

Both simulated CPUs and network interfaces are modelled as
processor-sharing (PS) servers: ``servers`` units each serving at
``rate`` work-units per second, shared equally among all jobs present
(each job receives ``rate * min(1, servers/n)``).  PS is the standard
fluid model for both time-sliced CPUs and fair-share TCP bandwidth, and
it is what produces the emergent saturation behaviour the paper reports.

Implementation uses the classic *virtual time* trick: because every job
receives the same instantaneous rate, a single monotone virtual clock
``V(t) = ∫ rate_per_job dt`` orders completions.  A job of size ``w``
arriving when the clock reads ``V0`` finishes when ``V`` reaches
``V0 + w``.  Jobs live in a min-heap keyed by that target, so arrivals
and departures cost O(log n) instead of the naive O(n) rescan — this is
the hot path of the whole simulation (see ``benchmarks/bench_substrates``).
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass
from heapq import heappop, heappush

from repro.errors import SimulationError
from repro.sim.events import PENDING, PROCESSED, Event, Timeout

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator

__all__ = ["ProcessorSharing", "PsSnapshot"]

# Tolerance when matching virtual-time targets at completion instants.
_VT_EPS = 1e-9


class _PsTimer(Timeout):
    """Completion timer that dispatches straight into its PS queue.

    Replaces the old ``sim.call_at(when, lambda: ps._on_timer(token))``
    arrangement — two closures and an extra frame per (re)arm on the
    single hottest scheduling path in the simulation.  Scheduling
    behaviour is identical: one timer event at the same ``(time, seq)``
    key; only the dispatch is direct.
    """

    __slots__ = ("_ps", "_token")

    def __init__(self, sim: "Simulator", delay: float, ps: "ProcessorSharing", token: int) -> None:
        # Timeout.__init__ unrolled (one timer per queue re-arm; the
        # constructor chain is pure overhead).  ``delay`` is >= 0 by
        # construction at the re-arm sites in serve()/_on_timer().
        self.sim = sim
        self.callbacks = []
        self._value = None
        self._ok = True
        self._state = PENDING
        self._ps = ps
        self._token = token
        seq = sim._seq
        sim._seq = seq + 1
        heappush(sim._heap, (sim._now + delay, seq, self))

    def _process(self) -> None:
        self._state = PROCESSED
        self._ps._on_timer(self._token)
        callbacks = self.callbacks
        if callbacks:  # nothing normally waits on a PS timer
            self.callbacks = []
            for callback in callbacks:
                callback(self)


@dataclass(frozen=True)
class PsSnapshot:
    """Point-in-time statistics of a PS queue (integrals since t=0)."""

    time: float
    jobs: int
    busy_integral: float  # ∫ min(n, servers)/servers dt  — utilization
    jobs_integral: float  # ∫ n dt                        — mean concurrency
    completed: int
    work_completed: float


class ProcessorSharing:
    """A multi-server egalitarian processor-sharing queue.

    Parameters
    ----------
    rate:
        Work units served per second *per server* (CPU-seconds/second for
        a CPU core, bytes/second for a NIC).
    servers:
        Number of identical servers; with ``n > servers`` jobs each job
        gets ``rate * servers / n``.
    """

    def __init__(self, sim: "Simulator", rate: float, servers: int = 1, name: str = "") -> None:
        if rate <= 0:
            raise SimulationError(f"PS rate must be positive, got {rate}")
        if servers < 1:
            raise SimulationError(f"PS servers must be >= 1, got {servers}")
        self.sim = sim
        self.rate = float(rate)
        self.servers = int(servers)
        self.name = name
        self._vt = 0.0
        self._last_t = 0.0
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = 0
        self._timer_token = 0
        # statistics
        self._busy_int = 0.0
        self._jobs_int = 0.0
        self._completed = 0
        self._work_completed = 0.0

    # -- inspection --------------------------------------------------------
    @property
    def jobs(self) -> int:
        """Number of jobs currently in service."""
        return len(self._heap)

    def snapshot(self) -> PsSnapshot:
        """Advance internal clocks to *now* and return cumulative stats."""
        self._advance(self.sim.now)
        return PsSnapshot(
            time=self.sim.now,
            jobs=len(self._heap),
            busy_integral=self._busy_int,
            jobs_integral=self._jobs_int,
            completed=self._completed,
            work_completed=self._work_completed,
        )

    # -- core mechanics ---------------------------------------------------------
    def _advance(self, t: float) -> None:
        """Roll the virtual clock and stat integrals forward to ``t``.

        Cold-path copy (snapshot()); the hot entry points below inline
        this body.
        """
        dt = t - self._last_t
        if dt <= 0:
            return
        n = len(self._heap)
        if n:
            servers = self.servers
            self._busy_int += (min(n, servers) / servers) * dt
            self._jobs_int += n * dt
            self._vt += (self.rate * min(1.0, servers / n)) * dt
        self._last_t = t

    def _on_timer(self, token: int) -> None:
        # The two hottest entry points (here and serve()) inline
        # _advance/_reschedule bodies: together they fire ~2x per
        # simulated job and the method-call overhead was the top
        # remaining cost in the engine profile.  The min()/max() calls
        # are replaced by branches whose both arms evaluate the exact
        # float expressions of the original _advance()/_reschedule()
        # bodies — bit-equal results, so event timestamps (and figure
        # tables) cannot move.  The timer delay keeps the historical
        # (now + eta) - now double rounding for the same reason.
        heap = self._heap
        if token != self._timer_token or not heap:
            return  # stale timer: state changed since it was armed
        sim = self.sim
        now = sim._now
        dt = now - self._last_t
        if dt > 0:
            n = len(heap)
            servers = self.servers
            if n >= servers:
                self._busy_int += dt
                self._vt += (self.rate * (servers / n)) * dt
            else:
                self._busy_int += (n / servers) * dt
                self._vt += self.rate * dt
            self._jobs_int += n * dt
            self._last_t = now
        # The earliest job completes exactly now; clamp away fp drift.
        vt = self._vt
        head = heap[0][0]
        if head > vt:
            vt = self._vt = head
        cutoff = vt + _VT_EPS
        completed = self._completed
        while heap and heap[0][0] <= cutoff:
            _target, _seq, event = heappop(heap)
            completed += 1
            event.succeed()
        self._completed = completed
        token = self._timer_token = self._timer_token + 1
        if not heap:
            return
        n = len(heap)
        servers = self.servers
        rate = self.rate if n <= servers else self.rate * (servers / n)
        eta = max(0.0, (heap[0][0] - self._vt) / rate)
        _PsTimer(sim, (now + eta) - now, self, token)

    # -- public operation ----------------------------------------------------
    def serve(self, work: float) -> Event:
        """Event that fires once ``work`` units have been served.

        Zero (or negative) work completes immediately without joining the
        queue.
        """
        sim = self.sim
        event = Event(sim)
        if work <= 0:
            event.succeed()
            return event
        # _advance/_reschedule inlined; see the note in _on_timer.
        heap = self._heap
        now = sim._now
        dt = now - self._last_t
        if dt > 0:
            n = len(heap)
            if n:
                servers = self.servers
                if n >= servers:
                    self._busy_int += dt
                    self._vt += (self.rate * (servers / n)) * dt
                else:
                    self._busy_int += (n / servers) * dt
                    self._vt += self.rate * dt
                self._jobs_int += n * dt
            self._last_t = now
        self._work_completed += work  # counted at admission; conserved at completion
        seq = self._seq
        self._seq = seq + 1
        heappush(heap, (self._vt + work, seq, event))
        token = self._timer_token = self._timer_token + 1
        n = len(heap)
        servers = self.servers
        rate = self.rate if n <= servers else self.rate * (servers / n)
        eta = max(0.0, (heap[0][0] - self._vt) / rate)
        _PsTimer(sim, (now + eta) - now, self, token)
        return event
