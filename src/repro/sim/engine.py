"""The discrete-event simulation engine.

:class:`Simulator` owns the clock and the event schedule (a binary heap).
It is deliberately small: all behaviour lives in events, processes and
resources layered on top.  The engine is fully deterministic — ties in
time are broken by insertion order — which makes every experiment in the
study exactly reproducible from its seed.

Performance notes (see ``benchmarks/profile_engine.py``): the schedule
entries are plain ``(time, seq, event)`` tuples — CPython's tuple free
list makes them both cheaper to allocate and faster to compare than
reusable list slots, which we measured before choosing.  The sequence
counter is a bare int (``itertools.count`` pays a C-call per event), and
:meth:`run` inlines :meth:`step` so the hot loop touches no method
descriptors.  None of this changes scheduling order: every event is
still assigned the same ``(time, seq)`` key it always was, which is what
keeps the committed figure tables byte-identical.
"""

from __future__ import annotations

import typing as _t
from heapq import heappop, heappush

from repro.errors import SimulationError
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process

__all__ = ["Simulator"]


class Simulator:
    """Event loop, clock and factory for simulation primitives.

    Example
    -------
    >>> sim = Simulator()
    >>> def hello(sim):
    ...     yield sim.timeout(3.0)
    ...     return sim.now
    >>> p = sim.spawn(hello(sim))
    >>> sim.run()
    >>> p.value
    3.0
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = 0
        self._processed = 0

    # -- clock ----------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of events the engine has processed (for profiling)."""
        return self._processed

    # -- primitive factories ----------------------------------------------------
    def event(self) -> Event:
        """A fresh untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: _t.Any = None) -> Timeout:
        """An event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def spawn(self, generator: _t.Generator, name: str | None = None) -> Process:
        """Start a new process executing ``generator``."""
        return Process(self, generator, name=name)

    # SimPy-compatible alias
    process = spawn

    def any_of(self, events: _t.Iterable[Event]) -> AnyOf:
        """Event that fires when the first of ``events`` fires."""
        return AnyOf(self, events)

    def all_of(self, events: _t.Iterable[Event]) -> AllOf:
        """Event that fires when all of ``events`` have fired."""
        return AllOf(self, events)

    # -- scheduling ----------------------------------------------------------
    def _schedule(self, event: Event, delay: float) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule event in the past (delay={delay})")
        seq = self._seq
        self._seq = seq + 1
        heappush(self._heap, (self._now + delay, seq, event))

    def call_at(self, when: float, callback: _t.Callable[[], None]) -> Event:
        """Run ``callback`` at absolute time ``when``; returns the timer event.

        Used by the processor-sharing queues to (re)schedule completion
        scans without spawning a full process.
        """
        if when < self._now:
            raise SimulationError(f"call_at into the past: {when} < {self._now}")
        event = Timeout(self, when - self._now)
        event.callbacks.append(lambda _ev: callback())
        return event

    # -- main loop ------------------------------------------------------------
    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` when idle."""
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Process a single event."""
        if not self._heap:
            raise SimulationError("step() on an empty schedule")
        when, _seq, event = heappop(self._heap)
        self._now = when
        self._processed += 1
        event._process()

    def run(self, until: float | None = None) -> None:
        """Run until the schedule drains, or until time ``until``.

        When ``until`` is given the clock is advanced exactly to ``until``
        even if the last event fires earlier, so periodic samplers can rely
        on the final timestamp.
        """
        heap = self._heap
        pop = heappop
        processed = self._processed
        if until is None:
            try:
                while heap:
                    when, _seq, event = pop(heap)
                    self._now = when
                    processed += 1
                    event._process()
            finally:
                self._processed = processed
            return
        if until < self._now:
            raise SimulationError(f"run(until={until}) is in the past (now={self._now})")
        try:
            while heap and heap[0][0] <= until:
                when, _seq, event = pop(heap)
                self._now = when
                processed += 1
                event._process()
        finally:
            self._processed = processed
        self._now = until
