"""Structured tracing for simulation runs.

A :class:`Tracer` collects timestamped records from instrumented points
(service request lifecycles, resource contention, custom marks) so a
surprising experiment result can be replayed and inspected::

    tracer = Tracer(sim)
    tracer.instrument_service(service)
    ...
    sim.run(until=80)
    print(tracer.render(limit=50))
    slow = [r for r in tracer.records if r.kind == "rpc" and r.duration > 10]

Instrumentation wraps the service handler; it adds no simulated time.
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass, field

from repro.sim.rpc import Request, Service

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator

__all__ = ["Tracer", "TraceRecord"]


@dataclass(frozen=True)
class TraceRecord:
    """One traced occurrence."""

    time: float
    kind: str  # "mark" | "rpc" | "refusal" | ...
    subject: str
    detail: dict[str, _t.Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Span length for records carrying start/end, else 0."""
        return float(self.detail.get("duration", 0.0))


class Tracer:
    """Collects :class:`TraceRecord` objects from an experiment run."""

    def __init__(self, sim: "Simulator", capacity: int = 100_000) -> None:
        self.sim = sim
        self.capacity = capacity
        self.records: list[TraceRecord] = []
        self.dropped = 0

    # -- recording ------------------------------------------------------------
    def mark(self, subject: str, **detail: _t.Any) -> None:
        """Record a custom point event at the current simulation time."""
        self._add(TraceRecord(time=self.sim.now, kind="mark", subject=subject, detail=detail))

    def _add(self, record: TraceRecord) -> None:
        if len(self.records) >= self.capacity:
            self.dropped += 1
            return
        self.records.append(record)

    # -- instrumentation ----------------------------------------------------
    def instrument_service(self, service: Service) -> None:
        """Wrap a service handler to log every request's span and outcome."""
        inner = service.handler
        tracer = self

        def traced(svc: Service, request: Request) -> _t.Generator:
            started = tracer.sim.now
            queued = svc.queued
            try:
                response = yield from inner(svc, request)
            except Exception as exc:
                tracer._add(
                    TraceRecord(
                        time=tracer.sim.now,
                        kind="rpc-error",
                        subject=svc.name,
                        detail={
                            "started": started,
                            "duration": tracer.sim.now - started,
                            "error": type(exc).__name__,
                        },
                    )
                )
                raise
            tracer._add(
                TraceRecord(
                    time=tracer.sim.now,
                    kind="rpc",
                    subject=svc.name,
                    detail={
                        "started": started,
                        "duration": tracer.sim.now - started,
                        "queued_behind": queued,
                        "size": getattr(response, "size", None),
                    },
                )
            )
            return response

        traced.__wrapped__ = inner  # unwrap hook for uninstrument_service
        service.handler = traced

    def uninstrument_service(self, service: Service) -> bool:
        """Undo :meth:`instrument_service`, restoring the original handler.

        Returns False (and leaves the service alone) when the handler is
        not one of this tracer's wrappers.  Nested instrumentation peels
        one layer per call.
        """
        inner = getattr(service.handler, "__wrapped__", None)
        if inner is None:
            return False
        service.handler = inner
        return True

    # -- analysis ------------------------------------------------------------
    def by_kind(self, kind: str) -> list[TraceRecord]:
        return [r for r in self.records if r.kind == kind]

    def spans(self, subject: str | None = None) -> list[TraceRecord]:
        """RPC spans, optionally filtered by service name."""
        return [
            r
            for r in self.records
            if r.kind == "rpc" and (subject is None or r.subject == subject)
        ]

    def render(self, limit: int = 40) -> str:
        """A human-readable tail of the trace."""
        lines = [f"trace: {len(self.records)} records ({self.dropped} dropped)"]
        for record in self.records[-limit:]:
            extra = " ".join(f"{k}={v}" for k, v in record.detail.items())
            lines.append(f"  [{record.time:10.4f}] {record.kind:<10s} {record.subject:<24s} {extra}")
        return "\n".join(lines)
