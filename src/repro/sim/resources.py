"""Shared-resource primitives: counted resources, mutexes and stores.

A :class:`Resource` models a pool of identical slots acquired in FIFO
order.  Processes blocked on a resource are *not runnable* — they do not
appear in the host's run queue — which is exactly the mechanism behind
the paper's observation that host load1 *drops* past the saturation
threshold ("a large percentage of the processes were blocked waiting for
resources", Section 3.3).
"""

from __future__ import annotations

import typing as _t
from collections import deque

from repro.errors import SimulationError
from repro.sim.events import Event

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator

__all__ = ["Resource", "Mutex", "Store"]


class Resource:
    """A pool of ``capacity`` identical slots, granted in FIFO order.

    Usage inside a process::

        yield resource.acquire()
        try:
            ...critical section...
        finally:
            resource.release()
    """

    def __init__(self, sim: "Simulator", capacity: int = 1, name: str = "") -> None:
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiters: deque[Event] = deque()
        # Aggregate statistics for analysis.
        self.total_acquired = 0
        self._wait_time_total = 0.0
        self._wait_started: dict[int, float] = {}

    # -- inspection -----------------------------------------------------------
    @property
    def in_use(self) -> int:
        """Number of currently held slots."""
        return self._in_use

    @property
    def queue_length(self) -> int:
        """Number of processes blocked waiting for a slot."""
        return len(self._waiters)

    @property
    def mean_wait(self) -> float:
        """Mean time spent queueing per successful acquisition."""
        if self.total_acquired == 0:
            return 0.0
        return self._wait_time_total / self.total_acquired

    # -- operations -------------------------------------------------------------
    def acquire(self) -> Event:
        """Event that fires once a slot is granted to the caller."""
        event = Event(self.sim)
        if self._in_use < self.capacity and not self._waiters:
            self._in_use += 1
            self.total_acquired += 1
            event.succeed()
        else:
            self._wait_started[id(event)] = self.sim.now
            self._waiters.append(event)
        return event

    def release(self) -> None:
        """Return a slot; grants it to the longest waiter, if any."""
        if self._in_use <= 0:
            raise SimulationError(f"release() of resource {self.name!r} that is not held")
        if self._waiters:
            event = self._waiters.popleft()
            self._wait_time_total += self.sim.now - self._wait_started.pop(id(event))
            self.total_acquired += 1
            event.succeed()
        else:
            self._in_use -= 1


class Mutex(Resource):
    """A single-slot resource — the serialized back-end of the cost models."""

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        super().__init__(sim, capacity=1, name=name)


class Store:
    """An unbounded FIFO queue of items with blocking ``get``."""

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.name = name
        self._items: deque[_t.Any] = deque()
        self._getters: deque[Event] = deque()

    @property
    def size(self) -> int:
        """Number of items currently buffered."""
        return len(self._items)

    def put(self, item: _t.Any) -> None:
        """Deposit ``item``; wakes the oldest blocked getter if any."""
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Event that fires with the next item (immediately if buffered)."""
        event = Event(self.sim)
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event
