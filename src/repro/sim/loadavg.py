"""Unix-style exponentially damped load averages.

The paper's ``load1`` metric is Ganglia's ``load_one``: the kernel's
one-minute load average, i.e. the run-queue length passed through an
exponential moving average with a 60-second time constant, updated every
5 seconds.  We reproduce that calculation exactly so simulated hosts
report the same statistic.
"""

from __future__ import annotations

import math

__all__ = ["LoadAverage"]

# exp(-dt/period) per period, memoized by dt: the Ganglia monitor samples
# every host on a fixed tick, so in steady state every call hits the
# cache instead of paying three math.exp() per host per tick.  Values
# are bit-identical to recomputation (same expression, computed once).
_DECAY_CACHE: dict[float, tuple[float, ...]] = {}


class LoadAverage:
    """One/five/fifteen-minute damped averages of a sampled quantity."""

    PERIODS = (60.0, 300.0, 900.0)

    def __init__(self) -> None:
        self._loads = [0.0, 0.0, 0.0]

    @property
    def load1(self) -> float:
        """One-minute load average (the paper's ``load1``)."""
        return self._loads[0]

    @property
    def load5(self) -> float:
        """Five-minute load average."""
        return self._loads[1]

    @property
    def load15(self) -> float:
        """Fifteen-minute load average."""
        return self._loads[2]

    def sample(self, runnable: float, dt: float) -> None:
        """Fold one observation of the run-queue length into the averages.

        ``dt`` is the time since the previous sample (the kernel uses a
        fixed 5 s tick; our Ganglia monitor does too, but the math is
        exact for any spacing).
        """
        if dt <= 0:
            return
        decays = _DECAY_CACHE.get(dt)
        if decays is None:
            decays = tuple(math.exp(-dt / period) for period in self.PERIODS)
            if len(_DECAY_CACHE) < 4096:  # bound growth under adversarial dt spreads
                _DECAY_CACHE[dt] = decays
        loads = self._loads
        for i, decay in enumerate(decays):
            loads[i] = loads[i] * decay + runnable * (1.0 - decay)
