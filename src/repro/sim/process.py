"""Generator-based simulated processes.

A process wraps a Python generator: every value the generator yields must
be an :class:`~repro.sim.events.Event` (processes themselves are events, so
``yield other_process`` waits for it).  When the generator returns, the
process event succeeds with the return value; an uncaught exception fails
it.  Processes may be interrupted, which throws
:class:`~repro.errors.InterruptError` at the current yield point.
"""

from __future__ import annotations

import typing as _t

from repro.errors import InterruptError, SimulationError
from repro.sim.events import PROCESSED, Event

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator

__all__ = ["Process"]


class Process(Event):
    """A running generator inside the simulation; also an awaitable event."""

    __slots__ = ("name", "_generator", "_waiting_on", "_alive", "_resume_cb")

    def __init__(self, sim: "Simulator", generator: _t.Generator, name: str | None = None) -> None:
        if not hasattr(generator, "send"):
            raise SimulationError(
                f"spawn() needs a generator, got {type(generator).__name__}; "
                "did you forget to call the process function?"
            )
        super().__init__(sim)
        self.name = name or getattr(generator, "__name__", "process")
        self._generator = generator
        self._waiting_on: Event | None = None
        self._alive = True
        # One bound method for the process's whole life: every yield would
        # otherwise allocate a fresh ``self._resume`` bound-method object.
        self._resume_cb = self._resume
        # Kick off at the current time via a zero-delay bootstrap event.
        boot = Event(sim)
        boot.callbacks.append(self._resume_cb)
        boot.succeed()

    # -- lifecycle ---------------------------------------------------------
    @property
    def alive(self) -> bool:
        """True while the generator has not finished."""
        return self._alive

    def interrupt(self, cause: _t.Any = None) -> None:
        """Throw :class:`InterruptError` into the process at its yield point.

        Interrupting a finished process is a no-op (the usual race when a
        watchdog fires just as the work completes).
        """
        if not self._alive:
            return
        target = self._waiting_on
        if target is not None:
            # Stop listening to whatever we were waiting for.
            try:
                target.callbacks.remove(self._resume_cb)
            except ValueError:
                pass
            self._waiting_on = None
        wake = Event(self.sim)
        wake.callbacks.append(self._resume_cb)
        wake.fail(InterruptError(cause))

    # -- engine callback ----------------------------------------------------
    def _resume(self, trigger: Event) -> None:
        if not self._alive:
            return
        self._waiting_on = None
        generator = self._generator
        try:
            if trigger._ok:
                target = generator.send(trigger._value)
            else:
                target = generator.throw(trigger._value)
        except StopIteration as stop:
            self._alive = False
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self._alive = False
            self.fail(exc)
            return
        if not isinstance(target, Event):
            self._alive = False
            err = SimulationError(
                f"process {self.name!r} yielded {target!r}; processes must yield events"
            )
            generator.close()
            self.fail(err)
            return
        if target._state == PROCESSED:
            # Already done: resume on a fresh zero-delay event carrying its
            # outcome so execution order stays deterministic.
            relay = Event(self.sim)
            relay.callbacks.append(self._resume_cb)
            if target._ok:
                relay.succeed(target._value)
            else:
                relay.fail(target._value)
            return
        self._waiting_on = target
        target.callbacks.append(self._resume_cb)
