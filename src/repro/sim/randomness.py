"""Named, reproducible random streams.

Every stochastic element of an experiment draws from its own named
stream derived from the experiment seed, so adding a new source of
randomness never perturbs existing ones — a standard reproducibility
idiom for parallel simulation.
"""

from __future__ import annotations

import zlib

import numpy as np

__all__ = ["RngHub", "stable_hash"]


def stable_hash(*parts: str) -> int:
    """A process-independent 32-bit hash of the given name parts."""
    return zlib.crc32("\x1f".join(parts).encode("utf-8"))


class RngHub:
    """Factory of independent :class:`numpy.random.Generator` streams."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)

    def stream(self, *names: str) -> np.random.Generator:
        """Generator for the stream identified by ``names``.

        The same (seed, names) pair always yields an identical stream;
        distinct names yield statistically independent streams.
        """
        return np.random.default_rng(
            np.random.SeedSequence([self.seed & 0xFFFFFFFF, stable_hash(*names)])
        )
