"""Cohort-vectorized client engine: the ``cohort`` fidelity tier.

The exact engine simulates one generator per client and a handful of
heap events per request — faithful, but capped around 10^3 clients.
This engine steps the *whole client population* as numpy arrays through
the station chain of a :class:`~repro.core.fidelity.ServiceModel` in
event epochs:

* every client has one pending fire time; each epoch processes the
  batch of clients firing inside a short horizon slice (shorter than
  the minimum think/retry cycle, so no client can fire twice per epoch
  and per-station arrival order stays globally nondecreasing);
* each station is an exact constant-service FIFO queue: the ``c``-server
  recurrence ``D_k = max(R_k, D_{k-c}) + s`` is evaluated in closed form
  per residue class with ``cummax``, with the last departure per server
  carried between epochs;
* serialized holds inflate with their own measured queue (the convoy
  model), and the connection overhead is charged from the measured
  in-server concurrency of the previous epoch — both one-epoch-lagged
  estimates of quantities the exact engine tracks per event;
* accept-queue refusal replays the exact engine's admission rule
  against the measured in-server population (previous epochs via a
  sorted outstanding-departures array, the same epoch via a tentative
  pass plus one repair pass), and refused clients retry after
  ``retry_wait`` without thinking, like real clients;
* think times, start spread and think jitter are sampled vectorially
  from one seeded generator, so a point is deterministic per seed
  (epoch partitioning — hence RNG consumption order — is itself
  deterministic).

Conservation is structural: every fired request is classified as
completed or refused in the epoch that processes it, so
``issued == completed_total + refused_total`` always holds — the
metamorphic guarantee the validation tests pin down.
"""

from __future__ import annotations

import heapq
import typing as _t

import numpy as np

from repro.core.metrics import MetricsSummary, StreamingLatency

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard (fidelity -> cohort)
    from repro.core.fidelity import ServiceModel, Station
    from repro.core.params import WorkloadParams

__all__ = ["CohortEngine"]


class _StationState:
    """Mutable queueing state of one station across epochs."""

    __slots__ = ("station", "free", "last_q", "sojourn_window", "mode", "extra", "q_cap")

    def __init__(self, station: "Station", q_cap: float = float("inf")) -> None:
        self.station = station
        self.q_cap = q_cap  # convoy queue can't exceed the thread pool
        self.last_q = 0.0  # mean queue over the previous epoch (convoy feedback)
        self.sojourn_window = 0.0  # sum of sojourn times of window completions
        base = station.base_service
        if station.servers == 0:
            self.mode = "delay"
            self.free = np.zeros(0)
            self.extra = 0.0
        elif station.service is not None and base < station.demand:
            # Fan-out pool: the request's work spreads over the pool, so
            # queueing happens at the aggregate rate (demand/servers per
            # request, one logical server) while the no-contention
            # latency stays the station's service time.
            self.mode = "pool"
            self.free = np.zeros(1)
            self.extra = max(0.0, base - station.demand / station.servers)
        else:
            self.mode = "fifo"
            self.free = np.zeros(station.servers)
            self.extra = 0.0

    def clone(self) -> "_StationState":
        other = _StationState.__new__(_StationState)
        other.station = self.station
        other.free = self.free.copy()
        other.last_q = self.last_q
        other.sojourn_window = self.sojourn_window
        other.mode = self.mode
        other.extra = self.extra
        other.q_cap = self.q_cap
        return other

    def scale(self) -> float:
        return 1.0 + self.station.convoy * min(self.last_q, self.q_cap)

    def step(self, arrivals: np.ndarray) -> np.ndarray:
        """Departure times for ``arrivals`` (sorted nondecreasing)."""
        st = self.station
        scale = self.scale()
        if self.mode == "delay":
            return arrivals + st.base_service * scale
        if self.mode == "pool":
            s = (st.demand / st.servers) * scale
            dep = _fifo(self.free, arrivals, s)
            return dep + self.extra * scale
        return _fifo(self.free, arrivals, st.demand * scale)


def _fifo(free: np.ndarray, arrivals: np.ndarray, service: float) -> np.ndarray:
    """Exact c-server FIFO with constant service time, vectorized.

    ``free`` holds each server's next-free time (mutated in place).
    With identical service times the k-th arrival in FIFO order is
    served by server ``k mod c`` once ``free`` is sorted ascending, and
    within one residue class the single-server recurrence
    ``D_i = max(R_i, D_{i-1}) + s`` has the closed form
    ``D_i = (i+1)s + max(cummax(R_m - m*s)_i, carry)``.
    """
    c = len(free)
    m = len(arrivals)
    dep = np.empty(m)
    free.sort()
    for j in range(c):
        a = arrivals[j::c]
        if len(a) == 0:
            break
        i = np.arange(len(a))
        env = np.maximum.accumulate(a - i * service)
        d = (i + 1) * service + np.maximum(env, free[j])
        dep[j::c] = d
        free[j] = d[-1]
    return dep


class CohortEngine:
    """Run one population against one :class:`ServiceModel`.

    ``run`` executes the warm-up + measurement schedule and returns the
    same :class:`~repro.core.metrics.MetricsSummary` shape the exact
    tier produces; cumulative counters (``issued``, ``completed_total``,
    ``refused_total``) cover the whole horizon for conservation checks.
    """

    def __init__(
        self,
        model: "ServiceModel",
        users: int,
        *,
        workload: "WorkloadParams",
        seed: int = 1,
    ) -> None:
        if users < 1:
            raise ValueError(f"population must be >= 1, got {users}")
        self.model = model
        self.users = users
        self.wp = workload
        self.rng = np.random.default_rng(seed)
        self.events = 0
        self.issued = 0
        self.completed_total = 0
        self.refused_total = 0
        stations = model.stations
        in_flags = [st.in_server for st in stations]
        first_in = in_flags.index(True) if any(in_flags) else len(stations)
        last_in = (len(in_flags) - 1 - in_flags[::-1].index(True)) if any(in_flags) else -1
        self._pre = stations[:first_in]
        self._in = stations[first_in : last_in + 1]
        self._post = stations[last_in + 1 :]

    # -- the schedule -------------------------------------------------------

    def run(self, *, warmup: float, window: float) -> MetricsSummary:
        model = self.model
        wp = self.wp
        n = self.users
        horizon = warmup + window
        # Epoch slice: shorter than the shortest client cycle, so one
        # fire per client per epoch and cross-epoch FIFO order.
        dt = 0.4 * min(wp.think_time * (1.0 - wp.think_jitter), wp.retry_wait)
        dt = max(dt, 1e-3)
        can_refuse = n >= model.capacity
        # Per-request concurrency (for the connection overhead and the
        # admission rule) is tracked through the in-server departure
        # times of earlier requests; skip the bookkeeping entirely when
        # neither mechanism can fire.
        track = can_refuse or model.conn is not None
        # Handler-thread gate: a request holds one of max_threads pool
        # threads through the connection-overhead sleep and the station
        # chain, so when the population can outnumber the pool, admitted
        # requests queue for a thread before the conn phase (the exact
        # engine's _slot_waiters).  Modelled as a min-heap of per-thread
        # free times; pool turnover bounds the per-epoch loop size.
        gate: list[float] | None = None
        if track and model.conn is not None and n >= model.max_threads:
            gate = [0.0] * model.max_threads
        hold_lag = 0.0  # mean post-conn in-server residence, one epoch lagged
        next_fire = self.rng.uniform(0.0, wp.start_spread, n)

        pre = [_StationState(st) for st in self._pre]
        # Only max_threads requests exist past the accept queue, so an
        # in-server convoy can never see more waiters than that.
        srv = [_StationState(st, q_cap=float(model.max_threads)) for st in self._in]
        post = [_StationState(st) for st in self._post]
        hist = StreamingLatency()
        completed = 0
        refused = 0
        conn_lag = model.conn.latency(0) if model.conn is not None else 0.0
        conn_window = 0.0  # summed conn delays of in-window admissions
        outstanding = np.zeros(0)  # in-server departure times (sorted)

        while True:
            t0 = float(next_fire.min())
            if t0 > horizon:
                break
            mask = next_fire <= t0 + dt
            idx = np.nonzero(mask)[0]
            fires = next_fire[idx]
            order = np.argsort(fires, kind="stable")
            idx = idx[order]
            fires = fires[order]
            m = len(idx)
            self.issued += m
            self.events += m * (len(model.stations) + 2)
            in_window = (fires >= warmup) & (fires <= horizon)

            t = fires + model.pre_delay
            for state in pre:
                dep = state.step(t)
                state.sojourn_window += float(((dep - t) * in_window).sum())
                state.last_q = float((dep - t).sum()) / dt
                t = dep
            arrive = t

            admitted = np.ones(m, dtype=bool)
            conn_vec = np.zeros(m)
            if track:
                outstanding = outstanding[outstanding > t0]
                # Tentative pass on cloned state: who would still be in
                # the server when each request arrives?  This replays
                # the exact engine's per-request concurrency counter.
                t_tent = arrive + conn_lag
                for state in srv:
                    t_tent = state.clone().step(t_tent)
                prev_in = len(outstanding) - np.searchsorted(
                    outstanding, arrive, side="right"
                )
                done_before = np.searchsorted(t_tent, arrive, side="right")
                in_flight = np.maximum(prev_in + np.arange(m) - done_before, 0)
                if can_refuse:
                    admitted = in_flight < model.capacity
                    n_ref = int((~admitted).sum())
                    if n_ref:
                        self.refused_total += n_ref
                        # Refusals are logged at the time the server
                        # turns the request away, like the exact log.
                        ref_at = arrive[~admitted]
                        refused += int(
                            ((ref_at >= warmup) & (ref_at <= horizon)).sum()
                        )
                        # arrive already includes the request path; a
                        # refusal costs only the return leg + the wait.
                        back = max(0.0, model.refusal_rtt - model.pre_delay)
                        next_fire[idx[~admitted]] = (
                            arrive[~admitted] + back + wp.retry_wait
                        )
                if model.conn is not None:
                    cn = model.conn
                    # The exact engine charges latency(self._active)
                    # *after* the request takes its slot, so the count
                    # includes the request itself: others + 1.
                    active = np.minimum(in_flight + 1, model.max_threads)
                    conn_vec = cn.base + cn.extra * (1.0 - np.exp(-active / cn.scale))
                    if len(conn_vec):
                        conn_lag = float(conn_vec.mean())

            if gate is not None:
                adm_arrive = arrive[admitted]
                adm_conn = conn_vec[admitted]
                start = np.empty(len(adm_arrive))
                for k in range(len(adm_arrive)):
                    free = heapq.heappop(gate)
                    s = adm_arrive[k] if adm_arrive[k] >= free else free
                    start[k] = s
                    heapq.heappush(gate, s + adm_conn[k] + hold_lag)
                served = start + adm_conn
            else:
                served = arrive[admitted] + conn_vec[admitted]
            served_fires = fires[admitted]
            served_window = in_window[admitted]
            conn_window += float((conn_vec[admitted] * served_window).sum())
            srv_entry = served
            for state in srv:
                dep = state.step(served)
                state.sojourn_window += float(((dep - served) * served_window).sum())
                state.last_q = float((dep - served).sum()) / dt
                served = dep
            if len(served):
                hold_lag = float((served - srv_entry).mean())
            if track and len(served):
                outstanding = np.sort(np.concatenate([outstanding, served]))
            for state in post:
                dep = state.step(served)
                state.sojourn_window += float(((dep - served) * served_window).sum())
                state.last_q = float((dep - served).sum()) / dt
                served = dep
            finish = served + model.post_delay

            latencies = finish - served_fires
            self.completed_total += len(finish)
            # Completions are logged at finish time (the exact engine's
            # request log does the same), so long-running requests that
            # straddle the warm-up boundary still count.
            counted = (finish >= warmup) & (finish <= horizon)
            if counted.any():
                completed += int(counted.sum())
                _fill_histogram(hist, latencies[counted])
            think = wp.think_time * (
                1.0 + self.rng.uniform(-wp.think_jitter, wp.think_jitter, len(finish))
            )
            next_fire[idx[admitted]] = finish + think

        return self._summarize(
            hist, completed, refused, warmup, window,
            pre + srv + post, srv, conn_window,
        )

    # -- reduction ----------------------------------------------------------

    def _summarize(
        self,
        hist: StreamingLatency,
        completed: int,
        refused: int,
        warmup: float,
        window: float,
        states: list[_StationState],
        srv_states: list[_StationState],
        conn_window: float,
    ) -> MetricsSummary:
        from repro.core.fidelity import load1_ramp

        model = self.model
        x = completed / window
        # Mean concurrencies over the window by Little's law: requests
        # inside the thread-slot window, and those asleep in the
        # connection-overhead phase (not runnable).
        q_conn = conn_window / window
        q_in = q_conn + sum(s.sojourn_window for s in srv_states) / window
        # Occupied handler threads, apportioned by time *not* spent
        # asleep in the connection phase (sleepers are not runnable).
        occupancy = min(q_in, float(model.max_threads))
        runnable_cap = occupancy * (1.0 - q_conn / q_in) if q_in > 0 else 0.0
        load1 = 0.0
        cpu_seconds = 0.0
        for state in states:
            st = state.station
            q = state.sojourn_window / window
            scale = 1.0 + st.convoy * min(q, state.q_cap)
            cpu_seconds += st.monitored_cpu * scale
            if st.load_queue:
                load1 += min(q, runnable_cap)
            elif st.load_util:
                demand = st.demand * scale
                load1 += min(float(st.servers or 1), x * demand) * st.load_util
        load1 *= load1_ramp(warmup, window)
        cpu_pct = 100.0 * min(1.0, x * cpu_seconds / (model.cpus * model.cpu_rate))
        return MetricsSummary(
            throughput=x,
            response_time=hist.mean,
            load1=load1,
            cpu_load=cpu_pct,
            completed=completed,
            refused=refused,
            timeouts=0,
            errors=0,
            window=window,
            latency_p50=hist.quantile(0.5),
            latency_p95=hist.quantile(0.95),
        )


def _fill_histogram(hist: StreamingLatency, values: np.ndarray) -> None:
    """Vectorized bulk version of :meth:`StreamingLatency.add`."""
    hist.count += len(values)
    hist.total += float(values.sum())
    hist.min = min(hist.min, float(values.min()))
    hist.max = max(hist.max, float(values.max()))
    clipped = np.maximum(values, hist.lo)
    index = ((np.log(clipped) - hist._log_lo) * hist._inv_width).astype(int)
    np.clip(index, 0, len(hist.counts) - 1, out=index)
    for bucket, count in zip(*np.unique(index, return_counts=True)):
        hist.counts[int(bucket)] += int(count)
