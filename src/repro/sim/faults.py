"""Fault injection for simulated services.

The paper measures saturation but never outright failure — yet its
successor deployment reports (R-GMA's "first results after deployment")
found registry/servlet *crashes* dominating early operational
experience.  This module supplies the missing failure regime:

* :class:`CrashRestartSchedule` — timed outage windows during which a
  service refuses every new connection (crash) and after which it
  accepts again (restart);
* :class:`DropInjector` — transient connection drops (a fraction of
  arriving requests see an immediate connection reset);
* :class:`StallInjector` — a fraction of admitted requests stall for a
  fixed extra dwell while *holding a handler thread*, modelling the
  provider/cache-miss stalls MDS deployments reported;
* :class:`FaultPlan` — a bundle of the three, installable on one or
  more :class:`~repro.sim.rpc.Service` objects.

All randomness is drawn from generators handed in by the caller
(normally :class:`~repro.sim.randomness.RngHub` streams), so fault
schedules are exactly reproducible from the experiment seed.
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass, field

import numpy as np

from repro.errors import SimulationError

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator
    from repro.sim.rpc import Service

__all__ = [
    "Outage",
    "CrashRestartSchedule",
    "DropInjector",
    "StallInjector",
    "FaultInjector",
    "FaultPlan",
    "install_faults",
]


@dataclass(frozen=True)
class Outage:
    """One crash/restart window: down at ``start``, back at ``end``."""

    start: float
    duration: float

    @property
    def end(self) -> float:
        return self.start + self.duration


class CrashRestartSchedule:
    """A deterministic sequence of service outages.

    Either pass explicit ``outages`` or use :meth:`periodic` for a
    crash-every-N-seconds flapping pattern.
    """

    def __init__(self, outages: _t.Iterable[Outage]) -> None:
        self.outages: tuple[Outage, ...] = tuple(
            sorted(outages, key=lambda o: o.start)
        )
        for outage in self.outages:
            if outage.duration <= 0:
                raise SimulationError(f"outage duration must be positive: {outage}")
        for a, b in zip(self.outages, self.outages[1:]):
            if b.start < a.end:
                raise SimulationError(f"overlapping outages: {a} and {b}")

    @classmethod
    def single(cls, start: float, duration: float) -> "CrashRestartSchedule":
        """One crash at ``start``, restart ``duration`` seconds later."""
        return cls([Outage(start, duration)])

    @classmethod
    def periodic(
        cls, first: float, duration: float, period: float, count: int
    ) -> "CrashRestartSchedule":
        """``count`` outages of ``duration`` seconds, ``period`` apart."""
        if period <= duration:
            raise SimulationError(
                f"period ({period}) must exceed outage duration ({duration})"
            )
        return cls([Outage(first + i * period, duration) for i in range(count)])

    def is_down(self, now: float) -> bool:
        """Whether a service following this schedule is down at ``now``."""
        return any(o.start <= now < o.end for o in self.outages)

    def within(self, start: float, end: float) -> tuple[Outage, ...]:
        """Outages overlapping the window ``[start, end]``."""
        return tuple(o for o in self.outages if o.end > start and o.start < end)

    def total_downtime(self) -> float:
        return sum(o.duration for o in self.outages)

    def last_end(self) -> float:
        """Restart time of the final outage (0.0 for an empty schedule)."""
        return max((o.end for o in self.outages), default=0.0)


class DropInjector:
    """Transient connection drops: each arriving request is reset with
    probability ``probability`` (a flaky NAT, a dying servlet thread)."""

    def __init__(self, probability: float, rng: np.random.Generator) -> None:
        if not 0.0 <= probability <= 1.0:
            raise SimulationError(f"drop probability out of range: {probability}")
        self.probability = probability
        self.rng = rng
        self.dropped = 0
        self.passed = 0

    def should_drop(self) -> bool:
        drop = bool(self.rng.random() < self.probability)
        if drop:
            self.dropped += 1
        else:
            self.passed += 1
        return drop


class StallInjector:
    """Server-side stalls: each admitted request stalls ``stall`` extra
    seconds with probability ``probability``, holding its handler thread
    the whole time (an information provider hanging under the lock)."""

    def __init__(
        self, probability: float, stall: float, rng: np.random.Generator
    ) -> None:
        if not 0.0 <= probability <= 1.0:
            raise SimulationError(f"stall probability out of range: {probability}")
        if stall < 0:
            raise SimulationError(f"stall must be non-negative: {stall}")
        self.probability = probability
        self.stall = stall
        self.rng = rng
        self.stalled = 0

    def sample(self) -> float:
        if self.probability and self.rng.random() < self.probability:
            self.stalled += 1
            return self.stall
        return 0.0


class FaultInjector:
    """The per-service hook :mod:`repro.sim.rpc` consults; one is
    attached as ``service.faults`` by :func:`install_faults`."""

    def __init__(
        self,
        drop: DropInjector | None = None,
        stall: StallInjector | None = None,
    ) -> None:
        self.drop = drop
        self.stall = stall

    def drop_request(self) -> bool:
        return self.drop.should_drop() if self.drop is not None else False

    def stall_delay(self) -> float:
        return self.stall.sample() if self.stall is not None else 0.0


@dataclass
class FaultPlan:
    """Everything to inject into one scenario's service(s)."""

    schedule: CrashRestartSchedule | None = None
    drop: DropInjector | None = None
    stall: StallInjector | None = None
    reason: str = "injected fault"
    installed_on: list["Service"] = field(default_factory=list)

    def outages_within(self, start: float, end: float) -> tuple[Outage, ...]:
        if self.schedule is None:
            return ()
        return self.schedule.within(start, end)


def _outage_controller(
    sim: "Simulator", services: _t.Sequence["Service"], plan: FaultPlan
) -> _t.Generator:
    """Crash and restart every target service on the plan's schedule."""
    assert plan.schedule is not None
    for outage in plan.schedule.outages:
        if outage.start > sim.now:
            yield sim.timeout(outage.start - sim.now)
        for service in services:
            service.fail(plan.reason)
        yield sim.timeout(outage.end - sim.now)
        for service in services:
            service.restore()


def install_faults(
    sim: "Simulator", services: _t.Sequence["Service"], plan: FaultPlan
) -> FaultPlan:
    """Attach ``plan`` to ``services``: drop/stall injectors take effect
    immediately; a controller process runs the crash/restart schedule."""
    if not services:
        raise SimulationError("install_faults needs at least one service")
    injector = FaultInjector(drop=plan.drop, stall=plan.stall)
    for service in services:
        service.faults = injector
        plan.installed_on.append(service)
    if plan.schedule is not None and plan.schedule.outages:
        sim.spawn(
            _outage_controller(sim, list(services), plan),
            name=f"faults:{services[0].name}",
        )
    return plan
