"""Simulated machines: CPUs, network interfaces and run-queue accounting.

A :class:`Host` mirrors one testbed node from the paper's Section 3.1 —
e.g. a Lucky node is ``Host(cpus=2, cpu_rate=1.0, nic_mbps=100,
mem_mb=512)``.  CPU work is expressed in CPU-seconds (``cpu_rate`` scales
a host relative to the 1133 MHz PIII reference), so a job of 10 ms on a
reference machine takes 10 ms of exclusive CPU there.
"""

from __future__ import annotations

import typing as _t

from repro.sim.events import Event
from repro.sim.loadavg import LoadAverage
from repro.sim.sharing import ProcessorSharing

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator

__all__ = ["Host"]


class Host:
    """One simulated machine.

    Parameters
    ----------
    cpus / cpu_rate:
        Number of cores and per-core speed relative to the reference
        (Lucky's 1133 MHz PIII = 1.0).
    nic_mbps:
        Interface bandwidth in megabits/second; incoming and outgoing
        directions are independent processor-sharing queues over bytes.
    mem_mb:
        Main memory, used by the hard resource limits that reproduce the
        paper's server crashes.
    site:
        Topology zone (``"anl"`` or ``"uc"`` in the study); the network
        assigns latency and shared WAN links per site pair.
    """

    def __init__(
        self,
        sim: "Simulator",
        name: str,
        *,
        cpus: int = 2,
        cpu_rate: float = 1.0,
        nic_mbps: float = 100.0,
        mem_mb: int = 512,
        site: str = "default",
    ) -> None:
        self.sim = sim
        self.name = name
        self.cpus = cpus
        self.mem_mb = mem_mb
        self.site = site
        self.cpu = ProcessorSharing(sim, rate=cpu_rate, servers=cpus, name=f"{name}.cpu")
        nic_bytes = nic_mbps * 1e6 / 8.0
        self.nic_out = ProcessorSharing(sim, rate=nic_bytes, servers=1, name=f"{name}.nic_out")
        self.nic_in = ProcessorSharing(sim, rate=nic_bytes, servers=1, name=f"{name}.nic_in")
        self.loadavg = LoadAverage()

    @property
    def runnable(self) -> int:
        """Instantaneous run-queue length (jobs wanting CPU).

        Processes blocked on mutexes, network transfers or timeouts do
        not count — they are sleeping, exactly as in the paper's load1
        discussion (Section 3.2).
        """
        return self.cpu.jobs

    def compute(self, cpu_seconds: float) -> Event:
        """Event that fires when ``cpu_seconds`` of CPU work completes."""
        return self.cpu.serve(cpu_seconds)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Host {self.name} ({self.cpus}x{self.cpu.rate:g} cpu, site={self.site})>"
