"""Core event primitives for the discrete-event simulation engine.

An :class:`Event` is a one-shot occurrence with a value (or an exception).
Processes (see :mod:`repro.sim.process`) wait on events by yielding them.
The design follows the classic SimPy model: events move through three
states (pending → triggered → processed) and run their callbacks exactly
once, when the engine pops them off the schedule.
"""

from __future__ import annotations

import typing as _t
from heapq import heappush

from repro.errors import SimulationError

if _t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Simulator

__all__ = ["Event", "Timeout", "AnyOf", "AllOf", "PENDING", "TRIGGERED", "PROCESSED"]

PENDING = 0
TRIGGERED = 1
PROCESSED = 2


class Event:
    """A one-shot occurrence inside a :class:`~repro.sim.engine.Simulator`.

    Callbacks are callables taking the event itself; they run when the
    engine processes the event.  ``succeed``/``fail`` trigger the event,
    which schedules it at the current simulation time.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_state")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.callbacks: list[_t.Callable[["Event"], None]] = []
        self._value: _t.Any = None
        self._ok: bool = True
        self._state: int = PENDING

    # -- state inspection -------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value (it may not have run callbacks yet)."""
        return self._state >= TRIGGERED

    @property
    def processed(self) -> bool:
        """True once callbacks have been executed."""
        return self._state == PROCESSED

    @property
    def ok(self) -> bool:
        """True when the event succeeded (valid only after triggering)."""
        return self._ok

    @property
    def value(self) -> _t.Any:
        """The event's value; raises if the event has not triggered yet."""
        if self._state == PENDING:
            raise SimulationError("event value read before it triggered")
        return self._value

    # -- triggering --------------------------------------------------------
    def succeed(self, value: _t.Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._state != PENDING:
            raise SimulationError("event triggered twice")
        self._ok = True
        self._value = value
        self._state = TRIGGERED
        # Inlined Simulator._schedule(self, 0.0): triggering is the
        # engine's hottest entry point, so it books the heap slot itself.
        sim = self.sim
        seq = sim._seq
        sim._seq = seq + 1
        heappush(sim._heap, (sim._now, seq, self))
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception to be thrown into waiters."""
        if self._state != PENDING:
            raise SimulationError("event triggered twice")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._ok = False
        self._value = exception
        self._state = TRIGGERED
        sim = self.sim
        seq = sim._seq
        sim._seq = seq + 1
        heappush(sim._heap, (sim._now, seq, self))
        return self

    # -- engine hook ---------------------------------------------------------
    def _process(self) -> None:
        """Run callbacks; called exactly once by the engine."""
        self._state = PROCESSED
        callbacks = self.callbacks
        if callbacks:
            self.callbacks = []
            for callback in callbacks:
                callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = {PENDING: "pending", TRIGGERED: "triggered", PROCESSED: "processed"}
        return f"<{type(self).__name__} {state[self._state]} at t={self.sim.now:.6g}>"


class Timeout(Event):
    """An event that fires automatically ``delay`` seconds after creation.

    The event stays *pending* until the engine processes it, so
    ``triggered`` answers "has the delay elapsed?".  Processing jumps
    straight to *processed* (a superset of *triggered*), so the base
    ``_process`` applies unchanged.
    """

    __slots__ = ()

    def __init__(self, sim: "Simulator", delay: float, value: _t.Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        # Event.__init__ unrolled: timeouts are the most-allocated object
        # in a run and the super() dispatch is measurable.
        self.sim = sim
        self.callbacks = []
        self._value = value
        self._ok = True
        self._state = PENDING
        seq = sim._seq
        sim._seq = seq + 1
        heappush(sim._heap, (sim._now + delay, seq, self))


class _Condition(Event):
    """Shared machinery for :class:`AnyOf` / :class:`AllOf`."""

    __slots__ = ("_events", "_pending")

    def __init__(self, sim: "Simulator", events: _t.Iterable[Event]) -> None:
        super().__init__(sim)
        self._events = tuple(events)
        self._pending = 0
        for event in self._events:
            if event.sim is not sim:
                raise SimulationError("condition mixes events from different simulators")
            if event.processed:
                self._observe(event)
            else:
                self._pending += 1
                event.callbacks.append(self._observe)
        if self._state == PENDING and self._initially_done():
            self.succeed(self._result())

    def _observe(self, event: Event) -> None:
        if self._state != PENDING:
            return
        if not event.ok:
            self.fail(event.value)
            return
        self._pending -= 1
        if self._done(event):
            self.succeed(self._result())

    # Subclass hooks ---------------------------------------------------------
    def _initially_done(self) -> bool:
        raise NotImplementedError

    def _done(self, event: Event) -> bool:
        raise NotImplementedError

    def _result(self) -> _t.Any:
        return {e: e.value for e in self._events if e.triggered and e.ok}


class AnyOf(_Condition):
    """Triggers as soon as any child event triggers (or any fails)."""

    __slots__ = ()

    def _initially_done(self) -> bool:
        return any(e.processed and e.ok for e in self._events)

    def _done(self, event: Event) -> bool:
        return True


class AllOf(_Condition):
    """Triggers when every child event has triggered successfully."""

    __slots__ = ()

    def _initially_done(self) -> bool:
        return self._pending == 0

    def _done(self, event: Event) -> bool:
        return self._pending == 0
