"""repro — reproduction of Zhang, Freschl & Schopf, HPDC 2003.

"A Performance Study of Monitoring and Information Services for
Distributed Systems" rebuilt as a Python library: functional
re-implementations of MDS 2.1, R-GMA and Hawkeye running on a
deterministic discrete-event simulation of the original Lucky/UC
testbed, plus the full experiment harness regenerating Figures 5-20.

Quickstart::

    from repro.core.experiments import exp1

    result = exp1.run_point(system="mds-gris-cache", users=100, seed=1)
    print(result.throughput, result.response_time)

See README.md for the architecture tour and EXPERIMENTS.md for the
paper-vs-measured comparison of every figure.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
