"""Exception hierarchy shared by every ``repro`` subpackage.

All library errors derive from :class:`ReproError` so callers can catch a
single base class.  Substrate-specific parse/evaluation failures get their
own subclasses because tests (and users) often need to distinguish a bad
query from a failed simulation.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class SimulationError(ReproError):
    """An inconsistency inside the discrete-event simulation engine."""


class InterruptError(SimulationError):
    """Raised inside a simulated process when it is interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`repro.sim.process.Process.interrupt`.
    """

    def __init__(self, cause: object = None) -> None:
        super().__init__(f"process interrupted: {cause!r}")
        self.cause = cause


class ServiceUnavailableError(SimulationError):
    """A simulated RPC was refused (backlog full) or the service crashed."""


class RequestTimeoutError(SimulationError):
    """A simulated RPC did not complete within the client's deadline."""


class CircuitOpenError(ServiceUnavailableError):
    """A client-side circuit breaker rejected the call without trying.

    Subclasses :class:`ServiceUnavailableError` so existing workload
    loops treat fast-failed calls like refused connections.
    """


class ServiceCrashError(SimulationError):
    """A simulated service exceeded a hard resource limit and crashed.

    Mirrors the crashes the paper reports (GIIS past 200/500 registered
    GRIS, Hawkeye Startd past 98 modules).
    """


class LdapError(ReproError):
    """Base class for LDAP substrate errors."""


class DnSyntaxError(LdapError):
    """A distinguished name could not be parsed."""


class FilterSyntaxError(LdapError):
    """An RFC-1960 search filter could not be parsed."""


class NoSuchEntryError(LdapError):
    """Search base (or delete/modify target) does not exist in the DIT."""


class EntryExistsError(LdapError):
    """Attempted to add an entry at a DN that is already populated."""


class ClassAdError(ReproError):
    """Base class for ClassAd substrate errors."""


class ClassAdSyntaxError(ClassAdError):
    """A ClassAd expression could not be tokenized or parsed."""


class SqlError(ReproError):
    """Base class for relational substrate errors."""


class SqlSyntaxError(SqlError):
    """A SQL statement could not be tokenized or parsed."""


class SchemaError(SqlError):
    """Table/column mismatch: unknown table, unknown column, arity, type."""


class RegistryError(ReproError):
    """R-GMA registry-level failure (unknown table, no producers, ...)."""
