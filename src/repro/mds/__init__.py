"""MDS 2.1: information providers, GRIS and GIIS (paper §2.1).

Functional re-implementation of the Globus Monitoring and Discovery
Service hierarchy: providers generate LDAP entries, the GRIS gates and
caches them per resource, the GIIS aggregates registered GRIS with soft
state.  Timing is charged by the simulation layer (``repro.core``).
"""

from repro.mds.cache import CacheStats, TtlCache
from repro.mds.giis import GIIS, GiisResult
from repro.mds.gris import GRIS, GrisResult
from repro.mds.providers import (
    DEFAULT_PROVIDER_NAMES,
    InformationProvider,
    make_default_providers,
    replicated_providers,
)
from repro.mds.registration import Registration, RegistrationTable
from repro.mds.resilience import RegistrarStats, soft_state_registrar

__all__ = [
    "RegistrarStats",
    "soft_state_registrar",
    "InformationProvider",
    "make_default_providers",
    "replicated_providers",
    "DEFAULT_PROVIDER_NAMES",
    "TtlCache",
    "CacheStats",
    "GRIS",
    "GrisResult",
    "GIIS",
    "GiisResult",
    "Registration",
    "RegistrationTable",
]
