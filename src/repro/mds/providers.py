"""MDS information providers — the lowest level of the MDS hierarchy.

An information provider is a small program the GRIS executes to obtain a
batch of LDAP entries about one aspect of a resource (paper §2.1).  A
default MDS 2.1 install runs 10 of them (§3.5); Experiment 3 scales the
count to 90 by cloning the memory provider, which
:func:`replicated_providers` reproduces.

Providers here generate real entries (with plausible MDS attribute
vocabularies) from a seeded RNG, and carry an ``exec_cost`` — the CPU
seconds the provider script takes — which the uncached GRIS pays on
every query.
"""

from __future__ import annotations

import typing as _t

import numpy as np

from repro.ldap.entry import Entry
from repro.ldap.schema import device_dn_text

__all__ = [
    "InformationProvider",
    "make_default_providers",
    "replicated_providers",
    "DEFAULT_PROVIDER_NAMES",
]

# The 10 providers of a default MDS 2.1 install (paper §3.5).
DEFAULT_PROVIDER_NAMES = (
    "cpu",
    "memory",
    "filesystem",
    "network",
    "os",
    "cpu-free",
    "memory-vm",
    "storage",
    "queue",
    "software",
)

# Cost of forking + running one provider script, in CPU seconds.  The
# paper's uncached GRIS sustains <2 queries/s with 10 providers (Fig. 5),
# which this value (x10 providers, serialized) reproduces.
DEFAULT_EXEC_COST = 0.05


class InformationProvider:
    """One data source feeding a GRIS."""

    def __init__(
        self,
        name: str,
        objectclass: str,
        *,
        exec_cost: float = DEFAULT_EXEC_COST,
        nattrs: int = 14,
    ) -> None:
        self.name = name
        self.objectclass = objectclass
        self.exec_cost = exec_cost
        self.nattrs = nattrs
        self.invocations = 0

    def produce(self, hostname: str, rng: np.random.Generator, now: float = 0.0) -> list[Entry]:
        """Run the provider: returns fresh entries for ``hostname``."""
        self.invocations += 1
        entry = Entry(
            device_dn_text(hostname, self.name),
            {
                "objectclass": ["MdsDevice", self.objectclass],
                "Mds-validfrom": f"{now:.0f}",
                "Mds-validto": f"{now + 30.0:.0f}",
                "Mds-keepto": f"{now + 60.0:.0f}",
            },
        )
        self._fill(entry, hostname, rng)
        # Pad to the configured attribute count with generic metrics.
        i = 0
        while entry.nattrs < self.nattrs:
            entry.put(f"Mds-{self.name}-metric{i}", f"{rng.integers(0, 10_000)}")
            i += 1
        return [entry]

    def _fill(self, entry: Entry, hostname: str, rng: np.random.Generator) -> None:
        """Provider-specific attributes; subclass hook."""
        fillers: dict[str, _t.Callable[[Entry, str, np.random.Generator], None]] = {
            "cpu": _fill_cpu,
            "memory": _fill_memory,
            "filesystem": _fill_filesystem,
            "network": _fill_network,
            "os": _fill_os,
            "cpu-free": _fill_cpu_free,
            "memory-vm": _fill_memory_vm,
            "storage": _fill_storage,
            "queue": _fill_queue,
            "software": _fill_software,
        }
        base_kind = self.name.split("#")[0]  # replicas are "memory#17"
        fillers.get(base_kind, _fill_generic)(entry, hostname, rng)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<InformationProvider {self.name}>"


def _fill_cpu(entry: Entry, hostname: str, rng: np.random.Generator) -> None:
    entry.put("Mds-Cpu-model", "Pentium III (Coppermine)")
    entry.put("Mds-Cpu-speedMHz", "1133")
    entry.put("Mds-Cpu-Total-count", "2")
    entry.put("Mds-Cpu-cache-l2kB", "512")


def _fill_memory(entry: Entry, hostname: str, rng: np.random.Generator) -> None:
    entry.put("Mds-Memory-Ram-Total-sizeMB", "512")
    entry.put("Mds-Memory-Ram-sizeMB", str(int(rng.integers(100, 480))))


def _fill_filesystem(entry: Entry, hostname: str, rng: np.random.Generator) -> None:
    entry.put("Mds-Fs-Total-sizeMB", "17000")
    entry.put("Mds-Fs-freeMB", str(int(rng.integers(2_000, 15_000))))
    entry.put("Mds-Fs-mount", "/home")


def _fill_network(entry: Entry, hostname: str, rng: np.random.Generator) -> None:
    entry.put("Mds-Net-name", "eth0")
    entry.put("Mds-Net-AdminStatus", "UP")
    entry.put("Mds-Net-speedMbps", "100")
    entry.put("Mds-Net-addr", f"140.221.9.{rng.integers(1, 254)}")


def _fill_os(entry: Entry, hostname: str, rng: np.random.Generator) -> None:
    entry.put("Mds-Os-name", "Linux")
    entry.put("Mds-Os-release", "2.4.10")
    entry.put("Mds-Host-hn", hostname)


def _fill_cpu_free(entry: Entry, hostname: str, rng: np.random.Generator) -> None:
    entry.put("Mds-Cpu-Free-1minX100", str(int(rng.integers(0, 200))))
    entry.put("Mds-Cpu-Free-5minX100", str(int(rng.integers(0, 200))))
    entry.put("Mds-Cpu-Free-15minX100", str(int(rng.integers(0, 200))))


def _fill_memory_vm(entry: Entry, hostname: str, rng: np.random.Generator) -> None:
    entry.put("Mds-Memory-Vm-Total-sizeMB", "1024")
    entry.put("Mds-Memory-Vm-sizeMB", str(int(rng.integers(200, 1000))))


def _fill_storage(entry: Entry, hostname: str, rng: np.random.Generator) -> None:
    entry.put("Mds-Storage-dev", "/dev/sda")
    entry.put("Mds-Storage-sizeGB", "18")


def _fill_queue(entry: Entry, hostname: str, rng: np.random.Generator) -> None:
    entry.put("Mds-Queue-name", "default")
    entry.put("Mds-Queue-length", str(int(rng.integers(0, 30))))


def _fill_software(entry: Entry, hostname: str, rng: np.random.Generator) -> None:
    entry.put("Mds-Software-deployment", "globus-2.0")
    entry.put("Mds-Software-release", "2.1")


def _fill_generic(entry: Entry, hostname: str, rng: np.random.Generator) -> None:
    entry.put("Mds-Generic-value", str(int(rng.integers(0, 10_000))))


def make_default_providers(exec_cost: float = DEFAULT_EXEC_COST) -> list[InformationProvider]:
    """The 10 providers of a stock MDS 2.1 install."""
    from repro.ldap.schema import DEVICE_OBJECTCLASSES

    return [
        InformationProvider(name, DEVICE_OBJECTCLASSES[name], exec_cost=exec_cost)
        for name in DEFAULT_PROVIDER_NAMES
    ]


def replicated_providers(
    count: int, exec_cost: float = DEFAULT_EXEC_COST
) -> list[InformationProvider]:
    """``count`` providers, cloning the memory provider beyond the 10 defaults.

    Mirrors the paper's Experiment 3 methodology: "we modified the
    default memory information provider and added copies of the new
    version to simulate the expanded information providers" (§3.5).
    """
    providers = make_default_providers(exec_cost=exec_cost)
    if count <= len(providers):
        return providers[:count]
    for i in range(count - len(providers)):
        providers.append(
            InformationProvider(f"memory#{i}", "MdsMemory", exec_cost=exec_cost)
        )
    return providers
