"""Soft-state registration, the glue of the MDS hierarchy.

"Each service registers with others using a soft-state protocol that
allows dynamic cleaning of dead resources" (paper §2.1).  A
:class:`Registration` carries a pull callback plus a lease; the registry
side sweeps leases that were not renewed.
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass, field

__all__ = ["Registration", "RegistrationTable"]

# MDS 2.1 default registration TTL (seconds).
DEFAULT_REG_TTL = 600.0


@dataclass
class Registration:
    """One downstream service registered with an aggregate directory."""

    name: str
    puller: _t.Callable[..., _t.Any]
    ttl: float = DEFAULT_REG_TTL
    registered_at: float = 0.0
    renewals: int = 0

    def expires_at(self) -> float:
        return self.registered_at + self.ttl

    def alive(self, now: float) -> bool:
        return now < self.expires_at()

    def renew(self, now: float) -> None:
        self.registered_at = now
        self.renewals += 1


@dataclass
class RegistrationTable:
    """Ordered table of registrations with soft-state sweeping."""

    _regs: dict[str, Registration] = field(default_factory=dict)
    sweeps: int = 0

    def add(self, registration: Registration) -> None:
        self._regs[registration.name] = registration

    def renew(self, name: str, now: float) -> bool:
        reg = self._regs.get(name)
        if reg is None:
            return False
        reg.renew(now)
        return True

    def remove(self, name: str) -> bool:
        return self._regs.pop(name, None) is not None

    def sweep(self, now: float) -> list[str]:
        """Drop expired registrations; returns the removed names."""
        self.sweeps += 1
        dead = [name for name, reg in self._regs.items() if not reg.alive(now)]
        for name in dead:
            del self._regs[name]
        return dead

    def alive(self, now: float) -> list[Registration]:
        """Live registrations in registration order."""
        return [reg for reg in self._regs.values() if reg.alive(now)]

    def get(self, name: str) -> Registration | None:
        return self._regs.get(name)

    def __len__(self) -> int:
        return len(self._regs)

    def __contains__(self, name: str) -> bool:
        return name in self._regs
