"""The Grid Resource Information Service (GRIS).

A GRIS "runs on a resource and acts as a modular content gateway for a
resource" (paper §2.1): it owns a set of information providers, caches
their output for ``cachettl`` seconds, and answers LDAP searches over
the merged data.

The functional core is simulation-free; :class:`GrisResult` reports
what work a query caused (providers executed, cache hits, result size)
so the simulation layer can charge time for it.  Search results are
memoized per cache generation: with a warm cache, repeated identical
queries — the workload of Experiment 1 — cost O(1), mirroring slapd's
in-memory serving while keeping the host-Python experiments fast.
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass, field

import numpy as np

from repro.ldap.dit import DIT, SCOPE_SUB
from repro.ldap.entry import Entry
from repro.ldap.filter import Filter
from repro.ldap.ldif import to_ldif
from repro.ldap.schema import MDS_VO_SUFFIX, host_dn_text
from repro.mds.cache import TtlCache
from repro.mds.providers import InformationProvider

__all__ = ["GRIS", "GrisResult"]


@dataclass
class GrisResult:
    """A GRIS search answer plus the work it caused."""

    entries: list[Entry]
    providers_run: list[str] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0
    exec_cost: float = 0.0  # provider CPU-seconds charged by this query
    _size: int | None = None  # filled by the GRIS from its memo

    @property
    def fetched(self) -> bool:
        """True when at least one provider had to execute (cache miss)."""
        return bool(self.providers_run)

    def estimated_size(self) -> int:
        """Serialized (LDIF) size of the result in bytes."""
        if self._size is not None:
            return self._size
        if not self.entries:
            return 64
        return len(to_ldif(self.entries))


class GRIS:
    """Per-resource information server with a TTL cache over providers."""

    def __init__(
        self,
        hostname: str,
        providers: _t.Sequence[InformationProvider],
        *,
        cachettl: float = 30.0,
        seed: int = 0,
    ) -> None:
        self.hostname = hostname
        self.providers = list(providers)
        self.cache: TtlCache[list[Entry]] = TtlCache(cachettl)
        self._rng = np.random.default_rng(seed)
        self.queries = 0
        self._generation = 0
        self._memo: dict[tuple, tuple[list[Entry], int]] = {}
        self._dit = DIT()
        self._dit.add(Entry("o=grid"), create_parents=True)
        self._dit.add(Entry(MDS_VO_SUFFIX, {"objectclass": "MdsVoName"}), create_parents=True)
        self._dit.add(
            Entry(
                host_dn_text(hostname),
                {"objectclass": ["MdsHost", "MdsComputer"], "Mds-Host-hn": hostname},
            )
        )

    @property
    def base_dn(self) -> str:
        """Default search base for this resource."""
        return host_dn_text(self.hostname)

    @property
    def cachettl(self) -> float:
        return self.cache.ttl

    def add_provider(self, provider: InformationProvider) -> None:
        self.providers.append(provider)
        self.cache.invalidate(provider.name)
        self._generation += 1

    # -- the core operation -------------------------------------------------
    def search(
        self,
        filter: Filter | str = "(objectclass=*)",
        *,
        now: float = 0.0,
        scope: str = SCOPE_SUB,
        attributes: _t.Sequence[str] | None = None,
    ) -> GrisResult:
        """Answer one LDAP search, running stale providers as needed."""
        self.queries += 1
        result = GrisResult(entries=[])
        for provider in self.providers:
            entries = self.cache.get(provider.name, now)
            if entries is None:
                entries = provider.produce(self.hostname, self._rng, now)
                self.cache.put(provider.name, entries, now)
                result.providers_run.append(provider.name)
                result.exec_cost += provider.exec_cost
                result.cache_misses += 1
                for entry in entries:
                    self._dit.upsert(entry)
                self._generation += 1
            else:
                result.cache_hits += 1
        key = (
            self._generation,
            str(filter),
            scope,
            tuple(attributes) if attributes is not None else None,
        )
        memoized = self._memo.get(key)
        if memoized is None:
            if len(self._memo) > 64:  # bound memo growth across generations
                self._memo.clear()
            entries = self._dit.search(
                MDS_VO_SUFFIX, scope=scope, filter=filter, attributes=attributes
            )
            size = len(to_ldif(entries)) if entries else 64
            memoized = (entries, size)
            self._memo[key] = memoized
        result.entries, result._size = memoized
        return result

    def entry_count(self, now: float = 0.0) -> int:
        """Number of entries a full search would return."""
        return len(self.search(now=now).entries)
