"""Resilient GRIS→GIIS soft-state registration over simulated RPC.

The seed reproduction registers GRIS into a GIIS by direct method call
at scenario-build time; real MDS keeps registrations alive with
periodic re-registration over the wire, which is exactly the traffic a
GIIS outage disrupts.  :func:`soft_state_registrar` is that loop as a
simulation process: renew every ``interval`` seconds through a
:class:`~repro.sim.rpc.RetryPolicy`, fall back to a full re-register
when the GIIS answers "unknown name" (its lease table lost us while it
was down), and count what an outage cost.

Pairs with :func:`repro.core.services.make_giis_registration_service`
on the server side.
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass, field

from repro.errors import RequestTimeoutError, ServiceUnavailableError, SimulationError

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator
    from repro.sim.host import Host
    from repro.sim.network import Network
    from repro.sim.rpc import RetryPolicy, Service

__all__ = ["RegistrarStats", "soft_state_registrar"]


@dataclass
class RegistrarStats:
    """What one registrant's soft-state loop experienced."""

    renewals: int = 0  # successful in-place lease renewals
    re_registrations: int = 0  # full registers (first contact or post-outage)
    missed_cycles: int = 0  # cycles where even retries could not reach the GIIS
    registered: bool = False  # belief after the latest cycle
    last_confirmed: float = -1.0  # sim time of the last acked renew/register
    history: list[tuple[float, str]] = field(default_factory=list)

    def note(self, now: float, event: str) -> None:
        self.history.append((now, event))


def soft_state_registrar(
    sim: "Simulator",
    net: "Network",
    client_host: "Host",
    reg_service: Service,
    name: str,
    *,
    interval: float,
    ttl: float,
    retry: RetryPolicy | None = None,
    request_size: int = 256,
    stats: RegistrarStats | None = None,
    gate: _t.Callable[[], bool] | None = None,
) -> _t.Generator:
    """One GRIS keeping its GIIS registration alive; run with ``sim.spawn``.

    The classic soft-state invariant: as long as the registrar confirms
    a cycle at least once per ``ttl`` seconds, the GIIS keeps serving
    this registrant's data.  An outage longer than ``ttl`` expires the
    lease; the first successful cycle after restart re-registers.

    ``gate`` (when given) is consulted before each cycle: while it
    returns False the registrar stays silent — the node itself is down
    (scenario churn), so its lease expires server-side exactly like a
    crashed daemon's would, and the first cycle after the gate reopens
    re-registers.  A gate that always returns True changes nothing:
    no extra events, no extra RNG draws.
    """
    from repro.sim.rpc import call  # runtime-only: keeps the module sim-free at import

    if ttl <= interval:
        raise SimulationError(f"ttl ({ttl}) must exceed renew interval ({interval})")
    st = stats if stats is not None else RegistrarStats()

    def cycle() -> _t.Generator:
        answer = yield from call(
            sim,
            net,
            client_host,
            reg_service,
            {"op": "renew", "name": name, "ttl": ttl},
            size=request_size,
            retry=retry,
        )
        if isinstance(answer, dict) and answer.get("renewed"):
            st.renewals += 1
            st.note(sim.now, "renewed")
        else:
            yield from call(
                sim,
                net,
                client_host,
                reg_service,
                {"op": "register", "name": name, "ttl": ttl},
                size=request_size,
                retry=retry,
            )
            st.re_registrations += 1
            st.note(sim.now, "registered")
        st.registered = True
        st.last_confirmed = sim.now

    while True:
        if gate is not None and not gate():
            st.registered = st.last_confirmed >= 0 and sim.now - st.last_confirmed < ttl
            yield sim.timeout(interval)
            continue
        try:
            yield from cycle()
        except (ServiceUnavailableError, RequestTimeoutError):
            # Refused/timed out even after the policy's retries: the
            # lease keeps ticking down server-side.
            st.missed_cycles += 1
            st.registered = st.last_confirmed >= 0 and sim.now - st.last_confirmed < ttl
            st.note(sim.now, "missed")
        yield sim.timeout(interval)
