"""The Grid Index Information Service (GIIS).

"A GIIS provides an aggregate directory of lower level data" (paper
§2.1): GRIS (and other GIIS — the hierarchy is recursive) register into
it with soft state, and queries are answered by merging per-registrant
data, cached for ``cachettl`` seconds.  Setting ``cachettl`` very large
turns the GIIS into a pure directory server — exactly the paper's
Experiment 2 configuration.

Hard resource limits reproduce the crashes the paper reports in
Experiment 4: the GIIS died beyond ~200 registered GRIS under
query-all and ~500 under query-part.
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass, field

from repro import queryplane
from repro.errors import RegistryError, ServiceCrashError
from repro.ldap.compile import compile_filter, compile_text
from repro.ldap.dit import DIT
from repro.ldap.entry import Entry
from repro.ldap.filter import Filter, parse_filter
from repro.ldap.ldif import to_ldif
from repro.mds.cache import TtlCache
from repro.mds.registration import DEFAULT_REG_TTL, Registration, RegistrationTable

__all__ = ["GIIS", "GiisResult"]

# Registrant pullers return (entries, provider_exec_cost) when queried.
Puller = _t.Callable[[float], tuple[list[Entry], float]]


@dataclass
class GiisResult:
    """A GIIS query answer plus the aggregation work it caused."""

    entries: list[Entry]
    pulled: list[str] = field(default_factory=list)  # registrants re-fetched
    cache_hits: int = 0
    pull_cost: float = 0.0  # downstream provider CPU charged
    registrants_queried: int = 0
    _size: int | None = None  # filled by the GIIS from its memo

    def estimated_size(self) -> int:
        """Serialized (LDIF) size of the merged result in bytes."""
        if self._size is not None:
            return self._size
        if not self.entries:
            return 64
        return len(to_ldif(self.entries))


class GIIS:
    """Aggregate directory over registered GRIS/GIIS."""

    def __init__(
        self,
        name: str,
        *,
        cachettl: float = 30.0,
        max_registrants: int | None = None,
        max_queryall: int | None = None,
    ) -> None:
        self.name = name
        self.registrations = RegistrationTable()
        self.cache: TtlCache[list[Entry]] = TtlCache(cachettl)
        self.max_registrants = max_registrants
        self.max_queryall = max_queryall
        self.queries = 0
        self.crashed = False
        self._generation = 0
        self._memo: dict[tuple, tuple[list[Entry], int]] = {}

    # -- registration (soft state) ----------------------------------------------
    def register(
        self,
        name: str,
        puller: Puller,
        *,
        now: float = 0.0,
        ttl: float = DEFAULT_REG_TTL,
    ) -> None:
        """Register (or re-register) a downstream information service.

        Raises :class:`ServiceCrashError` past ``max_registrants`` — the
        paper's observed GIIS crash when over ~500 GRIS registered.
        """
        self._check_alive()
        if name in self.registrations:
            self.registrations.renew(name, now)
            return
        if self.max_registrants is not None and len(self.registrations) >= self.max_registrants:
            self.crashed = True
            raise ServiceCrashError(
                f"GIIS {self.name} crashed: {len(self.registrations)} registrants "
                f"(limit {self.max_registrants})"
            )
        self.registrations.add(
            Registration(name=name, puller=puller, ttl=ttl, registered_at=now)
        )
        self._generation += 1

    def renew(self, name: str, now: float) -> bool:
        """Soft-state renewal; returns False for unknown registrants."""
        return self.registrations.renew(name, now)

    def unregister(self, name: str) -> Registration | None:
        """Explicitly drop a registrant (a clean leave, not a TTL lapse).

        Returns the removed :class:`Registration` so scenario churn can
        re-register the same puller when the node rejoins, or None for
        unknown names.  The registrant's cache slice is invalidated
        exactly as :meth:`sweep` would.
        """
        self._check_alive()
        reg = self.registrations.get(name)
        if reg is None:
            return None
        self.registrations.remove(name)
        self.cache.invalidate(name)
        self._generation += 1
        return reg

    def sweep(self, now: float) -> list[str]:
        """Clean dead registrations (the soft-state garbage collector)."""
        dead = self.registrations.sweep(now)
        for name in dead:
            self.cache.invalidate(name)
        if dead:
            self._generation += 1
        return dead

    @property
    def registrant_count(self) -> int:
        return len(self.registrations)

    # -- queries --------------------------------------------------------------
    def query(
        self,
        filter: Filter | str = "(objectclass=*)",
        *,
        now: float = 0.0,
        attributes: _t.Sequence[str] | None = None,
        subset: _t.Sequence[str] | None = None,
    ) -> GiisResult:
        """Aggregate query across registrants.

        ``subset`` restricts the aggregation to named registrants (the
        paper's "query part" case); None means query-all, which is
        subject to the ``max_queryall`` crash limit.

        Raises :class:`RegistryError` for unknown subset names.
        """
        self._check_alive()
        self.queries += 1
        use_compiled = queryplane.resolve(None)
        if isinstance(filter, str):
            filter = compile_text(filter).filter if use_compiled else parse_filter(filter)
        live = self.registrations.alive(now)
        if subset is not None:
            wanted = set(subset)
            unknown = wanted - {reg.name for reg in live}
            if unknown:
                raise RegistryError(f"unknown registrants: {sorted(unknown)}")
            live = [reg for reg in live if reg.name in wanted]
        elif self.max_queryall is not None and len(live) > self.max_queryall:
            self.crashed = True
            raise ServiceCrashError(
                f"GIIS {self.name} crashed answering query-all over {len(live)} "
                f"registrants (limit {self.max_queryall})"
            )
        result = GiisResult(entries=[], registrants_queried=len(live))
        fresh: dict[str, list[Entry]] = {}
        for reg in live:
            entries = self.cache.get(reg.name, now)
            if entries is None:
                entries, cost = reg.puller(now)
                self.cache.put(reg.name, entries, now)
                result.pulled.append(reg.name)
                result.pull_cost += cost
                self._generation += 1
            else:
                result.cache_hits += 1
            fresh[reg.name] = entries
        memo_key = (
            self._generation,
            str(filter),
            tuple(attributes) if attributes is not None else None,
            tuple(sorted(subset)) if subset is not None else None,
        )
        memoized = self._memo.get(memo_key)
        if memoized is None:
            merged = DIT()
            for entries in fresh.values():
                for entry in entries:
                    merged.upsert(entry)
            # The merged DIT is consumed linearly, never searched, so its
            # lazy indexes are never built; the compiled predicate alone
            # carries the speedup here.
            predicate = compile_filter(filter).predicate if use_compiled else filter.matches
            selected = [
                self._project(e, attributes) for e in merged.entries() if predicate(e)
            ]
            size = len(to_ldif(selected)) if selected else 64
            memoized = (selected, size)
            if len(self._memo) > 64:  # bound memo growth across generations
                self._memo.clear()
            self._memo[memo_key] = memoized
        result.entries, result._size = memoized
        return result

    @staticmethod
    def _project(entry: Entry, attributes: _t.Sequence[str] | None) -> Entry:
        if attributes is None:
            return entry
        wanted = {a.lower() for a in attributes}
        projected = Entry(entry.dn)
        for name in entry.attribute_names():
            if name.lower() in wanted:
                projected.put(name, entry.get(name))
        return projected

    def as_puller(self) -> Puller:
        """Expose this GIIS as a puller so it can register into a parent
        GIIS — the recursive hierarchy of Figure 1."""

        def pull(now: float) -> tuple[list[Entry], float]:
            result = self.query(now=now)
            return result.entries, result.pull_cost

        return pull

    def _check_alive(self) -> None:
        if self.crashed:
            raise ServiceCrashError(f"GIIS {self.name} has crashed")
