"""TTL caching, the mechanism the paper finds decisive for MDS scaling.

Both the GRIS (caching provider output) and the GIIS (caching data
pulled from registered GRIS) use time-to-live caches controlled by the
``cachettl`` parameter — the knob the paper turns between the
"cache"/"nocache" GRIS configurations (§3.3) and sets "to a very large
value" to isolate GIIS directory behaviour (§3.4).
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass

__all__ = ["TtlCache", "CacheStats"]

V = _t.TypeVar("V")


@dataclass
class CacheStats:
    """Cumulative hit/miss counters."""

    hits: int = 0
    misses: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class TtlCache(_t.Generic[V]):
    """Map with per-entry expiry at ``insert_time + ttl``.

    ``ttl=0`` disables caching entirely (every lookup misses);
    ``ttl=float('inf')`` never expires (the paper's "always in cache").
    """

    def __init__(self, ttl: float) -> None:
        if ttl < 0:
            raise ValueError(f"ttl must be >= 0, got {ttl}")
        self.ttl = ttl
        self._store: dict[_t.Any, tuple[float, V]] = {}
        self.stats = CacheStats()

    def get(self, key: _t.Any, now: float) -> V | None:
        """Value if fresh at time ``now``, else None (counted as a miss)."""
        if self.ttl > 0:
            item = self._store.get(key)
            if item is not None:
                expires, value = item
                if now < expires:
                    self.stats.hits += 1
                    return value
                del self._store[key]
        self.stats.misses += 1
        return None

    def put(self, key: _t.Any, value: V, now: float) -> None:
        """Insert ``value`` valid until ``now + ttl`` (no-op when ttl=0)."""
        if self.ttl <= 0:
            return
        self._store[key] = (now + self.ttl, value)

    def stale_count(self, now: float, keys: _t.Iterable[_t.Any] | None = None) -> int:
        """How many of ``keys`` would miss at time ``now``.

        Pure inspection — no eviction, no stats — so callers (the GRIS
        service adapter predicting provider re-execution, planners
        sizing a refresh) can ask without perturbing the cache.  With
        ``keys=None`` it counts expired resident entries instead.
        """
        if keys is None:
            if self.ttl <= 0:
                return 0
            return sum(1 for expires, _value in self._store.values() if now >= expires)
        wanted = list(keys)
        if self.ttl <= 0:
            return len(wanted)
        stale = 0
        for key in wanted:
            item = self._store.get(key)
            if item is None or now >= item[0]:
                stale += 1
        return stale

    def invalidate(self, key: _t.Any) -> None:
        self._store.pop(key, None)

    def clear(self) -> None:
        self._store.clear()

    def __len__(self) -> int:
        return len(self._store)
