"""Process-wide switch between compiled and interpreted query paths.

All three query planes (:mod:`repro.ldap`, :mod:`repro.relational`,
:mod:`repro.classad`) compile predicates to closures and prune with
indexes when this switch is on — the default.  The interpreted path is
kept bit-for-bit identical to the pre-compilation code and serves as the
differential-testing oracle (see docs/QUERYPLANE.md).

The default honours the ``REPRO_QUERY_COMPILE`` environment variable
(``0``/``false``/``off``/``no`` disable compilation) so whole runs —
figures, plans, benchmarks — can be replayed on either path without
code changes.  Individual entry points accept a ``compiled`` keyword
overriding the global for one call.
"""

from __future__ import annotations

import os
import typing as _t
from contextlib import contextmanager

__all__ = [
    "compiled_default",
    "resolve",
    "set_compiled",
    "interpreted",
    "compiled",
]

_FALSEY = ("0", "false", "off", "no")


def _env_default() -> bool:
    return os.environ.get("REPRO_QUERY_COMPILE", "1").strip().lower() not in _FALSEY


_compiled: bool = _env_default()


def compiled_default() -> bool:
    """The current process-wide setting."""
    return _compiled


def resolve(override: bool | None) -> bool:
    """Effective mode for one call: per-call override, else the global."""
    return _compiled if override is None else bool(override)


def set_compiled(flag: bool) -> bool:
    """Set the global mode; returns the previous value."""
    global _compiled
    previous = _compiled
    _compiled = bool(flag)
    return previous


@contextmanager
def interpreted() -> _t.Iterator[None]:
    """Run a block on the interpreted (oracle) path."""
    previous = set_compiled(False)
    try:
        yield
    finally:
        set_compiled(previous)


@contextmanager
def compiled() -> _t.Iterator[None]:
    """Run a block on the compiled path regardless of the global."""
    previous = set_compiled(True)
    try:
        yield
    finally:
        set_compiled(previous)
