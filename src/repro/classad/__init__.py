"""ClassAd substrate: the expression language beneath Condor/Hawkeye.

Implements old-ClassAds semantics — three-valued logic with UNDEFINED
and ERROR, MY/TARGET scoping, bilateral matchmaking — plus an indexed
collector, standing in for the Condor libraries the paper's Hawkeye
deployment used (DESIGN.md §2).
"""

from repro.classad.ads import ClassAd
from repro.classad.ast import AttrRef, BinaryOp, Expr, FuncCall, Literal, UnaryOp
from repro.classad.collector import AdCollector, QueryOutcome
from repro.classad.evaluator import Evaluation, evaluate
from repro.classad.matchmaker import MatchResult, match, match_pool, rank
from repro.classad.parser import parse_expr
from repro.classad.values import ERROR, UNDEFINED, Error, Undefined, Value, is_scalar

__all__ = [
    "ClassAd",
    "Expr",
    "Literal",
    "AttrRef",
    "UnaryOp",
    "BinaryOp",
    "FuncCall",
    "parse_expr",
    "evaluate",
    "Evaluation",
    "match",
    "rank",
    "match_pool",
    "MatchResult",
    "AdCollector",
    "QueryOutcome",
    "UNDEFINED",
    "ERROR",
    "Undefined",
    "Error",
    "Value",
    "is_scalar",
]
