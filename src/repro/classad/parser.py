"""Recursive-descent parser for ClassAd expressions.

Grammar (precedence low → high), matching old ClassAds::

    expr    := or
    or      := and ( '||' and )*
    and     := cmp ( '&&' cmp )*
    cmp     := add ( ('=='|'!='|'<'|'<='|'>'|'>='|'=?='|'=!=') add )*
    add     := mul ( ('+'|'-') mul )*
    mul     := unary ( ('*'|'/'|'%') unary )*
    unary   := ('-'|'+'|'!') unary | primary
    primary := literal | ref | func '(' args ')' | '(' expr ')'
    ref     := [ ('MY'|'TARGET') '.' ] IDENT
"""

from __future__ import annotations

from repro.classad.ast import AttrRef, BinaryOp, Expr, FuncCall, Literal, UnaryOp
from repro.classad.lexer import Token, tokenize
from repro.classad.values import ERROR, UNDEFINED
from repro.errors import ClassAdSyntaxError

__all__ = ["parse_expr"]

_KEYWORD_LITERALS = {
    "true": Literal(True),
    "false": Literal(False),
    "undefined": Literal(UNDEFINED),
    "error": Literal(ERROR),
}

_CMP_OPS = {"==", "!=", "<", "<=", ">", ">=", "=?=", "=!="}


class _Parser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens = tokenize(text)
        self.pos = 0

    def peek(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        self.pos += 1
        return token

    def expect_op(self, op: str) -> None:
        token = self.peek()
        if token.kind != "OP" or token.text != op:
            raise ClassAdSyntaxError(
                f"expected {op!r} at {token.pos}, got {token.text!r} in {self.text!r}"
            )
        self.advance()

    def at_op(self, *ops: str) -> bool:
        token = self.peek()
        return token.kind == "OP" and token.text in ops

    # -- grammar --------------------------------------------------------------
    def parse(self) -> Expr:
        node = self.parse_or()
        token = self.peek()
        if token.kind != "EOF":
            raise ClassAdSyntaxError(
                f"trailing input at {token.pos}: {token.text!r} in {self.text!r}"
            )
        return node

    def parse_or(self) -> Expr:
        node = self.parse_and()
        while self.at_op("||"):
            self.advance()
            node = BinaryOp("||", node, self.parse_and())
        return node

    def parse_and(self) -> Expr:
        node = self.parse_cmp()
        while self.at_op("&&"):
            self.advance()
            node = BinaryOp("&&", node, self.parse_cmp())
        return node

    def parse_cmp(self) -> Expr:
        node = self.parse_add()
        while self.at_op(*_CMP_OPS):
            op = self.advance().text
            node = BinaryOp(op, node, self.parse_add())
        return node

    def parse_add(self) -> Expr:
        node = self.parse_mul()
        while self.at_op("+", "-"):
            op = self.advance().text
            node = BinaryOp(op, node, self.parse_mul())
        return node

    def parse_mul(self) -> Expr:
        node = self.parse_unary()
        while self.at_op("*", "/", "%"):
            op = self.advance().text
            node = BinaryOp(op, node, self.parse_unary())
        return node

    def parse_unary(self) -> Expr:
        if self.at_op("-", "!", "+"):
            op = self.advance().text
            operand = self.parse_unary()
            if op == "+":
                return operand
            return UnaryOp(op, operand)
        return self.parse_primary()

    def parse_primary(self) -> Expr:
        token = self.peek()
        if token.kind == "INT":
            self.advance()
            return Literal(int(token.text))
        if token.kind == "REAL":
            self.advance()
            return Literal(float(token.text))
        if token.kind == "STRING":
            self.advance()
            return Literal(token.text)
        if token.kind == "IDENT":
            return self.parse_ident()
        if token.kind == "OP" and token.text == "(":
            self.advance()
            node = self.parse_or()
            self.expect_op(")")
            return node
        raise ClassAdSyntaxError(
            f"unexpected token {token.text!r} at {token.pos} in {self.text!r}"
        )

    def parse_ident(self) -> Expr:
        token = self.advance()
        lowered = token.text.lower()
        if lowered in _KEYWORD_LITERALS:
            return _KEYWORD_LITERALS[lowered]
        # Scoped reference: MY.attr / TARGET.attr
        if lowered in ("my", "target") and self.at_op("."):
            self.advance()
            attr = self.peek()
            if attr.kind != "IDENT":
                raise ClassAdSyntaxError(
                    f"expected attribute after {token.text}. at {attr.pos} in {self.text!r}"
                )
            self.advance()
            return AttrRef(attr.text, scope=lowered)
        # Function call
        if self.at_op("("):
            self.advance()
            args: list[Expr] = []
            if not self.at_op(")"):
                args.append(self.parse_or())
                while self.at_op(","):
                    self.advance()
                    args.append(self.parse_or())
            self.expect_op(")")
            return FuncCall(lowered, tuple(args))
        return AttrRef(token.text)


def parse_expr(text: str) -> Expr:
    """Parse a ClassAd expression string into an AST.

    Raises :class:`~repro.errors.ClassAdSyntaxError` on bad input.
    """
    if not text.strip():
        raise ClassAdSyntaxError("empty expression")
    return _Parser(text).parse()
