"""ClassAd expression evaluation with old-ClassAds semantics.

The evaluation rules that matter for matchmaking:

* missing attributes evaluate to UNDEFINED, type mismatches to ERROR;
* ``&&``/``||`` use three-valued logic (``FALSE && UNDEFINED = FALSE``,
  ``TRUE && UNDEFINED = UNDEFINED``, ERROR dominates);
* ``==`` on strings is case-insensitive; ``=?=``/``=!=`` are the strict
  (type- and case-sensitive) identity operators that never yield
  UNDEFINED;
* unscoped references resolve in MY then TARGET; circular references
  evaluate to UNDEFINED (as in Condor).

The evaluator counts visited nodes (``Evaluation.ops``) so the
simulation can charge CPU proportional to real evaluation work.
"""

from __future__ import annotations

import math
import typing as _t
from dataclasses import dataclass, field

from repro import queryplane
from repro.classad.ast import AttrRef, BinaryOp, Expr, FuncCall, Literal, UnaryOp
from repro.classad.values import ERROR, UNDEFINED, Error, Undefined, Value

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.classad.ads import ClassAd

__all__ = ["evaluate", "Evaluation"]


@dataclass
class Evaluation:
    """Mutable evaluation context: scopes, cycle guard and op counter."""

    my: "ClassAd | None" = None
    target: "ClassAd | None" = None
    ops: int = 0
    _stack: set[tuple[str, str]] = field(default_factory=set)


def evaluate(
    expr: Expr,
    my: "ClassAd | None" = None,
    target: "ClassAd | None" = None,
    ctx: Evaluation | None = None,
    compiled: bool | None = None,
) -> Value:
    """Evaluate ``expr`` with the given MY/TARGET ads; returns a Value.

    The compiled path (:mod:`repro.classad.compile`, selected via
    :mod:`repro.queryplane` or the ``compiled`` override) returns the
    same value *and* the same ``ctx.ops`` count as this interpreter —
    the op count feeds the cost models, so parity is load-bearing.
    """
    if ctx is None:
        ctx = Evaluation(my=my, target=target)
    if queryplane.resolve(compiled):
        from repro.classad.compile import compile_expr

        return compile_expr(expr)(ctx)
    return _eval(expr, ctx)


def _eval(expr: Expr, ctx: Evaluation) -> Value:
    ctx.ops += 1
    if isinstance(expr, Literal):
        return expr.value
    if isinstance(expr, AttrRef):
        return _eval_ref(expr, ctx)
    if isinstance(expr, UnaryOp):
        return _eval_unary(expr, ctx)
    if isinstance(expr, BinaryOp):
        return _eval_binary(expr, ctx)
    if isinstance(expr, FuncCall):
        return _eval_func(expr, ctx)
    return ERROR


def _eval_ref(ref: AttrRef, ctx: Evaluation) -> Value:
    key = ref.name.lower()
    scopes: list[tuple[str, "ClassAd | None"]]
    if ref.scope == "my":
        scopes = [("my", ctx.my)]
    elif ref.scope == "target":
        scopes = [("target", ctx.target)]
    else:
        scopes = [("my", ctx.my), ("target", ctx.target)]
    for scope_name, ad in scopes:
        if ad is None:
            continue
        sub = ad.lookup(ref.name)
        if sub is None:
            continue
        guard = (scope_name, key)
        if guard in ctx._stack:
            return UNDEFINED  # circular reference
        ctx._stack.add(guard)
        try:
            # The referenced expression evaluates in ITS ad's scope:
            # references found in TARGET flip MY/TARGET.
            if scope_name == "target":
                flipped = Evaluation(my=ctx.target, target=ctx.my, ops=ctx.ops, _stack=ctx._stack)
                value = _eval(sub, flipped)
                ctx.ops = flipped.ops
            else:
                value = _eval(sub, ctx)
            return value
        finally:
            ctx._stack.discard(guard)
    return UNDEFINED


def _eval_unary(node: UnaryOp, ctx: Evaluation) -> Value:
    value = _eval(node.operand, ctx)
    if isinstance(value, Error):
        return ERROR
    if isinstance(value, Undefined):
        return UNDEFINED
    if node.op == "-":
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            return ERROR
        return -value
    if node.op == "!":
        if isinstance(value, bool):
            return not value
        return ERROR
    return ERROR


def _numeric(value: Value) -> float | int | None:
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, (int, float)):
        return value
    return None


def _eval_binary(node: BinaryOp, ctx: Evaluation) -> Value:
    op = node.op
    if op in ("&&", "||"):
        return _eval_logical(node, ctx)
    left = _eval(node.left, ctx)
    right = _eval(node.right, ctx)
    if op in ("=?=", "=!="):
        same = _is_identical(left, right)
        return same if op == "=?=" else not same
    if isinstance(left, Error) or isinstance(right, Error):
        return ERROR
    if isinstance(left, Undefined) or isinstance(right, Undefined):
        return UNDEFINED
    if op in ("+", "-", "*", "/", "%"):
        return _eval_arith(op, left, right)
    return _eval_compare(op, left, right)


def _eval_logical(node: BinaryOp, ctx: Evaluation) -> Value:
    left = _to_bool3(_eval(node.left, ctx))
    # Short-circuit on decisive left operands.
    if node.op == "&&" and left is False:
        return False
    if node.op == "||" and left is True:
        return True
    right = _to_bool3(_eval(node.right, ctx))
    for side in (left, right):
        if isinstance(side, Error):
            return ERROR
    if node.op == "&&":
        if left is False or right is False:
            return False
        if isinstance(left, Undefined) or isinstance(right, Undefined):
            return UNDEFINED
        return True
    if left is True or right is True:
        return True
    if isinstance(left, Undefined) or isinstance(right, Undefined):
        return UNDEFINED
    return False


def _to_bool3(value: Value) -> Value:
    """Coerce to the three-valued boolean domain (numbers: nonzero=true)."""
    if isinstance(value, (Undefined, Error, bool)):
        return value
    if isinstance(value, (int, float)):
        return value != 0
    return ERROR  # strings are not booleans


def _eval_arith(op: str, left: Value, right: Value) -> Value:
    a = _numeric(left)
    b = _numeric(right)
    if a is None or b is None:
        if op == "+" and isinstance(left, str) and isinstance(right, str):
            return left + right  # string concatenation, a Condor convenience
        return ERROR
    try:
        if op == "+":
            return a + b
        if op == "-":
            return a - b
        if op == "*":
            return a * b
        if op == "/":
            if b == 0:
                return ERROR
            if isinstance(a, int) and isinstance(b, int):
                return int(a / b)  # C-style truncation
            return a / b
        if b == 0:
            return ERROR
        return math.fmod(a, b) if isinstance(a, float) or isinstance(b, float) else int(math.fmod(a, b))
    except OverflowError:
        return ERROR


def _eval_compare(op: str, left: Value, right: Value) -> Value:
    a_num = _numeric(left)
    b_num = _numeric(right)
    if a_num is not None and b_num is not None:
        a: _t.Any
        b: _t.Any
        a, b = a_num, b_num
    elif isinstance(left, str) and isinstance(right, str):
        a, b = left.lower(), right.lower()
    else:
        return ERROR
    if op == "==":
        return a == b
    if op == "!=":
        return a != b
    if op == "<":
        return a < b
    if op == "<=":
        return a <= b
    if op == ">":
        return a > b
    if op == ">=":
        return a >= b
    return ERROR


def _is_identical(left: Value, right: Value) -> bool:
    """The =?= operator: type-strict, case-sensitive, sentinel-aware."""
    if isinstance(left, Undefined) and isinstance(right, Undefined):
        return True
    if isinstance(left, Error) and isinstance(right, Error):
        return True
    if isinstance(left, (Undefined, Error)) or isinstance(right, (Undefined, Error)):
        return False
    if isinstance(left, bool) != isinstance(right, bool):
        return False
    if isinstance(left, str) != isinstance(right, str):
        return False
    return left == right


# -- builtin functions -------------------------------------------------------


def _eval_func(node: FuncCall, ctx: Evaluation) -> Value:
    name = node.name
    if name == "ifthenelse":
        if len(node.args) != 3:
            return ERROR
        cond = _to_bool3(_eval(node.args[0], ctx))
        if isinstance(cond, Error):
            return ERROR
        if isinstance(cond, Undefined):
            return UNDEFINED
        return _eval(node.args[1] if cond else node.args[2], ctx)
    args = [_eval(a, ctx) for a in node.args]
    return _apply_builtin(name, args)


def _apply_builtin(name: str, args: list[Value]) -> Value:
    """Apply an eager builtin to already-evaluated arguments.

    Shared with the compiled closures in :mod:`repro.classad.compile`;
    ``ifthenelse`` stays in the callers because it is lazy.
    """
    if name == "isundefined":
        return len(args) == 1 and isinstance(args[0], Undefined)
    if name == "iserror":
        return len(args) == 1 and isinstance(args[0], Error)
    for arg in args:
        if isinstance(arg, Error):
            return ERROR
    for arg in args:
        if isinstance(arg, Undefined):
            return UNDEFINED
    if name == "strcat":
        return "".join(str(a) if not isinstance(a, bool) else ("TRUE" if a else "FALSE") for a in args)
    if name == "toupper" and len(args) == 1 and isinstance(args[0], str):
        return args[0].upper()
    if name == "tolower" and len(args) == 1 and isinstance(args[0], str):
        return args[0].lower()
    if name == "size" and len(args) == 1 and isinstance(args[0], str):
        return len(args[0])
    if name == "int" and len(args) == 1:
        try:
            return int(float(args[0])) if not isinstance(args[0], bool) else int(args[0])
        except (TypeError, ValueError):
            return ERROR
    if name == "real" and len(args) == 1:
        try:
            return float(args[0]) if not isinstance(args[0], bool) else float(int(args[0]))
        except (TypeError, ValueError):
            return ERROR
    if name == "string" and len(args) == 1:
        value = args[0]
        if isinstance(value, bool):
            return "TRUE" if value else "FALSE"
        return str(value)
    if name == "floor" and len(args) == 1:
        number = _numeric(args[0])
        return ERROR if number is None else int(math.floor(number))
    if name == "ceiling" and len(args) == 1:
        number = _numeric(args[0])
        return ERROR if number is None else int(math.ceil(number))
    if name == "round" and len(args) == 1:
        number = _numeric(args[0])
        return ERROR if number is None else int(math.floor(number + 0.5))
    return ERROR
