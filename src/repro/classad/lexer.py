"""Tokenizer for the old-ClassAds expression language."""

from __future__ import annotations

import typing as _t

from repro.errors import ClassAdSyntaxError

__all__ = ["Token", "tokenize"]


class Token(_t.NamedTuple):
    """One lexical token: a kind tag, its text, and its source offset."""

    kind: str  # INT REAL STRING IDENT OP EOF
    text: str
    pos: int


# Multi-character operators, longest first so the scanner is greedy.
_OPERATORS = [
    "=?=", "=!=",
    "==", "!=", "<=", ">=", "&&", "||",
    "<", ">", "+", "-", "*", "/", "%", "!", "(", ")", ",", ".", "=",
]

_IDENT_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_IDENT_CONT = _IDENT_START | set("0123456789")


def tokenize(text: str) -> list[Token]:
    """Convert an expression string into tokens (ending with EOF).

    Raises :class:`ClassAdSyntaxError` on unterminated strings or
    unrecognized characters.
    """
    tokens: list[Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch in " \t\r\n":
            i += 1
            continue
        if ch == '"':
            j = i + 1
            out: list[str] = []
            while j < n and text[j] != '"':
                if text[j] == "\\" and j + 1 < n:
                    nxt = text[j + 1]
                    out.append({"n": "\n", "t": "\t", '"': '"', "\\": "\\"}.get(nxt, nxt))
                    j += 2
                    continue
                out.append(text[j])
                j += 1
            if j >= n:
                raise ClassAdSyntaxError(f"unterminated string starting at {i} in {text!r}")
            tokens.append(Token("STRING", "".join(out), i))
            i = j + 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            j = i
            seen_dot = False
            seen_exp = False
            while j < n:
                c = text[j]
                if c.isdigit():
                    j += 1
                elif c == "." and not seen_dot and not seen_exp:
                    # A dot not followed by a digit is the scope operator.
                    if j + 1 < n and text[j + 1].isdigit():
                        seen_dot = True
                        j += 1
                    else:
                        break
                elif c in "eE" and (j + 1 < n and (text[j + 1].isdigit() or text[j + 1] in "+-")) and not seen_exp:
                    seen_exp = True
                    j += 2 if text[j + 1] in "+-" else 1
                else:
                    break
            literal = text[i:j]
            kind = "REAL" if ("." in literal or "e" in literal or "E" in literal) else "INT"
            tokens.append(Token(kind, literal, i))
            i = j
            continue
        if ch in _IDENT_START:
            j = i
            while j < n and text[j] in _IDENT_CONT:
                j += 1
            tokens.append(Token("IDENT", text[i:j], i))
            i = j
            continue
        for op in _OPERATORS:
            if text.startswith(op, i):
                tokens.append(Token("OP", op, i))
                i += len(op)
                break
        else:
            raise ClassAdSyntaxError(f"unexpected character {ch!r} at {i} in {text!r}")
    tokens.append(Token("EOF", "", n))
    return tokens
