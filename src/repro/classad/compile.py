"""ClassAd expression compilation to closures over the ad environment.

:func:`compile_expr` lowers an :class:`~repro.classad.ast.Expr` tree to
a closure taking an :class:`~repro.classad.evaluator.Evaluation` context
and returning a :class:`~repro.classad.values.Value`.  The closures are
behaviour-identical to the interpreter, including:

* the per-node ``ctx.ops`` increments (the op count drives the
  simulation's CPU cost models, so it must not drift);
* the cycle guard and the MY/TARGET flip for references resolved in the
  TARGET scope;
* UNDEFINED/ERROR propagation, short-circuit logical operators and the
  lazy ``ifthenelse``.

Value-level semantics (arithmetic, comparison, identity, builtins) are
imported from the interpreter rather than duplicated, so the two paths
cannot diverge on them.  Compilation memoizes per node *instance*
(never by dataclass equality: ``Literal(3) == Literal(3.0)`` and
``Literal(True) == Literal(1)`` under Python's cross-type numeric
equality, yet they must not share a closure).
"""

from __future__ import annotations

import typing as _t

from repro.classad.ast import AttrRef, BinaryOp, Expr, FuncCall, Literal, UnaryOp
from repro.classad.evaluator import (
    Evaluation,
    _apply_builtin,
    _eval_arith,
    _eval_compare,
    _is_identical,
    _to_bool3,
)
from repro.classad.values import ERROR, UNDEFINED, Error, Undefined, Value

__all__ = ["compile_expr"]

Compiled = _t.Callable[[Evaluation], Value]


def _compile_ref(ref: AttrRef) -> Compiled:
    key = ref.name.lower()
    name = ref.name
    scope = ref.scope

    def run(ctx: Evaluation) -> Value:
        ctx.ops += 1
        if scope == "my":
            scopes: tuple = (("my", ctx.my),)
        elif scope == "target":
            scopes = (("target", ctx.target),)
        else:
            scopes = (("my", ctx.my), ("target", ctx.target))
        for scope_name, ad in scopes:
            if ad is None:
                continue
            sub = ad.lookup(name)
            if sub is None:
                continue
            guard = (scope_name, key)
            if guard in ctx._stack:
                return UNDEFINED  # circular reference
            ctx._stack.add(guard)
            try:
                # The referenced expression evaluates in ITS ad's scope:
                # references found in TARGET flip MY/TARGET.
                if scope_name == "target":
                    flipped = Evaluation(
                        my=ctx.target, target=ctx.my, ops=ctx.ops, _stack=ctx._stack
                    )
                    value = compile_expr(sub)(flipped)
                    ctx.ops = flipped.ops
                else:
                    value = compile_expr(sub)(ctx)
                return value
            finally:
                ctx._stack.discard(guard)
        return UNDEFINED

    return run


def _compile_unary(node: UnaryOp) -> Compiled:
    operand = compile_expr(node.operand)
    op = node.op

    def run(ctx: Evaluation) -> Value:
        ctx.ops += 1
        value = operand(ctx)
        if isinstance(value, Error):
            return ERROR
        if isinstance(value, Undefined):
            return UNDEFINED
        if op == "-":
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                return ERROR
            return -value
        if op == "!":
            if isinstance(value, bool):
                return not value
            return ERROR
        return ERROR

    return run


def _compile_binary(node: BinaryOp) -> Compiled:
    op = node.op
    left = compile_expr(node.left)
    right = compile_expr(node.right)
    if op == "&&":

        def run_and(ctx: Evaluation) -> Value:
            ctx.ops += 1
            a = _to_bool3(left(ctx))
            if a is False:  # short-circuit on the decisive left operand
                return False
            b = _to_bool3(right(ctx))
            if isinstance(a, Error) or isinstance(b, Error):
                return ERROR
            if a is False or b is False:
                return False
            if isinstance(a, Undefined) or isinstance(b, Undefined):
                return UNDEFINED
            return True

        return run_and
    if op == "||":

        def run_or(ctx: Evaluation) -> Value:
            ctx.ops += 1
            a = _to_bool3(left(ctx))
            if a is True:
                return True
            b = _to_bool3(right(ctx))
            if isinstance(a, Error) or isinstance(b, Error):
                return ERROR
            if a is True or b is True:
                return True
            if isinstance(a, Undefined) or isinstance(b, Undefined):
                return UNDEFINED
            return False

        return run_or
    if op in ("=?=", "=!="):
        want_same = op == "=?="

        def run_identity(ctx: Evaluation) -> Value:
            ctx.ops += 1
            same = _is_identical(left(ctx), right(ctx))
            return same if want_same else not same

        return run_identity
    if op in ("+", "-", "*", "/", "%"):

        def run_arith(ctx: Evaluation) -> Value:
            ctx.ops += 1
            a = left(ctx)
            b = right(ctx)
            if isinstance(a, Error) or isinstance(b, Error):
                return ERROR
            if isinstance(a, Undefined) or isinstance(b, Undefined):
                return UNDEFINED
            return _eval_arith(op, a, b)

        return run_arith

    def run_compare(ctx: Evaluation) -> Value:
        ctx.ops += 1
        a = left(ctx)
        b = right(ctx)
        if isinstance(a, Error) or isinstance(b, Error):
            return ERROR
        if isinstance(a, Undefined) or isinstance(b, Undefined):
            return UNDEFINED
        return _eval_compare(op, a, b)

    return run_compare


def _compile_func(node: FuncCall) -> Compiled:
    name = node.name
    if name == "ifthenelse":
        if len(node.args) != 3:

            def run_bad_arity(ctx: Evaluation) -> Value:
                ctx.ops += 1
                return ERROR

            return run_bad_arity
        condition = compile_expr(node.args[0])
        then_branch = compile_expr(node.args[1])
        else_branch = compile_expr(node.args[2])

        def run_ifthenelse(ctx: Evaluation) -> Value:
            ctx.ops += 1
            cond = _to_bool3(condition(ctx))
            if isinstance(cond, Error):
                return ERROR
            if isinstance(cond, Undefined):
                return UNDEFINED
            return then_branch(ctx) if cond else else_branch(ctx)

        return run_ifthenelse
    arg_runs = tuple(compile_expr(a) for a in node.args)

    def run(ctx: Evaluation) -> Value:
        ctx.ops += 1
        args = [run_arg(ctx) for run_arg in arg_runs]
        return _apply_builtin(name, args)

    return run


def compile_expr(expr: Expr) -> Compiled:
    """Compile ``expr`` to a closure (memoized per node instance)."""
    cached = getattr(expr, "_compiled", None)
    if cached is not None:
        return cached
    run = _compile(expr)
    object.__setattr__(expr, "_compiled", run)
    return run


def _compile(expr: Expr) -> Compiled:
    if isinstance(expr, Literal):
        value = expr.value

        def run_literal(ctx: Evaluation) -> Value:
            ctx.ops += 1
            return value

        return run_literal
    if isinstance(expr, AttrRef):
        return _compile_ref(expr)
    if isinstance(expr, UnaryOp):
        return _compile_unary(expr)
    if isinstance(expr, BinaryOp):
        return _compile_binary(expr)
    if isinstance(expr, FuncCall):
        return _compile_func(expr)

    def run_unknown(ctx: Evaluation) -> Value:
        ctx.ops += 1
        return ERROR

    return run_unknown
