"""Abstract syntax tree nodes for ClassAd expressions."""

from __future__ import annotations

from dataclasses import dataclass

from repro.classad.values import Value, value_repr

__all__ = ["Expr", "Literal", "AttrRef", "UnaryOp", "BinaryOp", "FuncCall"]


class Expr:
    """Base class of all expression nodes."""

    def __str__(self) -> str:
        raise NotImplementedError

    def complexity(self) -> int:
        """Node count — drives the evaluation cost models in the study."""
        raise NotImplementedError


@dataclass(frozen=True)
class Literal(Expr):
    """A constant (int, real, string, bool, UNDEFINED or ERROR)."""

    value: Value

    def __str__(self) -> str:
        return value_repr(self.value)

    def complexity(self) -> int:
        return 1


@dataclass(frozen=True)
class AttrRef(Expr):
    """An attribute reference, optionally scoped: ``MY.attr``/``TARGET.attr``.

    ``scope`` is ``None``, ``"my"`` or ``"target"``; lookup is
    case-insensitive.
    """

    name: str
    scope: str | None = None

    def __str__(self) -> str:
        if self.scope:
            return f"{self.scope.upper()}.{self.name}"
        return self.name

    def complexity(self) -> int:
        return 1


@dataclass(frozen=True)
class UnaryOp(Expr):
    """``-x`` or ``!x``."""

    op: str
    operand: Expr

    def __str__(self) -> str:
        return f"{self.op}({self.operand})"

    def complexity(self) -> int:
        return 1 + self.operand.complexity()


@dataclass(frozen=True)
class BinaryOp(Expr):
    """An infix operation (arithmetic, comparison, boolean, =?=, =!=)."""

    op: str
    left: Expr
    right: Expr

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"

    def complexity(self) -> int:
        return 1 + self.left.complexity() + self.right.complexity()


@dataclass(frozen=True)
class FuncCall(Expr):
    """A builtin function call, e.g. ``ifThenElse(c, a, b)``."""

    name: str
    args: tuple[Expr, ...]

    def __str__(self) -> str:
        return f"{self.name}({', '.join(str(a) for a in self.args)})"

    def complexity(self) -> int:
        return 1 + sum(a.complexity() for a in self.args)
