"""An indexed resident database of ClassAds (the Condor *collector*).

The Hawkeye Manager "collects and stores (in an indexed resident
database) monitoring information from each Agent" (paper §2.3).  This
collector keeps the latest ad per name, maintains hash indexes over
chosen attributes for O(1) equality lookups, and supports constraint
queries that fall back to a full matchmaking scan — reporting the scan
cost so the simulation can charge for it.

Soft state: each ad carries a deadline; :meth:`expire` sweeps ads whose
lease lapsed (Condor's 15-minute ClassAd lifetime by default).
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass

from repro import queryplane
from repro.classad.ads import ClassAd
from repro.classad.matchmaker import match_pool
from repro.classad.parser import parse_expr
from repro.classad.values import is_scalar

__all__ = ["AdCollector", "QueryOutcome"]

DEFAULT_LIFETIME = 900.0  # Condor's classad lifetime: 15 minutes

# Attributes the synthetic query ad itself carries: an unscoped reference
# to one of these resolves in MY (the query) rather than the candidate,
# so conjuncts over them must never prune by index.
_QUERY_AD_ATTRS = frozenset({"mytype", "requirements"})


@dataclass(frozen=True)
class QueryOutcome:
    """Constraint-query result plus its evaluation cost."""

    ads: list[ClassAd]
    scanned: int
    ops: int
    index_hit: bool


class AdCollector:
    """Latest-ad-per-name store with equality indexes and constraint scans."""

    def __init__(self, indexed_attrs: _t.Sequence[str] = ("Name", "Machine")) -> None:
        self._ads: dict[str, ClassAd] = {}
        self._expiry: dict[str, float] = {}
        self._indexed = tuple(a.lower() for a in indexed_attrs)
        self._index: dict[tuple[str, _t.Any], set[str]] = {}
        # First-advertise sequence per key: pruned query paths sort their
        # candidates by it so result order matches the insertion-ordered
        # full scan (re-advertising keeps the original slot, like dicts).
        self._seq: dict[str, int] = {}
        self._seq_next = 0
        self.updates = 0
        self.expired_total = 0

    # -- updates --------------------------------------------------------------
    def advertise(self, ad: ClassAd, now: float = 0.0, lifetime: float = DEFAULT_LIFETIME) -> str:
        """Insert or replace the ad keyed by its ``Name`` attribute."""
        name = ad.get_scalar("Name")
        if not isinstance(name, str) or not name:
            raise ValueError("ClassAd must carry a string Name attribute to be advertised")
        key = name.lower()
        if key in self._ads:
            self._unindex(key, self._ads[key])
        self._ads[key] = ad
        self._expiry[key] = now + lifetime
        self._reindex(key, ad)
        if key not in self._seq:
            self._seq[key] = self._seq_next
            self._seq_next += 1
        self.updates += 1
        return key

    def remove(self, name: str) -> bool:
        """Drop the ad named ``name``; returns whether it existed."""
        key = name.lower()
        ad = self._ads.pop(key, None)
        if ad is None:
            return False
        self._expiry.pop(key, None)
        self._seq.pop(key, None)
        self._unindex(key, ad)
        return True

    def expire(self, now: float) -> int:
        """Sweep ads whose lease has lapsed; returns how many were dropped."""
        stale = [k for k, deadline in self._expiry.items() if deadline <= now]
        for key in stale:
            self.remove(key)
        self.expired_total += len(stale)
        return len(stale)

    def _reindex(self, key: str, ad: ClassAd) -> None:
        for attr in self._indexed:
            value = ad.get_scalar(attr)
            if is_scalar(value) and value is not None:
                self._index.setdefault((attr, _norm(value)), set()).add(key)

    def _unindex(self, key: str, ad: ClassAd) -> None:
        for attr in self._indexed:
            value = ad.get_scalar(attr)
            if is_scalar(value) and value is not None:
                bucket = self._index.get((attr, _norm(value)))
                if bucket:
                    bucket.discard(key)

    # -- queries --------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._ads)

    def get(self, name: str) -> ClassAd | None:
        """Indexed O(1) lookup by Name."""
        return self._ads.get(name.lower())

    def ads(self) -> list[ClassAd]:
        """Every resident ad (insertion order)."""
        return list(self._ads.values())

    def lookup_equal(self, attr: str, value: _t.Any) -> list[ClassAd]:
        """O(1) equality lookup when ``attr`` is indexed, else a scan."""
        attr_l = attr.lower()
        if attr_l in self._indexed:
            keys = self._index.get((attr_l, _norm(value)), set())
            return [self._ads[k] for k in sorted(keys)]
        return [ad for ad in self._ads.values() if _norm(ad.get_scalar(attr)) == _norm(value)]

    def query(self, constraint: str, *, compiled: bool | None = None) -> QueryOutcome:
        """Return ads satisfying ``constraint`` (a ClassAd boolean expr).

        Simple ``Attr == "value"`` constraints on indexed attributes take
        the index path.  On the compiled path, conjunctive constraints
        containing an indexed ``Attr == literal`` term prune the
        matchmaking scan to that term's bucket (candidates still run the
        full bilateral match).  Everything else performs a full scan
        whose cost is reported in the outcome.
        """
        indexed = self._try_index_path(constraint)
        if indexed is not None:
            return QueryOutcome(ads=indexed, scanned=len(indexed), ops=len(indexed), index_hit=True)
        pool: _t.Iterable[ClassAd] = self._ads.values()
        scanned = len(self._ads)
        pruned = False
        if queryplane.resolve(compiled):
            candidate_keys = self._conjunct_candidates(constraint)
            if candidate_keys is not None:
                ordered = sorted(candidate_keys, key=self._seq.__getitem__)
                pool = [self._ads[k] for k in ordered]
                scanned = len(ordered)
                pruned = True
        request = ClassAd({"MyType": "Query"})
        request.set_expr("Requirements", constraint)
        matches, ops = match_pool(request, pool)
        return QueryOutcome(
            ads=[ad for _rank, ad in matches],
            scanned=scanned,
            ops=ops,
            index_hit=pruned,
        )

    def _try_index_path(self, constraint: str) -> list[ClassAd] | None:
        from repro.classad.ast import AttrRef, BinaryOp, Literal

        try:
            expr = parse_expr(constraint)
        except Exception:
            return None
        if (
            isinstance(expr, BinaryOp)
            and expr.op == "=="
            and isinstance(expr.left, AttrRef)
            and expr.left.scope is None
            and isinstance(expr.right, Literal)
            and expr.left.name.lower() in self._indexed
        ):
            return self.lookup_equal(expr.left.name, expr.right.value)
        return None

    def _conjunct_candidates(self, constraint: str) -> set[str] | None:
        """Smallest index bucket for an indexed ``Attr == literal`` term
        in the constraint's top-level ``&&`` chain, or None.

        Sound because an ad outside the bucket makes that conjunct
        FALSE/UNDEFINED/ERROR, so the whole conjunction cannot be TRUE —
        assuming indexed attributes are literal-valued in the resident
        ads, the documented collector indexing contract.
        """
        from repro.classad.ast import AttrRef, BinaryOp, Literal

        try:
            expr = parse_expr(constraint)
        except Exception:
            return None
        best: set[str] | None = None
        stack = [expr]
        while stack:
            node = stack.pop()
            if isinstance(node, BinaryOp) and node.op == "&&":
                stack.append(node.left)
                stack.append(node.right)
                continue
            if not (isinstance(node, BinaryOp) and node.op == "=="):
                continue
            left, right = node.left, node.right
            if isinstance(left, Literal) and isinstance(right, AttrRef):
                left, right = right, left
            if not (isinstance(left, AttrRef) and isinstance(right, Literal)):
                continue
            if left.scope == "my":  # resolves in the query ad, not candidates
                continue
            attr = left.name.lower()
            if attr not in self._indexed or attr in _QUERY_AD_ATTRS:
                continue
            if not is_scalar(right.value) or right.value is None:
                continue
            bucket = self._index.get((attr, _norm(right.value)), set())
            if best is None or len(bucket) < len(best):
                best = bucket
        return None if best is None else set(best)


def _norm(value: _t.Any) -> _t.Any:
    """Index normalization: case-insensitive strings, bool≠int preserved."""
    if isinstance(value, str):
        return value.lower()
    return value
