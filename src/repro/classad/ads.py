"""The ClassAd record type: a case-insensitive map of attribute → expression.

A ClassAd is a set of ``name = expr`` bindings.  Values assigned as
plain Python scalars are wrapped as literals; strings that *look like*
expressions can be bound with :meth:`ClassAd.set_expr`.  Serialization
follows the classic one-attribute-per-line Condor format used by
``condor_status -l`` and ``hawkeye_advertise``.
"""

from __future__ import annotations

import typing as _t

from repro.classad.ast import Expr, Literal
from repro.classad.evaluator import Evaluation, evaluate
from repro.classad.parser import parse_expr
from repro.classad.values import UNDEFINED, Value, is_scalar

__all__ = ["ClassAd"]


class ClassAd:
    """An attribute/expression record with ClassAd evaluation semantics."""

    __slots__ = ("_attrs", "_display")

    def __init__(self, attributes: _t.Mapping[str, _t.Any] | None = None) -> None:
        self._attrs: dict[str, Expr] = {}
        self._display: dict[str, str] = {}
        if attributes:
            for name, value in attributes.items():
                self[name] = value

    # -- mutation ---------------------------------------------------------------
    def __setitem__(self, name: str, value: _t.Any) -> None:
        """Bind ``name`` to a literal value (or an :class:`Expr`)."""
        key = name.lower()
        self._display[key] = name
        if isinstance(value, Expr):
            self._attrs[key] = value
        else:
            self._attrs[key] = Literal(value)

    def set_expr(self, name: str, expression: str) -> None:
        """Bind ``name`` to a parsed ClassAd expression string."""
        key = name.lower()
        self._display[key] = name
        self._attrs[key] = parse_expr(expression)

    def __delitem__(self, name: str) -> None:
        key = name.lower()
        del self._attrs[key]
        del self._display[key]

    def update(self, other: "ClassAd") -> None:
        """Merge ``other``'s bindings into this ad (other wins)."""
        for key, expr in other._attrs.items():
            self._attrs[key] = expr
            self._display[key] = other._display[key]

    # -- access -----------------------------------------------------------------
    def lookup(self, name: str) -> Expr | None:
        """The raw expression bound to ``name`` (no evaluation)."""
        return self._attrs.get(name.lower())

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._attrs

    def __len__(self) -> int:
        return len(self._attrs)

    def names(self) -> list[str]:
        """Attribute names in insertion order, original spelling."""
        return [self._display[k] for k in self._attrs]

    def eval(self, name: str, target: "ClassAd | None" = None) -> Value:
        """Evaluate attribute ``name`` with this ad as MY (UNDEFINED if absent)."""
        expr = self.lookup(name)
        if expr is None:
            return UNDEFINED
        return evaluate(expr, my=self, target=target)

    def eval_counted(self, name: str, target: "ClassAd | None" = None) -> tuple[Value, int]:
        """Like :meth:`eval` but also returns the number of AST ops visited."""
        expr = self.lookup(name)
        if expr is None:
            return UNDEFINED, 1
        ctx = Evaluation(my=self, target=target)
        value = evaluate(expr, ctx=ctx)
        return value, ctx.ops

    def get_scalar(self, name: str, default: _t.Any = None) -> _t.Any:
        """Evaluate ``name``; return ``default`` for UNDEFINED/ERROR."""
        value = self.eval(name)
        return value if is_scalar(value) else default

    # -- serialization ----------------------------------------------------------
    def serialize(self) -> str:
        """Condor long-format text (one ``name = expr`` per line)."""
        return "\n".join(f"{self._display[k]} = {expr}" for k, expr in self._attrs.items())

    @classmethod
    def deserialize(cls, text: str) -> "ClassAd":
        """Parse the output of :meth:`serialize` back into an ad."""
        ad = cls()
        for line in text.splitlines():
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            name, _, expression = line.partition("=")
            ad.set_expr(name.strip(), expression.strip())
        return ad

    def estimated_size(self) -> int:
        """Approximate serialized size in bytes (drives network costs)."""
        return len(self.serialize()) + 2

    def copy(self) -> "ClassAd":
        clone = ClassAd()
        clone._attrs = dict(self._attrs)
        clone._display = dict(self._display)
        return clone

    def __repr__(self) -> str:  # pragma: no cover
        name = self.get_scalar("Name", "?")
        return f"<ClassAd Name={name} ({len(self)} attrs)>"
