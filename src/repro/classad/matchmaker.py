"""Bilateral ClassAd matchmaking, as used by the Hawkeye Manager.

Two ads *match* when each one's ``Requirements`` expression evaluates to
TRUE with itself as MY and the other as TARGET (Raman et al., HPDC 1998).
``Rank`` orders multiple matches.  The matchmaker reports how much
evaluation work it performed so the simulation can charge realistic CPU
for manager-side scans (the paper's Experiment 4 worst case evaluates a
constraint against *every* Startd ad in the pool).
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass

from repro.classad.ads import ClassAd
from repro.classad.values import is_scalar

__all__ = ["match", "rank", "MatchResult", "match_pool"]


@dataclass(frozen=True)
class MatchResult:
    """Outcome of one bilateral match attempt."""

    matched: bool
    ops: int  # AST nodes evaluated (cost-model input)


def match(left: ClassAd, right: ClassAd) -> MatchResult:
    """Symmetric match: both Requirements must evaluate to TRUE.

    A missing ``Requirements`` counts as TRUE (Condor's default).
    """
    ops = 0
    for mine, theirs in ((left, right), (right, left)):
        if mine.lookup("Requirements") is None:
            ops += 1
            continue
        value, cost = mine.eval_counted("Requirements", target=theirs)
        ops += cost
        if value is not True:
            return MatchResult(False, ops)
    return MatchResult(True, ops)


def rank(ad: ClassAd, target: ClassAd) -> float:
    """Evaluate ``ad``'s Rank against ``target``; non-numeric → 0.0."""
    value = ad.eval("Rank", target=target)
    if is_scalar(value) and isinstance(value, (int, float)) and not isinstance(value, bool):
        return float(value)
    if value is True:
        return 1.0
    return 0.0


def match_pool(
    request: ClassAd, pool: _t.Iterable[ClassAd]
) -> tuple[list[tuple[float, ClassAd]], int]:
    """Match ``request`` against every ad in ``pool``.

    Returns (matches sorted by descending rank, total evaluation ops).
    The ops total scales with pool size even when nothing matches —
    the worst-case scan the paper benchmarks in Experiment 4.
    """
    matches: list[tuple[float, ClassAd]] = []
    total_ops = 0
    for candidate in pool:
        result = match(request, candidate)
        total_ops += result.ops
        if result.matched:
            matches.append((rank(request, candidate), candidate))
    matches.sort(key=lambda pair: -pair[0])
    return matches, total_ops
