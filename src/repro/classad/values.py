"""ClassAd value domain: three-valued logic with UNDEFINED and ERROR.

Old ClassAds (the language under Condor and Hawkeye) evaluate every
expression to one of: integer, real, string, boolean, UNDEFINED (an
attribute was missing) or ERROR (a type error occurred).  UNDEFINED and
ERROR propagate through operators with precise rules — e.g.
``FALSE && UNDEFINED`` is ``FALSE`` but ``TRUE && UNDEFINED`` is
``UNDEFINED`` — which is what lets matchmaking work over heterogeneous
ads.  This module defines the two sentinel values and coercion helpers.
"""

from __future__ import annotations

import typing as _t

__all__ = ["Undefined", "Error", "UNDEFINED", "ERROR", "Value", "is_scalar", "value_repr"]


class Undefined:
    """The UNDEFINED sentinel (singleton)."""

    _instance: "Undefined | None" = None

    def __new__(cls) -> "Undefined":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "UNDEFINED"

    def __bool__(self) -> bool:
        raise TypeError("UNDEFINED has no boolean value; use explicit checks")


class Error:
    """The ERROR sentinel (singleton)."""

    _instance: "Error | None" = None

    def __new__(cls) -> "Error":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "ERROR"

    def __bool__(self) -> bool:
        raise TypeError("ERROR has no boolean value; use explicit checks")


UNDEFINED = Undefined()
ERROR = Error()

# The full value domain of the evaluator.
Value = _t.Union[int, float, str, bool, Undefined, Error]


def is_scalar(value: Value) -> bool:
    """True for concrete (non-sentinel) values."""
    return not isinstance(value, (Undefined, Error))


def value_repr(value: Value) -> str:
    """Render a value in ClassAd syntax (strings quoted, bools upper-case)."""
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, str):
        escaped = value.replace("\\", "\\\\").replace('"', '\\"')
        return f'"{escaped}"'
    return repr(value)
