"""Query execution over :class:`~repro.relational.table.Table`.

The executor evaluates WHERE trees with SQL NULL semantics (three-valued
logic), uses hash indexes for top-level ``col = literal`` conjuncts, and
reports rows examined per query so the simulation can charge
proportional CPU.
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass

from repro import queryplane
from repro.errors import SchemaError
from repro.relational.compile import compare_values, compiled_for, like_regex
from repro.relational.sqlast import (
    ColumnRef,
    Comparison,
    Constant,
    InList,
    IsNull,
    Like,
    LogicalOp,
    NotOp,
    SelectStmt,
    SqlExpr,
)
from repro.relational.table import Table
from repro.relational.types import SqlValue

__all__ = ["ResultSet", "execute_select", "eval_predicate", "select_rowids"]


@dataclass(frozen=True)
class ResultSet:
    """Rows plus execution metadata."""

    columns: tuple[str, ...]
    rows: list[tuple[SqlValue, ...]]
    rows_examined: int
    index_used: bool

    def __len__(self) -> int:
        return len(self.rows)

    def as_dicts(self) -> list[dict[str, SqlValue]]:
        """Rows as name→value dicts (handy for assertions and consumers)."""
        return [dict(zip(self.columns, row)) for row in self.rows]

    def estimated_size(self) -> int:
        """Approximate wire size of the result in bytes."""
        total = sum(len(c) + 2 for c in self.columns)
        for row in self.rows:
            total += sum(len(str(v)) + 4 for v in row)
        return max(total, 64)


# -- predicate evaluation (SQL three-valued logic) ---------------------------

_TRUE, _FALSE, _NULL = True, False, None


def eval_predicate(expr: SqlExpr, table: Table, row: tuple[SqlValue, ...]) -> bool | None:
    """Evaluate a WHERE tree; returns True/False/None (NULL)."""
    if isinstance(expr, LogicalOp):
        left = eval_predicate(expr.left, table, row)
        right = eval_predicate(expr.right, table, row)
        if expr.op == "AND":
            if left is _FALSE or right is _FALSE:
                return _FALSE
            if left is _NULL or right is _NULL:
                return _NULL
            return _TRUE
        if left is _TRUE or right is _TRUE:
            return _TRUE
        if left is _NULL or right is _NULL:
            return _NULL
        return _FALSE
    if isinstance(expr, NotOp):
        inner = eval_predicate(expr.operand, table, row)
        return _NULL if inner is _NULL else (not inner)
    if isinstance(expr, Comparison):
        left = _eval_operand(expr.left, table, row)
        right = _eval_operand(expr.right, table, row)
        if left is None or right is None:
            return _NULL
        return _compare(expr.op, left, right)
    if isinstance(expr, InList):
        value = _eval_operand(expr.operand, table, row)
        if value is None:
            return _NULL
        hit = any(_compare("=", value, v) for v in expr.values if v is not None)
        return (not hit) if expr.negated else hit
    if isinstance(expr, Like):
        value = _eval_operand(expr.operand, table, row)
        if value is None:
            return _NULL
        hit = _like_match(str(value), expr.pattern)
        return (not hit) if expr.negated else hit
    if isinstance(expr, IsNull):
        value = _eval_operand(expr.operand, table, row)
        result = value is None
        return (not result) if expr.negated else result
    raise SchemaError(f"unsupported WHERE node: {type(expr).__name__}")


def _eval_operand(expr: SqlExpr, table: Table, row: tuple[SqlValue, ...]) -> SqlValue:
    if isinstance(expr, Constant):
        return expr.value
    if isinstance(expr, ColumnRef):
        return row[table.column_position(expr.name)]
    raise SchemaError(f"unsupported operand: {type(expr).__name__}")


# Comparison semantics live in repro.relational.compile so the compiled
# closures and this interpreter share one definition.
_compare = compare_values


def _like_match(text: str, pattern: str) -> bool:
    return like_regex(pattern).fullmatch(text) is not None


# -- planning -------------------------------------------------------------


def _index_candidates(expr: SqlExpr) -> list[tuple[str, SqlValue]]:
    """Top-level AND-conjunct ``col = literal`` pairs usable with indexes."""
    if isinstance(expr, Comparison) and expr.op == "=":
        if isinstance(expr.left, ColumnRef) and isinstance(expr.right, Constant):
            return [(expr.left.name, expr.right.value)]
        if isinstance(expr.right, ColumnRef) and isinstance(expr.left, Constant):
            return [(expr.right.name, expr.left.value)]
        return []
    if isinstance(expr, LogicalOp) and expr.op == "AND":
        return _index_candidates(expr.left) + _index_candidates(expr.right)
    return []


def _conjuncts(expr: SqlExpr) -> list[SqlExpr]:
    """Flatten top-level ANDs into their conjunct list."""
    if isinstance(expr, LogicalOp) and expr.op == "AND":
        return _conjuncts(expr.left) + _conjuncts(expr.right)
    return [expr]


def _prune_candidates(table: Table, where: SqlExpr) -> set[int] | None:
    """Smallest index-derived candidate set for ``where``, or None.

    Every option over-approximates its conjunct (the compiled predicate
    re-checks each candidate), so the smallest usable one wins.  Unknown
    columns in equality conjuncts raise exactly where the interpreted
    planner would.
    """
    options: list[set[int]] = []
    for column, value in _index_candidates(where):
        if not options and not table.has_column(column):
            raise SchemaError(f"no column {column!r} in table {table.name!r}")
        if not table.has_column(column):
            break  # the interpreted planner stops at the first usable bucket
        bucket = table.lookup_index(column, value)
        if bucket is not None:
            options.append(bucket)
    for conjunct in _conjuncts(where):
        if isinstance(conjunct, InList) and not conjunct.negated and isinstance(conjunct.operand, ColumnRef):
            column = conjunct.operand.name
            if table.has_column(column) and table.lookup_index(column, None) is not None:
                union: set[int] = set()
                for element in conjunct.values:
                    if element is not None:
                        union.update(table.lookup_index(column, element) or ())
                options.append(union)
        elif isinstance(conjunct, Comparison) and conjunct.op in ("<", "<=", ">", ">="):
            op = conjunct.op
            left, right = conjunct.left, conjunct.right
            if isinstance(left, Constant) and isinstance(right, ColumnRef):
                # constant <op> column is column <flipped-op> constant
                left, right = right, left
                op = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}[op]
            if not (isinstance(left, ColumnRef) and isinstance(right, Constant)):
                continue
            if not table.has_column(left.name):
                continue
            try:
                bound = float(right.value)  # type: ignore[arg-type]
            except (TypeError, ValueError):
                continue  # text bound: lexicographic compare, not range-prunable
            if bound != bound:
                continue
            ranged = table.range_candidates(left.name, op, bound)
            if ranged is not None:
                options.append(ranged)
    if not options:
        return None
    return min(options, key=len)


def _select_rowids_interpreted(table: Table, where: SqlExpr | None) -> tuple[list[int], int, bool]:
    index_used = False
    if where is not None:
        for column, value in _index_candidates(where):
            if not table.has_column(column):
                raise SchemaError(f"no column {column!r} in table {table.name!r}")
            bucket = table.lookup_index(column, value)
            if bucket is not None:
                index_used = True
                examined = 0
                hits = []
                for rowid in sorted(bucket):
                    examined += 1
                    if eval_predicate(where, table, table.get_row(rowid)) is _TRUE:
                        hits.append(rowid)
                table.rows_scanned_total += examined
                return hits, examined, index_used
    hits = []
    examined = 0
    for rowid, row in table.rows():
        examined += 1
        if where is None or eval_predicate(where, table, row) is _TRUE:
            hits.append(rowid)
    table.rows_scanned_total += examined
    return hits, examined, index_used


def select_rowids(
    table: Table, where: SqlExpr | None, *, compiled: bool | None = None
) -> tuple[list[int], int, bool]:
    """Rowids matching ``where``; returns (ids, rows_examined, index_used).

    ``compiled`` overrides the :mod:`repro.queryplane` global: the
    compiled path prunes with every usable index and evaluates a row
    closure; the interpreted path is the legacy first-bucket-or-scan
    planner and serves as the differential oracle.  Both return the same
    rowids in the same order.
    """
    if not queryplane.resolve(compiled):
        return _select_rowids_interpreted(table, where)
    candidates: set[int] | None = None
    index_used = False
    if where is not None:
        candidates = _prune_candidates(table, where)
        index_used = candidates is not None
    if candidates is None:
        items: list[tuple[int, tuple[SqlValue, ...]]] = list(table.rows())
    else:
        items = [(rowid, table.get_row(rowid)) for rowid in sorted(candidates)]
    hits = []
    examined = 0
    # Compile lazily so empty scans match the interpreter, which never
    # evaluates (and so never type-checks) the predicate on zero rows.
    predicate = compiled_for(table, where) if (where is not None and items) else None
    for rowid, row in items:
        examined += 1
        if predicate is None or predicate(row) is _TRUE:
            hits.append(rowid)
    table.rows_scanned_total += examined
    return hits, examined, index_used


def execute_select(
    table: Table, stmt: SelectStmt, *, compiled: bool | None = None
) -> ResultSet:
    """Run a SELECT against one table."""
    rowids, examined, index_used = select_rowids(table, stmt.where, compiled=compiled)
    if stmt.count_star:
        return ResultSet(
            columns=("COUNT(*)",),
            rows=[(len(rowids),)],
            rows_examined=examined,
            index_used=index_used,
        )
    if stmt.order_by:
        def sort_key(rowid: int) -> tuple:
            row = table.get_row(rowid)
            key = []
            for item in stmt.order_by:
                value = row[table.column_position(item.column)]
                # NULLs sort first ascending, last descending.
                null_rank = 0 if value is None else 1
                comparable = (null_rank, _sortable(value))
                key.append(_Reversed(comparable) if item.descending else comparable)
            return tuple(key)

        rowids.sort(key=sort_key)
    if stmt.limit is not None:
        rowids = rowids[: stmt.limit]
    if stmt.columns == ("*",):
        out_columns = tuple(c.name for c in table.columns)
        positions = list(range(len(table.columns)))
    else:
        out_columns = stmt.columns
        positions = [table.column_position(name) for name in stmt.columns]
    rows = [tuple(table.get_row(rid)[p] for p in positions) for rid in rowids]
    return ResultSet(columns=out_columns, rows=rows, rows_examined=examined, index_used=index_used)


def _sortable(value: SqlValue) -> _t.Any:
    if value is None:
        return 0
    if isinstance(value, (int, float)):
        return (0, float(value))
    return (1, str(value).lower())


class _Reversed:
    """Key wrapper inverting comparison order (for DESC sort keys)."""

    __slots__ = ("inner",)

    def __init__(self, inner: _t.Any) -> None:
        self.inner = inner

    def __lt__(self, other: "_Reversed") -> bool:
        return other.inner < self.inner

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Reversed) and other.inner == self.inner
