"""WHERE-clause compilation: row closures, LIKE regexes, value compare.

:func:`compile_predicate` lowers a WHERE tree to a closure over column
positions and pre-coerced constants that returns the same three-valued
answer (True/False/None) as
:func:`repro.relational.executor.eval_predicate`, without re-dispatching
on AST nodes per row.  Closures capture only the (immutable) table
schema, so :func:`compiled_for`'s per-table cache never needs
invalidating on row mutation.

:func:`compare_values` is the one copy of the comparison semantics —
numeric when both sides coerce to float, else case-insensitive text —
shared by the interpreter and used by compiled closures for the
column-vs-column case; the constant-vs-column cases pre-coerce the
constant side at compile time.
"""

from __future__ import annotations

import operator
import re
import typing as _t
from functools import lru_cache

from repro.errors import SchemaError
from repro.relational.sqlast import (
    ColumnRef,
    Comparison,
    Constant,
    InList,
    IsNull,
    Like,
    LogicalOp,
    NotOp,
    SqlExpr,
)
from repro.relational.types import SqlValue

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.relational.table import Table

__all__ = ["compare_values", "like_regex", "compile_predicate", "compiled_for"]

Row = _t.Tuple[SqlValue, ...]
RowPredicate = _t.Callable[[Row], _t.Optional[bool]]

_OPS: dict[str, _t.Callable[[_t.Any, _t.Any], bool]] = {
    "=": operator.eq,
    "<>": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


def compare_values(op: str, left: SqlValue, right: SqlValue) -> bool:
    """SQL comparison: numeric when both coerce, else case-insensitive text."""
    a: _t.Any
    b: _t.Any
    try:
        a = float(left)  # type: ignore[arg-type]
        b = float(right)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        a = str(left).lower()
        b = str(right).lower()
    fn = _OPS.get(op)
    if fn is None:
        raise SchemaError(f"unknown comparison operator {op!r}")
    return fn(a, b)


@lru_cache(maxsize=512)
def like_regex(pattern: str) -> "re.Pattern[str]":
    """Compiled regex for a SQL LIKE pattern (``%``/``_`` wildcards)."""
    regex = re.escape(pattern).replace("%", ".*").replace("_", ".")
    return re.compile(regex, flags=re.IGNORECASE)


def _coerced(value: SqlValue) -> float | None:
    try:
        return float(value)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        return None


def _operand(expr: SqlExpr, table: "Table") -> _t.Callable[[Row], SqlValue]:
    if isinstance(expr, Constant):
        value = expr.value
        return lambda row: value
    if isinstance(expr, ColumnRef):
        position = table.column_position(expr.name)
        return lambda row: row[position]
    raise SchemaError(f"unsupported operand: {type(expr).__name__}")


def _compile_comparison(expr: Comparison, table: "Table") -> RowPredicate:
    op = expr.op
    fn = _OPS.get(op)
    if fn is None:
        raise SchemaError(f"unknown comparison operator {op!r}")
    column_left = isinstance(expr.left, ColumnRef)
    column_right = isinstance(expr.right, ColumnRef)
    if column_left and isinstance(expr.right, Constant):
        position = table.column_position(expr.left.name)
        const = expr.right.value
        if const is None:
            return lambda row: None
        const_num = _coerced(const)
        const_str = str(const).lower()

        def run_col_const(row: Row) -> bool | None:
            value = row[position]
            if value is None:
                return None
            if const_num is not None:
                try:
                    number = float(value)  # type: ignore[arg-type]
                except (TypeError, ValueError):
                    pass
                else:
                    return fn(number, const_num)
            return fn(str(value).lower(), const_str)

        return run_col_const
    if column_right and isinstance(expr.left, Constant):
        position = table.column_position(expr.right.name)
        const = expr.left.value
        if const is None:
            return lambda row: None
        const_num = _coerced(const)
        const_str = str(const).lower()

        def run_const_col(row: Row) -> bool | None:
            value = row[position]
            if value is None:
                return None
            if const_num is not None:
                try:
                    number = float(value)  # type: ignore[arg-type]
                except (TypeError, ValueError):
                    pass
                else:
                    return fn(const_num, number)
            return fn(const_str, str(value).lower())

        return run_const_col
    left = _operand(expr.left, table)
    right = _operand(expr.right, table)

    def run_general(row: Row) -> bool | None:
        a = left(row)
        b = right(row)
        if a is None or b is None:
            return None
        return compare_values(op, a, b)

    return run_general


def _compile_in_list(expr: InList, table: "Table") -> RowPredicate:
    get = _operand(expr.operand, table)
    negated = expr.negated
    # Decompose the list once: numeric membership for coercible elements
    # (NaN never equals anything numerically, so it is excluded), plus
    # lowered-text membership replicating the per-element compare — a
    # coercible row value only text-matches non-coercible elements.
    numbers: set[float] = set()
    texts_all: set[str] = set()
    texts_noncoercible: set[str] = set()
    for element in expr.values:
        if element is None:
            continue
        lowered = str(element).lower()
        texts_all.add(lowered)
        number = _coerced(element)
        if number is None:
            texts_noncoercible.add(lowered)
        elif number == number:
            numbers.add(number)

    def run(row: Row) -> bool | None:
        value = get(row)
        if value is None:
            return None
        number = _coerced(value)
        if number is not None:
            hit = number in numbers or str(value).lower() in texts_noncoercible
        else:
            hit = str(value).lower() in texts_all
        return (not hit) if negated else hit

    return run


def compile_predicate(expr: SqlExpr, table: "Table") -> RowPredicate:
    """Compile a WHERE tree to a three-valued row closure."""
    if isinstance(expr, LogicalOp):
        left = compile_predicate(expr.left, table)
        right = compile_predicate(expr.right, table)
        if expr.op == "AND":

            def run_and(row: Row) -> bool | None:
                a = left(row)
                if a is False:
                    return False
                b = right(row)
                if b is False:
                    return False
                if a is None or b is None:
                    return None
                return True

            return run_and

        def run_or(row: Row) -> bool | None:
            a = left(row)
            if a is True:
                return True
            b = right(row)
            if b is True:
                return True
            if a is None or b is None:
                return None
            return False

        return run_or
    if isinstance(expr, NotOp):
        inner = compile_predicate(expr.operand, table)

        def run_not(row: Row) -> bool | None:
            value = inner(row)
            return None if value is None else (not value)

        return run_not
    if isinstance(expr, Comparison):
        return _compile_comparison(expr, table)
    if isinstance(expr, InList):
        return _compile_in_list(expr, table)
    if isinstance(expr, Like):
        get = _operand(expr.operand, table)
        negated = expr.negated
        regex = like_regex(expr.pattern)

        def run_like(row: Row) -> bool | None:
            value = get(row)
            if value is None:
                return None
            hit = regex.fullmatch(str(value)) is not None
            return (not hit) if negated else hit

        return run_like
    if isinstance(expr, IsNull):
        get = _operand(expr.operand, table)
        negated = expr.negated

        def run_is_null(row: Row) -> bool:
            result = get(row) is None
            return (not result) if negated else result

        return run_is_null
    raise SchemaError(f"unsupported WHERE node: {type(expr).__name__}")


def compiled_for(table: "Table", expr: SqlExpr) -> RowPredicate:
    """Per-table compiled-predicate cache, keyed on the (hashable) tree.

    Closures bind column positions, which are fixed at table creation,
    so entries stay valid across inserts/deletes — no invalidation.
    """
    cache = table._compiled_where
    predicate = cache.get(expr)
    if predicate is None:
        if len(cache) >= 128:
            cache.clear()
        predicate = compile_predicate(expr, table)
        cache[expr] = predicate
    return predicate
