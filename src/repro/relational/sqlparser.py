"""Lexer and recursive-descent parser for the SQL subset R-GMA needs.

Supported statements::

    CREATE TABLE t (col TYPE, ...)
    INSERT INTO t [(c1, c2)] VALUES (v1, v2) [, (v3, v4) ...]
    SELECT * | c1, c2 | COUNT(*) FROM t
        [WHERE expr] [ORDER BY c [ASC|DESC], ...] [LIMIT n]
    DELETE FROM t [WHERE expr]

WHERE grammar: OR > AND > NOT > predicates, with comparisons
(=, <>, !=, <, <=, >, >=), IN lists, LIKE patterns and IS [NOT] NULL.
"""

from __future__ import annotations

import typing as _t
from functools import lru_cache

from repro import queryplane
from repro.errors import SqlSyntaxError
from repro.relational.sqlast import (
    ColumnRef,
    Comparison,
    Constant,
    CreateTableStmt,
    DeleteStmt,
    InList,
    InsertStmt,
    IsNull,
    Like,
    LogicalOp,
    NotOp,
    OrderItem,
    SelectStmt,
    SqlExpr,
)

__all__ = ["parse_sql", "parse_sql_cached", "Statement"]

Statement = _t.Union[SelectStmt, InsertStmt, CreateTableStmt, DeleteStmt]


class _Token(_t.NamedTuple):
    kind: str  # KEYWORD IDENT NUMBER STRING OP EOF
    text: str
    pos: int


_KEYWORDS = {
    "select", "from", "where", "and", "or", "not", "in", "like", "is",
    "null", "order", "by", "asc", "desc", "limit", "insert", "into",
    "values", "create", "table", "delete", "count",
}

_OPERATORS = ["<>", "!=", "<=", ">=", "=", "<", ">", "(", ")", ",", "*", "."]


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch in " \t\r\n;":
            i += 1
            continue
        if ch == "'":
            j = i + 1
            out: list[str] = []
            while j < n:
                if text[j] == "'":
                    if j + 1 < n and text[j + 1] == "'":  # doubled quote escape
                        out.append("'")
                        j += 2
                        continue
                    break
                out.append(text[j])
                j += 1
            if j >= n:
                raise SqlSyntaxError(f"unterminated string at {i} in {text!r}")
            tokens.append(_Token("STRING", "".join(out), i))
            i = j + 1
            continue
        if ch.isdigit() or (ch in "+-" and i + 1 < n and text[i + 1].isdigit() and _prev_is_operand_boundary(tokens)):
            j = i + 1
            while j < n and (text[j].isdigit() or text[j] in ".eE" or (text[j] in "+-" and text[j - 1] in "eE")):
                j += 1
            tokens.append(_Token("NUMBER", text[i:j], i))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] in "_$"):
                j += 1
            word = text[i:j]
            kind = "KEYWORD" if word.lower() in _KEYWORDS else "IDENT"
            tokens.append(_Token(kind, word, i))
            i = j
            continue
        for op in _OPERATORS:
            if text.startswith(op, i):
                tokens.append(_Token("OP", op, i))
                i += len(op)
                break
        else:
            raise SqlSyntaxError(f"unexpected character {ch!r} at {i} in {text!r}")
    tokens.append(_Token("EOF", "", n))
    return tokens


def _prev_is_operand_boundary(tokens: list[_Token]) -> bool:
    """A +/- starts a number only after an operator/keyword, not an operand."""
    if not tokens:
        return True
    prev = tokens[-1]
    return not (prev.kind in ("NUMBER", "STRING", "IDENT") or prev.text == ")")


class _Parser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens = _tokenize(text)
        self.pos = 0

    # -- helpers ---------------------------------------------------------------
    def peek(self) -> _Token:
        return self.tokens[self.pos]

    def advance(self) -> _Token:
        token = self.tokens[self.pos]
        self.pos += 1
        return token

    def error(self, message: str) -> SqlSyntaxError:
        token = self.peek()
        return SqlSyntaxError(f"{message} at {token.pos} (near {token.text!r}) in {self.text!r}")

    def at_keyword(self, *words: str) -> bool:
        token = self.peek()
        return token.kind == "KEYWORD" and token.text.lower() in words

    def expect_keyword(self, word: str) -> None:
        if not self.at_keyword(word):
            raise self.error(f"expected {word.upper()}")
        self.advance()

    def at_op(self, *ops: str) -> bool:
        token = self.peek()
        return token.kind == "OP" and token.text in ops

    def expect_op(self, op: str) -> None:
        if not self.at_op(op):
            raise self.error(f"expected {op!r}")
        self.advance()

    def expect_ident(self) -> str:
        token = self.peek()
        if token.kind not in ("IDENT", "KEYWORD"):
            raise self.error("expected identifier")
        self.advance()
        return token.text

    # -- statements -----------------------------------------------------------
    def parse(self) -> Statement:
        if self.at_keyword("select"):
            stmt: Statement = self.parse_select()
        elif self.at_keyword("insert"):
            stmt = self.parse_insert()
        elif self.at_keyword("create"):
            stmt = self.parse_create()
        elif self.at_keyword("delete"):
            stmt = self.parse_delete()
        else:
            raise self.error("expected SELECT, INSERT, CREATE or DELETE")
        if self.peek().kind != "EOF":
            raise self.error("trailing input")
        return stmt

    def parse_select(self) -> SelectStmt:
        self.expect_keyword("select")
        count_star = False
        columns: tuple[str, ...]
        if self.at_keyword("count"):
            self.advance()
            self.expect_op("(")
            self.expect_op("*")
            self.expect_op(")")
            count_star = True
            columns = ("*",)
        elif self.at_op("*"):
            self.advance()
            columns = ("*",)
        else:
            names = [self.expect_ident()]
            while self.at_op(","):
                self.advance()
                names.append(self.expect_ident())
            columns = tuple(names)
        self.expect_keyword("from")
        table = self.expect_ident()
        where = None
        if self.at_keyword("where"):
            self.advance()
            where = self.parse_expr()
        order: list[OrderItem] = []
        if self.at_keyword("order"):
            self.advance()
            self.expect_keyword("by")
            while True:
                column = self.expect_ident()
                descending = False
                if self.at_keyword("asc", "desc"):
                    descending = self.advance().text.lower() == "desc"
                order.append(OrderItem(column, descending))
                if not self.at_op(","):
                    break
                self.advance()
        limit = None
        if self.at_keyword("limit"):
            self.advance()
            token = self.peek()
            if token.kind != "NUMBER":
                raise self.error("expected LIMIT count")
            self.advance()
            limit = int(float(token.text))
        return SelectStmt(
            table=table,
            columns=columns,
            where=where,
            order_by=tuple(order),
            limit=limit,
            count_star=count_star,
        )

    def parse_insert(self) -> InsertStmt:
        self.expect_keyword("insert")
        self.expect_keyword("into")
        table = self.expect_ident()
        columns: tuple[str, ...] | None = None
        if self.at_op("("):
            self.advance()
            names = [self.expect_ident()]
            while self.at_op(","):
                self.advance()
                names.append(self.expect_ident())
            self.expect_op(")")
            columns = tuple(names)
        self.expect_keyword("values")
        rows: list[tuple[_t.Any, ...]] = []
        while True:
            self.expect_op("(")
            values = [self.parse_literal().value]
            while self.at_op(","):
                self.advance()
                values.append(self.parse_literal().value)
            self.expect_op(")")
            rows.append(tuple(values))
            if not self.at_op(","):
                break
            self.advance()
        return InsertStmt(table=table, columns=columns, rows=tuple(rows))

    def parse_create(self) -> CreateTableStmt:
        self.expect_keyword("create")
        self.expect_keyword("table")
        table = self.expect_ident()
        self.expect_op("(")
        columns: list[tuple[str, str]] = []
        while True:
            name = self.expect_ident()
            type_token = self.peek()
            if type_token.kind not in ("IDENT", "KEYWORD"):
                raise self.error("expected column type")
            self.advance()
            type_text = type_token.text
            if self.at_op("("):  # VARCHAR(255)
                self.advance()
                size = self.peek()
                if size.kind != "NUMBER":
                    raise self.error("expected type length")
                self.advance()
                self.expect_op(")")
                type_text = f"{type_text}({size.text})"
            columns.append((name, type_text))
            if not self.at_op(","):
                break
            self.advance()
        self.expect_op(")")
        return CreateTableStmt(table=table, columns=tuple(columns))

    def parse_delete(self) -> DeleteStmt:
        self.expect_keyword("delete")
        self.expect_keyword("from")
        table = self.expect_ident()
        where = None
        if self.at_keyword("where"):
            self.advance()
            where = self.parse_expr()
        return DeleteStmt(table=table, where=where)

    # -- expressions -----------------------------------------------------------
    def parse_expr(self) -> SqlExpr:
        node = self.parse_and()
        while self.at_keyword("or"):
            self.advance()
            node = LogicalOp("OR", node, self.parse_and())
        return node

    def parse_and(self) -> SqlExpr:
        node = self.parse_not()
        while self.at_keyword("and"):
            self.advance()
            node = LogicalOp("AND", node, self.parse_not())
        return node

    def parse_not(self) -> SqlExpr:
        if self.at_keyword("not"):
            self.advance()
            return NotOp(self.parse_not())
        return self.parse_predicate()

    def parse_predicate(self) -> SqlExpr:
        if self.at_op("("):
            self.advance()
            node = self.parse_expr()
            self.expect_op(")")
            return node
        operand = self.parse_operand()
        if self.at_keyword("is"):
            self.advance()
            negated = False
            if self.at_keyword("not"):
                self.advance()
                negated = True
            self.expect_keyword("null")
            return IsNull(operand, negated=negated)
        negated = False
        if self.at_keyword("not"):
            self.advance()
            negated = True
            if not self.at_keyword("in", "like"):
                raise self.error("expected IN or LIKE after NOT")
        if self.at_keyword("in"):
            self.advance()
            self.expect_op("(")
            values = [self.parse_literal().value]
            while self.at_op(","):
                self.advance()
                values.append(self.parse_literal().value)
            self.expect_op(")")
            return InList(operand, tuple(values), negated=negated)
        if self.at_keyword("like"):
            self.advance()
            token = self.peek()
            if token.kind != "STRING":
                raise self.error("expected LIKE pattern string")
            self.advance()
            return Like(operand, token.text, negated=negated)
        token = self.peek()
        if token.kind == "OP" and token.text in ("=", "<>", "!=", "<", "<=", ">", ">="):
            self.advance()
            right = self.parse_operand()
            op = "<>" if token.text == "!=" else token.text
            return Comparison(op, operand, right)
        raise self.error("expected comparison, IN, LIKE or IS NULL")

    def parse_operand(self) -> SqlExpr:
        token = self.peek()
        if token.kind in ("NUMBER", "STRING") or self.at_keyword("null"):
            return self.parse_literal()
        if token.kind == "IDENT":
            self.advance()
            return ColumnRef(token.text)
        raise self.error("expected column or literal")

    def parse_literal(self) -> Constant:
        token = self.peek()
        if token.kind == "NUMBER":
            self.advance()
            text = token.text
            if any(c in text for c in ".eE"):
                return Constant(float(text))
            return Constant(int(text))
        if token.kind == "STRING":
            self.advance()
            return Constant(token.text)
        if self.at_keyword("null"):
            self.advance()
            return Constant(None)
        raise self.error("expected literal")


def parse_sql(text: str) -> Statement:
    """Parse one SQL statement; raises :class:`SqlSyntaxError` on bad input."""
    if not text.strip():
        raise SqlSyntaxError("empty statement")
    return _Parser(text).parse()


@lru_cache(maxsize=256)
def _parse_memo(text: str) -> Statement:
    return parse_sql(text)


def parse_sql_cached(text: str) -> Statement:
    """LRU-cached :func:`parse_sql` used on the compiled query path.

    Statements are frozen dataclasses over tuples, so sharing the parsed
    object across callers is safe.  With compilation off this defers to
    the plain parser so the oracle path stays allocation-identical.
    """
    if not queryplane.compiled_default():
        return parse_sql(text)
    return _parse_memo(text)
