"""Database catalog: named tables plus a one-call SQL entry point.

This is the stand-in for the MySQL instance beneath the R-GMA Registry
(DESIGN.md §2): ``Database.execute`` parses and runs one statement and
returns a :class:`~repro.relational.executor.ResultSet` (SELECT) or an
affected-row count (other statements).
"""

from __future__ import annotations

import typing as _t

from repro.errors import SchemaError
from repro.relational.executor import ResultSet, execute_select, select_rowids
from repro.relational.sqlast import CreateTableStmt, DeleteStmt, InsertStmt, SelectStmt
from repro.relational.sqlparser import Statement, parse_sql_cached
from repro.relational.table import Table
from repro.relational.types import Column, ColumnType

__all__ = ["Database"]


class Database:
    """A catalog of tables with a textual SQL interface."""

    def __init__(self, name: str = "db") -> None:
        self.name = name
        self._tables: dict[str, Table] = {}
        self.statements_executed = 0

    # -- catalog --------------------------------------------------------------
    def create_table(self, name: str, columns: _t.Sequence[tuple[str, str]]) -> Table:
        """Create a table from (name, type) pairs; returns it."""
        key = name.lower()
        if key in self._tables:
            raise SchemaError(f"table {name!r} already exists")
        table = Table(name, [Column(n, ColumnType.normalize(t)) for n, t in columns])
        self._tables[key] = table
        return table

    def drop_table(self, name: str) -> None:
        if name.lower() not in self._tables:
            raise SchemaError(f"no such table: {name!r}")
        del self._tables[name.lower()]

    def table(self, name: str) -> Table:
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise SchemaError(f"no such table: {name!r}") from None

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def tables(self) -> list[str]:
        return [t.name for t in self._tables.values()]

    # -- execution ------------------------------------------------------------
    def execute(self, sql: str | Statement) -> ResultSet | int:
        """Run one statement; SELECT → ResultSet, others → affected rows."""
        stmt = parse_sql_cached(sql) if isinstance(sql, str) else sql
        self.statements_executed += 1
        if isinstance(stmt, SelectStmt):
            return execute_select(self.table(stmt.table), stmt)
        if isinstance(stmt, InsertStmt):
            table = self.table(stmt.table)
            for row in stmt.rows:
                table.insert(row, columns=stmt.columns)
            return len(stmt.rows)
        if isinstance(stmt, CreateTableStmt):
            self.create_table(stmt.table, stmt.columns)
            return 0
        if isinstance(stmt, DeleteStmt):
            table = self.table(stmt.table)
            rowids, _examined, _indexed = select_rowids(table, stmt.where)
            return table.delete_rows(rowids)
        raise SchemaError(f"unsupported statement: {type(stmt).__name__}")

    def query(self, sql: str) -> ResultSet:
        """Run a SELECT; raises if the statement is not a SELECT."""
        result = self.execute(sql)
        if not isinstance(result, ResultSet):
            raise SchemaError("query() requires a SELECT statement")
        return result
