"""Mini relational engine: the substrate beneath the R-GMA Registry.

Typed in-memory tables, a MySQL-flavoured SQL subset (CREATE TABLE,
INSERT, SELECT with WHERE/ORDER BY/LIMIT, DELETE), hash indexes and SQL
NULL three-valued logic.  Stands in for the MySQL + JDBC stack of the
paper's R-GMA 1.18 deployment (DESIGN.md §2).
"""

from repro.relational.database import Database
from repro.relational.executor import ResultSet, eval_predicate, execute_select
from repro.relational.sqlast import (
    ColumnRef,
    Comparison,
    Constant,
    CreateTableStmt,
    DeleteStmt,
    InList,
    InsertStmt,
    IsNull,
    Like,
    LogicalOp,
    NotOp,
    OrderItem,
    SelectStmt,
)
from repro.relational.sqlparser import parse_sql, parse_sql_cached
from repro.relational.table import Table
from repro.relational.types import Column, ColumnType, coerce

__all__ = [
    "Database",
    "Table",
    "Column",
    "ColumnType",
    "coerce",
    "parse_sql",
    "parse_sql_cached",
    "execute_select",
    "eval_predicate",
    "ResultSet",
    "SelectStmt",
    "InsertStmt",
    "CreateTableStmt",
    "DeleteStmt",
    "OrderItem",
    "ColumnRef",
    "Constant",
    "Comparison",
    "LogicalOp",
    "NotOp",
    "InList",
    "Like",
    "IsNull",
]
