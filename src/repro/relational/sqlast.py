"""AST node definitions for the SQL subset."""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass

__all__ = [
    "SqlExpr",
    "ColumnRef",
    "Constant",
    "Comparison",
    "LogicalOp",
    "NotOp",
    "InList",
    "Like",
    "IsNull",
    "SelectStmt",
    "InsertStmt",
    "CreateTableStmt",
    "DeleteStmt",
    "OrderItem",
]


class SqlExpr:
    """Base class of WHERE-clause expression nodes."""


@dataclass(frozen=True)
class ColumnRef(SqlExpr):
    """A column reference (case-insensitive)."""

    name: str


@dataclass(frozen=True)
class Constant(SqlExpr):
    """A literal: number, string or NULL."""

    value: _t.Union[int, float, str, None]


@dataclass(frozen=True)
class Comparison(SqlExpr):
    """``left <op> right`` where op ∈ {=, <>, <, <=, >, >=}."""

    op: str
    left: SqlExpr
    right: SqlExpr


@dataclass(frozen=True)
class LogicalOp(SqlExpr):
    """``AND`` / ``OR`` over two sub-expressions."""

    op: str  # "AND" | "OR"
    left: SqlExpr
    right: SqlExpr


@dataclass(frozen=True)
class NotOp(SqlExpr):
    """``NOT expr``."""

    operand: SqlExpr


@dataclass(frozen=True)
class InList(SqlExpr):
    """``col IN (v1, v2, ...)`` (optionally negated)."""

    operand: SqlExpr
    values: tuple[_t.Any, ...]
    negated: bool = False


@dataclass(frozen=True)
class Like(SqlExpr):
    """``col LIKE 'pat%'`` with % and _ wildcards (optionally negated)."""

    operand: SqlExpr
    pattern: str
    negated: bool = False


@dataclass(frozen=True)
class IsNull(SqlExpr):
    """``col IS [NOT] NULL``."""

    operand: SqlExpr
    negated: bool = False


@dataclass(frozen=True)
class OrderItem:
    """One ORDER BY key."""

    column: str
    descending: bool = False


@dataclass(frozen=True)
class SelectStmt:
    """``SELECT cols FROM table [WHERE ...] [ORDER BY ...] [LIMIT n]``."""

    table: str
    columns: tuple[str, ...]  # ("*",) for all
    where: SqlExpr | None = None
    order_by: tuple[OrderItem, ...] = ()
    limit: int | None = None
    count_star: bool = False  # SELECT COUNT(*)


@dataclass(frozen=True)
class InsertStmt:
    """``INSERT INTO table [(cols)] VALUES (...), (...)``."""

    table: str
    columns: tuple[str, ...] | None
    rows: tuple[tuple[_t.Any, ...], ...]


@dataclass(frozen=True)
class CreateTableStmt:
    """``CREATE TABLE name (col TYPE, ...)``."""

    table: str
    columns: tuple[tuple[str, str], ...]  # (name, raw type)


@dataclass(frozen=True)
class DeleteStmt:
    """``DELETE FROM table [WHERE ...]``."""

    table: str
    where: SqlExpr | None = None
