"""Column types and value coercion for the mini relational engine."""

from __future__ import annotations

import typing as _t

from repro.errors import SchemaError

__all__ = ["ColumnType", "Column", "coerce", "SqlValue"]

SqlValue = _t.Union[int, float, str, None]


class ColumnType:
    """Supported SQL column types."""

    INT = "INT"
    REAL = "REAL"
    TEXT = "TEXT"

    ALL = (INT, REAL, TEXT)

    # Synonyms accepted by the DDL parser (MySQL-flavoured, as R-GMA used).
    SYNONYMS = {
        "INT": INT,
        "INTEGER": INT,
        "BIGINT": INT,
        "SMALLINT": INT,
        "REAL": REAL,
        "FLOAT": REAL,
        "DOUBLE": REAL,
        "TEXT": TEXT,
        "VARCHAR": TEXT,
        "CHAR": TEXT,
        "STRING": TEXT,
    }

    @classmethod
    def normalize(cls, name: str) -> str:
        base = name.strip().upper()
        # Strip length suffix: VARCHAR(255) -> VARCHAR
        if "(" in base:
            base = base[: base.index("(")]
        try:
            return cls.SYNONYMS[base]
        except KeyError:
            raise SchemaError(f"unknown column type: {name!r}") from None


class Column(_t.NamedTuple):
    """One column definition: name plus normalized type."""

    name: str
    type: str

    @property
    def key(self) -> str:
        """Case-insensitive lookup key."""
        return self.name.lower()


def coerce(value: SqlValue, column: Column) -> SqlValue:
    """Coerce ``value`` to the column's type; NULL passes through.

    Raises :class:`SchemaError` on impossible conversions.
    """
    if value is None:
        return None
    try:
        if column.type == ColumnType.INT:
            if isinstance(value, str):
                return int(float(value))
            return int(value)
        if column.type == ColumnType.REAL:
            return float(value)
        return str(value)
    except (TypeError, ValueError) as exc:
        raise SchemaError(
            f"cannot store {value!r} in {column.type} column {column.name!r}"
        ) from exc
