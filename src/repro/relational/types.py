"""Column types and value coercion for the mini relational engine."""

from __future__ import annotations

import typing as _t

from repro.errors import SchemaError

__all__ = [
    "ColumnType",
    "Column",
    "coerce",
    "SqlValue",
    "encode_value",
    "decode_value",
    "encode_result",
    "decode_result",
]

SqlValue = _t.Union[int, float, str, None]


class ColumnType:
    """Supported SQL column types."""

    INT = "INT"
    REAL = "REAL"
    TEXT = "TEXT"

    ALL = (INT, REAL, TEXT)

    # Synonyms accepted by the DDL parser (MySQL-flavoured, as R-GMA used).
    SYNONYMS = {
        "INT": INT,
        "INTEGER": INT,
        "BIGINT": INT,
        "SMALLINT": INT,
        "REAL": REAL,
        "FLOAT": REAL,
        "DOUBLE": REAL,
        "TEXT": TEXT,
        "VARCHAR": TEXT,
        "CHAR": TEXT,
        "STRING": TEXT,
    }

    @classmethod
    def normalize(cls, name: str) -> str:
        base = name.strip().upper()
        # Strip length suffix: VARCHAR(255) -> VARCHAR
        if "(" in base:
            base = base[: base.index("(")]
        try:
            return cls.SYNONYMS[base]
        except KeyError:
            raise SchemaError(f"unknown column type: {name!r}") from None


class Column(_t.NamedTuple):
    """One column definition: name plus normalized type."""

    name: str
    type: str

    @property
    def key(self) -> str:
        """Case-insensitive lookup key."""
        return self.name.lower()


def coerce(value: SqlValue, column: Column) -> SqlValue:
    """Coerce ``value`` to the column's type; NULL passes through.

    Raises :class:`SchemaError` on impossible conversions.
    """
    if value is None:
        return None
    try:
        if column.type == ColumnType.INT:
            if isinstance(value, str):
                return int(float(value))
            return int(value)
        if column.type == ColumnType.REAL:
            return float(value)
        return str(value)
    except (TypeError, ValueError) as exc:
        raise SchemaError(
            f"cannot store {value!r} in {column.type} column {column.name!r}"
        ) from exc


# -- wire encoding -----------------------------------------------------------
#
# R-GMA shipped tuples and SQL result sets between servlets as text; the
# live service plane does the same over HTTP.  The format is line/tab
# framed with a one-character type tag per value so a round trip
# preserves SQL types exactly (INT vs REAL vs TEXT vs NULL), which JSON
# would not (it collapses 1 and 1.0, and cannot carry a lone NULL row
# value distinguishably in a plain cell).

_ESCAPES = {"\\": "\\\\", "\t": "\\t", "\n": "\\n", "\r": "\\r"}
_UNESCAPES = {"\\": "\\", "t": "\t", "n": "\n", "r": "\r"}


def _escape(text: str) -> str:
    for raw, esc in _ESCAPES.items():
        text = text.replace(raw, esc)
    return text


def _unescape(text: str) -> str:
    out: list[str] = []
    it = iter(text)
    for ch in it:
        if ch != "\\":
            out.append(ch)
            continue
        try:
            code = next(it)
        except StopIteration:
            raise SchemaError(f"dangling escape in {text!r}") from None
        try:
            out.append(_UNESCAPES[code])
        except KeyError:
            raise SchemaError(f"unknown escape \\{code} in {text!r}") from None
    return "".join(out)


def encode_value(value: SqlValue) -> str:
    """One SQL value as a type-tagged token (``~`` / ``i:`` / ``r:`` / ``t:``)."""
    if value is None:
        return "~"
    if isinstance(value, bool):  # bool is an int subclass; store as INT
        return f"i:{int(value)}"
    if isinstance(value, int):
        return f"i:{value}"
    if isinstance(value, float):
        return f"r:{value!r}"
    if isinstance(value, str):
        return f"t:{_escape(value)}"
    raise SchemaError(f"cannot encode {type(value).__name__} value {value!r}")


def decode_value(token: str) -> SqlValue:
    """Invert :func:`encode_value`."""
    if token == "~":
        return None
    tag, sep, body = token.partition(":")
    if not sep or tag not in ("i", "r", "t"):
        raise SchemaError(f"malformed value token {token!r}")
    if tag == "i":
        return int(body)
    if tag == "r":
        return float(body)
    return _unescape(body)


def encode_result(
    columns: _t.Sequence[str], rows: _t.Iterable[_t.Sequence[SqlValue]]
) -> str:
    """Serialize an SQL result set: a header line, then one line per row."""
    lines = ["\t".join(_escape(c) for c in columns)]
    for row in rows:
        if len(row) != len(columns):
            raise SchemaError(f"row width {len(row)} != {len(columns)} columns")
        lines.append("\t".join(encode_value(v) for v in row))
    return "\n".join(lines) + "\n"


def decode_result(text: str) -> tuple[tuple[str, ...], list[tuple[SqlValue, ...]]]:
    """Invert :func:`encode_result` into ``(columns, rows)``."""
    lines = text.splitlines()
    if not lines:
        raise SchemaError("empty result text")
    columns = tuple(_unescape(c) for c in lines[0].split("\t"))
    rows = [tuple(decode_value(tok) for tok in line.split("\t")) for line in lines[1:]]
    for row in rows:
        if len(row) != len(columns):
            raise SchemaError(f"row width {len(row)} != {len(columns)} columns")
    return columns, rows
