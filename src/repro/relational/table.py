"""In-memory tables with optional hash indexes.

Rows are stored as tuples in insertion order; equality indexes map a
column value to the set of row ids holding it.  The executor consults
indexes for ``col = literal`` predicates and reports how many rows it
actually examined, which feeds the study's cost models.
"""

from __future__ import annotations

import typing as _t

from repro.errors import SchemaError
from repro.relational.types import Column, SqlValue, coerce

__all__ = ["Table"]


class Table:
    """One relational table: schema, rows, and equality indexes."""

    def __init__(self, name: str, columns: _t.Sequence[Column]) -> None:
        if not columns:
            raise SchemaError(f"table {name!r} needs at least one column")
        seen: set[str] = set()
        for column in columns:
            if column.key in seen:
                raise SchemaError(f"duplicate column {column.name!r} in table {name!r}")
            seen.add(column.key)
        self.name = name
        self.columns = tuple(columns)
        self._index_of = {c.key: i for i, c in enumerate(self.columns)}
        self._rows: dict[int, tuple[SqlValue, ...]] = {}
        self._next_rowid = 0
        self._indexes: dict[str, dict[SqlValue, set[int]]] = {}
        self.rows_scanned_total = 0  # cumulative cost counter

    # -- schema -----------------------------------------------------------------
    def column_position(self, name: str) -> int:
        try:
            return self._index_of[name.lower()]
        except KeyError:
            raise SchemaError(f"no column {name!r} in table {self.name!r}") from None

    def has_column(self, name: str) -> bool:
        return name.lower() in self._index_of

    # -- indexing ---------------------------------------------------------------
    def create_index(self, column: str) -> None:
        """Build (or rebuild) a hash index over ``column``."""
        position = self.column_position(column)
        index: dict[SqlValue, set[int]] = {}
        for rowid, row in self._rows.items():
            index.setdefault(_norm(row[position]), set()).add(rowid)
        self._indexes[column.lower()] = index

    def indexed_columns(self) -> list[str]:
        return list(self._indexes)

    # -- mutation ---------------------------------------------------------------
    def insert(self, values: _t.Sequence[SqlValue], columns: _t.Sequence[str] | None = None) -> int:
        """Insert one row; returns its rowid.

        ``columns`` names the supplied values; omitted columns get NULL.
        """
        if columns is None:
            if len(values) != len(self.columns):
                raise SchemaError(
                    f"table {self.name!r} has {len(self.columns)} columns, got {len(values)} values"
                )
            row = tuple(coerce(v, c) for v, c in zip(values, self.columns))
        else:
            if len(values) != len(columns):
                raise SchemaError("column list and value list lengths differ")
            slots: list[SqlValue] = [None] * len(self.columns)
            for name, value in zip(columns, values):
                position = self.column_position(name)
                slots[position] = coerce(value, self.columns[position])
            row = tuple(slots)
        rowid = self._next_rowid
        self._next_rowid += 1
        self._rows[rowid] = row
        for column_key, index in self._indexes.items():
            position = self._index_of[column_key]
            index.setdefault(_norm(row[position]), set()).add(rowid)
        return rowid

    def delete_rows(self, rowids: _t.Iterable[int]) -> int:
        """Remove the given rows; returns how many existed."""
        removed = 0
        for rowid in list(rowids):
            row = self._rows.pop(rowid, None)
            if row is None:
                continue
            removed += 1
            for column_key, index in self._indexes.items():
                position = self._index_of[column_key]
                bucket = index.get(_norm(row[position]))
                if bucket:
                    bucket.discard(rowid)
        return removed

    def clear(self) -> None:
        """Drop all rows (keeps schema and index definitions)."""
        self._rows.clear()
        for index in self._indexes.values():
            index.clear()

    # -- access -----------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._rows)

    def rows(self) -> _t.Iterator[tuple[int, tuple[SqlValue, ...]]]:
        """(rowid, row) pairs in insertion order."""
        return iter(sorted(self._rows.items()))

    def lookup_index(self, column: str, value: SqlValue) -> set[int] | None:
        """Row ids with ``column == value`` via index, or None if unindexed."""
        index = self._indexes.get(column.lower())
        if index is None:
            return None
        return set(index.get(_norm(value), set()))

    def get_row(self, rowid: int) -> tuple[SqlValue, ...]:
        return self._rows[rowid]

    def estimated_row_size(self) -> int:
        """Mean serialized row size in bytes (for network cost models)."""
        if not self._rows:
            return 16 * len(self.columns)
        sample = next(iter(self._rows.values()))
        return sum(len(str(v)) + 4 for v in sample)


def _norm(value: SqlValue) -> SqlValue:
    """Index key normalization: case-insensitive strings."""
    if isinstance(value, str):
        return value.lower()
    return value
