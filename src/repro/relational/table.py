"""In-memory tables with hash and sorted secondary indexes.

Rows are stored as tuples in insertion order; equality indexes map a
column value to the set of row ids holding it, and sorted indexes keep
``(numeric key, rowid)`` pairs for range pruning.  The executor consults
indexes for ``col = literal`` conjuncts (and, on the compiled path,
``IN`` lists and range comparisons) and reports how many rows it
actually examined, which feeds the study's cost models.

Index keys are normalized exactly like the executor's comparison
semantics — numeric when the value coerces to float, case-insensitive
text otherwise — so an index lookup can never miss a row the predicate
would accept.
"""

from __future__ import annotations

import typing as _t
from bisect import bisect_left, insort
from math import inf

from repro.errors import SchemaError
from repro.relational.types import Column, SqlValue, coerce

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.relational.compile import RowPredicate

__all__ = ["Table"]


class _SortedIndex:
    """Sorted ``(key, rowid)`` pairs plus the residue of unorderable rows.

    Rows whose value is NULL or does not coerce to a number land in
    ``residue``: non-numeric text can still satisfy a range predicate
    through the executor's lexicographic fallback, so residue rows are
    always included in range candidates (the predicate prunes them).
    """

    __slots__ = ("pairs", "residue")

    def __init__(self) -> None:
        self.pairs: list[tuple[float, int]] = []
        self.residue: set[int] = set()

    def add(self, value: SqlValue, rowid: int) -> None:
        key = _range_key(value)
        if key is None:
            self.residue.add(rowid)
        else:
            insort(self.pairs, (key, rowid))

    def discard(self, value: SqlValue, rowid: int) -> None:
        key = _range_key(value)
        if key is None:
            self.residue.discard(rowid)
            return
        position = bisect_left(self.pairs, (key, rowid))
        if position < len(self.pairs) and self.pairs[position] == (key, rowid):
            self.pairs.pop(position)

    def clear(self) -> None:
        self.pairs.clear()
        self.residue.clear()

    def select(self, op: str, bound: float) -> set[int]:
        pairs = self.pairs
        if op == ">=":
            selected = pairs[bisect_left(pairs, (bound, -1)) :]
        elif op == ">":
            selected = pairs[bisect_left(pairs, (bound, inf)) :]
        elif op == "<=":
            selected = pairs[: bisect_left(pairs, (bound, inf))]
        elif op == "<":
            selected = pairs[: bisect_left(pairs, (bound, -1))]
        else:  # pragma: no cover - callers pre-filter operators
            raise SchemaError(f"operator {op!r} is not range-prunable")
        candidates = {rowid for _key, rowid in selected}
        candidates.update(self.residue)
        return candidates


class Table:
    """One relational table: schema, rows, and secondary indexes."""

    def __init__(self, name: str, columns: _t.Sequence[Column]) -> None:
        if not columns:
            raise SchemaError(f"table {name!r} needs at least one column")
        seen: set[str] = set()
        for column in columns:
            if column.key in seen:
                raise SchemaError(f"duplicate column {column.name!r} in table {name!r}")
            seen.add(column.key)
        self.name = name
        self.columns = tuple(columns)
        self._index_of = {c.key: i for i, c in enumerate(self.columns)}
        self._rows: dict[int, tuple[SqlValue, ...]] = {}
        self._next_rowid = 0
        self._indexes: dict[str, dict[SqlValue, set[int]]] = {}
        self._sorted: dict[str, _SortedIndex] = {}
        # Compiled WHERE closures keyed on the expression tree; closures
        # bind column positions only, so rows never invalidate them.
        self._compiled_where: dict[_t.Any, "RowPredicate"] = {}
        self.rows_scanned_total = 0  # cumulative cost counter

    # -- schema -----------------------------------------------------------------
    def column_position(self, name: str) -> int:
        try:
            return self._index_of[name.lower()]
        except KeyError:
            raise SchemaError(f"no column {name!r} in table {self.name!r}") from None

    def has_column(self, name: str) -> bool:
        return name.lower() in self._index_of

    # -- indexing ---------------------------------------------------------------
    def create_index(self, column: str) -> None:
        """Build (or rebuild) a hash index over ``column``."""
        position = self.column_position(column)
        index: dict[SqlValue, set[int]] = {}
        for rowid, row in self._rows.items():
            index.setdefault(_norm(row[position]), set()).add(rowid)
        self._indexes[column.lower()] = index

    def create_sorted_index(self, column: str) -> None:
        """Build (or rebuild) a sorted index over ``column`` for ranges."""
        position = self.column_position(column)
        index = _SortedIndex()
        for rowid, row in self._rows.items():
            index.add(row[position], rowid)
        self._sorted[column.lower()] = index

    def indexed_columns(self) -> list[str]:
        return list(self._indexes)

    def sorted_columns(self) -> list[str]:
        return list(self._sorted)

    # -- mutation ---------------------------------------------------------------
    def insert(self, values: _t.Sequence[SqlValue], columns: _t.Sequence[str] | None = None) -> int:
        """Insert one row; returns its rowid.

        ``columns`` names the supplied values; omitted columns get NULL.
        """
        if columns is None:
            if len(values) != len(self.columns):
                raise SchemaError(
                    f"table {self.name!r} has {len(self.columns)} columns, got {len(values)} values"
                )
            row = tuple(coerce(v, c) for v, c in zip(values, self.columns))
        else:
            if len(values) != len(columns):
                raise SchemaError("column list and value list lengths differ")
            slots: list[SqlValue] = [None] * len(self.columns)
            for name, value in zip(columns, values):
                position = self.column_position(name)
                slots[position] = coerce(value, self.columns[position])
            row = tuple(slots)
        rowid = self._next_rowid
        self._next_rowid += 1
        self._rows[rowid] = row
        for column_key, index in self._indexes.items():
            position = self._index_of[column_key]
            index.setdefault(_norm(row[position]), set()).add(rowid)
        for column_key, sorted_index in self._sorted.items():
            sorted_index.add(row[self._index_of[column_key]], rowid)
        return rowid

    def delete_rows(self, rowids: _t.Iterable[int]) -> int:
        """Remove the given rows; returns how many existed."""
        removed = 0
        for rowid in list(rowids):
            row = self._rows.pop(rowid, None)
            if row is None:
                continue
            removed += 1
            for column_key, index in self._indexes.items():
                position = self._index_of[column_key]
                bucket = index.get(_norm(row[position]))
                if bucket:
                    bucket.discard(rowid)
            for column_key, sorted_index in self._sorted.items():
                sorted_index.discard(row[self._index_of[column_key]], rowid)
        return removed

    def clear(self) -> None:
        """Drop all rows (keeps schema and index definitions)."""
        self._rows.clear()
        for index in self._indexes.values():
            index.clear()
        for sorted_index in self._sorted.values():
            sorted_index.clear()

    # -- access -----------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._rows)

    def rows(self) -> _t.Iterator[tuple[int, tuple[SqlValue, ...]]]:
        """(rowid, row) pairs in insertion order."""
        return iter(sorted(self._rows.items()))

    def lookup_index(self, column: str, value: SqlValue) -> set[int] | None:
        """Row ids with ``column == value`` via index, or None if unindexed."""
        index = self._indexes.get(column.lower())
        if index is None:
            return None
        return set(index.get(_norm(value), set()))

    def range_candidates(self, column: str, op: str, bound: float) -> set[int] | None:
        """Row ids possibly satisfying ``column <op> bound``, or None."""
        index = self._sorted.get(column.lower())
        if index is None:
            return None
        return index.select(op, bound)

    def get_row(self, rowid: int) -> tuple[SqlValue, ...]:
        return self._rows[rowid]

    def estimated_row_size(self) -> int:
        """Mean serialized row size in bytes (for network cost models)."""
        if not self._rows:
            return 16 * len(self.columns)
        sample = next(iter(self._rows.values()))
        return sum(len(str(v)) + 4 for v in sample)


def _norm(value: SqlValue) -> SqlValue:
    """Index key normalization mirroring the comparison semantics.

    ``col = literal`` compares numerically when both sides coerce to
    float, so coercible values (including numeric *strings*) key by
    their float value; everything else keys by lowercased text.  NaN
    never compares equal numerically, so NaN spellings stay textual.
    """
    if value is None:
        return None
    try:
        number = float(value)
    except (TypeError, ValueError):
        return value.lower() if isinstance(value, str) else value
    if number != number:  # NaN
        return value.lower() if isinstance(value, str) else value
    return number


def _range_key(value: SqlValue) -> float | None:
    if value is None:
        return None
    try:
        number = float(value)
    except (TypeError, ValueError):
        return None
    return None if number != number else number
