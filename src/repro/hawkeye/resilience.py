"""Resilient Hawkeye Agent→Manager advertisement over simulated RPC.

The seed's advertiser (``repro.core.experiments.common``) injects ads
into the Manager by direct callback; a Manager outage is invisible to
it.  :func:`resilient_advertiser` is the honest version: each 30 s
cycle pushes the Startd ad through the Manager's ingest *service* with
a :class:`~repro.sim.rpc.RetryPolicy`, so a collector restart shows up
as missed ads, stale pool state, and a measurable catch-up burst.
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass

from repro.errors import RequestTimeoutError, ServiceUnavailableError
from repro.hawkeye.agent import Agent

if _t.TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Simulator
    from repro.sim.host import Host
    from repro.sim.network import Network
    from repro.sim.rpc import RetryPolicy, Service

__all__ = ["AdvertiserStats", "resilient_advertiser"]


@dataclass
class AdvertiserStats:
    """Delivery accounting for one advertising Agent."""

    delivered: int = 0
    missed: int = 0  # cycles lost even after the policy's retries
    last_delivered: float = -1.0  # sim time of the last acked ad
    max_gap: float = 0.0  # widest interval the Manager went without an ad

    def staleness(self, now: float) -> float:
        """How old the Manager's view of this Agent is at ``now``."""
        return now - self.last_delivered if self.last_delivered >= 0 else now


def resilient_advertiser(
    sim: "Simulator",
    net: "Network",
    agent_host: "Host",
    ingest_service: Service,
    agent: Agent,
    *,
    interval: float = 30.0,
    ad_size: int = 15_000,
    retry: RetryPolicy | None = None,
    stats: AdvertiserStats | None = None,
) -> _t.Generator:
    """One Agent pushing Startd ads every ``interval``; run with ``sim.spawn``.

    A cycle that fails after all retries is *dropped*, not queued — like
    ``hawkeye_advertise``, the next cycle sends a fresher ad instead, so
    an outage costs staleness rather than a backlog flood on restart.
    """
    from repro.sim.rpc import call  # runtime-only: keeps the module sim-free at import

    st = stats if stats is not None else AdvertiserStats()
    while True:
        yield sim.timeout(interval)
        ad, _answer = agent.make_startd_ad(now=sim.now)
        try:
            yield from call(
                sim,
                net,
                agent_host,
                ingest_service,
                {"ad": ad},
                size=ad_size,
                retry=retry,
            )
            st.delivered += 1
            st.max_gap = max(st.max_gap, st.staleness(sim.now))
            st.last_delivered = sim.now
        except (ServiceUnavailableError, RequestTimeoutError):
            st.missed += 1
