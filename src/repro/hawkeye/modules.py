"""Hawkeye Modules — sensors advertising resource information as ClassAds.

"A Module is simply a sensor that advertises resource information in a
ClassAd format" (paper §2.3).  A standard install runs 11 Modules
(§3.5); Experiment 3 scales the count using "multiple instances of the
'vmstat' Module", which :func:`replicated_modules` reproduces.
"""

from __future__ import annotations

import numpy as np

from repro.classad import ClassAd

__all__ = ["Module", "make_default_modules", "replicated_modules", "DEFAULT_MODULE_NAMES"]

# The 11 modules of a standard Hawkeye install (paper §3.4: "11 default
# Modules").
DEFAULT_MODULE_NAMES = (
    "vmstat",
    "df",
    "memory",
    "network",
    "users",
    "processes",
    "uptime",
    "swap",
    "os",
    "filesystem",
    "condor_view",
)

# CPU seconds to execute one module sensor (forking vmstat and parsing
# its output); drives the Agent's per-query refresh cost.
DEFAULT_EXEC_COST = 0.02


class Module:
    """One sensor producing a ClassAd fragment."""

    def __init__(self, name: str, *, exec_cost: float = DEFAULT_EXEC_COST, nattrs: int = 8) -> None:
        self.name = name
        self.exec_cost = exec_cost
        self.nattrs = nattrs
        self.collections = 0

    def collect(self, machine: str, rng: np.random.Generator, now: float = 0.0) -> ClassAd:
        """Run the sensor: returns a fresh ClassAd fragment."""
        self.collections += 1
        prefix = self.name.split("#")[0]  # replicas are "vmstat#3"
        ad = ClassAd({f"{self.name}_LastUpdate": now})
        fill = _FILLERS.get(prefix, _fill_generic)
        fill(ad, self.name, machine, rng)
        i = 0
        while len(ad) < self.nattrs:
            ad[f"{self.name}_extra{i}"] = int(rng.integers(0, 10_000))
            i += 1
        return ad


def _fill_vmstat(ad: ClassAd, name: str, machine: str, rng: np.random.Generator) -> None:
    ad[f"{name}_CpuLoad"] = round(float(rng.uniform(0.0, 2.0)), 3)
    ad[f"{name}_CpuIdle"] = int(rng.integers(0, 100))
    ad[f"{name}_ContextSwitches"] = int(rng.integers(100, 50_000))


def _fill_df(ad: ClassAd, name: str, machine: str, rng: np.random.Generator) -> None:
    ad[f"{name}_DiskTotalMB"] = 17_000
    ad[f"{name}_DiskFreeMB"] = int(rng.integers(1_000, 16_000))


def _fill_memory(ad: ClassAd, name: str, machine: str, rng: np.random.Generator) -> None:
    ad[f"{name}_TotalMB"] = 512
    ad[f"{name}_FreeMB"] = int(rng.integers(32, 480))


def _fill_network(ad: ClassAd, name: str, machine: str, rng: np.random.Generator) -> None:
    ad[f"{name}_RxKBps"] = round(float(rng.uniform(0, 12_500)), 1)
    ad[f"{name}_TxKBps"] = round(float(rng.uniform(0, 12_500)), 1)


def _fill_users(ad: ClassAd, name: str, machine: str, rng: np.random.Generator) -> None:
    ad[f"{name}_LoggedIn"] = int(rng.integers(0, 12))


def _fill_processes(ad: ClassAd, name: str, machine: str, rng: np.random.Generator) -> None:
    ad[f"{name}_Total"] = int(rng.integers(40, 300))
    ad[f"{name}_Running"] = int(rng.integers(1, 10))


def _fill_uptime(ad: ClassAd, name: str, machine: str, rng: np.random.Generator) -> None:
    ad[f"{name}_Days"] = int(rng.integers(0, 365))


def _fill_swap(ad: ClassAd, name: str, machine: str, rng: np.random.Generator) -> None:
    ad[f"{name}_TotalMB"] = 1024
    ad[f"{name}_FreeMB"] = int(rng.integers(100, 1000))


def _fill_os(ad: ClassAd, name: str, machine: str, rng: np.random.Generator) -> None:
    ad[f"{name}_OpSys"] = "LINUX"
    ad[f"{name}_KernelVersion"] = "2.4.10"


def _fill_filesystem(ad: ClassAd, name: str, machine: str, rng: np.random.Generator) -> None:
    ad[f"{name}_Mounts"] = int(rng.integers(2, 12))


def _fill_condor_view(ad: ClassAd, name: str, machine: str, rng: np.random.Generator) -> None:
    ad[f"{name}_JobsRunning"] = int(rng.integers(0, 4))
    ad[f"{name}_JobsIdle"] = int(rng.integers(0, 50))


def _fill_generic(ad: ClassAd, name: str, machine: str, rng: np.random.Generator) -> None:
    ad[f"{name}_Value"] = int(rng.integers(0, 10_000))


_FILLERS = {
    "vmstat": _fill_vmstat,
    "df": _fill_df,
    "memory": _fill_memory,
    "network": _fill_network,
    "users": _fill_users,
    "processes": _fill_processes,
    "uptime": _fill_uptime,
    "swap": _fill_swap,
    "os": _fill_os,
    "filesystem": _fill_filesystem,
    "condor_view": _fill_condor_view,
}


def make_default_modules(exec_cost: float = DEFAULT_EXEC_COST) -> list[Module]:
    """The 11 modules of a standard Hawkeye install."""
    return [Module(name, exec_cost=exec_cost) for name in DEFAULT_MODULE_NAMES]


def replicated_modules(count: int, exec_cost: float = DEFAULT_EXEC_COST) -> list[Module]:
    """``count`` modules, cloning vmstat beyond the 11 defaults (paper §3.5)."""
    modules = make_default_modules(exec_cost=exec_cost)
    if count <= len(modules):
        return modules[:count]
    for i in range(count - len(modules)):
        modules.append(Module(f"vmstat#{i}", exec_cost=exec_cost))
    return modules
