"""Hawkeye: Modules, Agents, Manager and Trigger ClassAds (paper §2.3).

Functional re-implementation of the Condor project's pool monitoring
tool: module sensors produce ClassAd fragments, Agents integrate them
into Startd ads and push them to the Manager's indexed resident
database; Trigger ClassAds automate problem detection via matchmaking.
Timing is charged by the simulation layer (``repro.core``).
"""

from repro.hawkeye.advertise import AdvertiserFleet, advertise, synthesize_startd_ad
from repro.hawkeye.agent import MAX_MODULES, Agent, AgentAnswer
from repro.hawkeye.manager import Manager, ManagerAnswer
from repro.hawkeye.modules import (
    DEFAULT_MODULE_NAMES,
    Module,
    make_default_modules,
    replicated_modules,
)
from repro.hawkeye.resilience import AdvertiserStats, resilient_advertiser
from repro.hawkeye.triggers import Trigger, TriggerEngine, TriggerFiring

__all__ = [
    "Module",
    "make_default_modules",
    "replicated_modules",
    "DEFAULT_MODULE_NAMES",
    "Agent",
    "AgentAnswer",
    "MAX_MODULES",
    "Manager",
    "ManagerAnswer",
    "Trigger",
    "TriggerEngine",
    "TriggerFiring",
    "advertise",
    "synthesize_startd_ad",
    "AdvertiserFleet",
    "AdvertiserStats",
    "resilient_advertiser",
]
