"""Trigger ClassAds: Hawkeye's problem-detection mechanism.

"A Trigger ClassAd specifies an event and a job to execute if the event
occurs" (paper §2.3).  The Manager matchmakes each Trigger against every
Startd ad; a match fires the trigger's job (e.g. the paper's example of
killing Netscape on machines with CPU load over 50, or notifying an
administrator by email — §3.7).
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass, field

from repro.classad import ClassAd, match

__all__ = ["Trigger", "TriggerFiring", "TriggerEngine"]

# A trigger job receives the matched Startd ad.
TriggerJob = _t.Callable[[ClassAd], None]


@dataclass(frozen=True)
class TriggerFiring:
    """Record of one trigger firing against one machine."""

    trigger_name: str
    machine: str
    time: float


@dataclass
class Trigger:
    """One Trigger ClassAd plus the job to run on a match."""

    name: str
    ad: ClassAd
    job: TriggerJob
    firings: list[TriggerFiring] = field(default_factory=list)

    @classmethod
    def from_requirements(cls, name: str, requirements: str, job: TriggerJob) -> "Trigger":
        """Build a trigger from a bare Requirements expression."""
        ad = ClassAd({"MyType": "Trigger", "Name": name})
        ad.set_expr("Requirements", requirements)
        return cls(name=name, ad=ad, job=job)


class TriggerEngine:
    """Matches submitted triggers against a pool of Startd ads."""

    def __init__(self) -> None:
        self._triggers: dict[str, Trigger] = {}
        self.evaluations = 0

    def submit(self, trigger: Trigger) -> None:
        """Register (or replace) a trigger by name."""
        self._triggers[trigger.name] = trigger

    def withdraw(self, name: str) -> bool:
        return self._triggers.pop(name, None) is not None

    @property
    def trigger_count(self) -> int:
        return len(self._triggers)

    def triggers(self) -> list[Trigger]:
        return list(self._triggers.values())

    def check(self, ads: _t.Iterable[ClassAd], now: float = 0.0) -> list[TriggerFiring]:
        """Matchmake every trigger against every ad; fire jobs on matches."""
        fired: list[TriggerFiring] = []
        ads = list(ads)
        for trigger in self._triggers.values():
            for ad in ads:
                result = match(trigger.ad, ad)
                self.evaluations += result.ops
                if result.matched:
                    machine = str(ad.get_scalar("Machine", ad.get_scalar("Name", "?")))
                    firing = TriggerFiring(trigger.name, machine, now)
                    trigger.firings.append(firing)
                    fired.append(firing)
                    trigger.job(ad)
        return fired
