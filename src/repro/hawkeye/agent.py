"""The Hawkeye Monitoring Agent.

"A Monitoring Agent is a distributed information service component that
collects ClassAds from each of its Modules and then integrates them
into a single Startd ClassAd.  At fixed intervals, the Agent sends the
Startd ClassAd to its registered Manager" (paper §2.3).

The Agent does *not* keep an indexed resident database — the paper
attributes its query latency precisely to having "to retrieve new
information for each query" (§3.3) — so :meth:`query` re-collects its
modules every time and reports the work done.

Hard limit: "The maximum number of Modules currently able to register
to an Agent was 98, adding another Module caused the Startd to crash"
(§3.5) — reproduced by ``MAX_MODULES``.
"""

from __future__ import annotations

import typing as _t
from dataclasses import dataclass

import numpy as np

from repro.classad import ClassAd
from repro.errors import ServiceCrashError
from repro.hawkeye.modules import Module

__all__ = ["Agent", "AgentAnswer", "MAX_MODULES"]

MAX_MODULES = 98  # the paper's observed Startd crash threshold

DEFAULT_ADVERTISE_INTERVAL = 30.0  # seconds between Startd ads (paper §3.6)


@dataclass
class AgentAnswer:
    """One Agent query answer plus the work it caused."""

    ad: ClassAd
    modules_run: int = 0
    exec_cost: float = 0.0  # module sensor CPU charged
    integration_ops: int = 0  # attribute merges performed

    def estimated_size(self) -> int:
        return self.ad.estimated_size()


class Agent:
    """Per-machine collector integrating Module ads into a Startd ad."""

    def __init__(
        self,
        machine: str,
        modules: _t.Sequence[Module] = (),
        *,
        advertise_interval: float = DEFAULT_ADVERTISE_INTERVAL,
        seed: int = 0,
    ) -> None:
        self.machine = machine
        self.modules: list[Module] = []
        self.advertise_interval = advertise_interval
        self._rng = np.random.default_rng(seed)
        self.crashed = False
        self.queries = 0
        self.ads_sent = 0
        for module in modules:
            self.add_module(module)

    def add_module(self, module: Module) -> None:
        """Register one more module; crashes the Startd past 98."""
        self._check_alive()
        if len(self.modules) >= MAX_MODULES:
            self.crashed = True
            raise ServiceCrashError(
                f"Startd on {self.machine} crashed: module limit {MAX_MODULES} exceeded"
            )
        self.modules.append(module)

    @property
    def module_count(self) -> int:
        return len(self.modules)

    # -- the core operations ----------------------------------------------------
    def integrate(self, now: float = 0.0) -> AgentAnswer:
        """Collect every module and merge into a single Startd ClassAd.

        Integration cost grows superlinearly with the module count: each
        fragment merge rescans the accumulating ad (the behaviour behind
        the paper's Experiment-3 collapse past ~60 collectors).
        """
        self._check_alive()
        startd = ClassAd(
            {
                "MyType": "Machine",
                "TargetType": "Job",
                "Name": self.machine,
                "Machine": self.machine,
                "OpSys": "LINUX",
                "Arch": "INTEL",
                "LastHeardFrom": now,
            }
        )
        answer = AgentAnswer(ad=startd)
        for module in self.modules:
            fragment = module.collect(self.machine, self._rng, now)
            # Merging rescans the accumulated ad: O(m^2) total.
            answer.integration_ops += len(startd) + len(fragment)
            startd.update(fragment)
            answer.modules_run += 1
            answer.exec_cost += module.exec_cost
        return answer

    def query(self, now: float = 0.0) -> AgentAnswer:
        """Answer a direct client query (fresh collection every time)."""
        self.queries += 1
        return self.integrate(now)

    def query_module(self, module_name: str, now: float = 0.0) -> AgentAnswer:
        """Answer a query about one particular Module (paper §2.3)."""
        self._check_alive()
        self.queries += 1
        for module in self.modules:
            if module.name == module_name:
                fragment = module.collect(self.machine, self._rng, now)
                return AgentAnswer(
                    ad=fragment,
                    modules_run=1,
                    exec_cost=module.exec_cost,
                    integration_ops=len(fragment),
                )
        raise KeyError(f"no module {module_name!r} on agent {self.machine}")

    def make_startd_ad(self, now: float = 0.0) -> tuple[ClassAd, AgentAnswer]:
        """Build the periodic Startd ad sent to the Manager."""
        answer = self.integrate(now)
        self.ads_sent += 1
        return answer.ad, answer

    def _check_alive(self) -> None:
        if self.crashed:
            raise ServiceCrashError(f"Startd on {self.machine} has crashed")
