"""``hawkeye_advertise``: inject Startd ClassAds directly into a Manager.

Experiment 4 simulated "the large number of Agents (computers) in a
pool by using the 'hawkeye_advertise' command to send Startd ClassAds
at 30-second intervals to the collector machine" (paper §3.6).  This
module provides the same capability: synthesize a plausible Startd ad
for a fictitious machine and deliver it to a Manager.
"""

from __future__ import annotations

import numpy as np

from repro.classad import ClassAd
from repro.hawkeye.manager import Manager

__all__ = ["synthesize_startd_ad", "advertise", "AdvertiserFleet"]


def synthesize_startd_ad(
    machine: str, rng: np.random.Generator, now: float = 0.0, nattrs: int = 40
) -> ClassAd:
    """A fake—but schema-complete—Startd ad for ``machine``."""
    ad = ClassAd(
        {
            "MyType": "Machine",
            "TargetType": "Job",
            "Name": machine,
            "Machine": machine,
            "OpSys": "LINUX",
            "Arch": "INTEL",
            "Memory": 512,
            "Cpus": 2,
            "CpuLoad": round(float(rng.uniform(0.0, 2.0)), 3),
            "LastHeardFrom": now,
        }
    )
    i = 0
    while len(ad) < nattrs:
        ad[f"hawkeye_metric{i}"] = int(rng.integers(0, 10_000))
        i += 1
    return ad


def advertise(manager: Manager, machine: str, rng: np.random.Generator, now: float = 0.0) -> ClassAd:
    """Build and deliver one Startd ad (one ``hawkeye_advertise`` run)."""
    ad = synthesize_startd_ad(machine, rng, now)
    manager.receive_ad(ad, now=now)
    return ad


class AdvertiserFleet:
    """A set of simulated machines advertising on a fixed interval."""

    def __init__(self, manager: Manager, count: int, *, seed: int = 0, interval: float = 30.0) -> None:
        self.manager = manager
        self.machines = [f"sim{i:04d}.pool" for i in range(count)]
        self.interval = interval
        self._rng = np.random.default_rng(seed)
        self.rounds = 0

    def advertise_round(self, now: float = 0.0) -> int:
        """One advertise cycle for every simulated machine."""
        for machine in self.machines:
            advertise(self.manager, machine, self._rng, now)
        self.rounds += 1
        return len(self.machines)

    @property
    def ads_per_second(self) -> float:
        """Mean background ad arrival rate this fleet generates."""
        return len(self.machines) / self.interval
