"""The Hawkeye Manager: pool head with an indexed resident database.

"A Manager is the head computer in the Pool that collects and stores
(in an indexed resident database) monitoring information from each
Agent registered to it.  It is also the central target for queries
about the status of any Pool member" (paper §2.3).

The resident database is a :class:`~repro.classad.collector.AdCollector`
(indexed on Name/Machine), which is why the paper finds the Manager's
directory performance better than the GIIS's LDAP backend (§3.4).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.classad import AdCollector, ClassAd, QueryOutcome
from repro.hawkeye.agent import Agent
from repro.hawkeye.triggers import Trigger, TriggerEngine, TriggerFiring

__all__ = ["Manager", "ManagerAnswer"]


@dataclass(frozen=True)
class ManagerAnswer:
    """One Manager query answer plus its scan cost."""

    ads: list[ClassAd]
    scanned: int
    ops: int
    index_hit: bool

    def estimated_size(self) -> int:
        if not self.ads:
            return 64
        return sum(ad.estimated_size() for ad in self.ads)


class Manager:
    """Pool manager: ad collection, queries, agent directory, triggers."""

    def __init__(
        self,
        name: str,
        *,
        ad_lifetime: float = 900.0,
        indexed_attrs: tuple[str, ...] = ("Name", "Machine"),
    ) -> None:
        self.name = name
        self.collector = AdCollector(indexed_attrs=indexed_attrs)
        self.ad_lifetime = ad_lifetime
        self.triggers = TriggerEngine()
        self._agents: dict[str, Agent] = {}
        self.queries = 0
        self.ads_received = 0

    # -- pool membership ----------------------------------------------------
    def register_agent(self, agent: Agent) -> None:
        """Add a Monitoring Agent to the pool."""
        self._agents[agent.machine.lower()] = agent

    def agent_address(self, machine: str) -> Agent | None:
        """Directory lookup: the paper's "client must first consult the
        Manager for the Agent's IP-address" (§2.3)."""
        self.queries += 1
        return self._agents.get(machine.lower())

    @property
    def pool_size(self) -> int:
        return len(self.collector)

    @property
    def agent_count(self) -> int:
        return len(self._agents)

    # -- ad ingestion ------------------------------------------------------------
    def receive_ad(self, ad: ClassAd, now: float = 0.0) -> None:
        """Store one Startd ClassAd in the resident database."""
        self.collector.advertise(ad, now=now, lifetime=self.ad_lifetime)
        self.ads_received += 1

    def expire(self, now: float) -> int:
        """Sweep ads whose lease lapsed (soft state)."""
        return self.collector.expire(now)

    # -- queries --------------------------------------------------------------
    def query(self, constraint: str = "TRUE") -> ManagerAnswer:
        """Answer a pool status query with a ClassAd constraint."""
        self.queries += 1
        outcome: QueryOutcome = self.collector.query(constraint)
        return ManagerAnswer(
            ads=outcome.ads,
            scanned=outcome.scanned,
            ops=outcome.ops,
            index_hit=outcome.index_hit,
        )

    def query_machine(self, machine: str) -> ManagerAnswer:
        """Indexed lookup of one machine's latest Startd ad."""
        self.queries += 1
        ads = self.collector.lookup_equal("Machine", machine)
        return ManagerAnswer(ads=ads, scanned=len(ads), ops=len(ads), index_hit=True)

    # -- triggers -------------------------------------------------------------
    def submit_trigger(self, trigger: Trigger) -> None:
        """Accept a Trigger ClassAd from a client (paper §2.3)."""
        self.triggers.submit(trigger)

    def check_triggers(self, now: float = 0.0) -> list[TriggerFiring]:
        """Matchmake all triggers against all resident Startd ads."""
        return self.triggers.check(self.collector.ads(), now=now)
