#!/usr/bin/env python
"""The paper's §4 future work, actually run.

"In our future work, we plan to do more experiments ... the experiments
should be repeated to study performance in a WAN environment.  We also
need to determine the difference between querying an aggregate
information server and an information server for the same piece of
information.  We plan to consider additional patterns of user access."

Plus §3.6's proposed remedy for aggregate-server collapse ("a
multi-layer architecture ... should be examined") and §3.7's pull/push
contrast.  Each runs in seconds on the simulated testbed.

Run:  python examples/future_work.py        (a couple of minutes)
"""

from repro.core.experiments.extensions import (
    access_pattern_sweep,
    aggregate_vs_direct,
    hierarchy_comparison,
    push_vs_pull,
    wan_sweep,
)

FAST = dict(warmup=5.0, window=25.0)


def main() -> None:
    print("1) WAN environment (Hawkeye Agent, 100 users)")
    for label, p in wan_sweep("hawkeye-agent", users=100, seed=1, **FAST):
        print(f"   {label:18s} {p.throughput:6.2f} q/s  {p.response_time:6.3f} s")
    print("   -> WAN latency shows up directly in client response times;")
    print("      server-side saturation points do not move.\n")

    print("2) Aggregate (GIIS) vs direct (GRIS) for the same information")
    for users in (10, 50, 200):
        out = aggregate_vs_direct(users=users, seed=1, **FAST)
        print(
            f"   users={users:<4d} direct GRIS {out['direct-gris'].response_time:5.2f} s"
            f"   via GIIS {out['via-giis'].response_time:5.2f} s"
        )
    print("   -> the pre-aggregated GIIS answers faster once the GRIS's")
    print("      per-connection overhead ramps up.\n")

    print("3) Additional user access patterns (GRIS cache, 200 users)")
    for label, p in access_pattern_sweep(users=200, seed=1, **FAST):
        print(f"   {label:12s} {p.throughput:6.2f} q/s  {p.response_time:5.2f} s")
    print("   -> same mean demand, same saturation: the bottlenecks are")
    print("      server-side, not arrival-pattern artifacts.\n")

    print("4) Multi-layer aggregation (two-level GIIS tree vs flat)")
    for n in (100, 196):
        out = hierarchy_comparison(n, users=10, seed=1, **FAST)
        print(
            f"   {n:3d} GRIS: flat {out['flat'].throughput:5.2f} q/s"
            f" @ {out['flat'].response_time:5.2f} s   two-level"
            f" {out['two-level'].throughput:5.2f} q/s @ {out['two-level'].response_time:5.2f} s"
        )
    print("   -> the paper's proposed fix works: mid-level servers absorb")
    print("      the superlinear assembly cost.\n")

    print("5) Push vs pull notification (50 watchers, poll every 10 s)")
    out = push_vs_pull(watchers=50, poll_interval=10.0, seed=1, warmup=10.0, window=60.0)
    for mode, r in out.items():
        print(
            f"   {mode:5s} {r.notifications:4d} notifications,"
            f" {r.mean_latency:6.3f} s latency, {r.messages:5d} messages,"
            f" server cpu {r.server_cpu_pct:4.2f}%"
        )
    print("   -> R-GMA's push model wins on every axis for event delivery;")
    print("      MDS's pull-only design pays in latency and traffic (§3.7).")


if __name__ == "__main__":
    main()
