#!/usr/bin/env python
"""Capacity planning with the simulated testbed.

The paper's deployment advice (§3.3-§3.4): cache aggressively, put
servers on well-connected machines, and *duplicate the server if more
than 200 users are expected*.  This example uses the experiment harness
to answer a concrete planning question: how many users can each
information server sustain before mean response time crosses a 5-second
SLO, and what does caching buy?

Run:  python examples/capacity_planning.py          (about a minute)
"""

from repro.core.experiments import exp1

SLO_SECONDS = 5.0
USER_STEPS = (10, 50, 100, 200, 400, 600)
FAST = dict(warmup=5.0, window=20.0)


def capacity_of(system: str) -> tuple[int | None, list[tuple[int, float, float]]]:
    """Largest tested user count meeting the SLO, plus the whole curve."""
    curve = []
    supported = None
    for users in USER_STEPS:
        if system == "rgma-ps-uc" and users > exp1.UC_VARIANT_MAX_USERS:
            break
        point = exp1.run_point(system, users, seed=7, **FAST)
        curve.append((users, point.throughput, point.response_time))
        if point.response_time <= SLO_SECONDS and point.throughput > 0:
            supported = users
    return supported, curve


def main() -> None:
    print(f"capacity under a {SLO_SECONDS:.0f}s mean-response SLO")
    print(f"{'system':20s} {'max users':>10s}   curve (users: q/s @ resp)")
    results = {}
    for system in ("mds-gris-cache", "mds-gris-nocache", "hawkeye-agent", "rgma-ps-lucky"):
        supported, curve = capacity_of(system)
        results[system] = supported
        trace = "  ".join(f"{u}:{x:.0f}q/s@{r:.1f}s" for u, x, r in curve)
        print(f"{system:20s} {str(supported or '<10'):>10s}   {trace}")

    print("\nconclusions (match the paper's):")
    cache_gain = (results.get("mds-gris-cache") or 0) / max(results.get("mds-gris-nocache") or 1, 1)
    print(f"  * caching buys the GRIS ~{cache_gain:.0f}x more supported users")
    print("  * plan to replicate any information server beyond ~200 users")
    print("  * the R-GMA ProducerServlet needs replicas earliest — deploy one")
    print("    ProducerServlet per ~100 consumers for this workload")


if __name__ == "__main__":
    main()
